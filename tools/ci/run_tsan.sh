#!/usr/bin/env bash
# ThreadSanitizer gate: build the concurrency-sensitive targets with
# -fsanitize=thread and run the thread-pool + robust-pipeline suites
# plus the chaos stream. Both CI's tsan job and the local
# `cmake --build build --target tsan` convenience target run exactly
# this script, so the two invocations cannot drift apart.
#
# Usage: tools/ci/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build-tsan}"

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
    GENERATOR=(-G Ninja)
fi

cmake -B "${BUILD_DIR}" -S . "${GENERATOR[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DEDGEPC_TSAN=ON \
    -DEDGEPC_BUILD_BENCH=OFF
cmake --build "${BUILD_DIR}" --target edgepc_tests lidar_stream serve_streams

# halt_on_error: fail the gate on the first unsuppressed race report.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 \
suppressions=$(pwd)/tools/ci/tsan.supp"

ctest --test-dir "${BUILD_DIR}" --output-on-failure \
    -R 'ThreadPool|RobustPipeline|ObsConcurrency|ScratchArena|Serving|BoundedQueue|StagedPipeline'

# The chaos stream exercises watchdog + fault injector + degradation
# ladder end to end.
"./${BUILD_DIR}/examples/lidar_stream" 16 512 --chaos

# Multi-stream serving under chaos: producer threads vs the dispatcher,
# shared model, breakers and admission all racing on purpose — with the
# staged inter-frame executor forced on so its queue hand-offs race too.
"./${BUILD_DIR}/examples/serve_streams" --chaos --streams 3 --frames 12 --points 256 --pipeline on

echo "tsan gate: OK"
