#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json perf reports.

Checks every file passed on the command line (or globbed from a
directory) against the "edgepc-bench-v1" schema emitted by
bench/bench_util.hpp's BenchReport. Stdlib only, so the CI perf-smoke
job can run it on a bare runner.

Usage:
    tools/ci/validate_bench_json.py BENCH_fig03.json [more.json ...]
    tools/ci/validate_bench_json.py --dir bench_out/
"""

from __future__ import annotations

import glob
import json
import os
import sys

SCHEMA = "edgepc-bench-v1"


def fail(path: str, message: str) -> None:
    raise SystemExit(f"{path}: {message}")


def require(cond: bool, path: str, message: str) -> None:
    if not cond:
        fail(path, message)


def is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_row(path: str, i: int, row: object) -> None:
    ctx = f"rows[{i}]"
    require(isinstance(row, dict), path, f"{ctx} is not an object")
    for key in ("label", "wall_ms", "stages", "metrics"):
        require(key in row, path, f"{ctx} missing key '{key}'")
    require(isinstance(row["label"], str) and row["label"],
            path, f"{ctx}.label must be a non-empty string")
    require(is_number(row["wall_ms"]), path,
            f"{ctx}.wall_ms must be a number")
    require(row["wall_ms"] >= 0, path, f"{ctx}.wall_ms must be >= 0")
    for section in ("stages", "metrics"):
        mapping = row[section]
        require(isinstance(mapping, dict), path,
                f"{ctx}.{section} is not an object")
        for k, v in mapping.items():
            require(isinstance(k, str) and k, path,
                    f"{ctx}.{section} has a non-string key")
            require(is_number(v), path,
                    f"{ctx}.{section}['{k}'] is not a number")


def validate(path: str) -> None:
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(path, f"unreadable or invalid JSON: {exc}")

    require(isinstance(doc, dict), path, "top level is not an object")
    for key in ("schema", "name", "git_sha", "seed", "scale",
                "repeats", "config", "rows"):
        require(key in doc, path, f"missing top-level key '{key}'")
    require(doc["schema"] == SCHEMA, path,
            f"schema is '{doc['schema']}', expected '{SCHEMA}'")
    require(isinstance(doc["name"], str) and doc["name"], path,
            "name must be a non-empty string")
    require(isinstance(doc["git_sha"], str) and doc["git_sha"], path,
            "git_sha must be a non-empty string")
    for key in ("seed", "scale", "repeats"):
        require(isinstance(doc[key], int) and not
                isinstance(doc[key], bool), path,
                f"{key} must be an integer")
    require(isinstance(doc["config"], dict), path,
            "config is not an object")
    for k, v in doc["config"].items():
        require(isinstance(v, str) or is_number(v), path,
                f"config['{k}'] must be a string or number")
    rows = doc["rows"]
    require(isinstance(rows, list), path, "rows is not an array")
    require(len(rows) > 0, path, "rows is empty")
    for i, row in enumerate(rows):
        validate_row(path, i, row)


def main(argv: list[str]) -> int:
    paths: list[str] = []
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--dir":
            if not args:
                raise SystemExit("--dir requires an argument")
            paths.extend(sorted(
                glob.glob(os.path.join(args.pop(0), "BENCH_*.json"))))
        else:
            paths.append(arg)
    if not paths:
        raise SystemExit(__doc__)
    for path in paths:
        validate(path)
        print(f"{path}: OK ({SCHEMA})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
