#!/usr/bin/env python3
"""Perf diff between two BENCH_*.json reports (edgepc-bench-v1).

Matches rows by label between a committed baseline (bench/baselines/)
and a fresh run, prints a speedup table, and exits non-zero when any
matched row regressed by more than the threshold (wall_ms growth above
--threshold percent, default 15). Labels present on only one side are
reported in the table as "added" (current only — e.g. new int8 A/B
rows) or "removed" (baseline only) but never fail the diff — benches
gain and lose configurations over time, and the baseline refresh is a
separate, deliberate commit. Stdlib only, like validate_bench_json.py.

Usage:
    tools/ci/compare_bench_json.py BASELINE.json CURRENT.json
    tools/ci/compare_bench_json.py --threshold 25 base.json cur.json
    tools/ci/compare_bench_json.py --no-fail base.json cur.json
"""

from __future__ import annotations

import json
import sys

DEFAULT_THRESHOLD_PCT = 15.0


def load(path: str) -> dict:
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"{path}: unreadable or invalid JSON: {exc}")
    if not isinstance(doc, dict) or "rows" not in doc:
        raise SystemExit(f"{path}: not an edgepc-bench report")
    return doc


def rows_by_label(doc: dict, path: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for row in doc["rows"]:
        label = row.get("label")
        wall = row.get("wall_ms")
        if not isinstance(label, str) or not isinstance(wall, (int, float)):
            raise SystemExit(f"{path}: malformed row {row!r}")
        if label in out:
            print(f"warning: {path}: duplicate label '{label}'; "
                  "keeping the first", file=sys.stderr)
            continue
        out[label] = float(wall)
    return out


def main(argv: list[str]) -> int:
    threshold = DEFAULT_THRESHOLD_PCT
    fail_on_regression = True
    paths: list[str] = []
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--threshold":
            if not args:
                raise SystemExit("--threshold requires an argument")
            threshold = float(args.pop(0))
        elif arg == "--no-fail":
            fail_on_regression = False
        elif arg in ("-h", "--help"):
            raise SystemExit(__doc__)
        else:
            paths.append(arg)
    if len(paths) != 2:
        raise SystemExit(__doc__)

    base_path, cur_path = paths
    base = rows_by_label(load(base_path), base_path)
    cur = rows_by_label(load(cur_path), cur_path)

    removed = [label for label in base if label not in cur]
    added = [label for label in cur if label not in base]
    matched = [label for label in base if label in cur]
    if not matched:
        raise SystemExit("no labels in common; nothing to compare")

    width = max(len(label) for label in matched + added + removed)
    print(f"{'label':<{width}}  {'base ms':>12}  {'cur ms':>12}  "
          f"{'speedup':>8}  {'delta':>8}")
    regressions: list[str] = []
    for label in matched:
        b, c = base[label], cur[label]
        speedup = b / c if c > 0 else float("inf")
        delta_pct = (c - b) / b * 100.0 if b > 0 else 0.0
        flag = ""
        if delta_pct > threshold:
            flag = "  REGRESSION"
            regressions.append(label)
        print(f"{label:<{width}}  {b:12.4f}  {c:12.4f}  "
              f"{speedup:7.2f}x  {delta_pct:+7.1f}%{flag}")
    for label in added:
        print(f"{label:<{width}}  {'-':>12}  {cur[label]:12.4f}  "
              f"{'':>8}  {'':>8}  ADDED (not in baseline)")
    for label in removed:
        print(f"{label:<{width}}  {base[label]:12.4f}  {'-':>12}  "
              f"{'':>8}  {'':>8}  REMOVED (baseline only)")

    print(f"\n{len(matched)} row(s) compared, {len(regressions)} "
          f"regression(s) beyond {threshold:.0f}%, "
          f"{len(added)} added, {len(removed)} removed")
    if regressions and fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
