/**
 * @file
 * The repo-specific lint rules enforced by edgepc-lint.
 *
 *  R1  no fatal()/panic() in data-dependent directories (neighbor/,
 *      sampling/, pointcloud/, models/, datasets/) — data-dependent
 *      failures must use raise() so a serving layer can recover.
 *  R2  Result<T> discipline: every Result-returning function declared
 *      in a header carries [[nodiscard]], and no call to a known
 *      Result-returning function discards the value (cast to (void)
 *      to discard deliberately).
 *  R3  no std::rand/srand/std::random_device outside common/rng —
 *      thread-unsafe and breaks seeded determinism; use edgepc::Rng.
 *  R4  no raw ==/!= against floating-point literals in kernel code
 *      (neighbor/, sampling/, nn/, geometry/) — compare against an
 *      epsilon instead.
 *  R5  header hygiene: every header starts with an include guard
 *      (#pragma once or a classic #ifndef/#define pair) and contains
 *      no `using namespace`.
 *  R6  no heap allocation inside hot regions: a comment whose first
 *      word is the hot marker (see rules.cpp, startsWithHotMarker)
 *      opens a region over the next braced scope in which operator
 *      new, the malloc family, std::vector construction and
 *      reallocating container members (push_back, emplace_back,
 *      resize, reserve) are rejected — per-query scratch must come
 *      from the ScratchArena.
 *  R7  lock-rank order: mutex members declare their place in the lock
 *      hierarchy with an `EDGEPC_LOCK_RANK(n)` annotation comment
 *      (higher rank = acquired first; the repo hierarchy is
 *      engineMu 40 > queueMutex 30 > errorMutex 25 >
 *      traceRegistryMu 20 > ringMu 15 > metricsMu 10). Within a
 *      function body, constructing a lock_guard/unique_lock/
 *      scoped_lock/MutexLock/UniqueMutexLock on a ranked mutex while
 *      holding one of equal or lower rank is a deadlock-shaped
 *      ordering violation. Rank names must be repo-unique:
 *      conflicting declarations of one name are flagged too.
 *  R8  arena-escape: values derived from a ScratchArena allocation
 *      (`arena.alloc<T>(n)` results, spans over them, arena-backed
 *      PointsSoA views) dangle when the arena Frame rewinds, so
 *      returning one, storing one into a member/static, or writing
 *      one through an out-parameter is flagged in kernel and
 *      subsystem directories.
 *  R9  annotation coverage: in subsystem code every mutex member must
 *      (a) be an edgepc::Mutex (raw std::mutex/std::shared_mutex
 *      members defeat -Wthread-safety), (b) carry an
 *      EDGEPC_LOCK_RANK(n) comment, and (c) guard something — at
 *      least one EDGEPC_GUARDED_BY/EDGEPC_REQUIRES/... annotation in
 *      the same file must name it.
 *
 * Every rule honours `// NOLINT(edgepc-RN): reason` on the offending
 * line and `// NOLINTNEXTLINE(edgepc-RN): reason` on the line above.
 */

#ifndef EDGEPC_TOOLS_LINT_RULES_HPP
#define EDGEPC_TOOLS_LINT_RULES_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace edgepc::lint {

/** One rule violation. */
struct Finding
{
    std::string rule; ///< "edgepc-R1" … "edgepc-R9".
    std::string path;
    int line = 0;
    int col = 0;
    std::string message;
};

/** Rule id -> one-line description, for --list-rules. */
std::vector<std::pair<std::string, std::string>> ruleDescriptions();

/**
 * Cross-file state gathered in pass 1 and shared by every pass-2 rule:
 * the names of Result-returning functions (R2) and the declared lock
 * ranks (R7). Lock-rank names are repo-global — a mutex member name
 * maps to the set of ranks declared for it anywhere (more than one
 * rank for a name is itself an R7 finding).
 */
struct LintContext
{
    std::set<std::string> resultFns;
    std::map<std::string, std::set<int>> lockRanks;
};

/**
 * Pass 1: collect @p file's Result-returning function names and
 * EDGEPC_LOCK_RANK declarations into @p ctx.
 */
void collectContext(const LexedFile &file, LintContext &ctx);

/**
 * Pass 2: run every rule over @p file.
 *
 * @param file Tokenized source.
 * @param ctx Union of collectContext() over all files.
 * @param suppressed Incremented once per finding silenced by NOLINT.
 */
std::vector<Finding> runRules(const LexedFile &file,
                              const LintContext &ctx,
                              std::size_t &suppressed);

} // namespace edgepc::lint

#endif // EDGEPC_TOOLS_LINT_RULES_HPP
