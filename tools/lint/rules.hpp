/**
 * @file
 * The repo-specific lint rules enforced by edgepc-lint.
 *
 *  R1  no fatal()/panic() in data-dependent directories (neighbor/,
 *      sampling/, pointcloud/, models/, datasets/) — data-dependent
 *      failures must use raise() so a serving layer can recover.
 *  R2  Result<T> discipline: every Result-returning function declared
 *      in a header carries [[nodiscard]], and no call to a known
 *      Result-returning function discards the value (cast to (void)
 *      to discard deliberately).
 *  R3  no std::rand/srand/std::random_device outside common/rng —
 *      thread-unsafe and breaks seeded determinism; use edgepc::Rng.
 *  R4  no raw ==/!= against floating-point literals in kernel code
 *      (neighbor/, sampling/, nn/, geometry/) — compare against an
 *      epsilon instead.
 *  R5  header hygiene: every header starts with an include guard
 *      (#pragma once or a classic #ifndef/#define pair) and contains
 *      no `using namespace`.
 *  R6  no heap allocation inside hot regions: a comment whose first
 *      word is the hot marker (see rules.cpp, startsWithHotMarker)
 *      opens a region over the next braced scope in which operator
 *      new, the malloc family, std::vector construction and
 *      reallocating container members (push_back, emplace_back,
 *      resize, reserve) are rejected — per-query scratch must come
 *      from the ScratchArena.
 *
 * Every rule honours `// NOLINT(edgepc-RN): reason` on the offending
 * line and `// NOLINTNEXTLINE(edgepc-RN): reason` on the line above.
 */

#ifndef EDGEPC_TOOLS_LINT_RULES_HPP
#define EDGEPC_TOOLS_LINT_RULES_HPP

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace edgepc::lint {

/** One rule violation. */
struct Finding
{
    std::string rule; ///< "edgepc-R1" … "edgepc-R6".
    std::string path;
    int line = 0;
    int col = 0;
    std::string message;
};

/** Rule id -> one-line description, for --list-rules. */
std::vector<std::pair<std::string, std::string>> ruleDescriptions();

/**
 * Pass 1: names of functions declared or defined with a Result<...>
 * return type in @p file (feeds the R2 discarded-result check).
 */
std::set<std::string> collectResultFunctions(const LexedFile &file);

/**
 * Pass 2: run every rule over @p file.
 *
 * @param file Tokenized source.
 * @param resultFns Union of collectResultFunctions() over all files.
 * @param suppressed Incremented once per finding silenced by NOLINT.
 */
std::vector<Finding> runRules(const LexedFile &file,
                              const std::set<std::string> &resultFns,
                              std::size_t &suppressed);

} // namespace edgepc::lint

#endif // EDGEPC_TOOLS_LINT_RULES_HPP
