#include "lexer.hpp"

#include <array>
#include <cctype>
#include <cstring>

namespace edgepc::lint {
namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first (maximal munch). */
const std::array<const char *, 26> kPuncts = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "==", "!=",
    "<=",  ">=",  "&&",  "||",  "<<",  ">>", "++", "--", "+=",
    "-=",  "*=",  "/=",  "%=",  "&=",  "|=", "^=", "##",
};

/** Cursor over the raw source with line/column bookkeeping. */
struct Cursor
{
    const std::string &src;
    std::size_t pos = 0;
    int line = 1;
    int col = 1;

    bool done() const { return pos >= src.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos + ahead < src.size() ? src[pos + ahead] : '\0';
    }
    bool startsWith(const char *s) const
    {
        return src.compare(pos, std::strlen(s), s) == 0;
    }
    void advance()
    {
        if (src[pos] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        ++pos;
    }
    void advance(std::size_t n)
    {
        while (n-- > 0 && !done()) {
            advance();
        }
    }
};

/** Register the NOLINT directives found in @p comment. */
void
recordNolint(LexedFile &out, const Comment &comment)
{
    const std::string &text = comment.text;
    std::size_t at = 0;
    while ((at = text.find("NOLINT", at)) != std::string::npos) {
        std::size_t cursor = at + 6;
        int target = comment.startLine;
        if (text.compare(cursor, 8, "NEXTLINE") == 0) {
            cursor += 8;
            target = comment.endLine + 1;
        }
        std::set<std::string> &rules = out.nolint[target];
        if (cursor < text.size() && text[cursor] == '(') {
            const std::size_t close = text.find(')', cursor);
            std::string list =
                text.substr(cursor + 1, close == std::string::npos
                                            ? std::string::npos
                                            : close - cursor - 1);
            std::size_t start = 0;
            while (start <= list.size()) {
                std::size_t comma = list.find(',', start);
                if (comma == std::string::npos) {
                    comma = list.size();
                }
                std::string rule = list.substr(start, comma - start);
                while (!rule.empty() && std::isspace(static_cast<
                                            unsigned char>(rule.front()))) {
                    rule.erase(rule.begin());
                }
                while (!rule.empty() && std::isspace(static_cast<
                                            unsigned char>(rule.back()))) {
                    rule.pop_back();
                }
                if (!rule.empty()) {
                    rules.insert(rule);
                }
                start = comma + 1;
            }
        } else {
            rules.insert("*"); // Bare NOLINT: suppress everything.
        }
        at = cursor;
    }
}

} // namespace

LexedFile
lex(const std::string &path, const std::string &source)
{
    LexedFile out;
    out.path = path;
    Cursor c{source};
    bool lineHasCode = false; // Toggles '#' directive recognition.

    auto push = [&](TokenKind kind, std::string text, int line, int col) {
        out.tokens.push_back(Token{kind, std::move(text), line, col});
        lineHasCode = true;
    };

    while (!c.done()) {
        const char ch = c.peek();

        if (ch == '\n') {
            lineHasCode = false;
            c.advance();
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(ch))) {
            c.advance();
            continue;
        }
        // Line splice: the logical line continues.
        if (ch == '\\' && c.peek(1) == '\n') {
            c.advance(2);
            continue;
        }

        // --- Comments -----------------------------------------------
        if (ch == '/' && c.peek(1) == '/') {
            Comment comment;
            comment.startLine = c.line;
            c.advance(2);
            while (!c.done() && c.peek() != '\n') {
                comment.text += c.peek();
                c.advance();
            }
            comment.endLine = c.line;
            recordNolint(out, comment);
            out.comments.push_back(std::move(comment));
            continue;
        }
        if (ch == '/' && c.peek(1) == '*') {
            Comment comment;
            comment.startLine = c.line;
            c.advance(2);
            while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) {
                comment.text += c.peek();
                c.advance();
            }
            c.advance(2);
            comment.endLine = c.line;
            recordNolint(out, comment);
            out.comments.push_back(std::move(comment));
            continue;
        }

        // --- Preprocessor directives --------------------------------
        if (ch == '#' && !lineHasCode) {
            const int line = c.line;
            const int col = c.col;
            c.advance();
            while (c.peek() == ' ' || c.peek() == '\t') {
                c.advance();
            }
            std::string name;
            while (isIdentChar(c.peek())) {
                name += c.peek();
                c.advance();
            }
            push(TokenKind::Directive, name, line, col);
            // `#include <...>` — consume the header-name so its
            // contents never look like code tokens.
            if (name == "include") {
                while (c.peek() == ' ' || c.peek() == '\t') {
                    c.advance();
                }
                if (c.peek() == '<') {
                    const int hline = c.line;
                    const int hcol = c.col;
                    std::string header;
                    c.advance();
                    while (!c.done() && c.peek() != '>' &&
                           c.peek() != '\n') {
                        header += c.peek();
                        c.advance();
                    }
                    if (c.peek() == '>') {
                        c.advance();
                    }
                    push(TokenKind::String, header, hline, hcol);
                }
            }
            continue;
        }

        // --- Raw string literals ------------------------------------
        if (ch == 'R' && c.peek(1) == '"') {
            const int line = c.line;
            const int col = c.col;
            c.advance(2);
            std::string delim;
            while (!c.done() && c.peek() != '(') {
                delim += c.peek();
                c.advance();
            }
            c.advance(); // '('
            const std::string close = ")" + delim + "\"";
            std::string text;
            while (!c.done() && !c.startsWith(close.c_str())) {
                text += c.peek();
                c.advance();
            }
            c.advance(close.size());
            push(TokenKind::String, std::move(text), line, col);
            continue;
        }

        // --- String / char literals ---------------------------------
        if (ch == '"' || ch == '\'') {
            const char quote = ch;
            const int line = c.line;
            const int col = c.col;
            c.advance();
            std::string text;
            while (!c.done() && c.peek() != quote) {
                if (c.peek() == '\\') {
                    text += c.peek();
                    c.advance();
                    if (c.done()) {
                        break;
                    }
                }
                text += c.peek();
                c.advance();
            }
            c.advance(); // closing quote
            push(quote == '"' ? TokenKind::String : TokenKind::CharLit,
                 std::move(text), line, col);
            continue;
        }

        // --- Numbers ------------------------------------------------
        if (std::isdigit(static_cast<unsigned char>(ch)) ||
            (ch == '.' &&
             std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
            const int line = c.line;
            const int col = c.col;
            std::string text;
            while (!c.done()) {
                const char d = c.peek();
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    text += d;
                    c.advance();
                    continue;
                }
                // Exponent signs: 1e-3, 0x1p+4.
                if ((d == '+' || d == '-') && !text.empty()) {
                    const char prev = text.back();
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        text += d;
                        c.advance();
                        continue;
                    }
                }
                break;
            }
            push(TokenKind::Number, std::move(text), line, col);
            continue;
        }

        // --- Identifiers --------------------------------------------
        if (isIdentStart(ch)) {
            const int line = c.line;
            const int col = c.col;
            std::string text;
            while (isIdentChar(c.peek())) {
                text += c.peek();
                c.advance();
            }
            push(TokenKind::Ident, std::move(text), line, col);
            continue;
        }

        // --- Punctuators (maximal munch) ----------------------------
        {
            const int line = c.line;
            const int col = c.col;
            const char *matched = nullptr;
            for (const char *p : kPuncts) {
                if (c.startsWith(p)) {
                    matched = p;
                    break;
                }
            }
            if (matched != nullptr) {
                c.advance(std::strlen(matched));
                push(TokenKind::Punct, matched, line, col);
            } else {
                push(TokenKind::Punct, std::string(1, ch), line, col);
                c.advance();
            }
        }
    }
    return out;
}

} // namespace edgepc::lint
