/**
 * @file
 * Minimal C++ tokenizer for edgepc-lint.
 *
 * This is deliberately not a compiler front end: the repo-specific
 * rules (see rules.hpp) only need a faithful token stream — comments,
 * string/char literals and preprocessor directives separated from
 * code — so the tool stays dependency-free (no libclang) and fast
 * enough to run on every build.
 */

#ifndef EDGEPC_TOOLS_LINT_LEXER_HPP
#define EDGEPC_TOOLS_LINT_LEXER_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

namespace edgepc::lint {

enum class TokenKind
{
    /** Identifier or keyword ("fatal", "using", "Result", …). */
    Ident,
    /** Numeric literal, suffixes and digit separators included. */
    Number,
    /** String literal (ordinary or raw); text excludes the quotes. */
    String,
    /** Character literal; text excludes the quotes. */
    CharLit,
    /** Operator / punctuator, maximal munch ("::", "==", "->", …). */
    Punct,
    /** Preprocessor directive; text is the directive name
        ("include", "ifndef", "pragma", …). */
    Directive,
};

struct Token
{
    TokenKind kind = TokenKind::Punct;
    std::string text;
    int line = 0; ///< 1-based.
    int col = 0;  ///< 1-based.

    bool is(TokenKind k, const char *t) const
    {
        return kind == k && text == t;
    }
    bool isIdent(const char *t) const { return is(TokenKind::Ident, t); }
    bool isPunct(const char *t) const { return is(TokenKind::Punct, t); }
};

/** A comment with its source extent (text excludes the delimiters). */
struct Comment
{
    std::string text;
    int startLine = 0;
    int endLine = 0;
};

/** One tokenized source file. */
struct LexedFile
{
    /** Path as reported in findings (normalized, '/'-separated). */
    std::string path;

    /** Code tokens in source order (comments stripped). */
    std::vector<Token> tokens;

    /** All comments in source order. */
    std::vector<Comment> comments;

    /**
     * NOLINT suppressions by target line: line -> set of rule names
     * ("edgepc-R1", …). The wildcard entry "*" (from a bare NOLINT)
     * suppresses every rule on that line. Built from
     * `// NOLINT(edgepc-RN): reason` and `// NOLINTNEXTLINE(...)`.
     */
    std::map<int, std::set<std::string>> nolint;
};

/** Tokenize @p source. Never fails: unrecognized bytes are skipped. */
LexedFile lex(const std::string &path, const std::string &source);

} // namespace edgepc::lint

#endif // EDGEPC_TOOLS_LINT_LEXER_HPP
