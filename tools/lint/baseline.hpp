/**
 * @file
 * Baseline (ratchet) support for edgepc-lint.
 *
 * A baseline records, per (rule, file), how many findings are
 * tolerated — the debt that existed when the rule landed. Matching is
 * count-based rather than line-based so ordinary edits do not
 * invalidate it. The ratchet: a file may never exceed its baselined
 * count; when the real count drops, `--write-baseline` records the
 * lower figure and the tool reports stale entries until it does.
 */

#ifndef EDGEPC_TOOLS_LINT_BASELINE_HPP
#define EDGEPC_TOOLS_LINT_BASELINE_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "rules.hpp"

namespace edgepc::lint {

/** (rule, file) -> tolerated finding count. */
using Baseline = std::map<std::pair<std::string, std::string>,
                          std::size_t>;

/**
 * Parse a baseline file (`rule|path|count` lines, '#' comments).
 *
 * @return false (with @p error set) on unreadable file or bad syntax.
 */
bool loadBaseline(const std::string &path, Baseline &out,
                  std::string &error);

/** Write @p findings as a fresh baseline to @p path. */
bool writeBaseline(const std::string &path,
                   const std::vector<Finding> &findings);

/**
 * Drop findings covered by @p baseline.
 *
 * For each (rule, file): when the current count is within the
 * baselined count every finding is suppressed; when it exceeds it,
 * all of them are reported (the offender must fix or re-baseline
 * consciously). @p stale collects entries whose file now has fewer
 * findings than tolerated — candidates for ratcheting down.
 */
std::vector<Finding> applyBaseline(const std::vector<Finding> &findings,
                                   const Baseline &baseline,
                                   std::size_t &baselined,
                                   std::vector<std::string> &stale);

} // namespace edgepc::lint

#endif // EDGEPC_TOOLS_LINT_BASELINE_HPP
