#include "baseline.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace edgepc::lint {

bool
loadBaseline(const std::string &path, Baseline &out, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open baseline file '" + path + "'";
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        const std::size_t bar1 = line.find('|');
        const std::size_t bar2 =
            bar1 == std::string::npos ? bar1 : line.find('|', bar1 + 1);
        if (bar2 == std::string::npos) {
            error = path + ":" + std::to_string(lineno) +
                    ": expected 'rule|path|count'";
            return false;
        }
        const std::string rule = line.substr(0, bar1);
        const std::string file =
            line.substr(bar1 + 1, bar2 - bar1 - 1);
        char *end = nullptr;
        const unsigned long count =
            std::strtoul(line.c_str() + bar2 + 1, &end, 10);
        if (end == line.c_str() + bar2 + 1 || count == 0) {
            error = path + ":" + std::to_string(lineno) +
                    ": count must be a positive integer";
            return false;
        }
        out[{rule, file}] += count;
    }
    return true;
}

bool
writeBaseline(const std::string &path,
              const std::vector<Finding> &findings)
{
    Baseline counts;
    for (const Finding &f : findings) {
        counts[{f.rule, f.path}]++;
    }
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << "# edgepc-lint baseline: tolerated pre-existing findings.\n"
        << "# Format: rule|path|count. The ratchet only goes down —\n"
        << "# regenerate with `edgepc-lint --write-baseline " << path
        << " <paths>`\n"
        << "# after paying debt; never hand-raise a count.\n";
    for (const auto &[key, count] : counts) {
        out << key.first << '|' << key.second << '|' << count << '\n';
    }
    return static_cast<bool>(out);
}

std::vector<Finding>
applyBaseline(const std::vector<Finding> &findings,
              const Baseline &baseline, std::size_t &baselined,
              std::vector<std::string> &stale)
{
    Baseline counts;
    for (const Finding &f : findings) {
        counts[{f.rule, f.path}]++;
    }

    std::vector<Finding> kept;
    for (const Finding &f : findings) {
        const auto entry = baseline.find({f.rule, f.path});
        const std::size_t tolerated =
            entry == baseline.end() ? 0 : entry->second;
        if (counts[{f.rule, f.path}] <= tolerated) {
            ++baselined;
        } else {
            kept.push_back(f);
        }
    }

    for (const auto &[key, tolerated] : baseline) {
        const auto current = counts.find(key);
        const std::size_t now =
            current == counts.end() ? 0 : current->second;
        if (now < tolerated) {
            std::ostringstream note;
            note << key.first << '|' << key.second << ": baseline "
                 << "tolerates " << tolerated << " but only " << now
                 << " remain; ratchet it down with --write-baseline";
            stale.push_back(note.str());
        }
    }
    return kept;
}

} // namespace edgepc::lint
