#include "rules.hpp"

#include <array>
#include <cstddef>
#include <cstdlib>
#include <optional>

namespace edgepc::lint {
namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

// ------------------------------------------------------ rule scopes
/**
 * The single shared rule-scope configuration. Every path-scoped rule
 * draws its directory predicate from this table instead of keeping a
 * private copy, so adding a subsystem directory is a one-line change
 * and the per-rule columns document exactly which rules patrol it:
 *
 *  data       R1  data-dependent failures must raise(), not fatal()
 *  kernel     R4  float-literal ==/!= bans in hot numeric code
 *  arena      R8  ScratchArena lifetimes (kernels + concurrent subsys)
 *  subsystem  R9  mutex members need rank + capability annotations
 */
struct DirScope
{
    const char *dir;
    bool data;
    bool kernel;
    bool arena;
    bool subsystem;
};

constexpr std::array<DirScope, 11> kDirScopes = {{
    // dir            data   kernel arena  subsystem
    {"neighbor/",     true,  true,  true,  true},
    {"sampling/",     true,  true,  true,  true},
    {"pointcloud/",   true,  false, true,  true},
    {"models/",       true,  false, false, true},
    {"datasets/",     true,  false, false, true},
    {"obs/",          true,  false, true,  true},
    {"nn/",           false, true,  true,  true},
    {"geometry/",     false, true,  true,  true},
    {"serve/",        false, false, true,  true},
    {"common/",       false, false, true,  true},
    {"core/",         false, false, true,  true},
}};

bool
pathContains(const std::string &path, const char *segment)
{
    return path.find(segment) != std::string::npos;
}

/** True when @p path lies in a directory whose scope row sets @p pred. */
bool
inScope(const std::string &path, bool DirScope::*pred)
{
    for (const DirScope &scope : kDirScopes) {
        if (scope.*pred && pathContains(path, scope.dir)) {
            return true;
        }
    }
    return false;
}

bool
isHeader(const std::string &path)
{
    const auto dot = path.rfind('.');
    if (dot == std::string::npos) {
        return false;
    }
    const std::string ext = path.substr(dot);
    return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx";
}

/** True for a floating-point literal (1.0, 0.5f, 1e-3, …). */
bool
isFloatLiteral(const Token &tok)
{
    if (tok.kind != TokenKind::Number) {
        return false;
    }
    const std::string &t = tok.text;
    if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
        return false; // Hex (incl. hex floats): out of scope.
    }
    return t.find('.') != std::string::npos ||
           t.find('e') != std::string::npos ||
           t.find('E') != std::string::npos;
}

/**
 * @p open indexes a '<'; return the index of the matching '>'
 * (treating ">>" as two closers), or npos when unbalanced / too far.
 */
std::size_t
matchAngle(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    const std::size_t limit = std::min(toks.size(), open + 64);
    for (std::size_t i = open; i < limit; ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Punct) {
            continue;
        }
        if (t.text == "<") {
            ++depth;
        } else if (t.text == ">") {
            if (--depth == 0) {
                return i;
            }
        } else if (t.text == ">>") {
            depth -= 2;
            if (depth <= 0) {
                return i;
            }
        } else if (t.text == ";" || t.text == "{" || t.text == "}") {
            return npos; // A type never spans a statement boundary.
        }
    }
    return npos;
}

/** @p open indexes a '('; index of the matching ')' or npos. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Punct) {
            continue;
        }
        if (t.text == "(") {
            ++depth;
        } else if (t.text == ")") {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return npos;
}

/** @p close indexes a ')' or ']'; index of its opener or npos. */
std::size_t
matchBackwards(const std::vector<Token> &toks, std::size_t close)
{
    const std::string closer = toks[close].text;
    const std::string opener = closer == ")" ? "(" : "[";
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0;) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Punct) {
            continue;
        }
        if (t.text == closer) {
            ++depth;
        } else if (t.text == opener) {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return npos;
}

/** Index of the token opening the statement containing @p at: the
    first token after the previous ';', '{' or '}'. */
std::size_t
statementStart(const std::vector<Token> &toks, std::size_t at)
{
    for (std::size_t i = at; i-- > 0;) {
        const Token &t = toks[i];
        if (t.kind == TokenKind::Punct &&
            (t.text == ";" || t.text == "{" || t.text == "}")) {
            return i + 1;
        }
    }
    return 0;
}

/**
 * @p at indexes `Result` followed by '<'. When the token run describes
 * a function declaration/definition — `Result<...> [quals::]name(` —
 * return the index of the function-name token; npos otherwise.
 */
std::size_t
resultFunctionName(const std::vector<Token> &toks, std::size_t at)
{
    const std::size_t close = matchAngle(toks, at + 1);
    if (close == npos) {
        return npos;
    }
    // `Result<T>::value()` — qualification on the Result type itself,
    // not a return type. Skip.
    if (close + 1 < toks.size() && toks[close + 1].isPunct("::")) {
        return npos;
    }
    std::size_t i = close + 1;
    std::size_t name = npos;
    while (i < toks.size()) {
        if (toks[i].kind == TokenKind::Ident) {
            name = i;
            ++i;
            if (i < toks.size() && toks[i].isPunct("::")) {
                ++i;
                continue;
            }
            break;
        }
        return npos;
    }
    if (name == npos || i >= toks.size() || !toks[i].isPunct("(")) {
        return npos;
    }
    return name;
}

/** True when the declaration introduced at @p at (`Result` token) has
    a [[nodiscard]] within the same declarator prefix. */
bool
hasNodiscardBefore(const std::vector<Token> &toks, std::size_t at)
{
    const std::size_t lookback = 12;
    for (std::size_t steps = 0; steps < lookback && at-- > 0; ++steps) {
        const Token &t = toks[at];
        if (t.kind == TokenKind::Punct &&
            (t.text == ";" || t.text == "{" || t.text == "}")) {
            return false;
        }
        if (t.isIdent("nodiscard")) {
            return true;
        }
    }
    return false;
}

/**
 * @p at indexes the final identifier of a call whose ')' is directly
 * followed by ';'. True when the whole postfix chain forms an
 * expression statement, i.e. the value is discarded. Walking stops —
 * and the call is treated as used — at `return`, `=`, a cast like
 * `(void)`, or any other non-chain token.
 */
bool
isDiscardedStatement(const std::vector<Token> &toks, std::size_t at)
{
    std::size_t p = at;
    for (;;) {
        if (p == 0) {
            return true; // Chain reaches the start of the file.
        }
        const Token &t = toks[p - 1];
        if (t.kind == TokenKind::Punct &&
            (t.text == ";" || t.text == "{" || t.text == "}")) {
            return true;
        }
        if (t.isIdent("else") || t.isIdent("do")) {
            return true; // `else call();` is still a statement.
        }
        if (t.kind == TokenKind::Punct &&
            (t.text == "." || t.text == "->" || t.text == "::")) {
            // Step over the member-access operator to the object…
            std::size_t q = p - 2;
            if (q + 1 == 0) {
                return true;
            }
            const Token &obj = toks[q];
            if (obj.kind == TokenKind::Ident) {
                p = q;
                continue;
            }
            if (obj.kind == TokenKind::Punct &&
                (obj.text == ")" || obj.text == "]")) {
                const std::size_t open = matchBackwards(toks, q);
                if (open == npos) {
                    return false;
                }
                p = open;
                continue;
            }
            return false;
        }
        // Anything else (`=`, `return`, `(`, `,`, a cast's ')' …)
        // consumes or deliberately discards the value.
        return false;
    }
}

void
addFinding(std::vector<Finding> &findings, const LexedFile &file,
           const Token &tok, const char *rule, std::string message)
{
    findings.push_back(
        Finding{rule, file.path, tok.line, tok.col, std::move(message)});
}

// ---------------------------------------------------------------- R1
void
ruleFatalInDataCode(const LexedFile &file, std::vector<Finding> &out)
{
    if (!inScope(file.path, &DirScope::data)) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!(toks[i].isIdent("fatal") || toks[i].isIdent("panic")) ||
            !toks[i + 1].isPunct("(")) {
            continue;
        }
        if (i > 0 &&
            (toks[i - 1].isPunct(".") || toks[i - 1].isPunct("->"))) {
            continue; // Member function of some other class.
        }
        addFinding(out, file, toks[i], "edgepc-R1",
                   toks[i].text +
                       "() in data-dependent code; use raise() so the "
                       "serving layer can recover (CONTRIBUTING.md: "
                       "error tiers)");
    }
}

// ---------------------------------------------------------------- R2
void
ruleNodiscardDecl(const LexedFile &file, std::vector<Finding> &out)
{
    if (!isHeader(file.path)) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent("Result") || !toks[i + 1].isPunct("<")) {
            continue;
        }
        const std::size_t name = resultFunctionName(toks, i);
        if (name == npos || hasNodiscardBefore(toks, i)) {
            continue;
        }
        addFinding(out, file, toks[name], "edgepc-R2",
                   "Result-returning function '" + toks[name].text +
                       "' must be declared [[nodiscard]]");
    }
}

void
ruleDiscardedResult(const LexedFile &file,
                    const std::set<std::string> &resultFns,
                    std::vector<Finding> &out)
{
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident ||
            !toks[i + 1].isPunct("(") ||
            resultFns.count(toks[i].text) == 0) {
            continue;
        }
        const std::size_t close = matchParen(toks, i + 1);
        if (close == npos || close + 1 >= toks.size() ||
            !toks[close + 1].isPunct(";")) {
            continue; // Value is consumed by the surrounding context.
        }
        // Declarations (`Result<T> name(…);`) stop the statement walk
        // at the `>` of the return type, so only true calls survive.
        if (!isDiscardedStatement(toks, i)) {
            continue;
        }
        addFinding(out, file, toks[i], "edgepc-R2",
                   "discarded Result from '" + toks[i].text +
                       "'; handle the error or cast to (void) with a "
                       "comment");
    }
}

// ---------------------------------------------------------------- R3
void
ruleRawRng(const LexedFile &file, std::vector<Finding> &out)
{
    if (pathContains(file.path, "common/rng")) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        const bool isRandCall =
            (t.isIdent("rand") || t.isIdent("srand")) &&
            i + 1 < toks.size() && toks[i + 1].isPunct("(");
        const bool isRandomDevice = t.isIdent("random_device");
        if (!isRandCall && !isRandomDevice) {
            continue;
        }
        addFinding(out, file, t, "edgepc-R3",
                   "'" + t.text +
                       "' is thread-unsafe and breaks seeded "
                       "determinism; use edgepc::Rng (common/rng.hpp)");
    }
}

// ---------------------------------------------------------------- R4
void
ruleFloatCompare(const LexedFile &file, std::vector<Finding> &out)
{
    if (!inScope(file.path, &DirScope::kernel)) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        if (!toks[i].isPunct("==") && !toks[i].isPunct("!=")) {
            continue;
        }
        std::size_t rhs = i + 1;
        if ((toks[rhs].isPunct("-") || toks[rhs].isPunct("+")) &&
            rhs + 1 < toks.size()) {
            ++rhs;
        }
        if (!isFloatLiteral(toks[i - 1]) && !isFloatLiteral(toks[rhs])) {
            continue;
        }
        addFinding(out, file, toks[i], "edgepc-R4",
                   "raw " + toks[i].text +
                       " against a floating-point literal in kernel "
                       "code; compare with an epsilon");
    }
}

// ---------------------------------------------------------------- R6
/** Container member calls that may (re)allocate their storage. */
const std::array<const char *, 7> kAllocMembers = {
    "push_back", "emplace_back", "resize", "reserve",
    "insert",    "emplace",      "assign",
};

/** Free functions that allocate. */
const std::array<const char *, 7> kAllocCalls = {
    "malloc",       "calloc",      "realloc",    "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared",
};

template <std::size_t N>
bool
isOneOf(const std::array<const char *, N> &names, const std::string &text)
{
    for (const char *name : names) {
        if (text == name) {
            return true;
        }
    }
    return false;
}

/** True when the comment's first word is the hot-region marker. The
    marker must open the comment, so prose that merely mentions it
    (like this file's own documentation) never creates a region. */
bool
startsWithHotMarker(const std::string &text)
{
    const std::size_t at = text.find_first_not_of(" \t");
    return at != std::string::npos &&
           text.compare(at, 10, "EDGEPC_HOT") == 0;
}

/**
 * The hot region opened by a marker comment is the first braced scope
 * at or after the comment's last line (the loop/lambda/function body
 * the comment annotates), through its matching close. Inside it,
 * operator new, the malloc family, std::vector construction and
 * reallocating container members are all steady-state heap traffic the
 * kernels must route through the ScratchArena instead.
 */
void
ruleHotRegionAllocation(const LexedFile &file, std::vector<Finding> &out)
{
    const auto &toks = file.tokens;
    for (const Comment &marker : file.comments) {
        if (!startsWithHotMarker(marker.text)) {
            continue;
        }
        std::size_t open = npos;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].line >= marker.endLine && toks[i].isPunct("{")) {
                open = i;
                break;
            }
        }
        if (open == npos) {
            continue;
        }
        std::size_t close = toks.size();
        int depth = 0;
        for (std::size_t i = open; i < toks.size(); ++i) {
            if (toks[i].kind != TokenKind::Punct) {
                continue;
            }
            if (toks[i].text == "{") {
                ++depth;
            } else if (toks[i].text == "}" && --depth == 0) {
                close = i;
                break;
            }
        }
        for (std::size_t i = open + 1; i < close; ++i) {
            const Token &t = toks[i];
            if (t.kind != TokenKind::Ident) {
                continue;
            }
            const bool called =
                i + 1 < close && toks[i + 1].isPunct("(");
            const bool member =
                i > 0 && (toks[i - 1].isPunct(".") ||
                          toks[i - 1].isPunct("->"));
            std::string what;
            if (t.text == "new") {
                what = "operator new";
            } else if (t.text == "vector" && i + 1 < close &&
                       toks[i + 1].isPunct("<")) {
                what = "std::vector construction";
            } else if ((t.text == "Matrix" || t.text == "PointCloud" ||
                        t.text == "QuantizedWeights") &&
                       i + 1 < close &&
                       (toks[i + 1].isPunct("(") ||
                        (toks[i + 1].kind == TokenKind::Ident &&
                         i + 2 < close && toks[i + 2].isPunct("(")))) {
                // The nn/serve idiom: Matrix, PointCloud and
                // QuantizedWeights own heap buffers, so sizing one
                // inside a hot loop is steady-state allocation —
                // gemm/pack scratch belongs in the arena, quantized
                // panels come from the one-time layer cache, and the
                // serving dispatch loop must move frames, never
                // copy-construct them.
                what = t.text == "PointCloud"
                           ? "PointCloud construction"
                           : "nn::" + t.text + " construction";
            } else if (called && member &&
                       isOneOf(kAllocMembers, t.text)) {
                what = "reallocating call '" + t.text + "'";
            } else if (called && !member &&
                       isOneOf(kAllocCalls, t.text)) {
                what = "allocating call '" + t.text + "'";
            }
            if (!what.empty()) {
                addFinding(out, file, t, "edgepc-R6",
                           what +
                               " inside an EDGEPC_HOT region; hot-path "
                               "scratch must come from the ScratchArena");
            }
        }
    }
}

// ---------------------------------------------------------------- R5
void
ruleHeaderHygiene(const LexedFile &file, std::vector<Finding> &out)
{
    if (!isHeader(file.path) || file.tokens.empty()) {
        return;
    }
    const auto &toks = file.tokens;

    // (a) Include guard: the first directive must be `#pragma once` or
    // an `#ifndef G` immediately confirmed by `#define G`.
    bool guarded = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Directive) {
            continue;
        }
        if (toks[i].text == "pragma" && i + 1 < toks.size() &&
            toks[i + 1].isIdent("once")) {
            guarded = true;
        } else if (toks[i].text == "ifndef" && i + 1 < toks.size() &&
                   toks[i + 1].kind == TokenKind::Ident) {
            const std::string &guard = toks[i + 1].text;
            for (std::size_t j = i + 2; j < toks.size(); ++j) {
                if (toks[j].kind != TokenKind::Directive) {
                    continue;
                }
                guarded = toks[j].text == "define" &&
                          j + 1 < toks.size() &&
                          toks[j + 1].text == guard;
                break;
            }
        }
        break; // Only the first directive can open the guard.
    }
    if (!guarded) {
        Finding f{"edgepc-R5", file.path, 1, 1,
                  "header is missing an include guard (#pragma once or "
                  "#ifndef/#define)"};
        out.push_back(std::move(f));
    }

    // (b) `using namespace` leaks into every includer.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].isIdent("using") && toks[i + 1].isIdent("namespace")) {
            addFinding(out, file, toks[i], "edgepc-R5",
                       "'using namespace' in a header leaks into every "
                       "includer");
        }
    }
}

// ------------------------------------------------- R7/R9 mutex scan

/** One mutex(-like) variable declaration: `[std::]mutex name;` or
    `[edgepc::]Mutex name;` (guard objects don't match — they are
    constructed with parens). */
struct MutexDecl
{
    std::size_t nameTok = 0;
    std::string name;
    int line = 0;
    /** True for a raw standard mutex type (std::mutex & friends). */
    bool raw = false;
};

std::vector<MutexDecl>
collectMutexDecls(const LexedFile &file)
{
    std::vector<MutexDecl> out;
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Ident) {
            continue;
        }
        const bool wrapped = t.text == "Mutex";
        const bool raw = t.text == "mutex" || t.text == "shared_mutex" ||
                         t.text == "recursive_mutex" ||
                         t.text == "timed_mutex" ||
                         t.text == "recursive_timed_mutex";
        if (!wrapped && !raw) {
            continue;
        }
        if (toks[i + 1].kind != TokenKind::Ident ||
            !toks[i + 2].isPunct(";")) {
            continue;
        }
        out.push_back(MutexDecl{i + 1, toks[i + 1].text,
                                toks[i + 1].line, raw});
    }
    return out;
}

/** Parse "EDGEPC_LOCK_RANK(n)" opening @p text; nullopt otherwise. */
std::optional<int>
parseLockRankMarker(const std::string &text)
{
    static const std::string kMarker = "EDGEPC_LOCK_RANK(";
    const std::size_t at = text.find_first_not_of(" \t");
    if (at == std::string::npos ||
        text.compare(at, kMarker.size(), kMarker) != 0) {
        return std::nullopt;
    }
    const std::size_t digits = at + kMarker.size();
    const std::size_t close = text.find(')', digits);
    if (close == std::string::npos || close == digits) {
        return std::nullopt;
    }
    const std::string num = text.substr(digits, close - digits);
    for (const char c : num) {
        if (c < '0' || c > '9') {
            return std::nullopt;
        }
    }
    return std::atoi(num.c_str());
}

/** How many lines below its marker comment a mutex declaration may
    sit (rank comments often continue for a couple of prose lines). */
constexpr int kRankWindowLines = 6;

/**
 * Associate each EDGEPC_LOCK_RANK marker with the first mutex
 * declaration at/after it (same line, or within the window below).
 * Returns decl-index -> rank for @p file.
 */
std::map<std::size_t, int>
associateRanks(const LexedFile &file, const std::vector<MutexDecl> &decls)
{
    std::map<std::size_t, int> ranks;
    for (const Comment &comment : file.comments) {
        const std::optional<int> rank = parseLockRankMarker(comment.text);
        if (!rank) {
            continue;
        }
        for (std::size_t d = 0; d < decls.size(); ++d) {
            if (ranks.count(d) != 0) {
                continue;
            }
            if (decls[d].line >= comment.startLine &&
                decls[d].line <= comment.endLine + kRankWindowLines) {
                ranks[d] = *rank;
                break;
            }
        }
    }
    return ranks;
}

// ---------------------------------------------------------------- R7
/** RAII guard types whose construction acquires a mutex. */
const std::array<const char *, 6> kGuardTypes = {
    "lock_guard", "unique_lock",    "scoped_lock",
    "shared_lock", "MutexLock",     "UniqueMutexLock",
};

/** Rank of @p name per the repo-global table; nullopt if unranked. */
std::optional<int>
rankOf(const LintContext &ctx, const std::string &name)
{
    const auto at = ctx.lockRanks.find(name);
    if (at == ctx.lockRanks.end() || at->second.empty()) {
        return std::nullopt;
    }
    return *at->second.begin();
}

/**
 * Lock-rank order within function bodies: a brace-depth-scoped stack
 * of held guards; acquiring a ranked mutex while holding one of equal
 * or lower rank is a deadlock-shaped ordering violation. Manual
 * guard.unlock()/guard.lock() toggles are honoured. Only mutexes with
 * a declared rank participate (R9 chases the undeclared ones).
 */
void
ruleLockRankOrder(const LexedFile &file, const LintContext &ctx,
                  std::vector<Finding> &out)
{
    const auto &toks = file.tokens;

    // Conflicting rank declarations for one repo-global name.
    const std::vector<MutexDecl> decls = collectMutexDecls(file);
    const std::map<std::size_t, int> fileRanks =
        associateRanks(file, decls);
    for (const auto &[d, rank] : fileRanks) {
        const auto at = ctx.lockRanks.find(decls[d].name);
        if (at != ctx.lockRanks.end() && at->second.size() > 1) {
            std::string ranks;
            for (const int r : at->second) {
                ranks += (ranks.empty() ? "" : ", ") + std::to_string(r);
            }
            addFinding(out, file, toks[decls[d].nameTok], "edgepc-R7",
                       "conflicting EDGEPC_LOCK_RANK declarations for "
                       "mutex '" +
                           decls[d].name + "' (ranks " + ranks +
                           "); rank names must be repo-unique");
        }
    }

    struct Held
    {
        std::string guardVar;
        std::string mutexName;
        int rank = 0;
        int depth = 0;
        bool active = true;
    };
    std::vector<Held> held;
    int depth = 0;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == TokenKind::Punct) {
            if (t.text == "{") {
                ++depth;
            } else if (t.text == "}") {
                depth = std::max(0, depth - 1);
                while (!held.empty() && held.back().depth > depth) {
                    held.pop_back();
                }
            }
            continue;
        }
        if (t.kind != TokenKind::Ident) {
            continue;
        }

        // Manual unlock()/lock() on a tracked guard variable.
        if (i + 3 < toks.size() && toks[i + 1].isPunct(".") &&
            toks[i + 3].isPunct("(") &&
            (toks[i + 2].isIdent("unlock") ||
             toks[i + 2].isIdent("lock"))) {
            const bool activate = toks[i + 2].text == "lock";
            for (Held &h : held) {
                if (h.guardVar == t.text) {
                    h.active = activate;
                }
            }
        }

        // Guard construction: Guard[<...>] var(mutex[, mutex...]);
        if (!isOneOf(kGuardTypes, t.text)) {
            continue;
        }
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].isPunct("<")) {
            j = matchAngle(toks, j);
            if (j == npos) {
                continue;
            }
            ++j;
        }
        if (j + 1 >= toks.size() || toks[j].kind != TokenKind::Ident ||
            !toks[j + 1].isPunct("(")) {
            continue;
        }
        const std::string guardVar = toks[j].text;
        const std::size_t close = matchParen(toks, j + 1);
        if (close == npos) {
            continue;
        }

        // Each top-level comma-separated argument names one mutex
        // (its last identifier: `engineMu`, `buf.ringMu`,
        // `b->errorMutex` all resolve to the member name).
        std::vector<std::size_t> acquired;
        int argDepth = 0;
        std::size_t lastIdent = npos;
        for (std::size_t k = j + 2; k <= close; ++k) {
            const Token &a = toks[k];
            if (a.kind == TokenKind::Punct) {
                if (a.text == "(" || a.text == "[" || a.text == "<") {
                    ++argDepth;
                } else if (a.text == ")" || a.text == "]" ||
                           a.text == ">") {
                    --argDepth;
                } else if (a.text == "," && argDepth <= 0) {
                    if (lastIdent != npos) {
                        acquired.push_back(lastIdent);
                    }
                    lastIdent = npos;
                }
                continue;
            }
            if (a.kind == TokenKind::Ident && argDepth <= 0 &&
                k < close) {
                lastIdent = k;
            }
        }
        if (lastIdent != npos) {
            acquired.push_back(lastIdent);
        }

        for (const std::size_t nameTok : acquired) {
            const std::string &mutexName = toks[nameTok].text;
            const std::optional<int> rank = rankOf(ctx, mutexName);
            if (!rank) {
                continue;
            }
            for (const Held &h : held) {
                if (!h.active || h.rank > *rank) {
                    continue;
                }
                addFinding(
                    out, file, t, "edgepc-R7",
                    "acquires '" + mutexName + "' (rank " +
                        std::to_string(*rank) + ") while holding '" +
                        h.mutexName + "' (rank " +
                        std::to_string(h.rank) +
                        "); nested acquisitions must strictly decrease "
                        "in rank (lock hierarchy, DESIGN.md §12)");
            }
            held.push_back(
                Held{guardVar, mutexName, *rank, depth, true});
        }
        i = close;
    }
}

// ---------------------------------------------------------------- R8
/** Annotation macros whose argument "uses" a mutex (R9 coverage). */
const std::array<const char *, 9> kCapabilityAnnotations = {
    "EDGEPC_GUARDED_BY",     "EDGEPC_PT_GUARDED_BY",
    "EDGEPC_REQUIRES",       "EDGEPC_ACQUIRE",
    "EDGEPC_RELEASE",        "EDGEPC_TRY_ACQUIRE",
    "EDGEPC_EXCLUDES",       "EDGEPC_ACQUIRED_BEFORE",
    "EDGEPC_ACQUIRED_AFTER",
};

/**
 * Arena-escape: values derived from a ScratchArena allocation are only
 * valid while the caller's Frame is open, so they must never outlive
 * the function. Tracks (brace-scoped) locals tainted by
 * `arena.alloc<...>` results, arena-backed PointsSoA views and
 * taint-propagating assignments; flags
 *   - `return tainted...;`
 *   - member stores `obj.field = tainted;` / `this->field = tainted;`
 *   - out-parameter stores `*out = tainted;`
 *   - `static ... = tainted;`
 * Known limitation (documented in DESIGN.md §12): stores to members
 * through an implicit `this` are not distinguishable from local
 * assignments at token level and propagate taint instead.
 */
void
ruleArenaEscape(const LexedFile &file, std::vector<Finding> &out)
{
    if (!inScope(file.path, &DirScope::arena)) {
        return;
    }
    const auto &toks = file.tokens;

    std::map<std::string, int> arenaVars; // name -> decl depth
    std::map<std::string, int> tainted;   // name -> decl depth
    arenaVars["arena"] = 0; // The repo-wide naming convention.
    int depth = 0;

    auto eraseDeeper = [&](std::map<std::string, int> &vars) {
        for (auto it = vars.begin(); it != vars.end();) {
            if (it->second > depth) {
                it = vars.erase(it);
            } else {
                ++it;
            }
        }
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == TokenKind::Punct) {
            if (t.text == "{") {
                ++depth;
            } else if (t.text == "}") {
                depth = std::max(0, depth - 1);
                eraseDeeper(arenaVars);
                eraseDeeper(tainted);
            }
            continue;
        }
        if (t.kind != TokenKind::Ident) {
            continue;
        }

        // Arena handles: `ScratchArena &a = …` / `… = ScratchArena::local()`.
        if (t.text == "ScratchArena" && i + 2 < toks.size()) {
            if (toks[i + 1].isPunct("&") &&
                toks[i + 2].kind == TokenKind::Ident) {
                arenaVars[toks[i + 2].text] = depth;
            }
        }

        // Taint source: `<arena>.alloc<T>(…)`.
        const bool isAllocCall =
            t.text == "alloc" && i >= 2 && i + 1 < toks.size() &&
            (toks[i - 1].isPunct(".") || toks[i - 1].isPunct("->")) &&
            toks[i + 1].isPunct("<") &&
            toks[i - 2].kind == TokenKind::Ident &&
            arenaVars.count(toks[i - 2].text) != 0;

        // Taint source: arena-backed PointsSoA view.
        bool isArenaView = false;
        std::size_t viewName = npos;
        if (t.text == "PointsSoA" && i + 2 < toks.size() &&
            toks[i + 1].kind == TokenKind::Ident &&
            toks[i + 2].isPunct("(")) {
            const std::size_t close = matchParen(toks, i + 2);
            if (close != npos) {
                for (std::size_t k = i + 3; k < close; ++k) {
                    if (toks[k].kind == TokenKind::Ident &&
                        arenaVars.count(toks[k].text) != 0) {
                        isArenaView = true;
                        viewName = i + 1;
                        break;
                    }
                }
            }
        }

        if (isAllocCall || isArenaView) {
            const std::size_t start = statementStart(toks, i);
            if (toks[start].isIdent("return")) {
                addFinding(out, file, toks[start], "edgepc-R8",
                           "returns a ScratchArena-backed value; it "
                           "dangles when the caller's Frame rewinds — "
                           "copy into caller-owned storage instead");
                continue;
            }
            if (isArenaView) {
                tainted[toks[viewName].text] = depth;
                continue;
            }
            // Find the assignment target: `… name = <expr with alloc>`
            // or the ctor form `Type name(<expr with alloc>)`.
            std::size_t target = npos;
            for (std::size_t k = start; k < i; ++k) {
                if (toks[k].isPunct("=") && k > start &&
                    toks[k - 1].kind == TokenKind::Ident) {
                    target = k - 1;
                    break;
                }
            }
            if (target == npos && i >= 2 && start + 2 <= i &&
                toks[start].kind == TokenKind::Ident) {
                // `KHeap heap(arena.alloc<…>(k));` — at least two
                // leading identifiers before the '(' mark a decl.
                for (std::size_t k = start + 1; k + 1 < i; ++k) {
                    if (toks[k].kind == TokenKind::Ident &&
                        toks[k + 1].isPunct("(")) {
                        target = k;
                        break;
                    }
                }
            }
            if (target != npos) {
                tainted[toks[target].text] = depth;
            }
            continue;
        }

        // `return tainted;` — the whole view escapes. Returning a
        // value copied *out* of it (`return scratch.p[0];`) is fine,
        // so the tainted name must be the entire return expression.
        if (t.text == "return" && i + 2 < toks.size() &&
            toks[i + 1].kind == TokenKind::Ident &&
            tainted.count(toks[i + 1].text) != 0 &&
            toks[i + 2].isPunct(";")) {
            addFinding(out, file, t, "edgepc-R8",
                       "returns '" + toks[i + 1].text +
                           "', a ScratchArena-backed value; it dangles "
                           "when the caller's Frame rewinds — copy "
                           "into caller-owned storage instead");
            continue;
        }

        // Stores: `<lhs> = tainted[;.]`.
        if (i + 2 < toks.size() && toks[i + 1].isPunct("=") &&
            toks[i + 2].kind == TokenKind::Ident &&
            tainted.count(toks[i + 2].text) != 0 &&
            (i + 3 >= toks.size() || toks[i + 3].isPunct(";") ||
             toks[i + 3].isPunct("."))) {
            const std::string &src = toks[i + 2].text;
            const Token *before = i > 0 ? &toks[i - 1] : nullptr;
            if (before != nullptr && (before->isPunct(".") ||
                                      before->isPunct("->"))) {
                addFinding(out, file, t, "edgepc-R8",
                           "stores ScratchArena-backed '" + src +
                               "' into a member; it dangles when the "
                               "Frame rewinds — copy instead");
                continue;
            }
            if (before != nullptr && before->isPunct("*")) {
                addFinding(out, file, t, "edgepc-R8",
                           "stores ScratchArena-backed '" + src +
                               "' through an out-parameter; it dangles "
                               "when the Frame rewinds — copy instead");
                continue;
            }
            const std::size_t start = statementStart(toks, i);
            bool isStatic = false;
            for (std::size_t k = start; k < i; ++k) {
                if (toks[k].isIdent("static")) {
                    isStatic = true;
                    break;
                }
            }
            if (isStatic) {
                addFinding(out, file, t, "edgepc-R8",
                           "stores ScratchArena-backed '" + src +
                               "' into a static; it dangles when the "
                               "Frame rewinds — copy instead");
                continue;
            }
            // Plain local assignment propagates the taint.
            tainted[t.text] = depth;
        }
    }
}

// ---------------------------------------------------------------- R9
/**
 * Annotation coverage for mutexes in subsystem code: every mutex
 * member must be an edgepc::Mutex (raw std types defeat the clang
 * thread-safety analysis), declare its lock rank, and actually guard
 * something (at least one capability annotation in the same file must
 * name it). Pre-existing debt rides the baseline ratchet like every
 * other rule.
 */
void
ruleAnnotationCoverage(const LexedFile &file, std::vector<Finding> &out)
{
    if (!inScope(file.path, &DirScope::subsystem)) {
        return;
    }
    // The wrapper definitions themselves (std::mutex member by design).
    if (pathContains(file.path, "thread_annotations")) {
        return;
    }
    const auto &toks = file.tokens;
    const std::vector<MutexDecl> decls = collectMutexDecls(file);
    if (decls.empty()) {
        return;
    }
    const std::map<std::size_t, int> ranks = associateRanks(file, decls);

    // Mutex names used by a capability annotation anywhere in the file.
    std::set<std::string> annotated;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident ||
            !isOneOf(kCapabilityAnnotations, toks[i].text) ||
            !toks[i + 1].isPunct("(")) {
            continue;
        }
        const std::size_t close = matchParen(toks, i + 1);
        if (close == npos) {
            continue;
        }
        for (std::size_t k = i + 2; k < close; ++k) {
            if (toks[k].kind == TokenKind::Ident) {
                annotated.insert(toks[k].text);
            }
        }
    }

    for (std::size_t d = 0; d < decls.size(); ++d) {
        const MutexDecl &decl = decls[d];
        const Token &name = toks[decl.nameTok];
        if (decl.raw) {
            addFinding(out, file, name, "edgepc-R9",
                       "raw std mutex '" + decl.name +
                           "' in subsystem code defeats -Wthread-safety; "
                           "use edgepc::Mutex (common/"
                           "thread_annotations.hpp)");
            continue;
        }
        if (ranks.count(d) == 0) {
            addFinding(out, file, name, "edgepc-R9",
                       "mutex '" + decl.name +
                           "' has no EDGEPC_LOCK_RANK(n) comment; every "
                           "mutex declares its place in the lock "
                           "hierarchy (DESIGN.md §12)");
        }
        if (annotated.count(decl.name) == 0) {
            addFinding(out, file, name, "edgepc-R9",
                       "mutex '" + decl.name +
                           "' guards nothing: no EDGEPC_GUARDED_BY/"
                           "EDGEPC_REQUIRES/... annotation in this file "
                           "names it");
        }
    }
}

} // namespace

std::vector<std::pair<std::string, std::string>>
ruleDescriptions()
{
    return {
        {"edgepc-R1",
         "no fatal()/panic() in neighbor/, sampling/, pointcloud/, "
         "models/, datasets/, obs/ — use raise()"},
        {"edgepc-R2",
         "Result-returning functions are [[nodiscard]] and no call "
         "discards a Result"},
        {"edgepc-R3",
         "no rand()/srand()/std::random_device outside common/rng — "
         "use edgepc::Rng"},
        {"edgepc-R4",
         "no raw ==/!= against float literals in kernel code "
         "(neighbor/, sampling/, nn/, geometry/)"},
        {"edgepc-R5",
         "headers carry an include guard and never 'using namespace'"},
        {"edgepc-R6",
         "no heap allocation (new, malloc family, std::vector, "
         "nn::Matrix, PointCloud, push_back/resize/insert/...) inside "
         "EDGEPC_HOT-marked regions (kernel scratch and the serving "
         "dispatch loop)"},
        {"edgepc-R7",
         "nested lock acquisitions follow the declared "
         "EDGEPC_LOCK_RANK(n) hierarchy (strictly decreasing inward); "
         "rank names are repo-unique"},
        {"edgepc-R8",
         "no ScratchArena-derived pointer/span/PointsSoA view escapes "
         "its function (return, member/static/out-param store) — they "
         "dangle when the Frame rewinds"},
        {"edgepc-R9",
         "every mutex member in subsystem code is an edgepc::Mutex "
         "with an EDGEPC_LOCK_RANK(n) comment and at least one "
         "EDGEPC_GUARDED_BY/EDGEPC_REQUIRES user"},
    };
}

void
collectContext(const LexedFile &file, LintContext &ctx)
{
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent("Result") || !toks[i + 1].isPunct("<")) {
            continue;
        }
        const std::size_t name = resultFunctionName(toks, i);
        if (name != npos) {
            ctx.resultFns.insert(toks[name].text);
        }
    }

    const std::vector<MutexDecl> decls = collectMutexDecls(file);
    for (const auto &[d, rank] : associateRanks(file, decls)) {
        ctx.lockRanks[decls[d].name].insert(rank);
    }
}

std::vector<Finding>
runRules(const LexedFile &file, const LintContext &ctx,
         std::size_t &suppressed)
{
    std::vector<Finding> all;
    ruleFatalInDataCode(file, all);
    ruleNodiscardDecl(file, all);
    ruleDiscardedResult(file, ctx.resultFns, all);
    ruleRawRng(file, all);
    ruleFloatCompare(file, all);
    ruleHeaderHygiene(file, all);
    ruleHotRegionAllocation(file, all);
    ruleLockRankOrder(file, ctx, all);
    ruleArenaEscape(file, all);
    ruleAnnotationCoverage(file, all);

    std::vector<Finding> kept;
    for (Finding &f : all) {
        const auto at = file.nolint.find(f.line);
        const bool silenced =
            at != file.nolint.end() &&
            (at->second.count(f.rule) != 0 || at->second.count("*") != 0);
        if (silenced) {
            ++suppressed;
        } else {
            kept.push_back(std::move(f));
        }
    }
    return kept;
}

} // namespace edgepc::lint
