#include "rules.hpp"

#include <array>
#include <cstddef>

namespace edgepc::lint {
namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/** Directories where data-dependent failures must raise() (R1). */
const std::array<const char *, 6> kDataDirs = {
    "neighbor/",   "sampling/", "pointcloud/",
    "models/",     "datasets/", "obs/",
};

/** Directories treated as kernel code for the float-compare rule. */
const std::array<const char *, 4> kKernelDirs = {
    "neighbor/", "sampling/", "nn/", "geometry/",
};

bool
pathContains(const std::string &path, const char *segment)
{
    return path.find(segment) != std::string::npos;
}

bool
isHeader(const std::string &path)
{
    const auto dot = path.rfind('.');
    if (dot == std::string::npos) {
        return false;
    }
    const std::string ext = path.substr(dot);
    return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx";
}

/** True for a floating-point literal (1.0, 0.5f, 1e-3, …). */
bool
isFloatLiteral(const Token &tok)
{
    if (tok.kind != TokenKind::Number) {
        return false;
    }
    const std::string &t = tok.text;
    if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
        return false; // Hex (incl. hex floats): out of scope.
    }
    return t.find('.') != std::string::npos ||
           t.find('e') != std::string::npos ||
           t.find('E') != std::string::npos;
}

/**
 * @p open indexes a '<'; return the index of the matching '>'
 * (treating ">>" as two closers), or npos when unbalanced / too far.
 */
std::size_t
matchAngle(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    const std::size_t limit = std::min(toks.size(), open + 64);
    for (std::size_t i = open; i < limit; ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Punct) {
            continue;
        }
        if (t.text == "<") {
            ++depth;
        } else if (t.text == ">") {
            if (--depth == 0) {
                return i;
            }
        } else if (t.text == ">>") {
            depth -= 2;
            if (depth <= 0) {
                return i;
            }
        } else if (t.text == ";" || t.text == "{" || t.text == "}") {
            return npos; // A type never spans a statement boundary.
        }
    }
    return npos;
}

/** @p open indexes a '('; index of the matching ')' or npos. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Punct) {
            continue;
        }
        if (t.text == "(") {
            ++depth;
        } else if (t.text == ")") {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return npos;
}

/** @p close indexes a ')' or ']'; index of its opener or npos. */
std::size_t
matchBackwards(const std::vector<Token> &toks, std::size_t close)
{
    const std::string closer = toks[close].text;
    const std::string opener = closer == ")" ? "(" : "[";
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0;) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Punct) {
            continue;
        }
        if (t.text == closer) {
            ++depth;
        } else if (t.text == opener) {
            if (--depth == 0) {
                return i;
            }
        }
    }
    return npos;
}

/**
 * @p at indexes `Result` followed by '<'. When the token run describes
 * a function declaration/definition — `Result<...> [quals::]name(` —
 * return the index of the function-name token; npos otherwise.
 */
std::size_t
resultFunctionName(const std::vector<Token> &toks, std::size_t at)
{
    const std::size_t close = matchAngle(toks, at + 1);
    if (close == npos) {
        return npos;
    }
    // `Result<T>::value()` — qualification on the Result type itself,
    // not a return type. Skip.
    if (close + 1 < toks.size() && toks[close + 1].isPunct("::")) {
        return npos;
    }
    std::size_t i = close + 1;
    std::size_t name = npos;
    while (i < toks.size()) {
        if (toks[i].kind == TokenKind::Ident) {
            name = i;
            ++i;
            if (i < toks.size() && toks[i].isPunct("::")) {
                ++i;
                continue;
            }
            break;
        }
        return npos;
    }
    if (name == npos || i >= toks.size() || !toks[i].isPunct("(")) {
        return npos;
    }
    return name;
}

/** True when the declaration introduced at @p at (`Result` token) has
    a [[nodiscard]] within the same declarator prefix. */
bool
hasNodiscardBefore(const std::vector<Token> &toks, std::size_t at)
{
    const std::size_t lookback = 12;
    for (std::size_t steps = 0; steps < lookback && at-- > 0; ++steps) {
        const Token &t = toks[at];
        if (t.kind == TokenKind::Punct &&
            (t.text == ";" || t.text == "{" || t.text == "}")) {
            return false;
        }
        if (t.isIdent("nodiscard")) {
            return true;
        }
    }
    return false;
}

/**
 * @p at indexes the final identifier of a call whose ')' is directly
 * followed by ';'. True when the whole postfix chain forms an
 * expression statement, i.e. the value is discarded. Walking stops —
 * and the call is treated as used — at `return`, `=`, a cast like
 * `(void)`, or any other non-chain token.
 */
bool
isDiscardedStatement(const std::vector<Token> &toks, std::size_t at)
{
    std::size_t p = at;
    for (;;) {
        if (p == 0) {
            return true; // Chain reaches the start of the file.
        }
        const Token &t = toks[p - 1];
        if (t.kind == TokenKind::Punct &&
            (t.text == ";" || t.text == "{" || t.text == "}")) {
            return true;
        }
        if (t.isIdent("else") || t.isIdent("do")) {
            return true; // `else call();` is still a statement.
        }
        if (t.kind == TokenKind::Punct &&
            (t.text == "." || t.text == "->" || t.text == "::")) {
            // Step over the member-access operator to the object…
            std::size_t q = p - 2;
            if (q + 1 == 0) {
                return true;
            }
            const Token &obj = toks[q];
            if (obj.kind == TokenKind::Ident) {
                p = q;
                continue;
            }
            if (obj.kind == TokenKind::Punct &&
                (obj.text == ")" || obj.text == "]")) {
                const std::size_t open = matchBackwards(toks, q);
                if (open == npos) {
                    return false;
                }
                p = open;
                continue;
            }
            return false;
        }
        // Anything else (`=`, `return`, `(`, `,`, a cast's ')' …)
        // consumes or deliberately discards the value.
        return false;
    }
}

void
addFinding(std::vector<Finding> &findings, const LexedFile &file,
           const Token &tok, const char *rule, std::string message)
{
    findings.push_back(
        Finding{rule, file.path, tok.line, tok.col, std::move(message)});
}

// ---------------------------------------------------------------- R1
void
ruleFatalInDataCode(const LexedFile &file, std::vector<Finding> &out)
{
    bool applies = false;
    for (const char *dir : kDataDirs) {
        applies = applies || pathContains(file.path, dir);
    }
    if (!applies) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!(toks[i].isIdent("fatal") || toks[i].isIdent("panic")) ||
            !toks[i + 1].isPunct("(")) {
            continue;
        }
        if (i > 0 &&
            (toks[i - 1].isPunct(".") || toks[i - 1].isPunct("->"))) {
            continue; // Member function of some other class.
        }
        addFinding(out, file, toks[i], "edgepc-R1",
                   toks[i].text +
                       "() in data-dependent code; use raise() so the "
                       "serving layer can recover (CONTRIBUTING.md: "
                       "error tiers)");
    }
}

// ---------------------------------------------------------------- R2
void
ruleNodiscardDecl(const LexedFile &file, std::vector<Finding> &out)
{
    if (!isHeader(file.path)) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent("Result") || !toks[i + 1].isPunct("<")) {
            continue;
        }
        const std::size_t name = resultFunctionName(toks, i);
        if (name == npos || hasNodiscardBefore(toks, i)) {
            continue;
        }
        addFinding(out, file, toks[name], "edgepc-R2",
                   "Result-returning function '" + toks[name].text +
                       "' must be declared [[nodiscard]]");
    }
}

void
ruleDiscardedResult(const LexedFile &file,
                    const std::set<std::string> &resultFns,
                    std::vector<Finding> &out)
{
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Ident ||
            !toks[i + 1].isPunct("(") ||
            resultFns.count(toks[i].text) == 0) {
            continue;
        }
        const std::size_t close = matchParen(toks, i + 1);
        if (close == npos || close + 1 >= toks.size() ||
            !toks[close + 1].isPunct(";")) {
            continue; // Value is consumed by the surrounding context.
        }
        // Declarations (`Result<T> name(…);`) stop the statement walk
        // at the `>` of the return type, so only true calls survive.
        if (!isDiscardedStatement(toks, i)) {
            continue;
        }
        addFinding(out, file, toks[i], "edgepc-R2",
                   "discarded Result from '" + toks[i].text +
                       "'; handle the error or cast to (void) with a "
                       "comment");
    }
}

// ---------------------------------------------------------------- R3
void
ruleRawRng(const LexedFile &file, std::vector<Finding> &out)
{
    if (pathContains(file.path, "common/rng")) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        const bool isRandCall =
            (t.isIdent("rand") || t.isIdent("srand")) &&
            i + 1 < toks.size() && toks[i + 1].isPunct("(");
        const bool isRandomDevice = t.isIdent("random_device");
        if (!isRandCall && !isRandomDevice) {
            continue;
        }
        addFinding(out, file, t, "edgepc-R3",
                   "'" + t.text +
                       "' is thread-unsafe and breaks seeded "
                       "determinism; use edgepc::Rng (common/rng.hpp)");
    }
}

// ---------------------------------------------------------------- R4
void
ruleFloatCompare(const LexedFile &file, std::vector<Finding> &out)
{
    bool applies = false;
    for (const char *dir : kKernelDirs) {
        applies = applies || pathContains(file.path, dir);
    }
    if (!applies) {
        return;
    }
    const auto &toks = file.tokens;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        if (!toks[i].isPunct("==") && !toks[i].isPunct("!=")) {
            continue;
        }
        std::size_t rhs = i + 1;
        if ((toks[rhs].isPunct("-") || toks[rhs].isPunct("+")) &&
            rhs + 1 < toks.size()) {
            ++rhs;
        }
        if (!isFloatLiteral(toks[i - 1]) && !isFloatLiteral(toks[rhs])) {
            continue;
        }
        addFinding(out, file, toks[i], "edgepc-R4",
                   "raw " + toks[i].text +
                       " against a floating-point literal in kernel "
                       "code; compare with an epsilon");
    }
}

// ---------------------------------------------------------------- R6
/** Container member calls that may (re)allocate their storage. */
const std::array<const char *, 7> kAllocMembers = {
    "push_back", "emplace_back", "resize", "reserve",
    "insert",    "emplace",      "assign",
};

/** Free functions that allocate. */
const std::array<const char *, 7> kAllocCalls = {
    "malloc",       "calloc",      "realloc",    "aligned_alloc",
    "posix_memalign", "make_unique", "make_shared",
};

template <std::size_t N>
bool
isOneOf(const std::array<const char *, N> &names, const std::string &text)
{
    for (const char *name : names) {
        if (text == name) {
            return true;
        }
    }
    return false;
}

/** True when the comment's first word is the hot-region marker. The
    marker must open the comment, so prose that merely mentions it
    (like this file's own documentation) never creates a region. */
bool
startsWithHotMarker(const std::string &text)
{
    const std::size_t at = text.find_first_not_of(" \t");
    return at != std::string::npos &&
           text.compare(at, 10, "EDGEPC_HOT") == 0;
}

/**
 * The hot region opened by a marker comment is the first braced scope
 * at or after the comment's last line (the loop/lambda/function body
 * the comment annotates), through its matching close. Inside it,
 * operator new, the malloc family, std::vector construction and
 * reallocating container members are all steady-state heap traffic the
 * kernels must route through the ScratchArena instead.
 */
void
ruleHotRegionAllocation(const LexedFile &file, std::vector<Finding> &out)
{
    const auto &toks = file.tokens;
    for (const Comment &marker : file.comments) {
        if (!startsWithHotMarker(marker.text)) {
            continue;
        }
        std::size_t open = npos;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].line >= marker.endLine && toks[i].isPunct("{")) {
                open = i;
                break;
            }
        }
        if (open == npos) {
            continue;
        }
        std::size_t close = toks.size();
        int depth = 0;
        for (std::size_t i = open; i < toks.size(); ++i) {
            if (toks[i].kind != TokenKind::Punct) {
                continue;
            }
            if (toks[i].text == "{") {
                ++depth;
            } else if (toks[i].text == "}" && --depth == 0) {
                close = i;
                break;
            }
        }
        for (std::size_t i = open + 1; i < close; ++i) {
            const Token &t = toks[i];
            if (t.kind != TokenKind::Ident) {
                continue;
            }
            const bool called =
                i + 1 < close && toks[i + 1].isPunct("(");
            const bool member =
                i > 0 && (toks[i - 1].isPunct(".") ||
                          toks[i - 1].isPunct("->"));
            std::string what;
            if (t.text == "new") {
                what = "operator new";
            } else if (t.text == "vector" && i + 1 < close &&
                       toks[i + 1].isPunct("<")) {
                what = "std::vector construction";
            } else if ((t.text == "Matrix" || t.text == "PointCloud") &&
                       i + 1 < close &&
                       (toks[i + 1].isPunct("(") ||
                        (toks[i + 1].kind == TokenKind::Ident &&
                         i + 2 < close && toks[i + 2].isPunct("(")))) {
                // The nn/serve idiom: Matrix and PointCloud own heap
                // buffers, so sizing one inside a hot loop is
                // steady-state allocation — gemm/pack scratch belongs
                // in the arena, and the serving dispatch loop must
                // move frames, never copy-construct them.
                what = t.text == "Matrix" ? "nn::Matrix construction"
                                          : "PointCloud construction";
            } else if (called && member &&
                       isOneOf(kAllocMembers, t.text)) {
                what = "reallocating call '" + t.text + "'";
            } else if (called && !member &&
                       isOneOf(kAllocCalls, t.text)) {
                what = "allocating call '" + t.text + "'";
            }
            if (!what.empty()) {
                addFinding(out, file, t, "edgepc-R6",
                           what +
                               " inside an EDGEPC_HOT region; hot-path "
                               "scratch must come from the ScratchArena");
            }
        }
    }
}

// ---------------------------------------------------------------- R5
void
ruleHeaderHygiene(const LexedFile &file, std::vector<Finding> &out)
{
    if (!isHeader(file.path) || file.tokens.empty()) {
        return;
    }
    const auto &toks = file.tokens;

    // (a) Include guard: the first directive must be `#pragma once` or
    // an `#ifndef G` immediately confirmed by `#define G`.
    bool guarded = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Directive) {
            continue;
        }
        if (toks[i].text == "pragma" && i + 1 < toks.size() &&
            toks[i + 1].isIdent("once")) {
            guarded = true;
        } else if (toks[i].text == "ifndef" && i + 1 < toks.size() &&
                   toks[i + 1].kind == TokenKind::Ident) {
            const std::string &guard = toks[i + 1].text;
            for (std::size_t j = i + 2; j < toks.size(); ++j) {
                if (toks[j].kind != TokenKind::Directive) {
                    continue;
                }
                guarded = toks[j].text == "define" &&
                          j + 1 < toks.size() &&
                          toks[j + 1].text == guard;
                break;
            }
        }
        break; // Only the first directive can open the guard.
    }
    if (!guarded) {
        Finding f{"edgepc-R5", file.path, 1, 1,
                  "header is missing an include guard (#pragma once or "
                  "#ifndef/#define)"};
        out.push_back(std::move(f));
    }

    // (b) `using namespace` leaks into every includer.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].isIdent("using") && toks[i + 1].isIdent("namespace")) {
            addFinding(out, file, toks[i], "edgepc-R5",
                       "'using namespace' in a header leaks into every "
                       "includer");
        }
    }
}

} // namespace

std::vector<std::pair<std::string, std::string>>
ruleDescriptions()
{
    return {
        {"edgepc-R1",
         "no fatal()/panic() in neighbor/, sampling/, pointcloud/, "
         "models/, datasets/, obs/ — use raise()"},
        {"edgepc-R2",
         "Result-returning functions are [[nodiscard]] and no call "
         "discards a Result"},
        {"edgepc-R3",
         "no rand()/srand()/std::random_device outside common/rng — "
         "use edgepc::Rng"},
        {"edgepc-R4",
         "no raw ==/!= against float literals in kernel code "
         "(neighbor/, sampling/, nn/, geometry/)"},
        {"edgepc-R5",
         "headers carry an include guard and never 'using namespace'"},
        {"edgepc-R6",
         "no heap allocation (new, malloc family, std::vector, "
         "nn::Matrix, PointCloud, push_back/resize/insert/...) inside "
         "EDGEPC_HOT-marked regions (kernel scratch and the serving "
         "dispatch loop)"},
    };
}

std::set<std::string>
collectResultFunctions(const LexedFile &file)
{
    std::set<std::string> names;
    const auto &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent("Result") || !toks[i + 1].isPunct("<")) {
            continue;
        }
        const std::size_t name = resultFunctionName(toks, i);
        if (name != npos) {
            names.insert(toks[name].text);
        }
    }
    return names;
}

std::vector<Finding>
runRules(const LexedFile &file, const std::set<std::string> &resultFns,
         std::size_t &suppressed)
{
    std::vector<Finding> all;
    ruleFatalInDataCode(file, all);
    ruleNodiscardDecl(file, all);
    ruleDiscardedResult(file, resultFns, all);
    ruleRawRng(file, all);
    ruleFloatCompare(file, all);
    ruleHeaderHygiene(file, all);
    ruleHotRegionAllocation(file, all);

    std::vector<Finding> kept;
    for (Finding &f : all) {
        const auto at = file.nolint.find(f.line);
        const bool silenced =
            at != file.nolint.end() &&
            (at->second.count(f.rule) != 0 || at->second.count("*") != 0);
        if (silenced) {
            ++suppressed;
        } else {
            kept.push_back(std::move(f));
        }
    }
    return kept;
}

} // namespace edgepc::lint
