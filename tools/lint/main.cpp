/**
 * @file
 * edgepc-lint — repo-specific static analysis for the EdgePC codebase.
 *
 * Usage:
 *   edgepc-lint [options] <file-or-directory>...
 *
 * Options:
 *   --baseline <file>        tolerate findings recorded in <file>
 *                            (default: tools/lint/edgepc-lint.baseline
 *                            when it exists in the working directory)
 *   --no-baseline            ignore any baseline
 *   --write-baseline <file>  record current findings and exit 0
 *   --update-baseline        rewrite the effective baseline with the
 *                            current findings (drops stale entries,
 *                            never adds new debt silently: exits 1
 *                            when findings exceed the old tolerance)
 *   --only <rules>           comma-separated rule filter (edgepc-R3,…)
 *   --format <fmt>           `plain` (default) or `github` — GitHub
 *                            workflow annotations (::error file=…)
 *   --list-rules             print the rule table and exit
 *
 * Exit codes: 0 clean, 1 findings or stale baseline, 2 usage or I/O
 * error. A stale baseline entry (a file that now has fewer findings
 * than tolerated) fails the run so the ratchet only ever tightens —
 * run with --update-baseline to re-record the smaller debt.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;
using namespace edgepc::lint;

namespace {

const char *kDefaultBaseline = "tools/lint/edgepc-lint.baseline";

/** Directory names never descended into during a walk. Explicitly
    passed paths are always scanned (that is how the fixture tests
    drive the tool over tests/fixtures/lint). */
bool
skipDirectory(const std::string &name)
{
    return name == ".git" || name == ".claude" || name == "fixtures" ||
           name == "third_party" || name.rfind("build", 0) == 0;
}

bool
isSourceFile(const fs::path &path)
{
    static const std::set<std::string> exts = {
        ".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".hxx"};
    return exts.count(path.extension().string()) != 0;
}

std::string
normalize(const fs::path &path)
{
    std::string s = path.lexically_normal().generic_string();
    if (s.rfind("./", 0) == 0) {
        s.erase(0, 2);
    }
    return s;
}

bool
collectFiles(const std::string &operand, std::vector<std::string> &out)
{
    const fs::path p(operand);
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
        out.push_back(normalize(p));
        return true;
    }
    if (!fs::is_directory(p, ec)) {
        std::cerr << "edgepc-lint: error: no such file or directory: "
                  << operand << "\n";
        return false;
    }
    fs::recursive_directory_iterator it(
        p, fs::directory_options::skip_permission_denied, ec);
    const fs::recursive_directory_iterator end;
    while (it != end) {
        const fs::directory_entry &entry = *it;
        if (entry.is_directory(ec) &&
            skipDirectory(entry.path().filename().string())) {
            it.disable_recursion_pending();
        } else if (entry.is_regular_file(ec) &&
                   isSourceFile(entry.path())) {
            out.push_back(normalize(entry.path()));
        }
        it.increment(ec);
        if (ec) {
            break;
        }
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/**
 * GitHub Actions workflow-command output: the runner turns these lines
 * into inline PR annotations at the exact file/line/column.
 */
void
printGithub(const Finding &f)
{
    std::cout << "::error file=" << f.path << ",line=" << f.line
              << ",col=" << f.col << ",title=" << f.rule
              << "::" << f.message << "\n";
}

void
printPlain(const Finding &f)
{
    std::cout << f.path << ":" << f.line << ":" << f.col << ": "
              << f.rule << ": " << f.message << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> operands;
    std::string baselinePath;
    std::string writeBaselinePath;
    bool noBaseline = false;
    bool updateBaseline = false;
    bool githubFormat = false;
    std::set<std::string> onlyRules;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto nextValue = [&](const char *flag) -> const char * {
            if (a + 1 >= argc) {
                std::cerr << "edgepc-lint: error: " << flag
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++a];
        };
        if (arg == "--baseline") {
            const char *v = nextValue("--baseline");
            if (v == nullptr) {
                return 2;
            }
            baselinePath = v;
        } else if (arg == "--write-baseline") {
            const char *v = nextValue("--write-baseline");
            if (v == nullptr) {
                return 2;
            }
            writeBaselinePath = v;
        } else if (arg == "--update-baseline") {
            updateBaseline = true;
        } else if (arg == "--no-baseline") {
            noBaseline = true;
        } else if (arg == "--only") {
            const char *v = nextValue("--only");
            if (v == nullptr) {
                return 2;
            }
            std::stringstream list(v);
            std::string rule;
            while (std::getline(list, rule, ',')) {
                if (!rule.empty()) {
                    onlyRules.insert(rule);
                }
            }
        } else if (arg == "--format") {
            const char *v = nextValue("--format");
            if (v == nullptr) {
                return 2;
            }
            const std::string fmt = v;
            if (fmt == "github") {
                githubFormat = true;
            } else if (fmt == "plain") {
                githubFormat = false;
            } else {
                std::cerr << "edgepc-lint: error: unknown --format '"
                          << fmt << "' (plain|github)\n";
                return 2;
            }
        } else if (arg.rfind("--format=", 0) == 0) {
            const std::string fmt = arg.substr(9);
            if (fmt == "github") {
                githubFormat = true;
            } else if (fmt == "plain") {
                githubFormat = false;
            } else {
                std::cerr << "edgepc-lint: error: unknown --format '"
                          << fmt << "' (plain|github)\n";
                return 2;
            }
        } else if (arg == "--list-rules") {
            for (const auto &[id, text] : ruleDescriptions()) {
                std::cout << id << "  " << text << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: edgepc-lint [--baseline FILE | "
                         "--no-baseline] [--write-baseline FILE]\n"
                         "                   [--update-baseline] "
                         "[--only RULES] [--format plain|github]\n"
                         "                   [--list-rules] <path>...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "edgepc-lint: error: unknown option " << arg
                      << "\n";
            return 2;
        } else {
            operands.push_back(arg);
        }
    }
    if (operands.empty()) {
        std::cerr << "edgepc-lint: error: no input paths (try "
                     "`edgepc-lint src tests bench examples`)\n";
        return 2;
    }
    if (updateBaseline && noBaseline) {
        std::cerr << "edgepc-lint: error: --update-baseline conflicts "
                     "with --no-baseline\n";
        return 2;
    }

    std::vector<std::string> files;
    for (const std::string &operand : operands) {
        if (!collectFiles(operand, files)) {
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: tokenize everything, collect the cross-file context
    // (Result-returning function names, declared lock ranks).
    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    LintContext ctx;
    for (const std::string &file : files) {
        std::string source;
        if (!readFile(file, source)) {
            std::cerr << "edgepc-lint: error: cannot read " << file
                      << "\n";
            return 2;
        }
        lexed.push_back(lex(file, source));
        collectContext(lexed.back(), ctx);
    }

    // Pass 2: rules.
    std::size_t suppressed = 0;
    std::vector<Finding> findings;
    for (const LexedFile &file : lexed) {
        std::vector<Finding> perFile = runRules(file, ctx, suppressed);
        findings.insert(findings.end(), perFile.begin(), perFile.end());
    }
    if (!onlyRules.empty()) {
        findings.erase(std::remove_if(findings.begin(), findings.end(),
                                      [&](const Finding &f) {
                                          return onlyRules.count(
                                                     f.rule) == 0;
                                      }),
                       findings.end());
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.path, a.line, a.col, a.rule) <
                         std::tie(b.path, b.line, b.col, b.rule);
              });

    if (!writeBaselinePath.empty()) {
        if (!writeBaseline(writeBaselinePath, findings)) {
            std::cerr << "edgepc-lint: error: cannot write "
                      << writeBaselinePath << "\n";
            return 2;
        }
        std::cout << "edgepc-lint: baselined " << findings.size()
                  << " finding(s) to " << writeBaselinePath << "\n";
        return 0;
    }

    // Baseline: explicit flag wins; otherwise pick up the checked-in
    // default when running from the repo root.
    std::size_t baselined = 0;
    std::vector<std::string> stale;
    if (!noBaseline) {
        if (baselinePath.empty() && fs::exists(kDefaultBaseline)) {
            baselinePath = kDefaultBaseline;
        }
        if (!baselinePath.empty()) {
            Baseline baseline;
            std::string error;
            if (!loadBaseline(baselinePath, baseline, error)) {
                std::cerr << "edgepc-lint: error: " << error << "\n";
                return 2;
            }
            const std::vector<Finding> raw = findings;
            findings =
                applyBaseline(findings, baseline, baselined, stale);

            // --update-baseline: re-record the surviving debt. Only a
            // shrink is ever written automatically — new findings still
            // fail below, so the ratchet cannot be loosened this way.
            if (updateBaseline && findings.empty()) {
                if (!writeBaseline(baselinePath, raw)) {
                    std::cerr << "edgepc-lint: error: cannot write "
                              << baselinePath << "\n";
                    return 2;
                }
                std::cout << "edgepc-lint: baseline " << baselinePath
                          << " updated (" << baselined
                          << " tolerated finding(s), " << stale.size()
                          << " stale entr"
                          << (stale.size() == 1 ? "y" : "ies")
                          << " dropped)\n";
                return 0;
            }
        } else if (updateBaseline) {
            std::cerr << "edgepc-lint: error: --update-baseline needs "
                         "an effective baseline (none found)\n";
            return 2;
        }
    }

    for (const Finding &f : findings) {
        if (githubFormat) {
            printGithub(f);
        } else {
            printPlain(f);
        }
    }
    // Stale entries fail the run: the count-ratchet only tightens when
    // the recorded debt tracks reality. (--update-baseline rewrites.)
    for (const std::string &note : stale) {
        if (githubFormat) {
            std::cout << "::error file=" << baselinePath
                      << ",title=stale-baseline::" << note
                      << " — run edgepc-lint --update-baseline\n";
        }
        std::cerr << "edgepc-lint: stale baseline entry: " << note
                  << " (fixed debt must leave the baseline; run with "
                     "--update-baseline)\n";
    }
    std::cout << "edgepc-lint: checked " << files.size() << " file(s): "
              << findings.size() << " finding(s), " << suppressed
              << " nolint-suppressed, " << baselined << " baselined";
    if (!stale.empty()) {
        std::cout << ", " << stale.size() << " stale baseline entr"
                  << (stale.size() == 1 ? "y" : "ies");
    }
    std::cout << "\n";
    return (findings.empty() && stale.empty()) ? 0 : 1;
}
