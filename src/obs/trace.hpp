/**
 * @file
 * Low-overhead scoped-span tracer.
 *
 * Spans are recorded into fixed-capacity per-thread ring buffers: the
 * recording fast path touches only thread-local state plus one
 * uncontended per-buffer mutex, so worker threads never serialize on a
 * shared sink. When a ring wraps, the oldest spans are overwritten and
 * counted in dropped().
 *
 * Cost model (the overhead budget of DESIGN.md §8):
 *  - compile-time disabled (-DEDGEPC_TRACING=0): zero — EDGEPC_TRACE_SCOPE
 *    expands to a no-op statement and TraceScope is an empty type.
 *  - runtime disabled (the default): one relaxed atomic load per scope.
 *  - runtime enabled: two steady_clock reads plus one ring store.
 *
 * The tracer records "complete" spans (start + duration), which the
 * Chrome trace_event exporter maps to "ph":"X" events; nesting is
 * reconstructed from timestamps per thread, and each span additionally
 * carries its nesting depth at record time.
 */

#ifndef EDGEPC_OBS_TRACE_HPP
#define EDGEPC_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

/**
 * Compile-time master switch. Building with -DEDGEPC_TRACING=0 (the
 * CMake option EDGEPC_TRACING=OFF) compiles every EDGEPC_TRACE_SCOPE
 * out entirely; the Tracer class itself remains linkable so exporters
 * and tests still build.
 */
#ifndef EDGEPC_TRACING
#define EDGEPC_TRACING 1
#endif

namespace edgepc {
namespace obs {

/** One recorded span. Times are nanoseconds since the tracer epoch. */
struct SpanEvent
{
    std::string name;
    std::string category;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    /** Small ordinal id assigned per recording thread. */
    std::uint32_t tid = 0;
    /** Nesting depth of the scope at record time (0 = top level). */
    std::uint32_t depth = 0;
};

/**
 * Thread-safe span sink with per-thread ring buffers.
 *
 * Recording is allowed from any thread concurrently with snapshot(),
 * clear() and setEnabled(). Disabled by default: enable explicitly
 * (e.g. bench --trace) so ordinary library use pays only the enabled()
 * check.
 */
class Tracer
{
  public:
    /** Spans retained per thread before the ring overwrites. */
    static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

    explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The process-wide tracer used by EDGEPC_TRACE_SCOPE. */
    static Tracer &global();

    /** Turn span recording on or off (off by default). */
    void setEnabled(bool on)
    {
        enabledFlag.store(on, std::memory_order_relaxed);
    }

    /** True when spans are being recorded. */
    bool enabled() const
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Drop every recorded span (buffers stay registered). */
    void clear() EDGEPC_EXCLUDES(traceRegistryMu);

    /** Nanoseconds since the tracer epoch (monotonic). */
    std::uint64_t nowNs() const;

    /**
     * Record one span on the calling thread. Buffer registration on
     * first use; later calls touch only the thread's own ring.
     */
    void record(std::string_view name, std::string_view category,
                std::uint64_t start_ns, std::uint64_t dur_ns,
                std::uint32_t depth);

    /**
     * Test hook: record a span with an explicit thread ordinal and
     * explicit timestamps, so exporter tests are fully deterministic.
     */
    void recordManual(std::string_view name, std::string_view category,
                      std::uint64_t start_ns, std::uint64_t dur_ns,
                      std::uint32_t tid, std::uint32_t depth);

    /**
     * Copy of every retained span, ordered by (tid, startNs, depth).
     * Safe against concurrent recording (spans recorded while the
     * snapshot runs may or may not appear).
     */
    std::vector<SpanEvent> snapshot() const
        EDGEPC_EXCLUDES(traceRegistryMu);

    /**
     * Label the calling thread's lane in the Chrome trace export
     * (e.g. "pipe.sample"). Registers the thread's buffer if needed;
     * works whether or not recording is enabled. clear() keeps names.
     */
    void nameCurrentThread(std::string_view thread_name)
        EDGEPC_EXCLUDES(traceRegistryMu);

    /**
     * (tid, name) for every thread that called nameCurrentThread(),
     * in tid order — the exporter turns these into "thread_name"
     * metadata events.
     */
    std::vector<std::pair<std::uint32_t, std::string>> threadNames()
        const EDGEPC_EXCLUDES(traceRegistryMu);

    /** Spans lost to ring wrap-around since the last clear(). */
    std::uint64_t dropped() const
    {
        return droppedCount.load(std::memory_order_relaxed);
    }

    /**
     * Total milliseconds per span name, restricted to @p category
     * (empty = all categories). This is how the figure benches turn
     * raw span data back into the paper's per-stage breakdown.
     */
    std::map<std::string, double>
    totalsMs(std::string_view category = {}) const;

    std::size_t ringCapacity() const { return cap; }

  private:
    struct ThreadBuffer
    {
        // EDGEPC_LOCK_RANK(15): per-thread span ring lock — acquired
        // under traceRegistryMu (20) by clear()/snapshot(); leaf lock
        // on the recording fast path.
        mutable Mutex ringMu;
        std::vector<SpanEvent> ring EDGEPC_GUARDED_BY(ringMu);
        std::uint64_t writeCount EDGEPC_GUARDED_BY(ringMu) = 0;
        /** Lane label for the trace export ("" = unnamed). */
        std::string threadName EDGEPC_GUARDED_BY(ringMu);
        /** Immutable after registration (written once under
            traceRegistryMu before the buffer is published). */
        std::uint32_t tid = 0;
        std::thread::id owner;
    };

    ThreadBuffer &bufferForThisThread()
        EDGEPC_EXCLUDES(traceRegistryMu);
    void appendLocked(ThreadBuffer &buf, std::string_view name,
                      std::string_view category, std::uint64_t start_ns,
                      std::uint64_t dur_ns, std::uint32_t tid,
                      std::uint32_t depth) EDGEPC_REQUIRES(buf.ringMu);

    // EDGEPC_LOCK_RANK(20): tracer buffer-registry lock — taken before
    // any ThreadBuffer::ringMu (15), never while one is held.
    mutable Mutex traceRegistryMu;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers
        EDGEPC_GUARDED_BY(traceRegistryMu);
    std::atomic<bool> enabledFlag{false};
    std::atomic<std::uint64_t> droppedCount{0};
    std::chrono::steady_clock::time_point epoch;
    std::size_t cap;
    /** Process-unique id; the thread-local buffer cache keys on this
     *  instead of the address so a new Tracer reusing a destroyed
     *  one's storage can never hit a stale cache entry. */
    std::uint64_t tracerId;
};

#if EDGEPC_TRACING

/**
 * RAII scope: captures the wall time between construction and
 * destruction as one span on the global tracer. Name and category are
 * copied at construction (only when tracing is enabled), so callers
 * may pass temporaries.
 */
class TraceScope
{
  public:
    TraceScope(std::string_view span_name, std::string_view span_category);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    std::string name;
    std::string category;
    std::uint64_t startNs = 0;
    std::uint32_t depth = 0;
    bool active = false;
};

#else // !EDGEPC_TRACING

/** Compiled-out stand-in: an empty type the optimizer erases. */
class TraceScope
{
  public:
    TraceScope(std::string_view, std::string_view) {}
};

#endif // EDGEPC_TRACING

#define EDGEPC_TRACE_CONCAT_INNER(a, b) a##b
#define EDGEPC_TRACE_CONCAT(a, b) EDGEPC_TRACE_CONCAT_INNER(a, b)

#if EDGEPC_TRACING
/** Open a trace span covering the rest of the enclosing block. */
#define EDGEPC_TRACE_SCOPE(span_name, span_category)                       \
    ::edgepc::obs::TraceScope EDGEPC_TRACE_CONCAT(                         \
        edgepc_trace_scope_, __LINE__)((span_name), (span_category))
#else
#define EDGEPC_TRACE_SCOPE(span_name, span_category) static_cast<void>(0)
#endif

} // namespace obs
} // namespace edgepc

#endif // EDGEPC_OBS_TRACE_HPP
