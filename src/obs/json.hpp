/**
 * @file
 * Minimal deterministic JSON writer used by the observability
 * exporters and the benchmark report emitter.
 *
 * The writer produces minified JSON with stable number formatting
 * (%.12g for doubles, decimal for integers) so that two runs with the
 * same inputs emit byte-identical documents — the golden-file tests
 * and the BENCH_*.json trajectory depend on that stability.
 */

#ifndef EDGEPC_OBS_JSON_HPP
#define EDGEPC_OBS_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace edgepc {
namespace obs {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/** Format a double the way every edgepc JSON document does (%.12g). */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer with explicit begin/end nesting.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("name").value("fig03");
 *   w.key("rows").beginArray();
 *   ... w.endArray();
 *   w.endObject();
 *
 * The writer inserts commas automatically; mismatched begin/end pairs
 * are an internal bug and are reported via the error flag rather than
 * corrupting output.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** True when begin/end calls were balanced so far. */
    bool wellFormed() const { return !broken; }

  private:
    void separator();

    std::ostream &out;
    /** Per-depth flag: true once a sibling was written at this level. */
    std::vector<bool> hasSibling;
    bool pendingKey = false;
    bool broken = false;
};

} // namespace obs
} // namespace edgepc

#endif // EDGEPC_OBS_JSON_HPP
