#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "common/error.hpp"

namespace edgepc {
namespace obs {

namespace {

/** CAS-loop add for a double stored as its bit pattern. */
void
atomicAddDouble(std::atomic<std::uint64_t> &bits, double delta)
{
    std::uint64_t expected = bits.load(std::memory_order_relaxed);
    for (;;) {
        const double current = std::bit_cast<double>(expected);
        const std::uint64_t desired =
            std::bit_cast<std::uint64_t>(current + delta);
        if (bits.compare_exchange_weak(expected, desired,
                                       std::memory_order_relaxed)) {
            return;
        }
    }
}

} // namespace

Histogram::Histogram(std::span<const double> upper_bounds)
{
    if (upper_bounds.empty()) {
        upper_bounds = defaultLatencyBoundsMs();
    }
    ub.assign(upper_bounds.begin(), upper_bounds.end());
    for (std::size_t i = 1; i < ub.size(); ++i) {
        if (!(ub[i - 1] < ub[i])) {
            raise(ErrorCode::InvalidArgument,
                  "Histogram: bucket bounds must be strictly "
                  "increasing (bound %zu)",
                  i);
        }
    }
    buckets = std::vector<std::atomic<std::uint64_t>>(ub.size() + 1);
}

void
Histogram::observe(double value)
{
    const auto it = std::lower_bound(ub.begin(), ub.end(), value);
    const std::size_t idx =
        static_cast<std::size_t>(it - ub.begin()); // ub.size() = +inf
    buckets[idx].fetch_add(1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sumBits, value);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(buckets.size());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        out[i] = buckets[i].load(std::memory_order_relaxed);
    }
    return out;
}

double
Histogram::sum() const
{
    return std::bit_cast<double>(sumBits.load(std::memory_order_relaxed));
}

void
Histogram::reset()
{
    for (auto &b : buckets) {
        b.store(0, std::memory_order_relaxed);
    }
    n.store(0, std::memory_order_relaxed);
    sumBits.store(std::bit_cast<std::uint64_t>(0.0),
                  std::memory_order_relaxed);
}

std::span<const double>
Histogram::defaultLatencyBoundsMs()
{
    static constexpr std::array<double, 9> bounds = {
        0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0};
    return bounds;
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Intentionally leaked: kernels on the thread pool may bump
    // metrics during static destruction, so the registry must outlive
    // every other static.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    MutexLock lock(metricsMu);
    auto it = counterMap.find(name);
    if (it == counterMap.end()) {
        it = counterMap
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    MutexLock lock(metricsMu);
    auto it = gaugeMap.find(name);
    if (it == gaugeMap.end()) {
        it = gaugeMap
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::span<const double> upper_bounds)
{
    MutexLock lock(metricsMu);
    auto it = histogramMap.find(name);
    if (it == histogramMap.end()) {
        it = histogramMap
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(upper_bounds))
                 .first;
    }
    return *it->second;
}

void
MetricsRegistry::reset()
{
    MutexLock lock(metricsMu);
    for (const auto &[name, c] : counterMap) {
        c->reset();
    }
    for (const auto &[name, g] : gaugeMap) {
        g->reset();
    }
    for (const auto &[name, h] : histogramMap) {
        h->reset();
    }
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const
{
    MutexLock lock(metricsMu);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counterMap.size());
    for (const auto &[name, c] : counterMap) {
        out.emplace_back(name, c->value());
    }
    return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::gauges() const
{
    MutexLock lock(metricsMu);
    std::vector<std::pair<std::string, std::int64_t>> out;
    out.reserve(gaugeMap.size());
    for (const auto &[name, g] : gaugeMap) {
        out.emplace_back(name, g->value());
    }
    return out;
}

std::vector<std::pair<std::string, const Histogram *>>
MetricsRegistry::histograms() const
{
    MutexLock lock(metricsMu);
    std::vector<std::pair<std::string, const Histogram *>> out;
    out.reserve(histogramMap.size());
    for (const auto &[name, h] : histogramMap) {
        out.emplace_back(name, h.get());
    }
    return out;
}

} // namespace obs
} // namespace edgepc
