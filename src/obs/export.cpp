#include "obs/export.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace edgepc {
namespace obs {

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(kChromeTraceSchema);
    w.key("displayTimeUnit").value("ms");
    w.key("dropped").value(tracer.dropped());
    w.key("traceEvents").beginArray();
    // Metadata ("ph":"M") events first: pin the process lane to the
    // top of the chrome://tracing view and label each named worker
    // thread (the staged pipeline names its stage workers), so the
    // inter-frame overlap reads directly off the lane labels.
    w.beginObject();
    w.key("name").value("process_sort_index");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(0);
    w.key("args").beginObject();
    w.key("sort_index").value(0);
    w.endObject();
    w.endObject();
    for (const auto &[tid, thread_name] : tracer.threadNames()) {
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(1);
        w.key("tid").value(static_cast<std::uint64_t>(tid));
        w.key("args").beginObject();
        w.key("name").value(thread_name);
        w.endObject();
        w.endObject();
    }
    for (const SpanEvent &e : tracer.snapshot()) {
        w.beginObject();
        w.key("name").value(e.name);
        w.key("cat").value(e.category);
        w.key("ph").value("X");
        w.key("pid").value(1);
        w.key("tid").value(static_cast<std::uint64_t>(e.tid));
        w.key("ts").value(static_cast<double>(e.startNs) * 1e-3);
        w.key("dur").value(static_cast<double>(e.durNs) * 1e-3);
        w.key("args").beginObject();
        w.key("depth").value(static_cast<std::uint64_t>(e.depth));
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

void
writeStatsJson(std::ostream &os, const MetricsRegistry &registry)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(kStatsSchema);

    w.key("counters").beginObject();
    for (const auto &[name, value] : registry.counters()) {
        w.key(name).value(value);
    }
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, value] : registry.gauges()) {
        w.key(name).value(value);
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, hist] : registry.histograms()) {
        w.key(name).beginObject();
        w.key("count").value(hist->count());
        w.key("sum").value(hist->sum());
        w.key("buckets").beginArray();
        const auto counts = hist->bucketCounts();
        const auto &bounds = hist->bounds();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            w.beginObject();
            if (i < bounds.size()) {
                w.key("le").value(bounds[i]);
            } else {
                w.key("le").value("+inf");
            }
            w.key("count").value(counts[i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << '\n';
}

Result<void>
writeChromeTraceFile(const std::string &path, const Tracer &tracer)
{
    std::ofstream os(path);
    if (!os) {
        return makeError(ErrorCode::IoError,
                         "writeChromeTraceFile: cannot open '%s'",
                         path.c_str());
    }
    writeChromeTrace(os, tracer);
    if (!os) {
        return makeError(ErrorCode::IoError,
                         "writeChromeTraceFile: write to '%s' failed",
                         path.c_str());
    }
    return {};
}

Result<void>
writeStatsJsonFile(const std::string &path,
                   const MetricsRegistry &registry)
{
    std::ofstream os(path);
    if (!os) {
        return makeError(ErrorCode::IoError,
                         "writeStatsJsonFile: cannot open '%s'",
                         path.c_str());
    }
    writeStatsJson(os, registry);
    if (!os) {
        return makeError(ErrorCode::IoError,
                         "writeStatsJsonFile: write to '%s' failed",
                         path.c_str());
    }
    return {};
}

} // namespace obs
} // namespace edgepc
