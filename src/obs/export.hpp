/**
 * @file
 * Observability exporters:
 *
 *  - writeChromeTrace(): the Chrome trace_event JSON format — load the
 *    file into chrome://tracing (or https://ui.perfetto.dev) to see
 *    the per-thread span timeline of a run.
 *  - writeStatsJson(): a flat, schema-stable snapshot of every
 *    registered counter, gauge and histogram
 *    (schema "edgepc-stats-v1").
 *
 * Both emitters are deterministic given identical inputs (sorted keys,
 * fixed number formatting), which the golden-file tests rely on.
 */

#ifndef EDGEPC_OBS_EXPORT_HPP
#define EDGEPC_OBS_EXPORT_HPP

#include <iosfwd>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {
namespace obs {

/** Chrome trace_event schema marker ("X" complete events, us times). */
inline constexpr const char *kChromeTraceSchema = "edgepc-trace-v1";

/** Stats JSON schema marker. */
inline constexpr const char *kStatsSchema = "edgepc-stats-v1";

/**
 * Write the tracer's retained spans as Chrome trace_event JSON.
 * Events are "ph":"X" complete events with microsecond timestamps,
 * one Chrome "thread" per recording thread, sorted by
 * (tid, start, depth).
 */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/** Write a flat stats snapshot of @p registry as JSON. */
void writeStatsJson(std::ostream &os, const MetricsRegistry &registry);

/** writeChromeTrace() to @p path; IoError result when unwritable. */
[[nodiscard]] Result<void> writeChromeTraceFile(const std::string &path,
                                                const Tracer &tracer);

/** writeStatsJson() to @p path; IoError result when unwritable. */
[[nodiscard]] Result<void>
writeStatsJsonFile(const std::string &path,
                   const MetricsRegistry &registry);

} // namespace obs
} // namespace edgepc

#endif // EDGEPC_OBS_EXPORT_HPP
