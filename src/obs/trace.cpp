#include "obs/trace.hpp"

#include <algorithm>

namespace edgepc {
namespace obs {

namespace {

/** Per-thread scope nesting depth (physical nesting is per thread). */
thread_local std::uint32_t tlsDepth = 0;

/** Single-entry cache: last (tracer id, buffer) pair this thread used. */
struct TlsBufferCache
{
    std::uint64_t owner = 0; // 0 = empty (ids start at 1)
    void *buffer = nullptr;
};
thread_local TlsBufferCache tlsCache;

std::atomic<std::uint64_t> nextTracerId{1};

} // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : epoch(std::chrono::steady_clock::now()),
      cap(std::max<std::size_t>(1, ring_capacity)),
      tracerId(nextTracerId.fetch_add(1, std::memory_order_relaxed))
{
}

Tracer &
Tracer::global()
{
    // Intentionally leaked: worker threads may record spans during
    // static destruction (thread-pool teardown), so the sink must
    // outlive every other static.
    static Tracer *tracer = new Tracer();
    return *tracer;
}

std::uint64_t
Tracer::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

Tracer::ThreadBuffer &
Tracer::bufferForThisThread()
{
    if (tlsCache.owner == tracerId) {
        return *static_cast<ThreadBuffer *>(tlsCache.buffer);
    }
    const std::thread::id self = std::this_thread::get_id();
    MutexLock lock(traceRegistryMu);
    for (const auto &buf : buffers) {
        if (buf->owner == self) {
            tlsCache = {tracerId, buf.get()};
            return *buf;
        }
    }
    auto buf = std::make_unique<ThreadBuffer>();
    buf->ring.resize(cap);
    buf->tid = static_cast<std::uint32_t>(buffers.size());
    buf->owner = self;
    ThreadBuffer &ref = *buf;
    buffers.push_back(std::move(buf));
    tlsCache = {tracerId, &ref};
    return ref;
}

void
Tracer::appendLocked(ThreadBuffer &buf, std::string_view name,
                     std::string_view category, std::uint64_t start_ns,
                     std::uint64_t dur_ns, std::uint32_t tid,
                     std::uint32_t depth)
{
    SpanEvent &slot = buf.ring[buf.writeCount % cap];
    if (buf.writeCount >= cap) {
        droppedCount.fetch_add(1, std::memory_order_relaxed);
    }
    slot.name.assign(name);
    slot.category.assign(category);
    slot.startNs = start_ns;
    slot.durNs = dur_ns;
    slot.tid = tid;
    slot.depth = depth;
    ++buf.writeCount;
}

void
Tracer::record(std::string_view name, std::string_view category,
               std::uint64_t start_ns, std::uint64_t dur_ns,
               std::uint32_t depth)
{
    if (!enabled()) {
        return;
    }
    ThreadBuffer &buf = bufferForThisThread();
    MutexLock lock(buf.ringMu);
    appendLocked(buf, name, category, start_ns, dur_ns, buf.tid, depth);
}

void
Tracer::recordManual(std::string_view name, std::string_view category,
                     std::uint64_t start_ns, std::uint64_t dur_ns,
                     std::uint32_t tid, std::uint32_t depth)
{
    ThreadBuffer &buf = bufferForThisThread();
    MutexLock lock(buf.ringMu);
    appendLocked(buf, name, category, start_ns, dur_ns, tid, depth);
}

void
Tracer::nameCurrentThread(std::string_view thread_name)
{
    ThreadBuffer &buf = bufferForThisThread();
    MutexLock lock(buf.ringMu);
    buf.threadName.assign(thread_name);
}

std::vector<std::pair<std::uint32_t, std::string>>
Tracer::threadNames() const
{
    std::vector<std::pair<std::uint32_t, std::string>> out;
    MutexLock lock(traceRegistryMu);
    for (const auto &buf : buffers) {
        MutexLock bufLock(buf->ringMu);
        if (!buf->threadName.empty()) {
            out.emplace_back(buf->tid, buf->threadName);
        }
    }
    return out;
}

void
Tracer::clear()
{
    MutexLock lock(traceRegistryMu);
    for (const auto &buf : buffers) {
        MutexLock bufLock(buf->ringMu);
        buf->writeCount = 0;
    }
    droppedCount.store(0, std::memory_order_relaxed);
}

std::vector<SpanEvent>
Tracer::snapshot() const
{
    std::vector<SpanEvent> out;
    {
        MutexLock lock(traceRegistryMu);
        for (const auto &buf : buffers) {
            MutexLock bufLock(buf->ringMu);
            const std::uint64_t n = std::min<std::uint64_t>(
                buf->writeCount, static_cast<std::uint64_t>(cap));
            const std::uint64_t first = buf->writeCount - n;
            for (std::uint64_t i = 0; i < n; ++i) {
                out.push_back(buf->ring[(first + i) % cap]);
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.tid != b.tid) {
                      return a.tid < b.tid;
                  }
                  if (a.startNs != b.startNs) {
                      return a.startNs < b.startNs;
                  }
                  return a.depth < b.depth;
              });
    return out;
}

std::map<std::string, double>
Tracer::totalsMs(std::string_view category) const
{
    std::map<std::string, double> totals;
    for (const SpanEvent &e : snapshot()) {
        if (!category.empty() && e.category != category) {
            continue;
        }
        totals[e.name] += static_cast<double>(e.durNs) * 1e-6;
    }
    return totals;
}

#if EDGEPC_TRACING

TraceScope::TraceScope(std::string_view span_name,
                       std::string_view span_category)
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled()) {
        return;
    }
    active = true;
    name.assign(span_name);
    category.assign(span_category);
    depth = tlsDepth++;
    startNs = tracer.nowNs();
}

TraceScope::~TraceScope()
{
    if (!active) {
        return;
    }
    --tlsDepth;
    Tracer &tracer = Tracer::global();
    const std::uint64_t end = tracer.nowNs();
    tracer.record(name, category, startNs,
                  end > startNs ? end - startNs : 0, depth);
}

#endif // EDGEPC_TRACING

} // namespace obs
} // namespace edgepc
