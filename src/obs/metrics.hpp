/**
 * @file
 * Process-wide metrics: counters, gauges and fixed-bucket latency
 * histograms behind a named registry.
 *
 * All metric updates are lock-free atomics, so kernels on the thread
 * pool can bump counters concurrently; only the first lookup of a
 * metric name takes the registry mutex. Hot paths cache the returned
 * reference (metric objects are never deallocated while the registry
 * lives).
 */

#ifndef EDGEPC_OBS_METRICS_HPP
#define EDGEPC_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

namespace edgepc {
namespace obs {

/** Monotonically increasing counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return v.load(std::memory_order_relaxed);
    }

    void reset() { v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v{0};
};

/** Signed instantaneous value (queue depth, cache bytes, ...). */
class Gauge
{
  public:
    void set(std::int64_t value)
    {
        v.store(value, std::memory_order_relaxed);
    }

    void add(std::int64_t delta)
    {
        v.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return v.load(std::memory_order_relaxed);
    }

    void reset() { v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v{0};
};

/**
 * Fixed-bucket histogram: bucket i counts observations <= bounds[i],
 * with one implicit overflow bucket at the end (the "+inf" bucket of
 * the stats JSON). Bounds are fixed at construction; observations are
 * lock-free.
 */
class Histogram
{
  public:
    /**
     * @param upper_bounds Strictly increasing bucket upper bounds.
     *        Raises InvalidArgument when empty or unsorted.
     */
    explicit Histogram(std::span<const double> upper_bounds);

    /** Record one observation. */
    void observe(double value);

    /** Bucket upper bounds (without the implicit +inf bucket). */
    const std::vector<double> &bounds() const { return ub; }

    /** Per-bucket counts; size bounds().size() + 1 (last = +inf). */
    std::vector<std::uint64_t> bucketCounts() const;

    /** Total observations. */
    std::uint64_t count() const
    {
        return n.load(std::memory_order_relaxed);
    }

    /** Sum of all observed values. */
    double sum() const;

    void reset();

    /**
     * The default latency bucket ladder in milliseconds:
     * 0.01, 0.1, 0.5, 1, 5, 10, 50, 100, 1000 (+inf implicit).
     */
    static std::span<const double> defaultLatencyBoundsMs();

  private:
    std::vector<double> ub;
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> n{0};
    /** Bit pattern of the double sum (CAS-add; pre-C++20-atomic-double
        portable). */
    std::atomic<std::uint64_t> sumBits{0};
};

/**
 * Name -> metric registry. Lookup creates on first use; the returned
 * references stay valid for the registry's lifetime.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry the library kernels report into. */
    static MetricsRegistry &global();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);

    /**
     * Histogram lookup. @p upper_bounds applies only on first
     * creation (empty picks defaultLatencyBoundsMs()); later lookups
     * return the existing histogram regardless of bounds.
     */
    Histogram &histogram(std::string_view name,
                         std::span<const double> upper_bounds = {});

    /** Zero every registered metric (registration survives). */
    void reset();

    /** Sorted (name, value) snapshot of all counters. */
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;

    /** Sorted (name, value) snapshot of all gauges. */
    std::vector<std::pair<std::string, std::int64_t>> gauges() const;

    /** Sorted (name, histogram*) snapshot of all histograms. */
    std::vector<std::pair<std::string, const Histogram *>>
    histograms() const;

  private:
    // EDGEPC_LOCK_RANK(10): metric-registration lock — global leaf
    // lock (metric updates themselves are lock-free atomics); safe to
    // take under any other lock in the repo, never the reverse.
    mutable Mutex metricsMu;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counterMap EDGEPC_GUARDED_BY(metricsMu);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gaugeMap
        EDGEPC_GUARDED_BY(metricsMu);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histogramMap EDGEPC_GUARDED_BY(metricsMu);
};

} // namespace obs
} // namespace edgepc

#endif // EDGEPC_OBS_METRICS_HPP
