#include "obs/json.hpp"

#include <cinttypes>
#include <cstdio>

namespace edgepc {
namespace obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

JsonWriter::JsonWriter(std::ostream &os) : out(os) {}

void
JsonWriter::separator()
{
    if (pendingKey) {
        pendingKey = false;
        return;
    }
    if (!hasSibling.empty()) {
        if (hasSibling.back()) {
            out << ',';
        }
        hasSibling.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out << '{';
    hasSibling.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (hasSibling.empty()) {
        broken = true;
        return *this;
    }
    hasSibling.pop_back();
    out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    out << '[';
    hasSibling.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (hasSibling.empty()) {
        broken = true;
        return *this;
    }
    hasSibling.pop_back();
    out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    separator();
    out << '"' << jsonEscape(k) << "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    separator();
    out << '"' << jsonEscape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string_view(s));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    out << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separator();
    out << "null";
    return *this;
}

} // namespace obs
} // namespace edgepc
