/**
 * @file
 * Training driver: (re)trains a point-cloud CNN with a chosen
 * EdgePcConfig active inside the training loop.
 *
 * This is the mechanism of Sec 5.3 of the paper: the Morton-code
 * approximations produce sub-optimal samples and false neighbors, so
 * pretrained weights lose accuracy; retraining with the approximations
 * in the loop recovers it (Fig 14a). Training with the baseline config
 * yields the reference models.
 */

#ifndef EDGEPC_TRAIN_TRAINER_HPP
#define EDGEPC_TRAIN_TRAINER_HPP

#include "datasets/dataset.hpp"
#include "models/model.hpp"
#include "train/metrics.hpp"

namespace edgepc {

/** Training hyper-parameters. */
struct TrainOptions
{
    int epochs = 10;
    float learningRate = 0.02f;
    float momentum = 0.9f;
    float weightDecay = 1e-4f;
    /** Multiplied into the learning rate after every epoch. */
    float lrDecay = 0.9f;
    /** Clouds per optimizer step. */
    std::size_t batchSize = 8;
    /** Log per-epoch progress. */
    bool verbose = false;
};

/** Outcome of a training run. */
struct TrainResult
{
    std::vector<double> epochLoss;
    double finalTrainAccuracy = 0.0;
};

/** Outcome of an evaluation pass. */
struct EvalResult
{
    double accuracy = 0.0;
    double meanIou = 0.0;
};

/** Trains and evaluates TrainableModels. */
class Trainer
{
  public:
    explicit Trainer(TrainOptions options = {});

    /**
     * Train a whole-cloud classifier: the model must emit a single
     * logit row per cloud; labels come from LabeledCloud::classLabel.
     *
     * @param model Model to optimize.
     * @param data Training split.
     * @param cfg Pipeline config active during training (baseline or
     *        the approximations being retrained for).
     */
    TrainResult trainClassifier(TrainableModel &model, const Dataset &data,
                                const EdgePcConfig &cfg);

    /**
     * Train a per-point segmentation model: the model must emit one
     * logit row per point; labels come from the clouds' point labels.
     */
    TrainResult trainSegmentation(TrainableModel &model,
                                  const Dataset &data,
                                  const EdgePcConfig &cfg);

    /** Evaluate a classifier on @p data. */
    EvalResult evaluateClassifier(PointCloudModel &model,
                                  const Dataset &data,
                                  const EdgePcConfig &cfg);

    /** Evaluate a segmentation model on @p data. */
    EvalResult evaluateSegmentation(PointCloudModel &model,
                                    const Dataset &data,
                                    const EdgePcConfig &cfg);

    const TrainOptions &options() const { return opts; }

  private:
    TrainResult trainImpl(TrainableModel &model, const Dataset &data,
                          const EdgePcConfig &cfg, bool segmentation);

    TrainOptions opts;
};

} // namespace edgepc

#endif // EDGEPC_TRAIN_TRAINER_HPP
