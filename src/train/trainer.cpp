#include "train/trainer.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace edgepc {

Trainer::Trainer(TrainOptions options) : opts(options) {}

namespace {

/** Mean-normalize accumulated gradients over the batch. */
void
averageGradients(const std::vector<nn::Parameter *> &params,
                 std::size_t batch)
{
    if (batch <= 1) {
        return;
    }
    const float inv = 1.0f / static_cast<float>(batch);
    for (nn::Parameter *p : params) {
        p->grad.scale(inv);
    }
}

} // namespace

TrainResult
Trainer::trainImpl(TrainableModel &model, const Dataset &data,
                   const EdgePcConfig &cfg, bool segmentation)
{
    if (data.items.empty()) {
        fatal("Trainer: empty training dataset");
    }

    std::vector<nn::Parameter *> params;
    model.collectParameters(params);
    nn::SgdOptimizer optimizer(params, opts.learningRate, opts.momentum,
                               opts.weightDecay);

    TrainResult result;
    Dataset shuffled = data;

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        shuffled.shuffle(static_cast<std::uint64_t>(epoch) * 7919 + 3);
        double epoch_loss = 0.0;
        std::size_t loss_terms = 0;
        ConfusionMatrix confusion(model.numClasses());

        optimizer.zeroGrad();
        std::size_t in_batch = 0;
        for (const LabeledCloud &item : shuffled.items) {
            const nn::Matrix logits =
                model.forward(item.cloud, cfg, nullptr, true);

            std::vector<std::int32_t> labels;
            if (segmentation) {
                labels.assign(item.cloud.labels().begin(),
                              item.cloud.labels().end());
            } else {
                labels.assign(1, item.classLabel);
            }

            const nn::LossResult loss =
                nn::softmaxCrossEntropy(logits, labels);
            epoch_loss += loss.loss;
            ++loss_terms;

            const auto predictions = nn::argmaxRows(logits);
            confusion.record(labels, predictions);

            model.backward(loss.gradLogits);
            if (++in_batch >= opts.batchSize) {
                averageGradients(params, in_batch);
                optimizer.step();
                optimizer.zeroGrad();
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            averageGradients(params, in_batch);
            optimizer.step();
            optimizer.zeroGrad();
        }

        const double mean_loss =
            loss_terms ? epoch_loss / static_cast<double>(loss_terms)
                       : 0.0;
        result.epochLoss.push_back(mean_loss);
        result.finalTrainAccuracy = confusion.accuracy();
        if (opts.verbose) {
            inform("epoch %d/%d: loss %.4f train-acc %.3f", epoch + 1,
                   opts.epochs, mean_loss, confusion.accuracy());
        }
        optimizer.setLearningRate(optimizer.learningRate() *
                                  opts.lrDecay);
    }
    return result;
}

TrainResult
Trainer::trainClassifier(TrainableModel &model, const Dataset &data,
                         const EdgePcConfig &cfg)
{
    return trainImpl(model, data, cfg, false);
}

TrainResult
Trainer::trainSegmentation(TrainableModel &model, const Dataset &data,
                           const EdgePcConfig &cfg)
{
    return trainImpl(model, data, cfg, true);
}

EvalResult
Trainer::evaluateClassifier(PointCloudModel &model, const Dataset &data,
                            const EdgePcConfig &cfg)
{
    ConfusionMatrix confusion(model.numClasses());
    for (const LabeledCloud &item : data.items) {
        const nn::Matrix logits = model.infer(item.cloud, cfg);
        const auto predictions = nn::argmaxRows(logits);
        confusion.record(item.classLabel, predictions.at(0));
    }
    return {confusion.accuracy(), confusion.meanIou()};
}

EvalResult
Trainer::evaluateSegmentation(PointCloudModel &model, const Dataset &data,
                              const EdgePcConfig &cfg)
{
    ConfusionMatrix confusion(model.numClasses());
    for (const LabeledCloud &item : data.items) {
        const nn::Matrix logits = model.infer(item.cloud, cfg);
        const auto predictions = nn::argmaxRows(logits);
        confusion.record(item.cloud.labels(), predictions);
    }
    return {confusion.accuracy(), confusion.meanIou()};
}

} // namespace edgepc
