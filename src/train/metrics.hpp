/**
 * @file
 * Evaluation metrics for classification and segmentation tasks:
 * overall accuracy and mean intersection-over-union.
 */

#ifndef EDGEPC_TRAIN_METRICS_HPP
#define EDGEPC_TRAIN_METRICS_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace edgepc {

/** Incrementally accumulated confusion matrix. */
class ConfusionMatrix
{
  public:
    explicit ConfusionMatrix(std::size_t num_classes);

    /** Record a (truth, prediction) pair; negatives are ignored. */
    void record(std::int32_t truth, std::int32_t prediction);

    /** Record aligned label/prediction arrays. */
    void record(std::span<const std::int32_t> truth,
                std::span<const std::int32_t> predictions);

    /** Overall accuracy (trace over total). */
    double accuracy() const;

    /** IoU of one class (0 when the class never appears). */
    double iou(std::size_t cls) const;

    /** Mean IoU over the classes that appear in truth or prediction. */
    double meanIou() const;

    /** Total recorded pairs. */
    std::size_t total() const { return count; }

    std::size_t numClasses() const { return classes; }

  private:
    std::size_t classes;
    std::size_t count = 0;
    std::vector<std::uint64_t> cells; ///< classes x classes, row=truth.
};

} // namespace edgepc

#endif // EDGEPC_TRAIN_METRICS_HPP
