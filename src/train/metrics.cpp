#include "train/metrics.hpp"

#include "common/logging.hpp"

namespace edgepc {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes(num_classes), cells(num_classes * num_classes, 0)
{
    if (num_classes == 0) {
        fatal("ConfusionMatrix: num_classes must be > 0");
    }
}

void
ConfusionMatrix::record(std::int32_t truth, std::int32_t prediction)
{
    if (truth < 0 || prediction < 0) {
        return;
    }
    const auto t = static_cast<std::size_t>(truth);
    const auto p = static_cast<std::size_t>(prediction);
    if (t >= classes || p >= classes) {
        fatal("ConfusionMatrix::record: class out of range (%d, %d)",
              truth, prediction);
    }
    ++cells[t * classes + p];
    ++count;
}

void
ConfusionMatrix::record(std::span<const std::int32_t> truth,
                        std::span<const std::int32_t> predictions)
{
    if (truth.size() != predictions.size()) {
        fatal("ConfusionMatrix::record: size mismatch (%zu vs %zu)",
              truth.size(), predictions.size());
    }
    for (std::size_t i = 0; i < truth.size(); ++i) {
        record(truth[i], predictions[i]);
    }
}

double
ConfusionMatrix::accuracy() const
{
    if (count == 0) {
        return 0.0;
    }
    std::uint64_t hits = 0;
    for (std::size_t c = 0; c < classes; ++c) {
        hits += cells[c * classes + c];
    }
    return static_cast<double>(hits) / static_cast<double>(count);
}

double
ConfusionMatrix::iou(std::size_t cls) const
{
    std::uint64_t tp = cells[cls * classes + cls];
    std::uint64_t fp = 0, fn = 0;
    for (std::size_t other = 0; other < classes; ++other) {
        if (other != cls) {
            fp += cells[other * classes + cls];
            fn += cells[cls * classes + other];
        }
    }
    const std::uint64_t denom = tp + fp + fn;
    return denom == 0
               ? 0.0
               : static_cast<double>(tp) / static_cast<double>(denom);
}

double
ConfusionMatrix::meanIou() const
{
    double sum = 0.0;
    std::size_t present = 0;
    for (std::size_t c = 0; c < classes; ++c) {
        std::uint64_t appearances = 0;
        for (std::size_t other = 0; other < classes; ++other) {
            appearances += cells[c * classes + other];
            appearances += cells[other * classes + c];
        }
        if (appearances > 0) {
            sum += iou(c);
            ++present;
        }
    }
    return present == 0 ? 0.0 : sum / static_cast<double>(present);
}

} // namespace edgepc
