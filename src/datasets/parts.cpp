#include "datasets/parts.hpp"

#include <cmath>
#include <functional>

#include "common/logging.hpp"

namespace edgepc {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/** Point on a cylinder side of the given radius/extent around axis z. */
Vec3
cylinderSide(Rng &rng, float radius, float z_lo, float z_hi)
{
    const float phi = rng.uniform(0.0f, 2.0f * kPi);
    return {radius * std::cos(phi), radius * std::sin(phi),
            rng.uniform(z_lo, z_hi)};
}

/** Point on a horizontal disk. */
Vec3
disk(Rng &rng, float radius, float z)
{
    const float r = radius * std::sqrt(rng.nextFloat());
    const float phi = rng.uniform(0.0f, 2.0f * kPi);
    return {r * std::cos(phi), r * std::sin(phi), z};
}

/** Point on an axis-aligned box surface. */
Vec3
boxSurface(Rng &rng, const Vec3 &center, const Vec3 &half)
{
    const auto face = static_cast<int>(rng.nextBelow(6));
    float u = rng.uniform(-1.0f, 1.0f);
    float v = rng.uniform(-1.0f, 1.0f);
    Vec3 p;
    switch (face) {
      case 0:
        p = {1.0f, u, v};
        break;
      case 1:
        p = {-1.0f, u, v};
        break;
      case 2:
        p = {u, 1.0f, v};
        break;
      case 3:
        p = {u, -1.0f, v};
        break;
      case 4:
        p = {u, v, 1.0f};
        break;
      default:
        p = {u, v, -1.0f};
        break;
    }
    return {center.x + p.x * half.x, center.y + p.y * half.y,
            center.z + p.z * half.z};
}

/** Append @p count points of a part, jittered, with the given label. */
void
appendPart(std::vector<Vec3> &points, std::vector<std::int32_t> &labels,
           std::size_t count, std::int32_t label, float noise, Rng &rng,
           const std::function<Vec3(Rng &)> &sample)
{
    for (std::size_t i = 0; i < count; ++i) {
        Vec3 p = sample(rng);
        if (noise > 0.0f) {
            p += Vec3{rng.normal(0.0f, noise), rng.normal(0.0f, noise),
                      rng.normal(0.0f, noise)};
        }
        points.push_back(p);
        labels.push_back(label);
    }
}

} // namespace

PointCloud
makePartObject(PartCategory category, const PartOptions &options, Rng &rng)
{
    std::vector<Vec3> points;
    std::vector<std::int32_t> labels;
    points.reserve(options.points);
    labels.reserve(options.points);
    const std::size_t n = options.points;
    const float noise = options.noise;

    switch (category) {
      case PartCategory::Rocket: {
        // Nose cone (label 0): z in [0.6, 1.0].
        appendPart(points, labels, n / 5, 0, noise, rng, [](Rng &r) {
            const float t = r.nextFloat();
            const float radius = 0.25f * (1.0f - t);
            const float phi = r.uniform(0.0f, 2.0f * kPi);
            return Vec3{radius * std::cos(phi), radius * std::sin(phi),
                        0.6f + 0.4f * t};
        });
        // Body (label 1): cylinder z in [-0.6, 0.6].
        appendPart(points, labels, 3 * n / 5, 1, noise, rng,
                   [](Rng &r) {
                       return cylinderSide(r, 0.25f, -0.6f, 0.6f);
                   });
        // Fins (label 2): three flat quads near the tail.
        appendPart(points, labels, n - points.size(), 2, noise, rng,
                   [](Rng &r) {
                       const auto fin = static_cast<int>(r.nextBelow(3));
                       const float angle =
                           2.0f * kPi * static_cast<float>(fin) / 3.0f;
                       const float radial = r.uniform(0.25f, 0.6f);
                       const float z = r.uniform(-0.9f, -0.5f);
                       return Vec3{radial * std::cos(angle),
                                   radial * std::sin(angle), z};
                   });
        break;
      }
      case PartCategory::Table: {
        // Top (label 3): slab surface.
        appendPart(points, labels, n / 2, 3, noise, rng, [](Rng &r) {
            return boxSurface(r, {0.0f, 0.0f, 0.5f},
                              {0.8f, 0.5f, 0.05f});
        });
        // Legs (label 4): four thin boxes.
        appendPart(points, labels, n - points.size(), 4, noise, rng,
                   [](Rng &r) {
                       const auto leg = static_cast<int>(r.nextBelow(4));
                       const float sx = (leg & 1) ? 0.7f : -0.7f;
                       const float sy = (leg & 2) ? 0.4f : -0.4f;
                       return boxSurface(r, {sx, sy, 0.0f},
                                         {0.05f, 0.05f, 0.45f});
                   });
        break;
      }
      case PartCategory::Lamp: {
        // Base (label 5): disk + rim.
        appendPart(points, labels, n / 4, 5, noise, rng, [](Rng &r) {
            if (r.nextFloat() < 0.7f) {
                return disk(r, 0.4f, -1.0f);
            }
            return cylinderSide(r, 0.4f, -1.0f, -0.92f);
        });
        // Pole (label 6): thin cylinder.
        appendPart(points, labels, n / 4, 6, noise, rng, [](Rng &r) {
            return cylinderSide(r, 0.05f, -0.92f, 0.4f);
        });
        // Shade (label 7): truncated cone.
        appendPart(points, labels, n - points.size(), 7, noise, rng,
                   [](Rng &r) {
                       const float t = r.nextFloat();
                       const float radius = 0.2f + 0.3f * (1.0f - t);
                       const float phi = r.uniform(0.0f, 2.0f * kPi);
                       return Vec3{radius * std::cos(phi),
                                   radius * std::sin(phi),
                                   0.4f + 0.5f * t};
                   });
        break;
      }
      case PartCategory::Count:
        // NOLINTNEXTLINE(edgepc-R1): unreachable enum guard
        fatal("makePartObject: invalid category");
    }

    PointCloud cloud(std::move(points));
    cloud.setLabels(std::move(labels));
    cloud.normalizeToUnitSphere();
    return cloud;
}

Dataset
makePartDataset(std::size_t per_category, const PartOptions &options,
                std::uint64_t seed)
{
    Rng rng(seed);
    Dataset dataset;
    dataset.name = "synthetic-parts";
    dataset.numClasses = kNumPartLabels;
    const auto categories =
        static_cast<std::size_t>(PartCategory::Count);
    for (std::size_t c = 0; c < categories; ++c) {
        for (std::size_t i = 0; i < per_category; ++i) {
            LabeledCloud item;
            item.cloud = makePartObject(static_cast<PartCategory>(c),
                                        options, rng);
            item.classLabel = static_cast<std::int32_t>(c);
            dataset.items.push_back(std::move(item));
        }
    }
    dataset.shuffle(seed ^ 0x5eed);
    return dataset;
}

} // namespace edgepc
