#include "datasets/shapes.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace edgepc {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/** Uniform point on the unit sphere. */
Vec3
sampleSphere(Rng &rng)
{
    const float z = rng.uniform(-1.0f, 1.0f);
    const float phi = rng.uniform(0.0f, 2.0f * kPi);
    const float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
}

/** Uniform point on the surface of the unit cube [-1,1]^3. */
Vec3
sampleCube(Rng &rng)
{
    const auto face = static_cast<int>(rng.nextBelow(6));
    const float u = rng.uniform(-1.0f, 1.0f);
    const float v = rng.uniform(-1.0f, 1.0f);
    switch (face) {
      case 0:
        return {1.0f, u, v};
      case 1:
        return {-1.0f, u, v};
      case 2:
        return {u, 1.0f, v};
      case 3:
        return {u, -1.0f, v};
      case 4:
        return {u, v, 1.0f};
      default:
        return {u, v, -1.0f};
    }
}

/** Point on a torus with major radius 1, minor radius 0.35. */
Vec3
sampleTorus(Rng &rng)
{
    const float major = 1.0f;
    const float minor = 0.35f;
    const float u = rng.uniform(0.0f, 2.0f * kPi);
    const float v = rng.uniform(0.0f, 2.0f * kPi);
    const float ring = major + minor * std::cos(v);
    return {ring * std::cos(u), ring * std::sin(u),
            minor * std::sin(v)};
}

/** Point on a cone: apex at (0,0,1), unit base circle at z=-1. */
Vec3
sampleCone(Rng &rng)
{
    if (rng.nextFloat() < 0.25f) {
        // Base disk.
        const float r = std::sqrt(rng.nextFloat());
        const float phi = rng.uniform(0.0f, 2.0f * kPi);
        return {r * std::cos(phi), r * std::sin(phi), -1.0f};
    }
    // Lateral surface: radius shrinks linearly toward the apex; area
    // element is proportional to the radius, hence sqrt sampling.
    const float t = std::sqrt(rng.nextFloat()); // 0 apex .. 1 base
    const float radius = t;
    const float phi = rng.uniform(0.0f, 2.0f * kPi);
    return {radius * std::cos(phi), radius * std::sin(phi),
            1.0f - 2.0f * t};
}

/** Point on a cylinder of radius 0.6 spanning z in [-1, 1]. */
Vec3
sampleCylinder(Rng &rng)
{
    const float radius = 0.6f;
    const float side_area = 2.0f * kPi * radius * 2.0f;
    const float cap_area = kPi * radius * radius;
    const float total = side_area + 2.0f * cap_area;
    const float pick = rng.nextFloat() * total;
    if (pick < side_area) {
        const float phi = rng.uniform(0.0f, 2.0f * kPi);
        return {radius * std::cos(phi), radius * std::sin(phi),
                rng.uniform(-1.0f, 1.0f)};
    }
    const float r = radius * std::sqrt(rng.nextFloat());
    const float phi = rng.uniform(0.0f, 2.0f * kPi);
    const float z = pick < side_area + cap_area ? 1.0f : -1.0f;
    return {r * std::cos(phi), r * std::sin(phi), z};
}

/** Two unit squares intersecting at right angles. */
Vec3
samplePlaneCross(Rng &rng)
{
    const float u = rng.uniform(-1.0f, 1.0f);
    const float v = rng.uniform(-1.0f, 1.0f);
    if (rng.nextFloat() < 0.5f) {
        return {u, 0.0f, v};
    }
    return {0.0f, u, v};
}

/** Tube of radius 0.15 wound around a vertical helix. */
Vec3
sampleHelix(Rng &rng)
{
    const float turns = 2.5f;
    const float t = rng.nextFloat();
    const float angle = t * turns * 2.0f * kPi;
    const Vec3 center{0.7f * std::cos(angle), 0.7f * std::sin(angle),
                      2.0f * t - 1.0f};
    // Random offset on the tube circle (approximate frame).
    const float phi = rng.uniform(0.0f, 2.0f * kPi);
    const Vec3 radial{std::cos(angle), std::sin(angle), 0.0f};
    const Vec3 axis{0.0f, 0.0f, 1.0f};
    const Vec3 offset =
        radial * (0.15f * std::cos(phi)) + axis * (0.15f * std::sin(phi));
    return center + offset;
}

/** Cylinder of radius 0.5 with hemispherical end caps. */
Vec3
sampleCapsule(Rng &rng)
{
    const float radius = 0.5f;
    const float body_half = 0.6f;
    const float side_area = 2.0f * kPi * radius * 2.0f * body_half;
    const float cap_area = 2.0f * kPi * radius * radius;
    const float total = side_area + 2.0f * cap_area;
    const float pick = rng.nextFloat() * total;
    if (pick < side_area) {
        const float phi = rng.uniform(0.0f, 2.0f * kPi);
        return {radius * std::cos(phi), radius * std::sin(phi),
                rng.uniform(-body_half, body_half)};
    }
    const bool top = pick < side_area + cap_area;
    Vec3 p = sampleSphere(rng) * radius;
    if (top) {
        p.z = std::abs(p.z) + body_half;
    } else {
        p.z = -std::abs(p.z) - body_half;
    }
    return p;
}

/** Random rotation about the z axis. */
void
applyZRotation(std::vector<Vec3> &points, Rng &rng)
{
    const float angle = rng.uniform(0.0f, 2.0f * kPi);
    const float c = std::cos(angle);
    const float s = std::sin(angle);
    for (Vec3 &p : points) {
        p = Vec3{c * p.x - s * p.y, s * p.x + c * p.y, p.z};
    }
}

/** Random rotation matrix application (uniform over SO(3), via two
 *  random axes Gram-Schmidt). */
void
applyRandomRotation(std::vector<Vec3> &points, Rng &rng)
{
    Vec3 a = sampleSphere(rng);
    Vec3 b = sampleSphere(rng);
    b = (b - a * a.dot(b)).normalized();
    if (b.squaredNorm() < 1e-6f) {
        b = Vec3{-a.y, a.x, 0.0f}.normalized();
    }
    const Vec3 c = a.cross(b);
    for (Vec3 &p : points) {
        p = Vec3{p.dot(a), p.dot(b), p.dot(c)};
    }
}

} // namespace

const char *
shapeClassName(ShapeClass shape)
{
    switch (shape) {
      case ShapeClass::Sphere:
        return "sphere";
      case ShapeClass::Cube:
        return "cube";
      case ShapeClass::Torus:
        return "torus";
      case ShapeClass::Cone:
        return "cone";
      case ShapeClass::Cylinder:
        return "cylinder";
      case ShapeClass::PlaneCross:
        return "plane-cross";
      case ShapeClass::Helix:
        return "helix";
      case ShapeClass::Capsule:
        return "capsule";
      case ShapeClass::Count:
        break;
    }
    return "?";
}

PointCloud
makeShape(ShapeClass shape, const ShapeOptions &options, Rng &rng)
{
    std::vector<Vec3> points;
    points.reserve(options.points);
    for (std::size_t i = 0; i < options.points; ++i) {
        Vec3 p;
        switch (shape) {
          case ShapeClass::Sphere:
            p = sampleSphere(rng);
            break;
          case ShapeClass::Cube:
            p = sampleCube(rng);
            break;
          case ShapeClass::Torus:
            p = sampleTorus(rng);
            break;
          case ShapeClass::Cone:
            p = sampleCone(rng);
            break;
          case ShapeClass::Cylinder:
            p = sampleCylinder(rng);
            break;
          case ShapeClass::PlaneCross:
            p = samplePlaneCross(rng);
            break;
          case ShapeClass::Helix:
            p = sampleHelix(rng);
            break;
          case ShapeClass::Capsule:
            p = sampleCapsule(rng);
            break;
          case ShapeClass::Count:
            // NOLINTNEXTLINE(edgepc-R1): unreachable enum guard
            fatal("makeShape: invalid shape class");
        }
        if (options.noise > 0.0f) {
            p += Vec3{rng.normal(0.0f, options.noise),
                      rng.normal(0.0f, options.noise),
                      rng.normal(0.0f, options.noise)};
        }
        points.push_back(p);
    }
    const ShapeAugmentation augmentation =
        options.randomRotation ? options.augmentation
                               : ShapeAugmentation::None;
    switch (augmentation) {
      case ShapeAugmentation::None:
        break;
      case ShapeAugmentation::RotateZ:
        applyZRotation(points, rng);
        break;
      case ShapeAugmentation::RotateSO3:
        applyRandomRotation(points, rng);
        break;
    }
    PointCloud cloud(std::move(points));
    cloud.normalizeToUnitSphere();
    return cloud;
}

Dataset
makeShapeDataset(std::size_t per_class, const ShapeOptions &options,
                 std::uint64_t seed)
{
    Rng rng(seed);
    Dataset dataset;
    dataset.name = "synthetic-shapes";
    dataset.numClasses = static_cast<std::size_t>(ShapeClass::Count);
    for (std::size_t cls = 0; cls < dataset.numClasses; ++cls) {
        for (std::size_t i = 0; i < per_class; ++i) {
            LabeledCloud item;
            item.cloud = makeShape(static_cast<ShapeClass>(cls), options,
                                   rng);
            item.classLabel = static_cast<std::int32_t>(cls);
            dataset.items.push_back(std::move(item));
        }
    }
    dataset.shuffle(seed ^ 0xabcdef);
    return dataset;
}

} // namespace edgepc
