/**
 * @file
 * SyntheticScenes: indoor-room scans with per-point semantic labels,
 * standing in for S3DIS and ScanNet (see DESIGN.md). Rooms contain a
 * floor, walls, tables, chairs and clutter; the surface-based sampling
 * produces the highly non-uniform point densities that make farthest
 * point sampling matter on real scans.
 */

#ifndef EDGEPC_DATASETS_SCENES_HPP
#define EDGEPC_DATASETS_SCENES_HPP

#include "common/rng.hpp"
#include "datasets/dataset.hpp"

namespace edgepc {

/** Semantic classes of the scene dataset. */
enum class SceneClass : std::int32_t
{
    Floor = 0,
    Wall,
    Table,
    Chair,
    Clutter,
    Count,
};

/** Name of a scene class. */
const char *sceneClassName(SceneClass cls);

/** Options for the scene generator. */
struct SceneOptions
{
    /** Points per scene (paper: 4096 for S3DIS, 8192 for ScanNet). */
    std::size_t points = 4096;

    /** Room extent range in meters. */
    float minRoomSize = 3.0f;
    float maxRoomSize = 6.0f;

    /** Furniture count ranges. */
    int minTables = 1;
    int maxTables = 3;
    int minChairs = 1;
    int maxChairs = 4;
    int minClutter = 2;
    int maxClutter = 6;

    /** Sensor noise. */
    float noise = 0.005f;
};

/** Generate one labeled room scan. */
PointCloud makeScene(const SceneOptions &options, Rng &rng);

/** Generate a semantic-segmentation dataset of @p scenes rooms. */
Dataset makeSceneDataset(std::size_t scenes, const SceneOptions &options,
                         std::uint64_t seed = 17);

} // namespace edgepc

#endif // EDGEPC_DATASETS_SCENES_HPP
