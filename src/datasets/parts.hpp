/**
 * @file
 * SyntheticParts: objects with per-point part labels, standing in for
 * the ShapeNet part-segmentation benchmark (see DESIGN.md). Each
 * object category is assembled from primitive parts; the task is to
 * label every point with its part id.
 */

#ifndef EDGEPC_DATASETS_PARTS_HPP
#define EDGEPC_DATASETS_PARTS_HPP

#include "common/rng.hpp"
#include "datasets/dataset.hpp"

namespace edgepc {

/** Object categories of the part dataset. */
enum class PartCategory : std::int32_t
{
    Rocket = 0, ///< nose (0), body (1), fins (2).
    Table,      ///< top (3), legs (4).
    Lamp,       ///< base (5), pole (6), shade (7).
    Count,
};

/** Total number of distinct part labels across categories. */
constexpr std::size_t kNumPartLabels = 8;

/** Options for the part-segmentation generator. */
struct PartOptions
{
    /** Points per cloud (paper: 2048 for ShapeNet). */
    std::size_t points = 2048;

    /** Gaussian surface jitter. */
    float noise = 0.01f;
};

/** Sample one part-labeled object of the given category. */
PointCloud makePartObject(PartCategory category,
                          const PartOptions &options, Rng &rng);

/** Generate a part-segmentation dataset. */
Dataset makePartDataset(std::size_t per_category,
                        const PartOptions &options,
                        std::uint64_t seed = 13);

} // namespace edgepc

#endif // EDGEPC_DATASETS_PARTS_HPP
