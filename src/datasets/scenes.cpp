#include "datasets/scenes.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace edgepc {

namespace {

/** A labeled rectangular surface patch with an area-based weight. */
struct Patch
{
    Vec3 origin; ///< Corner.
    Vec3 edge_u; ///< First edge vector.
    Vec3 edge_v; ///< Second edge vector.
    std::int32_t label;
    float weight; ///< Sampling weight (area x density factor).
};

float
patchArea(const Patch &p)
{
    return p.edge_u.cross(p.edge_v).norm();
}

/** Add the five faces of an upright box (no bottom). */
void
addBox(std::vector<Patch> &patches, const Vec3 &lo, const Vec3 &hi,
       std::int32_t label, float density)
{
    const Vec3 dx{hi.x - lo.x, 0.0f, 0.0f};
    const Vec3 dy{0.0f, hi.y - lo.y, 0.0f};
    const Vec3 dz{0.0f, 0.0f, hi.z - lo.z};
    const Patch faces[] = {
        {{lo.x, lo.y, hi.z}, dx, dy, label, 0.0f},           // top
        {{lo.x, lo.y, lo.z}, dx, dz, label, 0.0f},           // front
        {{lo.x, hi.y, lo.z}, dx, dz, label, 0.0f},           // back
        {{lo.x, lo.y, lo.z}, dy, dz, label, 0.0f},           // left
        {{hi.x, lo.y, lo.z}, dy, dz, label, 0.0f},           // right
    };
    for (Patch face : faces) {
        face.weight = patchArea(face) * density;
        patches.push_back(face);
    }
}

} // namespace

const char *
sceneClassName(SceneClass cls)
{
    switch (cls) {
      case SceneClass::Floor:
        return "floor";
      case SceneClass::Wall:
        return "wall";
      case SceneClass::Table:
        return "table";
      case SceneClass::Chair:
        return "chair";
      case SceneClass::Clutter:
        return "clutter";
      case SceneClass::Count:
        break;
    }
    return "?";
}

PointCloud
makeScene(const SceneOptions &options, Rng &rng)
{
    const float width =
        rng.uniform(options.minRoomSize, options.maxRoomSize);
    const float depth =
        rng.uniform(options.minRoomSize, options.maxRoomSize);
    const float height = rng.uniform(2.4f, 3.2f);

    std::vector<Patch> patches;

    // Floor (scanned densely — the sensor is close to it).
    patches.push_back({{0, 0, 0},
                       {width, 0, 0},
                       {0, depth, 0},
                       static_cast<std::int32_t>(SceneClass::Floor),
                       0.0f});
    patches.back().weight = patchArea(patches.back()) * 1.0f;

    // Walls (sparser: grazing scan angles).
    const Patch walls[] = {
        {{0, 0, 0}, {width, 0, 0}, {0, 0, height},
         static_cast<std::int32_t>(SceneClass::Wall), 0.0f},
        {{0, depth, 0}, {width, 0, 0}, {0, 0, height},
         static_cast<std::int32_t>(SceneClass::Wall), 0.0f},
        {{0, 0, 0}, {0, depth, 0}, {0, 0, height},
         static_cast<std::int32_t>(SceneClass::Wall), 0.0f},
        {{width, 0, 0}, {0, depth, 0}, {0, 0, height},
         static_cast<std::int32_t>(SceneClass::Wall), 0.0f},
    };
    for (Patch wall : walls) {
        wall.weight = patchArea(wall) * 0.4f;
        patches.push_back(wall);
    }

    auto rand_between = [&rng](int lo, int hi) {
        return lo + static_cast<int>(
                        rng.nextBelow(static_cast<std::uint64_t>(
                            hi - lo + 1)));
    };

    // Tables: boxes ~0.7 m high (objects scan dense — close range).
    const int tables = rand_between(options.minTables, options.maxTables);
    for (int t = 0; t < tables; ++t) {
        const float tw = rng.uniform(0.8f, 1.6f);
        const float td = rng.uniform(0.6f, 1.0f);
        const float x = rng.uniform(0.2f, std::max(0.3f, width - tw));
        const float y = rng.uniform(0.2f, std::max(0.3f, depth - td));
        addBox(patches, {x, y, 0.65f}, {x + tw, y + td, 0.75f},
               static_cast<std::int32_t>(SceneClass::Table), 2.5f);
    }

    // Chairs: smaller boxes.
    const int chairs = rand_between(options.minChairs, options.maxChairs);
    for (int c = 0; c < chairs; ++c) {
        const float cw = rng.uniform(0.4f, 0.55f);
        const float x = rng.uniform(0.2f, std::max(0.3f, width - cw));
        const float y = rng.uniform(0.2f, std::max(0.3f, depth - cw));
        addBox(patches, {x, y, 0.0f}, {x + cw, y + cw, 0.45f},
               static_cast<std::int32_t>(SceneClass::Chair), 3.0f);
        // Backrest.
        addBox(patches, {x, y, 0.45f}, {x + cw, y + 0.08f, 0.9f},
               static_cast<std::int32_t>(SceneClass::Chair), 3.0f);
    }

    // Clutter: small boxes at random heights (very dense).
    const int clutter =
        rand_between(options.minClutter, options.maxClutter);
    for (int c = 0; c < clutter; ++c) {
        const float s = rng.uniform(0.1f, 0.35f);
        const float x = rng.uniform(0.2f, std::max(0.3f, width - s));
        const float y = rng.uniform(0.2f, std::max(0.3f, depth - s));
        const float z = rng.nextFloat() < 0.5f ? 0.0f : 0.75f;
        addBox(patches, {x, y, z}, {x + s, y + s, z + s},
               static_cast<std::int32_t>(SceneClass::Clutter), 4.0f);
    }

    // Weighted sampling over patches.
    float total_weight = 0.0f;
    for (const Patch &p : patches) {
        total_weight += p.weight;
    }

    std::vector<Vec3> points;
    std::vector<std::int32_t> labels;
    points.reserve(options.points);
    labels.reserve(options.points);
    for (std::size_t i = 0; i < options.points; ++i) {
        float pick = rng.nextFloat() * total_weight;
        std::size_t chosen = 0;
        for (std::size_t j = 0; j < patches.size(); ++j) {
            pick -= patches[j].weight;
            if (pick <= 0.0f) {
                chosen = j;
                break;
            }
        }
        const Patch &p = patches[chosen];
        Vec3 point = p.origin + p.edge_u * rng.nextFloat() +
                     p.edge_v * rng.nextFloat();
        if (options.noise > 0.0f) {
            point += Vec3{rng.normal(0.0f, options.noise),
                          rng.normal(0.0f, options.noise),
                          rng.normal(0.0f, options.noise)};
        }
        points.push_back(point);
        labels.push_back(p.label);
    }

    PointCloud cloud(std::move(points));
    cloud.setLabels(std::move(labels));
    // Unit-sphere normalization, the convention the PC CNN configs
    // (ball radii etc.) assume — mirroring the block normalization of
    // the S3DIS/ScanNet training pipelines.
    cloud.normalizeToUnitSphere();
    return cloud;
}

Dataset
makeSceneDataset(std::size_t scenes, const SceneOptions &options,
                 std::uint64_t seed)
{
    Rng rng(seed);
    Dataset dataset;
    dataset.name = "synthetic-scenes";
    dataset.numClasses = static_cast<std::size_t>(SceneClass::Count);
    for (std::size_t i = 0; i < scenes; ++i) {
        LabeledCloud item;
        item.cloud = makeScene(options, rng);
        dataset.items.push_back(std::move(item));
    }
    return dataset;
}

} // namespace edgepc
