/**
 * @file
 * SyntheticShapes: an 8-class parametric shape sampler standing in for
 * ModelNet40 (3D shape classification; DESIGN.md documents the
 * substitution). Clouds are unit-sphere normalized, sampled with
 * configurable surface noise and random rotation augmentation.
 */

#ifndef EDGEPC_DATASETS_SHAPES_HPP
#define EDGEPC_DATASETS_SHAPES_HPP

#include "common/rng.hpp"
#include "datasets/dataset.hpp"

namespace edgepc {

/** The shape classes. */
enum class ShapeClass : std::int32_t
{
    Sphere = 0,
    Cube,
    Torus,
    Cone,
    Cylinder,
    PlaneCross,
    Helix,
    Capsule,
    Count,
};

/** Name of a shape class. */
const char *shapeClassName(ShapeClass shape);

/** Per-cloud rotation augmentation. */
enum class ShapeAugmentation
{
    None,
    /** Random rotation about the z axis (the ModelNet protocol). */
    RotateZ,
    /** Uniformly random SO(3) rotation. */
    RotateSO3,
};

/** Options for the shape generator. */
struct ShapeOptions
{
    /** Points per cloud. */
    std::size_t points = 1024;

    /** Gaussian surface jitter (fraction of the unit scale). */
    float noise = 0.01f;

    /** Rotation augmentation (z-axis rotation, as in the standard
     *  ModelNet40 training protocol, by default). */
    ShapeAugmentation augmentation = ShapeAugmentation::RotateZ;

    /** Legacy switch: false forces ShapeAugmentation::None. */
    bool randomRotation = true;
};

/** Sample one cloud of the given class. */
PointCloud makeShape(ShapeClass shape, const ShapeOptions &options,
                     Rng &rng);

/**
 * Generate a classification dataset with @p per_class clouds of every
 * shape class.
 */
Dataset makeShapeDataset(std::size_t per_class,
                         const ShapeOptions &options,
                         std::uint64_t seed = 11);

} // namespace edgepc

#endif // EDGEPC_DATASETS_SHAPES_HPP
