#include "datasets/bunny.hpp"

#include <cmath>

namespace edgepc {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/**
 * Spiral-scan an ellipsoid: points are emitted in scan order (a
 * continuous spiral path from pole to pole), reproducing the clustered
 * acquisition order of a real range scan.
 */
void
scanEllipsoid(std::vector<Vec3> &out, std::size_t count,
              const Vec3 &center, const Vec3 &radii, float turns,
              Rng &rng)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float t =
            static_cast<float>(i) / static_cast<float>(count);
        const float polar = t * kPi; // 0 (top) .. pi (bottom).
        const float azimuth = t * turns * 2.0f * kPi;
        const float jitter_p = rng.normal(0.0f, 0.01f);
        const float jitter_a = rng.normal(0.0f, 0.02f);
        const float sp = std::sin(polar + jitter_p);
        out.push_back({center.x + radii.x * sp *
                                      std::cos(azimuth + jitter_a),
                       center.y + radii.y * sp *
                                      std::sin(azimuth + jitter_a),
                       center.z + radii.z * std::cos(polar + jitter_p)});
    }
}

} // namespace

PointCloud
bunnyLike(std::size_t points, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Vec3> cloud;
    cloud.reserve(points);

    // Points are allocated roughly in proportion to each part's
    // surface area (real range scans are near-uniform per area), with
    // a mild density surplus on the head/ears — close-range patches.
    const std::size_t body = points * 66 / 100;
    const std::size_t head = points * 19 / 100;
    const std::size_t ear_each = points * 6 / 100;
    const std::size_t tail = points - body - head - 2 * ear_each;

    // Body: big squashed ellipsoid, sparse for its area.
    scanEllipsoid(cloud, body, {0.0f, 0.0f, 0.0f},
                  {1.0f, 0.8f, 0.75f}, 48.0f, rng);
    // Head: small sphere, dense.
    scanEllipsoid(cloud, head, {0.9f, 0.0f, 0.65f},
                  {0.42f, 0.38f, 0.40f}, 40.0f, rng);
    // Ears: thin elongated ellipsoids, very dense.
    scanEllipsoid(cloud, ear_each, {1.05f, -0.18f, 1.25f},
                  {0.10f, 0.06f, 0.45f}, 30.0f, rng);
    scanEllipsoid(cloud, ear_each, {1.05f, 0.18f, 1.25f},
                  {0.10f, 0.06f, 0.45f}, 30.0f, rng);
    // Tail: tiny puff.
    scanEllipsoid(cloud, tail, {-1.0f, 0.0f, 0.1f},
                  {0.15f, 0.15f, 0.15f}, 20.0f, rng);

    // Point clouds are "a set of unordered points" (Sec 2.1.1 of the
    // paper): merged multi-scan files carry no usable global order.
    // Shuffle so raw indexes are spatially meaningless — which is
    // what reduces raw-order uniform sampling to unstratified random
    // sampling (Fig 4b/5b), while the Morton-sorted order turns the
    // same stride into stratified, FPS-like coverage (Fig 5c).
    for (std::size_t i = cloud.size(); i > 1; --i) {
        const std::size_t j = rng.nextBelow(i);
        std::swap(cloud[i - 1], cloud[j]);
    }

    PointCloud result(std::move(cloud));
    result.normalizeToUnitSphere();
    return result;
}

} // namespace edgepc
