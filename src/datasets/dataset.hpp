/**
 * @file
 * Dataset container shared by the synthetic generators.
 *
 * The real benchmarks of the paper (ModelNet40, ShapeNet, S3DIS,
 * ScanNet) are not redistributable here; the generators in this
 * directory synthesize clouds with the same sizes, tasks and the
 * surface-scan-like non-uniform densities that make FPS matter. See
 * DESIGN.md for the substitution rationale.
 */

#ifndef EDGEPC_DATASETS_DATASET_HPP
#define EDGEPC_DATASETS_DATASET_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pointcloud/point_cloud.hpp"

namespace edgepc {

/** One dataset item: a cloud plus (for classification) a class id. */
struct LabeledCloud
{
    PointCloud cloud;
    /** Whole-cloud class (classification tasks); -1 otherwise. */
    std::int32_t classLabel = -1;
};

/** A set of labeled clouds. */
struct Dataset
{
    std::string name;
    std::size_t numClasses = 0;
    std::vector<LabeledCloud> items;

    std::size_t size() const { return items.size(); }

    /**
     * Deterministically shuffle and split into (train, test).
     *
     * @param train_fraction Fraction of items in the train split.
     * @param seed Shuffle seed.
     */
    std::pair<Dataset, Dataset> split(double train_fraction,
                                      std::uint64_t seed) const;

    /** Deterministically shuffle in place. */
    void shuffle(std::uint64_t seed);
};

} // namespace edgepc

#endif // EDGEPC_DATASETS_DATASET_HPP
