#include "datasets/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"

namespace edgepc {

void
Dataset::shuffle(std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t i = items.size(); i > 1; --i) {
        const std::size_t j = rng.nextBelow(i);
        std::swap(items[i - 1], items[j]);
    }
}

std::pair<Dataset, Dataset>
Dataset::split(double train_fraction, std::uint64_t seed) const
{
    Dataset shuffled = *this;
    shuffled.shuffle(seed);

    const auto train_count = static_cast<std::size_t>(
        static_cast<double>(items.size()) * train_fraction);

    Dataset train, test;
    train.name = name + "-train";
    test.name = name + "-test";
    train.numClasses = numClasses;
    test.numClasses = numClasses;
    for (std::size_t i = 0; i < shuffled.items.size(); ++i) {
        if (i < train_count) {
            train.items.push_back(std::move(shuffled.items[i]));
        } else {
            test.items.push_back(std::move(shuffled.items[i]));
        }
    }
    return {std::move(train), std::move(test)};
}

} // namespace edgepc
