/**
 * @file
 * bunnyLike(): a procedural stand-in for the Stanford Bunny scan used
 * by the paper's Fig 5 sampling-quality experiment (see DESIGN.md).
 *
 * What matters for that experiment is not the rabbit silhouette but
 * two properties of real merged scans: (1) surface sampling that is
 * only roughly area-uniform, with denser close-range parts, and
 * (2) a file order that carries no global spatial structure (the
 * paper's "set of unordered points"), so uniform index sampling on
 * the raw order degenerates to unstratified random sampling. Both
 * are reproduced here.
 */

#ifndef EDGEPC_DATASETS_BUNNY_HPP
#define EDGEPC_DATASETS_BUNNY_HPP

#include "common/rng.hpp"
#include "pointcloud/point_cloud.hpp"

namespace edgepc {

/**
 * Generate the bunny-like scan.
 *
 * @param points Total points (the Stanford Bunny has 40 256).
 * @param seed RNG seed.
 */
PointCloud bunnyLike(std::size_t points = 40256, std::uint64_t seed = 5);

} // namespace edgepc

#endif // EDGEPC_DATASETS_BUNNY_HPP
