/**
 * @file
 * Per-stream circuit breaker: Closed -> Open -> HalfOpen -> Closed.
 *
 * A stream whose frames repeatedly fail or blow their SLO is
 * quarantined (Open) so it cannot keep burning dispatcher time that
 * healthy streams need. After a cooldown the breaker admits a single
 * probe frame at a time (HalfOpen); a streak of probe successes
 * closes it again, one probe failure re-opens it.
 *
 * The class is a pure state machine with injected time (milliseconds
 * on the caller's monotonic clock), so every transition is unit
 * testable without sleeping. Not internally synchronized: the serving
 * engine mutates it under its own lock.
 */

#ifndef EDGEPC_SERVE_CIRCUIT_BREAKER_HPP
#define EDGEPC_SERVE_CIRCUIT_BREAKER_HPP

#include <cstddef>

namespace edgepc {
namespace serve {

/** Trip/recovery policy of a CircuitBreaker. */
struct CircuitBreakerOptions
{
    /** Consecutive failures that open the breaker. */
    int tripThreshold = 4;

    /** Quarantine time before the first recovery probe, ms. */
    double cooldownMs = 250.0;

    /** Consecutive probe successes that close the breaker again. */
    int probeSuccesses = 2;
};

/** Closed -> Open -> HalfOpen -> Closed failure isolator. */
class CircuitBreaker
{
  public:
    enum class State
    {
        /** Healthy: frames dispatch normally. */
        Closed,
        /** Quarantined: submits rejected, queued frames flushed. */
        Open,
        /** Probing: one frame at a time until the verdict is in. */
        HalfOpen,
    };

    explicit CircuitBreaker(CircuitBreakerOptions opts = {})
        : opts(opts)
    {
    }

    /** Current state, advancing Open -> HalfOpen once the cooldown
        has elapsed at @p now_ms. */
    State state(double now_ms)
    {
        if (st == State::Open &&
            now_ms - openedAtMs >= opts.cooldownMs) {
            st = State::HalfOpen;
            probeInFlight = false;
            probeWins = 0;
        }
        return st;
    }

    /** True when a new submit may enter the stream's queue. */
    bool admitsSubmit(double now_ms)
    {
        return state(now_ms) != State::Open;
    }

    /** True when the scheduler may dispatch the stream's head frame
        (HalfOpen allows one probe at a time). */
    bool canDispatch(double now_ms)
    {
        switch (state(now_ms)) {
          case State::Closed:
            return true;
          case State::HalfOpen:
            return !probeInFlight;
          case State::Open:
            return false;
        }
        return false;
    }

    /** Mark the head frame as dispatched (claims the HalfOpen probe
        slot). */
    void noteDispatch()
    {
        if (st == State::HalfOpen) {
            probeInFlight = true;
        }
    }

    /** Record a served frame that met its SLO. */
    void recordSuccess(double now_ms)
    {
        (void)state(now_ms);
        probeInFlight = false;
        consecutiveFailures = 0;
        if (st == State::HalfOpen &&
            ++probeWins >= opts.probeSuccesses) {
            st = State::Closed;
            probeWins = 0;
        }
    }

    /** Record a dropped frame or SLO miss. */
    void recordFailure(double now_ms)
    {
        (void)state(now_ms);
        probeInFlight = false;
        probeWins = 0;
        if (st == State::HalfOpen) {
            // A failed probe re-opens the quarantine immediately.
            st = State::Open;
            openedAtMs = now_ms;
            ++tripCount;
            consecutiveFailures = 0;
            return;
        }
        if (st == State::Closed &&
            ++consecutiveFailures >= opts.tripThreshold) {
            st = State::Open;
            openedAtMs = now_ms;
            ++tripCount;
            consecutiveFailures = 0;
        }
    }

    /** Times the breaker has opened. */
    std::size_t trips() const { return tripCount; }

    const CircuitBreakerOptions &options() const { return opts; }

  private:
    CircuitBreakerOptions opts;
    State st = State::Closed;
    int consecutiveFailures = 0;
    int probeWins = 0;
    bool probeInFlight = false;
    double openedAtMs = 0.0;
    std::size_t tripCount = 0;
};

/** Name of a breaker state ("closed", "open", "half-open"). */
const char *breakerStateName(CircuitBreaker::State state);

} // namespace serve
} // namespace edgepc

#endif // EDGEPC_SERVE_CIRCUIT_BREAKER_HPP
