#include "serve/serving_engine.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "nn/gemm.hpp"
#include "obs/trace.hpp"
#include "sampling/uniform_index_sampler.hpp"

namespace edgepc {
namespace serve {

namespace {

/** EDF key window for streams without an SLO: far enough out that
    deadline streams always win, while no-SLO streams stay FIFO
    against each other (same offset => ordered by arrival). */
constexpr double kNoSloWindowMs = 1.0e7;

/** Mirror of InferencePipeline::applyGemmMode for the batched path,
    which calls the model directly. */
void
applyGemmMode(const EdgePcConfig &cfg)
{
    nn::GemmEngine::globalEngine().setMode(cfg.useTensorCores()
                                               ? nn::GemmMode::Auto
                                               : nn::GemmMode::Scalar);
}

} // namespace

const char *
backpressurePolicyName(BackpressurePolicy policy)
{
    switch (policy) {
      case BackpressurePolicy::RejectNewest:
        return "reject-newest";
      case BackpressurePolicy::DropOldest:
        return "drop-oldest";
    }
    return "?";
}

const char *
admitStatusName(AdmitStatus status)
{
    switch (status) {
      case AdmitStatus::Accepted:
        return "accepted";
      case AdmitStatus::QueueFull:
        return "queue-full";
      case AdmitStatus::Quarantined:
        return "quarantined";
      case AdmitStatus::Draining:
        return "draining";
      case AdmitStatus::UnknownStream:
        return "unknown-stream";
    }
    return "?";
}

const char *
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed:
        return "closed";
      case CircuitBreaker::State::Open:
        return "open";
      case CircuitBreaker::State::HalfOpen:
        return "half-open";
    }
    return "?";
}

void
StreamReport::printTable(std::ostream &os) const
{
    Table table({"counter", "value"});
    table.row().cell("submitted").cell(
        static_cast<long long>(serve.submitted));
    table.row().cell("accepted").cell(
        static_cast<long long>(serve.accepted));
    table.row().cell("served").cell(static_cast<long long>(serve.served));
    table.row().cell("batched").cell(
        static_cast<long long>(serve.batchedFrames));
    table.row().cell("pipelined").cell(
        static_cast<long long>(serve.pipelinedFrames));
    table.row().cell("rejected").cell(
        static_cast<long long>(serve.rejected()));
    table.row().cell("shed").cell(static_cast<long long>(serve.shed()));
    table.row().cell("slo misses").cell(
        static_cast<long long>(serve.sloMisses));
    table.row().cell("breaker trips").cell(
        static_cast<long long>(breakerTrips));
    table.row().cell("ladder level").cell(
        static_cast<long long>(ladderLevel));
    table.print(os);
    health.printTable(os);
}

ServingEngine::ServingEngine(PointCloudModel &model_, EdgePcConfig cfg,
                             ServingOptions opts_)
    : model(model_), baseCfg(cfg), opts(std::move(opts_)),
      admission(opts.admission),
      mSubmitted(obs::MetricsRegistry::global().counter(
          "serve.submitted")),
      mAccepted(obs::MetricsRegistry::global().counter("serve.accepted")),
      mRejected(obs::MetricsRegistry::global().counter("serve.rejected")),
      mShed(obs::MetricsRegistry::global().counter("serve.shed")),
      mServed(obs::MetricsRegistry::global().counter("serve.served")),
      mBatchedFrames(obs::MetricsRegistry::global().counter(
          "serve.batched_frames")),
      mBatches(obs::MetricsRegistry::global().counter("serve.batches")),
      mPipelinedFrames(obs::MetricsRegistry::global().counter(
          "serve.pipelined_frames")),
      mSloMisses(obs::MetricsRegistry::global().counter(
          "serve.slo_misses")),
      mBreakerTrips(obs::MetricsRegistry::global().counter(
          "serve.breaker_trips")),
      mFloorRaises(obs::MetricsRegistry::global().counter(
          "serve.floor_raises")),
      gQueueDepth(obs::MetricsRegistry::global().gauge(
          "serve.queue_depth")),
      gLadderFloor(obs::MetricsRegistry::global().gauge(
          "serve.ladder_floor")),
      hQueueMs(obs::MetricsRegistry::global().histogram("serve.queue_ms")),
      hTotalMs(obs::MetricsRegistry::global().histogram("serve.total_ms"))
{
    const std::size_t max_batch = std::max<std::size_t>(1, opts.maxBatch);
    batchStreams.resize(max_batch);
    batchScratch.resize(max_batch);
    batchClouds.resize(max_batch);
    dispatcher = std::thread([this] { dispatchLoop(); });
}

ServingEngine::~ServingEngine()
{
    {
        MutexLock lock(engineMu);
        stopping = true;
    }
    wakeCv.notify_all();
    if (dispatcher.joinable()) {
        dispatcher.join();
    }
}

StreamId
ServingEngine::openStream()
{
    return openStream(opts.streamDefaults);
}

StreamId
ServingEngine::openStream(StreamOptions stream_opts)
{
    if (stream_opts.queueCapacity == 0) {
        fatal("ServingEngine::openStream: queueCapacity must be > 0");
    }
    MutexLock lock(engineMu);
    auto state = std::make_unique<StreamState>();
    state->id = static_cast<StreamId>(streams.size());
    state->opts = stream_opts;
    state->robust = std::make_unique<RobustPipeline>(
        model, baseCfg, stream_opts.robust);
    state->robust->setLadderFloor(admission.floor());
    state->breaker = CircuitBreaker(stream_opts.breaker);
    const StreamId id = state->id;
    streams.push_back(std::move(state));
    candScratch.resize(streams.size());

    std::size_t total_capacity = 0;
    for (const auto &entry : streams) {
        total_capacity += entry->opts.queueCapacity;
    }
    admission.setCapacity(total_capacity);
    return id;
}

SubmitTicket
ServingEngine::submit(StreamId stream, PointCloud frame)
{
    SubmitTicket ticket;
    UniqueMutexLock lock(engineMu);
    if (stream >= streams.size()) {
        ticket.admit = AdmitStatus::UnknownStream;
        return ticket;
    }
    StreamState &s = *streams[stream];
    ++s.serve.submitted;
    mSubmitted.add();
    const double now = epoch.elapsedMs();

    if (draining || stopping) {
        ticket.admit = AdmitStatus::Draining;
        ++s.serve.rejectedDraining;
        mRejected.add();
        return ticket;
    }
    if (!s.breaker.admitsSubmit(now)) {
        ticket.admit = AdmitStatus::Quarantined;
        ++s.serve.rejectedQuarantined;
        mRejected.add();
        return ticket;
    }
    if (s.queue.size() >= s.opts.queueCapacity) {
        if (s.opts.backpressure == BackpressurePolicy::RejectNewest) {
            ticket.admit = AdmitStatus::QueueFull;
            ++s.serve.rejectedFull;
            mRejected.add();
            return ticket;
        }
        shedRequestLocked(s, s.queue.front(), ErrorCode::QueueFull,
                          "evicted by backpressure (drop-oldest)",
                          &StreamServeStats::shedBackpressure);
        s.queue.pop_front();
    }

    Request rq;
    rq.seq = s.nextSeq++;
    rq.cloud = std::move(frame);
    rq.submitMs = now;
    rq.hasSlo = s.opts.sloMs > 0.0;
    rq.deadlineMs = now + (rq.hasSlo ? s.opts.sloMs : kNoSloWindowMs);
    ticket.admit = AdmitStatus::Accepted;
    ticket.seq = rq.seq;
    ticket.response = rq.promise.get_future();
    s.queue.push_back(std::move(rq));
    ++s.serve.accepted;
    mAccepted.add();
    gQueueDepth.set(static_cast<std::int64_t>(totalQueuedLocked()));
    lock.unlock();
    wakeCv.notify_one();
    return ticket;
}

std::size_t
ServingEngine::totalQueuedLocked() const
{
    std::size_t total = 0;
    for (const auto &entry : streams) {
        total += entry->queue.size();
    }
    return total;
}

void
ServingEngine::fulfill(Request &request, FrameResponse &&response)
{
    if (opts.onResponse) {
        opts.onResponse(response);
    }
    request.promise.set_value(std::move(response));
}

void
ServingEngine::shedRequestLocked(StreamState &stream, Request &request,
                                 ErrorCode code, const char *why,
                                 std::size_t StreamServeStats::*counter)
{
    const double now = epoch.elapsedMs();
    FrameResponse resp;
    resp.stream = stream.id;
    resp.seq = request.seq;
    resp.status = FrameStatus::Dropped;
    resp.shed = true;
    resp.ladderLevel = stream.robust->ladderLevel();
    resp.queueMs = now - request.submitMs;
    resp.totalMs = resp.queueMs;
    resp.sloMissed = request.hasSlo && now > request.deadlineMs;
    resp.error = makeError(code, "%s", why);
    stream.serve.*counter += 1;
    mShed.add();
    stream.robust->recordShedFrame(resp.error);
    fulfill(request, std::move(resp));
}

void
ServingEngine::shedStaleLocked(double now_ms)
{
    for (auto &entry : streams) {
        StreamState &s = *entry;
        if (s.breaker.state(now_ms) == CircuitBreaker::State::Open) {
            while (!s.queue.empty()) {
                shedRequestLocked(s, s.queue.front(),
                                  ErrorCode::StreamQuarantined,
                                  "stream quarantined by its circuit "
                                  "breaker",
                                  &StreamServeStats::shedQuarantine);
                s.queue.pop_front();
            }
            continue;
        }
        // Deadlines are monotonic within a stream's FIFO queue, so
        // expired frames are always at the head.
        while (!s.queue.empty() && s.queue.front().hasSlo &&
               s.queue.front().deadlineMs <= now_ms) {
            shedRequestLocked(s, s.queue.front(),
                              ErrorCode::DeadlineExceeded,
                              "SLO deadline expired while queued",
                              &StreamServeStats::shedDeadline);
            s.queue.pop_front();
        }
    }
}

std::size_t
ServingEngine::selectLocked(double now_ms)
{
    std::size_t num_candidates = 0;
    std::size_t count = 0;
    const std::size_t max_batch = batchScratch.size();
    // EDGEPC_HOT: scheduler dispatch selection — runs once per batch
    // on the serving fast path; no heap allocation or nn::Matrix
    // construction in this region (all scratch is preallocated).
    {
        for (auto &entry : streams) {
            StreamState *s = entry.get();
            if (s->queue.empty() || !s->breaker.canDispatch(now_ms)) {
                continue;
            }
            candScratch[num_candidates++] = s;
        }
        if (num_candidates == 0) {
            return 0;
        }
        std::sort(candScratch.begin(),
                  candScratch.begin() +
                      static_cast<std::ptrdiff_t>(num_candidates),
                  [](const StreamState *a, const StreamState *b) {
                      return a->queue.front().deadlineMs <
                             b->queue.front().deadlineMs;
                  });
        // Batch = the EDF head plus further heads (distinct streams,
        // nearest deadlines first) at the same effective ladder
        // level, so one configuration serves the whole batch.
        const int lead_level = candScratch[0]->robust->ladderLevel();
        for (std::size_t i = 0;
             i < num_candidates && count < max_batch; ++i) {
            StreamState *s = candScratch[i];
            if (count > 0 && s->robust->ladderLevel() != lead_level) {
                continue;
            }
            s->breaker.noteDispatch();
            batchStreams[count] = s;
            batchScratch[count] = std::move(s->queue.front());
            s->queue.pop_front();
            ++count;
        }
    }
    return count;
}

void
ServingEngine::executeSingle(StreamState &stream, Request &request)
{
    EDGEPC_TRACE_SCOPE("serve.frame", "serve");
    const double dispatch_ms = epoch.elapsedMs();
    RobustFrameResult r = stream.robust->process(request.cloud);
    const double now = epoch.elapsedMs();

    FrameResponse resp;
    resp.stream = stream.id;
    resp.seq = request.seq;
    resp.status = r.status;
    resp.ladderLevel = r.ladderLevel;
    resp.queueMs = dispatch_ms - request.submitMs;
    resp.totalMs = now - request.submitMs;
    resp.sloMissed = request.hasSlo && now > request.deadlineMs;
    resp.logits = std::move(r.result.logits);
    resp.error = r.error;

    {
        MutexLock lock(engineMu);
        ++stream.serve.served;
        if (resp.sloMissed) {
            ++stream.serve.sloMisses;
            mSloMisses.add();
        }
        const std::size_t trips_before = stream.breaker.trips();
        const bool failure = resp.status == FrameStatus::Dropped ||
                             resp.sloMissed || r.deadlineMissed;
        if (failure) {
            stream.breaker.recordFailure(now);
        } else {
            stream.breaker.recordSuccess(now);
        }
        mBreakerTrips.add(stream.breaker.trips() - trips_before);
    }
    mServed.add();
    hQueueMs.observe(resp.queueMs);
    hTotalMs.observe(resp.totalMs);
    fulfill(request, std::move(resp));
}

void
ServingEngine::executeBatch(std::size_t count)
{
    if (count == 1) {
        executeSingle(*batchStreams[0], batchScratch[0]);
        return;
    }
    EDGEPC_TRACE_SCOPE("serve.batch", "serve");
    const double dispatch_ms = epoch.elapsedMs();
    const int lvl = batchStreams[0]->robust->ladderLevel();
    const EdgePcConfig cfg_lvl =
        batchStreams[0]->robust->configForLevel(lvl);

    // Sanitize (and subsample at the deepest degraded level) each
    // frame exactly as RobustPipeline::process would.
    struct Slot
    {
        bool ok = false;
        bool repaired = false;
        EdgePcError error;
    };
    std::vector<Slot> slots(count);
    std::vector<PointCloud> live_clouds;
    std::vector<std::size_t> live_at;
    live_clouds.reserve(count);
    live_at.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        StreamState &s = *batchStreams[i];
        batchClouds[i] = batchScratch[i].cloud;
        Result<SanitizeReport> rep =
            sanitizeCloud(batchClouds[i], s.opts.robust.sanitizer);
        if (!rep.ok()) {
            slots[i].error = rep.error();
            continue;
        }
        slots[i].ok = true;
        slots[i].repaired = rep.value().repaired();
        if (lvl >= 2 &&
            batchClouds[i].size() > s.opts.robust.degradedPointBudget) {
            batchClouds[i] = batchClouds[i].select(
                UniformIndexSampler::stridePositions(
                    batchClouds[i].size(),
                    s.opts.robust.degradedPointBudget));
        }
        live_at.push_back(i);
        live_clouds.push_back(std::move(batchClouds[i]));
    }

    // Chaos prologs fire on the batched path too (no watchdog here:
    // the batch trades the per-frame watchdog for throughput; SLO
    // misses below still feed the breaker and the ladder).
    for (const std::size_t i : live_at) {
        const auto &prolog = batchStreams[i]->opts.robust.inferenceProlog;
        if (prolog) {
            prolog();
        }
    }

    bool batch_ok = !live_clouds.empty();
    std::vector<nn::Matrix> logits;
    if (batch_ok) {
        applyGemmMode(cfg_lvl);
        try {
            logits = model.inferBatch(live_clouds, cfg_lvl);
        } catch (const EdgePcException &) {
            // Fall back to the full per-frame robust path below — it
            // re-runs sanitize and the whole ladder per frame, so a
            // poisoned batch costs retries, never the streams.
            batch_ok = false;
        }
    }
    mBatches.add();

    std::vector<FrameResponse> responses(count);
    std::size_t live_pos = 0;
    for (std::size_t i = 0; i < count; ++i) {
        StreamState &s = *batchStreams[i];
        Request &rq = batchScratch[i];
        FrameResponse &resp = responses[i];
        resp.stream = s.id;
        resp.seq = rq.seq;
        resp.queueMs = dispatch_ms - rq.submitMs;
        resp.ladderLevel = lvl;
        resp.batched = true;

        if (!slots[i].ok) {
            resp.status = FrameStatus::Dropped;
            resp.error = slots[i].error;
            s.robust->recordExternalFrame(FrameStatus::Dropped, lvl,
                                          false, false, &resp.error);
        } else if (batch_ok) {
            resp.status = lvl > 0 ? FrameStatus::Degraded
                          : slots[i].repaired ? FrameStatus::Repaired
                                              : FrameStatus::Ok;
            resp.logits = std::move(logits[live_pos++]);
        } else {
            // Per-frame fallback: the robust single path accounts the
            // frame internally (including its own ladder moves).
            RobustFrameResult r = s.robust->process(rq.cloud);
            resp.status = r.status;
            resp.ladderLevel = r.ladderLevel;
            resp.batched = false;
            resp.logits = std::move(r.result.logits);
            resp.error = r.error;
            ++live_pos;
        }
        const double now = epoch.elapsedMs();
        resp.totalMs = now - rq.submitMs;
        resp.sloMissed = rq.hasSlo && now > rq.deadlineMs;
        if (slots[i].ok && batch_ok) {
            s.robust->recordExternalFrame(resp.status, lvl,
                                          resp.sloMissed,
                                          slots[i].repaired);
        }
    }

    {
        MutexLock lock(engineMu);
        const double now = epoch.elapsedMs();
        for (std::size_t i = 0; i < count; ++i) {
            StreamState &s = *batchStreams[i];
            FrameResponse &resp = responses[i];
            ++s.serve.served;
            if (resp.batched) {
                ++s.serve.batchedFrames;
                mBatchedFrames.add();
            }
            if (resp.sloMissed) {
                ++s.serve.sloMisses;
                mSloMisses.add();
            }
            const std::size_t trips_before = s.breaker.trips();
            const bool failure =
                resp.status == FrameStatus::Dropped || resp.sloMissed;
            if (failure) {
                s.breaker.recordFailure(now);
            } else {
                s.breaker.recordSuccess(now);
            }
            mBreakerTrips.add(s.breaker.trips() - trips_before);
        }
    }
    for (std::size_t i = 0; i < count; ++i) {
        mServed.add();
        hQueueMs.observe(responses[i].queueMs);
        hTotalMs.observe(responses[i].totalMs);
        fulfill(batchScratch[i], std::move(responses[i]));
    }
}

bool
ServingEngine::pipelinedEligible(std::size_t count) const
{
    if (count < 2 || !model.supportsStagedInfer()) {
        return false;
    }
    switch (opts.pipeline) {
      case PipelineMode::Off:
        return false;
      case PipelineMode::On:
        return true;
      case PipelineMode::Auto:
        return resolvePipeline(model, count);
    }
    return false;
}

void
ServingEngine::executePipelined(std::size_t count)
{
    EDGEPC_TRACE_SCOPE("serve.pipeline", "serve");
    const double dispatch_ms = epoch.elapsedMs();
    const int lvl = batchStreams[0]->robust->ladderLevel();
    const EdgePcConfig cfg_lvl =
        batchStreams[0]->robust->configForLevel(lvl);

    // Sanitize (and subsample at the deepest degraded level) each
    // frame exactly as the batched path / RobustPipeline::process do.
    struct Slot
    {
        bool ok = false;
        bool repaired = false;
        bool stagedFailed = false;
        double stagedWallMs = 0.0;
        EdgePcError error;
        nn::Matrix logits;
    };
    std::vector<Slot> slots(count);
    std::vector<std::size_t> live_at;
    live_at.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        StreamState &s = *batchStreams[i];
        batchClouds[i] = batchScratch[i].cloud;
        Result<SanitizeReport> rep =
            sanitizeCloud(batchClouds[i], s.opts.robust.sanitizer);
        if (!rep.ok()) {
            slots[i].error = rep.error();
            continue;
        }
        slots[i].ok = true;
        slots[i].repaired = rep.value().repaired();
        if (lvl >= 2 &&
            batchClouds[i].size() > s.opts.robust.degradedPointBudget) {
            batchClouds[i] = batchClouds[i].select(
                UniformIndexSampler::stridePositions(
                    batchClouds[i].size(),
                    s.opts.robust.degradedPointBudget));
        }
        live_at.push_back(i);
    }

    // Chaos prologs fire on the dispatcher thread at submit, inside
    // each frame's measured window (matches executeBatch).
    for (const std::size_t i : live_at) {
        const auto &prolog = batchStreams[i]->opts.robust.inferenceProlog;
        if (prolog) {
            prolog();
        }
    }

    if (stagedExec == nullptr) {
        stagedExec = std::make_unique<StagedPipeline>(model);
    }
    // Stream the live heads through the staged executor. Results come
    // back FIFO, so collect index k is live_at[k]. Every submitted
    // frame is collected before we leave this block: the sequential
    // fallback below may touch model state the stage workers use.
    {
        std::size_t next = 0;
        std::size_t collected = 0;
        auto collectOne = [&] {
            StagedFrameResult r = stagedExec->collect();
            Slot &slot = slots[live_at[collected]];
            slot.stagedWallMs = r.wallMs;
            if (r.failed) {
                slot.stagedFailed = true;
                slot.error = r.error;
            } else {
                slot.logits = std::move(r.logits);
            }
            ++collected;
        };
        while (next < live_at.size()) {
            if (stagedExec->trySubmit(batchClouds[live_at[next]],
                                      cfg_lvl)) {
                ++next;
                continue;
            }
            collectOne();
        }
        while (collected < live_at.size()) {
            collectOne();
        }
    }
    mBatches.add();

    std::vector<FrameResponse> responses(count);
    for (std::size_t i = 0; i < count; ++i) {
        StreamState &s = *batchStreams[i];
        Request &rq = batchScratch[i];
        FrameResponse &resp = responses[i];
        resp.stream = s.id;
        resp.seq = rq.seq;
        resp.queueMs = dispatch_ms - rq.submitMs;
        resp.ladderLevel = lvl;
        resp.pipelined = true;

        if (!slots[i].ok) {
            resp.status = FrameStatus::Dropped;
            resp.pipelined = false;
            resp.error = slots[i].error;
            s.robust->recordExternalFrame(FrameStatus::Dropped, lvl,
                                          false, false, &resp.error);
        } else if (slots[i].stagedFailed) {
            // Per-frame fallback: the robust single path accounts the
            // frame internally (including its own ladder moves). The
            // executor is drained, so the stateful path is safe.
            RobustFrameResult r = s.robust->process(rq.cloud);
            resp.status = r.status;
            resp.ladderLevel = r.ladderLevel;
            resp.pipelined = false;
            resp.logits = std::move(r.result.logits);
            resp.error = r.error;
        } else {
            resp.status = lvl > 0 ? FrameStatus::Degraded
                          : slots[i].repaired ? FrameStatus::Repaired
                                              : FrameStatus::Ok;
            resp.logits = std::move(slots[i].logits);
        }
        const double now = epoch.elapsedMs();
        resp.totalMs = now - rq.submitMs;
        resp.sloMissed = rq.hasSlo && now > rq.deadlineMs;
        if (slots[i].ok && !slots[i].stagedFailed) {
            // The per-frame watchdog follows in-flight frames here:
            // submit-to-completion wall time on the executor against
            // the stream's soft deadline.
            const bool wd_missed =
                s.opts.robust.deadlineMs > 0.0 &&
                slots[i].stagedWallMs > s.opts.robust.deadlineMs;
            s.robust->recordExternalFrame(
                resp.status, lvl, resp.sloMissed || wd_missed,
                slots[i].repaired);
        }
    }

    {
        MutexLock lock(engineMu);
        const double now = epoch.elapsedMs();
        for (std::size_t i = 0; i < count; ++i) {
            StreamState &s = *batchStreams[i];
            FrameResponse &resp = responses[i];
            ++s.serve.served;
            if (resp.pipelined) {
                ++s.serve.pipelinedFrames;
                mPipelinedFrames.add();
            }
            if (resp.sloMissed) {
                ++s.serve.sloMisses;
                mSloMisses.add();
            }
            const std::size_t trips_before = s.breaker.trips();
            const bool failure =
                resp.status == FrameStatus::Dropped || resp.sloMissed;
            if (failure) {
                s.breaker.recordFailure(now);
            } else {
                s.breaker.recordSuccess(now);
            }
            mBreakerTrips.add(s.breaker.trips() - trips_before);
        }
    }
    for (std::size_t i = 0; i < count; ++i) {
        mServed.add();
        hQueueMs.observe(responses[i].queueMs);
        hTotalMs.observe(responses[i].totalMs);
        fulfill(batchScratch[i], std::move(responses[i]));
    }
}

void
ServingEngine::dispatchLoop()
{
    std::size_t seen_raises = 0;
    UniqueMutexLock lock(engineMu);
    for (;;) {
        // Explicit wait loop (not a wait(lock, pred) lambda): the
        // thread-safety analysis treats lambdas as separate functions
        // and would reject their guarded-member reads.
        while (!stopping && totalQueuedLocked() == 0) {
            wakeCv.wait(lock);
        }
        if (stopping) {
            break;
        }
        const double now = epoch.elapsedMs();
        const int floor = admission.update(totalQueuedLocked(), now);
        for (auto &entry : streams) {
            entry->robust->setLadderFloor(floor);
        }
        gLadderFloor.set(floor);
        if (admission.raises() > seen_raises) {
            mFloorRaises.add(admission.raises() - seen_raises);
            seen_raises = admission.raises();
        }

        shedStaleLocked(now);
        gQueueDepth.set(static_cast<std::int64_t>(totalQueuedLocked()));
        const std::size_t count = selectLocked(now);
        if (count == 0) {
            idleCv.notify_all();
            continue;
        }
        busy = true;
        lock.unlock();
        if (pipelinedEligible(count)) {
            executePipelined(count);
        } else {
            executeBatch(count);
        }
        lock.lock();
        busy = false;
        gQueueDepth.set(static_cast<std::int64_t>(totalQueuedLocked()));
        idleCv.notify_all();
    }

    // Shutdown: every still-queued frame resolves as shed so no
    // future is ever broken.
    for (auto &entry : streams) {
        StreamState &s = *entry;
        while (!s.queue.empty()) {
            shedRequestLocked(s, s.queue.front(), ErrorCode::LoadShed,
                              "engine shut down before the frame was "
                              "served",
                              &StreamServeStats::shedShutdown);
            s.queue.pop_front();
        }
    }
    idleCv.notify_all();
}

std::vector<StreamReport>
ServingEngine::drain()
{
    UniqueMutexLock lock(engineMu);
    draining = true;
    wakeCv.notify_all();
    while (busy || totalQueuedLocked() > 0) {
        idleCv.wait(lock);
    }
    std::vector<StreamReport> out;
    out.reserve(streams.size());
    for (const auto &entry : streams) {
        out.push_back(reportLocked(*entry));
    }
    return out;
}

StreamReport
ServingEngine::reportLocked(const StreamState &stream) const
{
    StreamReport report;
    report.id = stream.id;
    report.serve = stream.serve;
    report.health = stream.robust->health();
    report.ladderLevel = stream.robust->ladderLevel();
    report.breakerTrips = stream.breaker.trips();
    return report;
}

StreamHealth
ServingEngine::streamHealth(StreamId stream) const
{
    MutexLock lock(engineMu);
    if (stream >= streams.size()) {
        panic("ServingEngine::streamHealth: unknown stream %u", stream);
    }
    return streams[stream]->robust->health();
}

StreamReport
ServingEngine::streamReport(StreamId stream) const
{
    MutexLock lock(engineMu);
    if (stream >= streams.size()) {
        panic("ServingEngine::streamReport: unknown stream %u", stream);
    }
    return reportLocked(*streams[stream]);
}

int
ServingEngine::ladderFloor() const
{
    MutexLock lock(engineMu);
    return admission.floor();
}

std::size_t
ServingEngine::queuedFrames() const
{
    MutexLock lock(engineMu);
    return totalQueuedLocked();
}

std::size_t
ServingEngine::streamCount() const
{
    MutexLock lock(engineMu);
    return streams.size();
}

} // namespace serve
} // namespace edgepc
