/**
 * @file
 * ServingEngine: overload-safe multiplexer for N concurrent
 * point-cloud streams over one shared model.
 *
 * Architecture (DESIGN.md §11):
 *
 *  - Per-stream bounded request queues with explicit backpressure
 *    (RejectNewest refuses the submit, DropOldest evicts the queue
 *    head as a shed response).
 *  - An admission controller maps sustained total queue depth onto a
 *    global degradation-ladder floor pushed into every stream's
 *    RobustPipeline: under overload all streams step down to cheaper
 *    configurations together before any stream drops frames.
 *  - A single dispatcher thread schedules queue heads
 *    earliest-deadline-first (per-request SLO deadlines; no-SLO
 *    streams fall back to FIFO by arrival), which keeps per-stream
 *    FIFO order by construction. Models mutate internal state during
 *    inference, so one dispatcher owns the model; kernels still
 *    parallelize internally over the global ThreadPool.
 *  - Per-stream circuit breakers quarantine streams whose frames
 *    repeatedly fail or blow their SLO, and probe them for recovery
 *    without ever starving healthy streams.
 *  - Cross-stream micro-batching: heads of distinct streams at the
 *    same ladder level are stacked through PointCloudModel::inferBatch
 *    so the packed GEMM runs at large M instead of one skinny GEMM
 *    per frame. The batched path trades the per-frame watchdog for
 *    throughput; SLO misses are still detected and fed to the
 *    breaker/ladder.
 *  - Graceful drain: completes every queued and in-flight frame, then
 *    returns the per-stream StreamHealth snapshots. Every accepted
 *    frame is accounted in exactly one way (served, dropped, or
 *    shed), so drained health totals always reconcile with accepts.
 *
 * Response-ordering contract: served (non-shed) responses of a stream
 * complete in strictly increasing submit order. Shed/evicted frames
 * are answered immediately (like an HTTP 429) and may therefore
 * overtake an in-flight earlier frame.
 *
 * Telemetry flows into the process metrics registry (serve.* counters,
 * queue-depth and ladder-floor gauges, latency histograms) and
 * Chrome-trace spans ("serve" category).
 */

#ifndef EDGEPC_SERVE_SERVING_ENGINE_HPP
#define EDGEPC_SERVE_SERVING_ENGINE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "core/robust_pipeline.hpp"
#include "core/staged_pipeline.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/circuit_breaker.hpp"

namespace edgepc {
namespace serve {

/** Identifier of an open stream (dense, assigned by openStream). */
using StreamId = std::uint32_t;

/** What a full per-stream queue does with a new submit. */
enum class BackpressurePolicy
{
    /** Refuse the new frame (caller sees QueueFull). */
    RejectNewest,
    /** Evict the oldest queued frame (it resolves as shed) and accept
        the new one — fresher frames win, as a perception stack
        usually wants. */
    DropOldest,
};

/** Name of a policy ("reject-newest", "drop-oldest"). */
const char *backpressurePolicyName(BackpressurePolicy policy);

/** Outcome of a submit() call. */
enum class AdmitStatus
{
    /** Queued; the ticket's future will resolve. */
    Accepted,
    /** Bounded queue full under RejectNewest. */
    QueueFull,
    /** The stream's circuit breaker is open. */
    Quarantined,
    /** The engine is draining or shut down. */
    Draining,
    /** No such stream. */
    UnknownStream,
};

/** Name of an admit status ("accepted", "queue-full", …). */
const char *admitStatusName(AdmitStatus status);

/** The engine's answer for one accepted frame. */
struct FrameResponse
{
    StreamId stream = 0;

    /** Per-stream submit sequence number (0-based). */
    std::uint64_t seq = 0;

    /** Frame outcome; Dropped for shed frames too (see shed). */
    FrameStatus status = FrameStatus::Dropped;

    /** True when the frame never reached inference (backpressure
        eviction, expired deadline, quarantine flush, shutdown). */
    bool shed = false;

    /** True when the frame was served on the batched path. */
    bool batched = false;

    /** True when the frame was served on the staged (inter-frame
        pipelined) path. */
    bool pipelined = false;

    /** True when the response completed after the request's SLO
        deadline (queueing + service). */
    bool sloMissed = false;

    /** Ladder level the frame was served at. */
    int ladderLevel = 0;

    /** Time from submit to dispatch, ms. */
    double queueMs = 0.0;

    /** Time from submit to response, ms. */
    double totalMs = 0.0;

    /** Logits (valid when status != Dropped). */
    nn::Matrix logits;

    /** Why the frame produced no logits (Dropped/shed). */
    EdgePcError error;

    bool hasLogits() const { return status != FrameStatus::Dropped; }
};

/** submit() receipt: admit decision plus the response future. */
struct SubmitTicket
{
    AdmitStatus admit = AdmitStatus::UnknownStream;

    /** Assigned sequence number (valid when accepted). */
    std::uint64_t seq = 0;

    /** Resolves exactly once per accepted frame (invalid future
        otherwise). */
    std::future<FrameResponse> response;

    bool accepted() const { return admit == AdmitStatus::Accepted; }
};

/** Per-stream configuration. */
struct StreamOptions
{
    /** Bounded queue capacity (queued, excluding in-flight). */
    std::size_t queueCapacity = 8;

    /** Full-queue behavior. */
    BackpressurePolicy backpressure = BackpressurePolicy::RejectNewest;

    /** Per-request SLO deadline (submit -> response), ms; frames still
        queued past their deadline are shed. 0 disables the SLO (the
        EDF scheduler then orders the stream by arrival time). */
    double sloMs = 0.0;

    /** Quarantine policy. */
    CircuitBreakerOptions breaker;

    /** Fault-tolerance options of the stream's RobustPipeline
        (sanitizer, watchdog deadline, chaos prolog, …). */
    RobustPipelineOptions robust;
};

/** Engine-side per-stream counters (complementing StreamHealth). */
struct StreamServeStats
{
    std::size_t submitted = 0;
    std::size_t accepted = 0;
    std::size_t rejectedFull = 0;
    std::size_t rejectedQuarantined = 0;
    std::size_t rejectedDraining = 0;
    std::size_t shedBackpressure = 0;
    std::size_t shedDeadline = 0;
    std::size_t shedQuarantine = 0;
    std::size_t shedShutdown = 0;
    std::size_t served = 0;
    std::size_t batchedFrames = 0;
    std::size_t pipelinedFrames = 0;
    std::size_t sloMisses = 0;

    std::size_t shed() const
    {
        return shedBackpressure + shedDeadline + shedQuarantine +
               shedShutdown;
    }
    std::size_t rejected() const
    {
        return rejectedFull + rejectedQuarantined + rejectedDraining;
    }
};

/** Drain/monitor snapshot of one stream. */
struct StreamReport
{
    StreamId id = 0;
    StreamServeStats serve;
    StreamHealth health;
    int ladderLevel = 0;
    std::size_t breakerTrips = 0;

    /** Render serve stats + health as an aligned table. */
    void printTable(std::ostream &os) const;
};

/** Engine-wide configuration. */
struct ServingOptions
{
    /** Defaults for openStream() without explicit options. */
    StreamOptions streamDefaults;

    /** Max heads micro-batched through one inferBatch call (1
        disables cross-stream batching). */
    std::size_t maxBatch = 4;

    /**
     * Inter-frame staged pipelining of selected cross-stream heads:
     * instead of one inferBatch call, the heads stream through the
     * StagedPipeline executor so frame t+1's structurization overlaps
     * frame t's neighbor search and GEMM. Off forces the classic
     * batched path; On forces pipelining whenever >= 2 heads of a
     * staged-capable model are selected; Auto (default) defers to the
     * global EDGEPC_PIPELINE resolution (core/staged_pipeline.hpp).
     */
    PipelineMode pipeline = PipelineMode::Auto;

    /** Overload -> ladder-floor policy. */
    AdmissionOptions admission;

    /**
     * Observer invoked on the fulfilling thread right before each
     * response future resolves (served and shed frames alike). May run
     * with the engine lock held: must not call back into the engine
     * and must be cheap.
     */
    std::function<void(const FrameResponse &)> onResponse;
};

/**
 * Multi-stream serving front end. Streams are opened once, frames are
 * submitted from any thread, and one internal dispatcher thread
 * serves them through per-stream RobustPipelines (optionally batched
 * across streams).
 */
class ServingEngine
{
  public:
    /**
     * @param model Shared model (not owned; the engine's dispatcher is
     *        the only thread running inference on it).
     * @param cfg Full (ladder level 0) configuration for every stream.
     * @param opts Engine options.
     */
    ServingEngine(PointCloudModel &model, EdgePcConfig cfg,
                  ServingOptions opts = {});

    /** Sheds whatever drain() did not serve, then joins the
        dispatcher (every accepted frame's future still resolves). */
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /** Open a stream with the engine's default options. */
    StreamId openStream() EDGEPC_EXCLUDES(engineMu);

    /** Open a stream with explicit options. */
    StreamId openStream(StreamOptions stream_opts)
        EDGEPC_EXCLUDES(engineMu);

    /**
     * Submit one frame. Thread-safe; returns immediately with the
     * admit decision and (when accepted) a future that resolves
     * exactly once. Never blocks on a full queue — backpressure is
     * explicit.
     */
    [[nodiscard]] SubmitTicket submit(StreamId stream, PointCloud frame)
        EDGEPC_EXCLUDES(engineMu);

    /**
     * Graceful drain: stop admitting, serve everything already
     * queued (quarantined queues are flushed as shed), wait for the
     * in-flight frame, and return final per-stream reports. The
     * engine stays queryable but rejects further submits.
     */
    std::vector<StreamReport> drain() EDGEPC_EXCLUDES(engineMu);

    /** Health snapshot of one stream (thread-safe). */
    [[nodiscard]] StreamHealth streamHealth(StreamId stream) const
        EDGEPC_EXCLUDES(engineMu);

    /** Full snapshot of one stream (thread-safe). */
    [[nodiscard]] StreamReport streamReport(StreamId stream) const
        EDGEPC_EXCLUDES(engineMu);

    /** Current global ladder floor. */
    [[nodiscard]] int ladderFloor() const EDGEPC_EXCLUDES(engineMu);

    /** Total frames currently queued across all streams. */
    [[nodiscard]] std::size_t queuedFrames() const
        EDGEPC_EXCLUDES(engineMu);

    /** Number of open streams. */
    [[nodiscard]] std::size_t streamCount() const
        EDGEPC_EXCLUDES(engineMu);

  private:
    /** One queued request. */
    struct Request
    {
        std::uint64_t seq = 0;
        PointCloud cloud;
        /** Submit time on the engine clock, ms. */
        double submitMs = 0.0;
        /** Absolute EDF key: submit + SLO, or submit + a large
            constant window when the stream has no SLO. */
        double deadlineMs = 0.0;
        bool hasSlo = false;
        std::promise<FrameResponse> promise;
    };

    /** Per-stream state. All instances live in `streams`, which is
        guarded by engineMu; every member below is therefore reached
        only with engineMu held (nested members cannot name the outer
        instance's capability, so the protection is expressed on the
        container, not per field). */
    struct StreamState
    {
        StreamId id = 0;
        StreamOptions opts;
        std::deque<Request> queue;
        std::uint64_t nextSeq = 0;
        StreamServeStats serve;
        std::unique_ptr<RobustPipeline> robust;
        CircuitBreaker breaker;
    };

    void dispatchLoop() EDGEPC_EXCLUDES(engineMu);
    std::size_t totalQueuedLocked() const EDGEPC_REQUIRES(engineMu);
    /** Flush quarantined queues and expired-deadline heads. */
    void shedStaleLocked(double now_ms) EDGEPC_REQUIRES(engineMu);
    /** EDF candidate selection; pops up to maxBatch same-level heads
        into batchScratch. Returns the count. */
    std::size_t selectLocked(double now_ms) EDGEPC_REQUIRES(engineMu);
    void executeSingle(StreamState &stream, Request &request)
        EDGEPC_EXCLUDES(engineMu);
    void executeBatch(std::size_t count) EDGEPC_EXCLUDES(engineMu);
    /** Whether a selected batch of @p count heads should run on the
        staged executor (dispatcher-only state). */
    bool pipelinedEligible(std::size_t count) const;
    /** Staged-executor counterpart of executeBatch: same sanitize /
        prolog / accounting contract, but the heads overlap stage-wise
        instead of stacking into one GEMM. */
    void executePipelined(std::size_t count) EDGEPC_EXCLUDES(engineMu);
    void shedRequestLocked(StreamState &stream, Request &request,
                           ErrorCode code, const char *why,
                           std::size_t StreamServeStats::*counter)
        EDGEPC_REQUIRES(engineMu);
    /** Invoke the observer and resolve the request's future. Called
        both with and without engineMu held (shed vs serve paths), so
        it touches no guarded state and carries no lock annotation. */
    void fulfill(Request &request, FrameResponse &&response);
    StreamReport reportLocked(const StreamState &stream) const
        EDGEPC_REQUIRES(engineMu);

    PointCloudModel &model;
    EdgePcConfig baseCfg;
    ServingOptions opts;
    /** Engine-epoch monotonic clock (all Request times use it). */
    Timer epoch;

    // EDGEPC_LOCK_RANK(40): engine dispatcher lock — outermost lock
    // of the serving subsystem; may acquire queueMutex (30, via
    // ThreadPool) and metricsMu (10) transitively, never the reverse.
    mutable edgepc::Mutex engineMu;
    /** Dispatcher wake (new work / drain / stop). condition_variable_any
        because the waiters hold an edgepc::UniqueMutexLock. */
    std::condition_variable_any wakeCv;
    /** Waiters on quiescence (drain). */
    std::condition_variable_any idleCv;
    std::vector<std::unique_ptr<StreamState>> streams
        EDGEPC_GUARDED_BY(engineMu);
    AdmissionController admission EDGEPC_GUARDED_BY(engineMu);
    bool draining EDGEPC_GUARDED_BY(engineMu) = false;
    bool stopping EDGEPC_GUARDED_BY(engineMu) = false;
    bool busy EDGEPC_GUARDED_BY(engineMu) = false;

    /** Preallocated dispatch scratch: the selection loop must not
        allocate (lint R6 hot region). */
    std::vector<StreamState *> candScratch EDGEPC_GUARDED_BY(engineMu);
    /** Dispatcher-only scratch: filled by selectLocked under engineMu,
        then consumed by executeBatch with the lock dropped. Safe
        because exactly one dispatcher thread exists — deliberately NOT
        EDGEPC_GUARDED_BY(engineMu). */
    std::vector<StreamState *> batchStreams;
    std::vector<Request> batchScratch;
    std::vector<PointCloud> batchClouds;
    /** Dispatcher-only staged executor for executePipelined (lazily
        created on the first pipelined batch; deliberately NOT
        EDGEPC_GUARDED_BY(engineMu) — see batchScratch). */
    std::unique_ptr<StagedPipeline> stagedExec;

    // Cached metric references (registry lookups take a lock).
    obs::Counter &mSubmitted;
    obs::Counter &mAccepted;
    obs::Counter &mRejected;
    obs::Counter &mShed;
    obs::Counter &mServed;
    obs::Counter &mBatchedFrames;
    obs::Counter &mBatches;
    obs::Counter &mPipelinedFrames;
    obs::Counter &mSloMisses;
    obs::Counter &mBreakerTrips;
    obs::Counter &mFloorRaises;
    obs::Gauge &gQueueDepth;
    obs::Gauge &gLadderFloor;
    obs::Histogram &hQueueMs;
    obs::Histogram &hTotalMs;

    std::thread dispatcher;
};

} // namespace serve
} // namespace edgepc

#endif // EDGEPC_SERVE_SERVING_ENGINE_HPP
