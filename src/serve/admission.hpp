/**
 * @file
 * Admission controller: global load shedding via the degradation
 * ladder.
 *
 * The controller watches the total number of queued frames across all
 * streams and maps sustained overload onto a process-wide minimum
 * ladder level (the "floor") that the serving engine pushes into
 * every stream's RobustPipeline. Overload therefore makes ALL streams
 * step down to cheaper configurations together — recovering latency
 * headroom — before any single stream starts dropping frames to
 * backpressure.
 *
 * Watermark hysteresis plus a hold time between steps keep the floor
 * from flapping on bursty arrivals. Pure logic with injected time;
 * not internally synchronized (engine-lock protected).
 */

#ifndef EDGEPC_SERVE_ADMISSION_HPP
#define EDGEPC_SERVE_ADMISSION_HPP

#include <cstddef>

namespace edgepc {
namespace serve {

/** Watermarks and pacing of the admission controller. */
struct AdmissionOptions
{
    /** Queued frames (all streams) at which the floor steps up.
        0 = derive from the stream queue capacities (half the total). */
    std::size_t highWatermark = 0;

    /** Queued frames at or below which the floor may step back down.
        0 = derive (an eighth of the total capacity, at least 1). */
    std::size_t lowWatermark = 0;

    /** Minimum time between floor changes, ms (also how long the
        depth must stay at/below the low watermark before stepping
        down). */
    double stepHoldMs = 25.0;

    /** Highest floor the controller will impose
        (RobustPipeline::kLadderLevels - 1 covers the whole ladder). */
    int maxFloor = 2;
};

/** Queue-depth -> ladder-floor controller. */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionOptions opts = {})
        : opts(opts)
    {
    }

    /** Re-derive auto watermarks when streams open (total capacity =
        sum of queue capacities). Explicit watermarks are kept. */
    void setCapacity(std::size_t total_capacity)
    {
        if (opts.highWatermark == 0) {
            high = total_capacity < 2 ? 1 : total_capacity / 2;
        } else {
            high = opts.highWatermark;
        }
        if (opts.lowWatermark == 0) {
            low = total_capacity < 8 ? 1 : total_capacity / 8;
        } else {
            low = opts.lowWatermark;
        }
        if (low >= high) {
            low = high - 1;
        }
    }

    /**
     * Account the current total queue depth and return the floor.
     * Call once per scheduler iteration.
     */
    int update(std::size_t total_queued, double now_ms)
    {
        if (total_queued >= high) {
            belowSinceMs = -1.0;
            if (level < opts.maxFloor &&
                now_ms - lastChangeMs >= opts.stepHoldMs) {
                ++level;
                ++floorRaises;
                lastChangeMs = now_ms;
            }
        } else if (total_queued <= low) {
            if (belowSinceMs < 0.0) {
                belowSinceMs = now_ms;
            }
            if (level > 0 && now_ms - belowSinceMs >= opts.stepHoldMs &&
                now_ms - lastChangeMs >= opts.stepHoldMs) {
                --level;
                lastChangeMs = now_ms;
            }
        } else {
            // Between the watermarks: hold the current floor.
            belowSinceMs = -1.0;
        }
        return level;
    }

    /** Current floor without accounting a new observation. */
    int floor() const { return level; }

    /** Times the floor has stepped up since construction. */
    std::size_t raises() const { return floorRaises; }

    std::size_t highWatermark() const { return high; }
    std::size_t lowWatermark() const { return low; }

  private:
    AdmissionOptions opts;
    std::size_t high = 1;
    std::size_t low = 1;
    int level = 0;
    double lastChangeMs = -1.0e300;
    double belowSinceMs = -1.0;
    std::size_t floorRaises = 0;
};

} // namespace serve
} // namespace edgepc

#endif // EDGEPC_SERVE_ADMISSION_HPP
