#include "sampling/fps.hpp"

#include <algorithm>
#include <limits>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

FarthestPointSampler::FarthestPointSampler(std::uint32_t start_index,
                                           bool parallel_update)
    : startIndex(start_index), parallelUpdate(parallel_update)
{
}

std::vector<std::uint32_t>
FarthestPointSampler::sample(std::span<const Vec3> points, std::size_t n)
{
    EDGEPC_TRACE_SCOPE("fps", "sampling");
    static obs::Counter &calls =
        obs::MetricsRegistry::global().counter("sampler.fps.calls");
    calls.add(1);
    const std::size_t total = points.size();
    n = std::min(n, total);
    std::vector<std::uint32_t> selected;
    if (n == 0) {
        return selected;
    }
    selected.reserve(n);

    // dist[i] = squared distance from point i to the selected set.
    std::vector<float> dist(total, std::numeric_limits<float>::max());

    std::uint32_t current = std::min<std::uint32_t>(
        startIndex, static_cast<std::uint32_t>(total - 1));
    selected.push_back(current);

    for (std::size_t step = 1; step < n; ++step) {
        const Vec3 last = points[current];

        // Relax distances against the newly selected point; this O(N)
        // update per selection is the quadratic-time core of FPS.
        if (parallelUpdate && total >= 4096) {
            parallelFor(0, total, [&](std::size_t i) {
                const float d = squaredDistance(points[i], last);
                if (d < dist[i]) {
                    dist[i] = d;
                }
            });
        } else {
            for (std::size_t i = 0; i < total; ++i) {
                const float d = squaredDistance(points[i], last);
                if (d < dist[i]) {
                    dist[i] = d;
                }
            }
        }
        dist[current] = 0.0f;

        // Pick the point with the maximum distance to the selected set.
        float best = -1.0f;
        std::uint32_t best_idx = 0;
        for (std::size_t i = 0; i < total; ++i) {
            if (dist[i] > best) {
                best = dist[i];
                best_idx = static_cast<std::uint32_t>(i);
            }
        }
        current = best_idx;
        selected.push_back(current);
    }
    return selected;
}

} // namespace edgepc
