#include "sampling/fps.hpp"

#include <algorithm>
#include <limits>

#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "geometry/simd_distance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pointcloud/points_soa.hpp"

namespace edgepc {

FarthestPointSampler::FarthestPointSampler(std::uint32_t start_index,
                                           bool parallel_update)
    : startIndex(start_index), parallelUpdate(parallel_update)
{
}

std::vector<std::uint32_t>
FarthestPointSampler::sample(std::span<const Vec3> points, std::size_t n)
{
    EDGEPC_TRACE_SCOPE("fps", "sampling");
    static obs::Counter &calls =
        obs::MetricsRegistry::global().counter("sampler.fps.calls");
    calls.add(1);
    const std::size_t total = points.size();
    n = std::min(n, total);
    std::vector<std::uint32_t> selected;
    if (n == 0) {
        return selected;
    }
    selected.resize(n);
    simd::recordDispatch();

    ScratchArena &arena = ScratchArena::local();
    const ScratchArena::Frame frame(arena);
    const PointsSoA soa(points, arena);
    const std::size_t padded = soa.paddedSize();

    // dist[i] = squared distance from point i to the selected set.
    // Padding lanes start (and stay) below every real distance so the
    // argmax scan can run over whole SIMD blocks.
    const std::span<float> dist = arena.alloc<float>(padded);
    std::fill(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(total),
              std::numeric_limits<float>::max());
    std::fill(dist.begin() + static_cast<std::ptrdiff_t>(total), dist.end(),
              -1.0f);

    std::uint32_t current = std::min<std::uint32_t>(
        startIndex, static_cast<std::uint32_t>(total - 1));
    selected[0] = current;

    // EDGEPC_HOT: the quadratic FPS core — no heap allocation below.
    for (std::size_t step = 1; step < n; ++step) {
        const Vec3 last = points[current];

        // Relax distances against the newly selected point; this O(N)
        // update per selection is the quadratic-time core of FPS. The
        // padded range is processed too: pad coordinates are huge, so
        // min() leaves the -1 sentinel lanes untouched.
        if (parallelUpdate && total >= 4096) {
            ThreadPool::globalPool().parallelForChunked(
                0, padded,
                [&](std::size_t lo, std::size_t hi) {
                    simd::batchMinUpdate(soa.xs() + lo, soa.ys() + lo,
                                         soa.zs() + lo, hi - lo, last,
                                         dist.data() + lo);
                },
                0);
        } else {
            simd::batchMinUpdate(soa.xs(), soa.ys(), soa.zs(), padded,
                                 last, dist.data());
        }
        dist[current] = 0.0f;

        // Pick the point with the maximum distance to the selected set
        // (first-occurrence ties, matching the original scalar scan).
        current =
            static_cast<std::uint32_t>(simd::batchArgmax(dist.data(), padded));
        selected[step] = current;
    }
    return selected;
}

} // namespace edgepc
