#include "sampling/morton_sampler.hpp"

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/uniform_index_sampler.hpp"

namespace edgepc {

MortonSampler::MortonSampler(int code_bits) : bits(code_bits) {}

MortonSampler::MortonSampler(const Vec3 &minimum, float grid_size,
                             int bits_per_axis)
    : bits(bits_per_axis * 3), fixedMinimum(minimum),
      fixedGridSize(grid_size), fixedBitsPerAxis(bits_per_axis)
{
}

MortonEncoder
MortonSampler::makeEncoder(std::span<const Vec3> points) const
{
    if (fixedMinimum) {
        return MortonEncoder(*fixedMinimum, fixedGridSize,
                             fixedBitsPerAxis);
    }
    return MortonEncoder(Aabb::of(points), bits);
}

Structurization
MortonSampler::structurize(std::span<const Vec3> points) const
{
    EDGEPC_TRACE_SCOPE("structurize", "sampling");
    static obs::Counter &calls = obs::MetricsRegistry::global().counter(
        "sampler.morton.structurize_calls");
    calls.add(1);
    Structurization s;
    const MortonEncoder encoder = makeEncoder(points);
    encoder.encodeAll(points, s.codes);
    s.order = radixSortIndices(s.codes);
    s.rank.resize(s.order.size());
    parallelFor(0, s.order.size(), [&](std::size_t pos) {
        s.rank[s.order[pos]] = static_cast<std::uint32_t>(pos);
    });
    return s;
}

std::vector<std::uint32_t>
MortonSampler::sampleStructurized(const Structurization &s,
                                  std::size_t n) const
{
    const auto positions =
        UniformIndexSampler::stridePositions(s.size(), n);
    std::vector<std::uint32_t> selected(positions.size());
    // Fully parallel pick (Algo 1 lines 11-13).
    parallelFor(0, positions.size(), [&](std::size_t k) {
        selected[k] = s.order[positions[k]];
    });
    return selected;
}

std::vector<std::uint32_t>
MortonSampler::sample(std::span<const Vec3> points, std::size_t n)
{
    EDGEPC_TRACE_SCOPE("morton", "sampling");
    static obs::Counter &calls =
        obs::MetricsRegistry::global().counter("sampler.morton.calls");
    calls.add(1);
    const Structurization s = structurize(points);
    return sampleStructurized(s, n);
}

} // namespace edgepc
