/**
 * @file
 * Feature up-sampling / interpolation (the FP-module "reverse
 * sampling" stage of PointNet++, Sec 5.1.2 of the paper).
 *
 * Both the exact baseline and the Morton approximation produce an
 * InterpolationPlan: for every target point, k source indexes into the
 * sampled set plus normalized inverse-distance weights. The NN engine
 * applies the plan to a feature matrix (nn/grouping.hpp).
 *
 * Baseline: exact 3-nearest-neighbor search over the whole sampled set
 * — O(N * n). EdgePC: because the sampled set was stride-picked from
 * the Morton order, the (approximate) nearest samples of a point at
 * sorted position j are the samples at nearby stride positions; only a
 * constant-size candidate window is examined — O(N).
 */

#ifndef EDGEPC_SAMPLING_INTERPOLATION_HPP
#define EDGEPC_SAMPLING_INTERPOLATION_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec3.hpp"
#include "sampling/morton_sampler.hpp"

namespace edgepc {

/** Per-target interpolation sources and weights. */
struct InterpolationPlan
{
    /** Sources per target (3 for the standard FP module). */
    std::size_t k = 0;

    /** Row-major targets x k indexes into the sampled set. */
    std::vector<std::uint32_t> indices;

    /** Row-major targets x k weights; each row sums to 1. */
    std::vector<float> weights;

    /** Number of target points. */
    std::size_t targets() const { return k == 0 ? 0 : indices.size() / k; }
};

/**
 * Exact k-nearest interpolation plan (baseline).
 *
 * @param targets Points whose features are being reconstructed (N).
 * @param sources Sampled points carrying features (n).
 * @param k Number of sources per target (default 3).
 */
InterpolationPlan exactInterpolation(std::span<const Vec3> targets,
                                     std::span<const Vec3> sources,
                                     std::size_t k = 3);

/**
 * Morton-code-based approximate up-sampler (Sec 5.1.2, "Optimizing
 * Up-sampling").
 *
 * Requires the structurization of the *original* cloud and the sample
 * count n used by the Morton down-sampler; the sampled set is assumed
 * to be the stride picks of the sorted order (sample q sits at sorted
 * position floor(q*N/n)). For a target at sorted position j the
 * candidate sources are the samples at stride slots q-2..q+2 where
 * q = floor(j*n/N); the paper's 4-candidate window around
 * j' = j - j%step, extended with the slot containing j itself. The
 * best @p k candidates by true distance are kept.
 */
class MortonUpsampler
{
  public:
    /**
     * @param window_halfwidth Candidate stride slots examined on each
     *        side of the target's own slot (paper uses 2).
     * @param k Sources kept per target (default 3).
     */
    explicit MortonUpsampler(int window_halfwidth = 2, std::size_t k = 3);

    /**
     * Build the plan.
     *
     * @param points Original cloud positions (N).
     * @param s Structurization of @p points.
     * @param samples Indexes selected by the Morton sampler (n); must
     *        be the stride picks of s.order.
     */
    InterpolationPlan plan(std::span<const Vec3> points,
                           const Structurization &s,
                           std::span<const std::uint32_t> samples) const;

  private:
    int halfWidth;
    std::size_t numSources;
};

} // namespace edgepc

#endif // EDGEPC_SAMPLING_INTERPOLATION_HPP
