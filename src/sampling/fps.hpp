/**
 * @file
 * Farthest point sampling — the state-of-the-art exact sampler the
 * paper uses as its baseline (Sec 5.1.1, Figs 7 & 8a).
 *
 * Iteratively selects the point farthest from the already-selected set.
 * Each selection updates a running nearest-selected-distance array in
 * O(N); sampling n points costs O(nN) ~ O(N^2), and the selections are
 * inherently sequential — exactly the inefficiency EdgePC removes.
 */

#ifndef EDGEPC_SAMPLING_FPS_HPP
#define EDGEPC_SAMPLING_FPS_HPP

#include "sampling/sampler.hpp"

namespace edgepc {

/** Exact farthest point sampler. */
class FarthestPointSampler : public Sampler
{
  public:
    /**
     * @param start_index Index of the first selected point. The paper
     *        picks it randomly; common implementations use 0. Defaults
     *        to 0 for determinism.
     * @param parallel_update Update the distance array on the thread
     *        pool (the only parallelism FPS admits).
     */
    explicit FarthestPointSampler(std::uint32_t start_index = 0,
                                  bool parallel_update = true);

    std::vector<std::uint32_t> sample(std::span<const Vec3> points,
                                      std::size_t n) override;

    std::string name() const override { return "fps"; }

  private:
    std::uint32_t startIndex;
    bool parallelUpdate;
};

} // namespace edgepc

#endif // EDGEPC_SAMPLING_FPS_HPP
