#include "sampling/interpolation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace edgepc {

namespace {

/**
 * Turn per-target candidate (source index, squared distance) lists
 * into normalized inverse-distance weights written into the plan row.
 */
void
writeRow(InterpolationPlan &plan, std::size_t target,
         std::span<const std::pair<float, std::uint32_t>> best)
{
    const std::size_t k = plan.k;
    constexpr float eps = 1e-8f;
    float weight_sum = 0.0f;
    for (std::size_t j = 0; j < k; ++j) {
        const auto &cand = best[std::min(j, best.size() - 1)];
        plan.indices[target * k + j] = cand.second;
        const float w = 1.0f / (cand.first + eps);
        plan.weights[target * k + j] = w;
        weight_sum += w;
    }
    const float inv = 1.0f / weight_sum;
    for (std::size_t j = 0; j < k; ++j) {
        plan.weights[target * k + j] *= inv;
    }
}

/** Keep the k smallest (distance, index) pairs, ascending by distance. */
void
insertCandidate(std::vector<std::pair<float, std::uint32_t>> &best,
                std::size_t k, float dist, std::uint32_t idx)
{
    if (best.size() < k) {
        best.emplace_back(dist, idx);
        std::push_heap(best.begin(), best.end());
        return;
    }
    if (dist < best.front().first) {
        std::pop_heap(best.begin(), best.end());
        best.back() = {dist, idx};
        std::push_heap(best.begin(), best.end());
    }
}

} // namespace

InterpolationPlan
exactInterpolation(std::span<const Vec3> targets,
                   std::span<const Vec3> sources, std::size_t k)
{
    if (sources.empty()) {
        raise(ErrorCode::EmptyCloud, "exactInterpolation: empty source set");
    }
    k = std::min(k, sources.size());

    InterpolationPlan plan;
    plan.k = k;
    plan.indices.resize(targets.size() * k);
    plan.weights.resize(targets.size() * k);

    parallelFor(0, targets.size(), [&](std::size_t t) {
        std::vector<std::pair<float, std::uint32_t>> best;
        best.reserve(k + 1);
        for (std::size_t s = 0; s < sources.size(); ++s) {
            insertCandidate(best, k,
                            squaredDistance(targets[t], sources[s]),
                            static_cast<std::uint32_t>(s));
        }
        std::sort_heap(best.begin(), best.end());
        writeRow(plan, t, best);
    });
    return plan;
}

MortonUpsampler::MortonUpsampler(int window_halfwidth, std::size_t k)
    : halfWidth(window_halfwidth), numSources(k)
{
}

InterpolationPlan
MortonUpsampler::plan(std::span<const Vec3> points,
                      const Structurization &s,
                      std::span<const std::uint32_t> samples) const
{
    const std::size_t total = points.size();
    const std::size_t n = samples.size();
    if (n == 0) {
        raise(ErrorCode::EmptyCloud, "MortonUpsampler: empty sample set");
    }
    const std::size_t k = std::min(numSources, n);

    InterpolationPlan plan;
    plan.k = k;
    plan.indices.resize(total * k);
    plan.weights.resize(total * k);

    parallelFor(0, total, [&](std::size_t t) {
        // Sorted position of the target and its own stride slot.
        const std::size_t j = s.rank[t];
        const std::size_t q = j * n / total;

        // Candidate slots q-halfWidth .. q+halfWidth, clamped. This is
        // the paper's window of the 4 samples around j' = j - j%step,
        // plus the slot containing j itself.
        const std::size_t lo =
            q >= static_cast<std::size_t>(halfWidth)
                ? q - static_cast<std::size_t>(halfWidth)
                : 0;
        const std::size_t hi =
            std::min(n - 1, q + static_cast<std::size_t>(halfWidth));

        std::vector<std::pair<float, std::uint32_t>> best;
        best.reserve(k + 1);
        for (std::size_t slot = lo; slot <= hi; ++slot) {
            const Vec3 &src = points[samples[slot]];
            insertCandidate(best, k, squaredDistance(points[t], src),
                            static_cast<std::uint32_t>(slot));
        }
        std::sort_heap(best.begin(), best.end());
        writeRow(plan, t, best);
    });
    return plan;
}

} // namespace edgepc
