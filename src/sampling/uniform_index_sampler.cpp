#include "sampling/uniform_index_sampler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

std::vector<std::uint32_t>
UniformIndexSampler::stridePositions(std::size_t total, std::size_t n)
{
    n = std::min(n, total);
    std::vector<std::uint32_t> picks(n);
    for (std::size_t k = 0; k < n; ++k) {
        picks[k] = static_cast<std::uint32_t>(k * total / n);
    }
    return picks;
}

std::vector<std::uint32_t>
UniformIndexSampler::sample(std::span<const Vec3> points, std::size_t n)
{
    EDGEPC_TRACE_SCOPE("uniform-index", "sampling");
    static obs::Counter &calls = obs::MetricsRegistry::global().counter(
        "sampler.uniform-index.calls");
    calls.add(1);
    return stridePositions(points.size(), n);
}

} // namespace edgepc
