/**
 * @file
 * The EdgePC Morton-code-based sampler (Algo 1 / Fig 8b of the paper).
 *
 * Three steps: (1) generate a Morton code per point — fully parallel;
 * (2) sort the codes, yielding the structurized index array I'; and
 * (3) uniform-stride pick n of the sorted positions — fully parallel.
 * Total complexity O(N log N) (O(N) with the radix sort used here)
 * versus the O(N^2) of farthest point sampling, with no sequential
 * selection dependency.
 *
 * The intermediate structurization (codes + order) is exposed so the
 * neighbor searcher and the up-sampler can reuse it at zero extra cost,
 * which is the cross-stage reuse the paper relies on (Sec 5.2.3).
 */

#ifndef EDGEPC_SAMPLING_MORTON_SAMPLER_HPP
#define EDGEPC_SAMPLING_MORTON_SAMPLER_HPP

#include <optional>

#include "geometry/morton.hpp"
#include "sampling/sampler.hpp"

namespace edgepc {

/**
 * Result of structurizing a cloud: the Morton codes and the sorted
 * index permutation I' (Sec 4.1), plus the stride positions chosen by
 * the most recent sampling call.
 */
struct Structurization
{
    /** Morton code per original point index. */
    std::vector<std::uint64_t> codes;

    /** I' : sorted position -> original point index. */
    std::vector<std::uint32_t> order;

    /** Inverse of order: original point index -> sorted position. */
    std::vector<std::uint32_t> rank;

    /** Number of points N. */
    std::size_t size() const { return order.size(); }
};

/** Morton-code-based approximate down-sampler. */
class MortonSampler : public Sampler
{
  public:
    /**
     * @param code_bits Total Morton code bit budget a (Sec 5.1.3);
     *        floor(a/3) bits per axis. Paper default 32.
     */
    explicit MortonSampler(int code_bits = MortonEncoder::kDefaultCodeBits);

    /**
     * Construct with an explicit grid (Algo 1's r and minimum inputs),
     * e.g. to replay the paper's worked example.
     */
    MortonSampler(const Vec3 &minimum, float grid_size,
                  int bits_per_axis = 21);

    /**
     * Structurize @p points: generate codes and the sorted order I'.
     * Pure function of the inputs; does not modify sampler state.
     */
    Structurization structurize(std::span<const Vec3> points) const;

    /**
     * Sample using a precomputed structurization (skips code
     * generation and sorting — the reuse path).
     */
    std::vector<std::uint32_t>
    sampleStructurized(const Structurization &s, std::size_t n) const;

    std::vector<std::uint32_t> sample(std::span<const Vec3> points,
                                      std::size_t n) override;

    std::string name() const override { return "morton"; }

    /** Total Morton code bits configured. */
    int codeBits() const { return bits; }

  private:
    MortonEncoder makeEncoder(std::span<const Vec3> points) const;

    int bits;
    std::optional<Vec3> fixedMinimum;
    float fixedGridSize = 0.0f;
    int fixedBitsPerAxis = 0;
};

} // namespace edgepc

#endif // EDGEPC_SAMPLING_MORTON_SAMPLER_HPP
