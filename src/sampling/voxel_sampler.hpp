/**
 * @file
 * Voxel-grid down-sampler: the classic PCL-style baseline that keeps
 * one representative point per occupied voxel.
 *
 * Included as an additional exact-ish baseline between FPS (best
 * coverage, O(nN)) and raw uniform sampling (no coverage guarantee):
 * voxel sampling is area-stratified like FPS but single-pass like the
 * Morton sampler — in fact it is the "bucketed" cousin of the Morton
 * sampler, which replaces the voxel buckets with a sorted curve.
 */

#ifndef EDGEPC_SAMPLING_VOXEL_SAMPLER_HPP
#define EDGEPC_SAMPLING_VOXEL_SAMPLER_HPP

#include "sampling/sampler.hpp"

namespace edgepc {

/** One-point-per-voxel down-sampler with exact output count. */
class VoxelGridSampler : public Sampler
{
  public:
    /**
     * @param seed Seed for the fill-in picks when fewer voxels are
     *        occupied than points requested.
     */
    explicit VoxelGridSampler(std::uint64_t seed = 3);

    /**
     * Select n points: bisect the voxel size until the occupied-voxel
     * count is >= n, keep the point nearest each voxel center
     * (ordered by voxel Morton code), stride down to exactly n, and
     * top up with unused points if the cloud has fewer distinct
     * voxels than requested.
     */
    std::vector<std::uint32_t> sample(std::span<const Vec3> points,
                                      std::size_t n) override;

    std::string name() const override { return "voxel-grid"; }

  private:
    std::uint64_t fillSeed;
};

} // namespace edgepc

#endif // EDGEPC_SAMPLING_VOXEL_SAMPLER_HPP
