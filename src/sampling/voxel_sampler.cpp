#include "sampling/voxel_sampler.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/rng.hpp"
#include "geometry/morton.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/uniform_index_sampler.hpp"

namespace edgepc {

VoxelGridSampler::VoxelGridSampler(std::uint64_t seed) : fillSeed(seed) {}

std::vector<std::uint32_t>
VoxelGridSampler::sample(std::span<const Vec3> points, std::size_t n)
{
    EDGEPC_TRACE_SCOPE("voxel-grid", "sampling");
    static obs::Counter &calls = obs::MetricsRegistry::global().counter(
        "sampler.voxel-grid.calls");
    calls.add(1);
    const std::size_t total = points.size();
    n = std::min(n, total);
    if (n == 0) {
        return {};
    }

    const Aabb bounds = Aabb::of(points);

    // Representative of each occupied voxel: the point nearest the
    // voxel center. Key = voxel Morton code.
    struct Representative
    {
        std::uint32_t point;
        float distance;
    };

    // Bisect bits-per-axis upward until enough voxels are occupied
    // (coarse grids merge too many points into one voxel).
    std::vector<std::pair<std::uint64_t, std::uint32_t>> reps_sorted;
    for (int bits = 2; bits <= 10; ++bits) {
        const MortonEncoder encoder(bounds, bits * 3);
        std::unordered_map<std::uint64_t, Representative> reps;
        reps.reserve(total / 4);
        for (std::size_t i = 0; i < total; ++i) {
            const std::uint64_t code = encoder.code(points[i]);
            const float d = squaredDistance(
                points[i], encoder.voxelCenter(code));
            const auto it = reps.find(code);
            if (it == reps.end() || d < it->second.distance) {
                reps[code] = {static_cast<std::uint32_t>(i), d};
            }
        }
        if (reps.size() >= n || bits == 10) {
            reps_sorted.clear();
            reps_sorted.reserve(reps.size());
            for (const auto &[code, rep] : reps) {
                reps_sorted.emplace_back(code, rep.point);
            }
            std::sort(reps_sorted.begin(), reps_sorted.end());
            if (reps.size() >= n) {
                break;
            }
        }
    }

    // Stride down the Morton-ordered voxel representatives to n.
    std::vector<std::uint32_t> selected;
    selected.reserve(n);
    const auto positions = UniformIndexSampler::stridePositions(
        reps_sorted.size(), std::min(n, reps_sorted.size()));
    for (const auto pos : positions) {
        selected.push_back(reps_sorted[pos].second);
    }

    // Top up (fewer occupied voxels than requested points): add
    // not-yet-chosen points at random.
    if (selected.size() < n) {
        std::vector<bool> used(total, false);
        for (const auto idx : selected) {
            used[idx] = true;
        }
        Rng rng(fillSeed);
        while (selected.size() < n) {
            const auto idx =
                static_cast<std::uint32_t>(rng.nextBelow(total));
            if (!used[idx]) {
                used[idx] = true;
                selected.push_back(idx);
            }
        }
    }
    return selected;
}

} // namespace edgepc
