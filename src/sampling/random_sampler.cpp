#include "sampling/random_sampler.hpp"

#include <algorithm>
#include <numeric>

namespace edgepc {

RandomSampler::RandomSampler(std::uint64_t seed) : rng(seed) {}

std::vector<std::uint32_t>
RandomSampler::sample(std::span<const Vec3> points, std::size_t n)
{
    const std::size_t total = points.size();
    n = std::min(n, total);

    std::vector<std::uint32_t> index(total);
    std::iota(index.begin(), index.end(), 0u);
    // Partial Fisher-Yates: only the first n positions are shuffled.
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = i + rng.nextBelow(total - i);
        std::swap(index[i], index[j]);
    }
    index.resize(n);
    return index;
}

} // namespace edgepc
