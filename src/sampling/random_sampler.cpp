#include "sampling/random_sampler.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

RandomSampler::RandomSampler(std::uint64_t seed) : rng(seed) {}

std::vector<std::uint32_t>
RandomSampler::sample(std::span<const Vec3> points, std::size_t n)
{
    EDGEPC_TRACE_SCOPE("random", "sampling");
    static obs::Counter &calls =
        obs::MetricsRegistry::global().counter("sampler.random.calls");
    calls.add(1);
    const std::size_t total = points.size();
    n = std::min(n, total);

    std::vector<std::uint32_t> index(total);
    std::iota(index.begin(), index.end(), 0u);
    // Partial Fisher-Yates: only the first n positions are shuffled.
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = i + rng.nextBelow(total - i);
        std::swap(index[i], index[j]);
    }
    index.resize(n);
    return index;
}

} // namespace edgepc
