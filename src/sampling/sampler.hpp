/**
 * @file
 * Sampler interface: every down-sampling strategy maps a point set to
 * the indexes of n selected points.
 */

#ifndef EDGEPC_SAMPLING_SAMPLER_HPP
#define EDGEPC_SAMPLING_SAMPLER_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geometry/vec3.hpp"

namespace edgepc {

/** Abstract down-sampler. */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /**
     * Select @p n point indexes out of @p points.
     *
     * @param points Input cloud positions (size N).
     * @param n Number of points to select (clamped to N).
     * @return Indexes of the selected points, in selection order.
     */
    virtual std::vector<std::uint32_t>
    sample(std::span<const Vec3> points, std::size_t n) = 0;

    /** Human-readable sampler name for reports. */
    virtual std::string name() const = 0;
};

} // namespace edgepc

#endif // EDGEPC_SAMPLING_SAMPLER_HPP
