/**
 * @file
 * Random down-sampler: selects n distinct indexes uniformly at random.
 * A cheap baseline with no coverage guarantee.
 */

#ifndef EDGEPC_SAMPLING_RANDOM_SAMPLER_HPP
#define EDGEPC_SAMPLING_RANDOM_SAMPLER_HPP

#include "common/rng.hpp"
#include "sampling/sampler.hpp"

namespace edgepc {

/** Uniform random sampler without replacement (partial Fisher-Yates). */
class RandomSampler : public Sampler
{
  public:
    explicit RandomSampler(std::uint64_t seed = 1);

    std::vector<std::uint32_t> sample(std::span<const Vec3> points,
                                      std::size_t n) override;

    std::string name() const override { return "random"; }

  private:
    Rng rng;
};

} // namespace edgepc

#endif // EDGEPC_SAMPLING_RANDOM_SAMPLER_HPP
