/**
 * @file
 * Uniform index-stride sampler: picks every (N/n)-th point of whatever
 * ordering the cloud currently has.
 *
 * On raw (acquisition-ordered) clouds this is the poor sampler of
 * Fig 4b / Fig 5b; on Morton-structurized clouds it is the final step
 * of the EdgePC sampler (Algo 1 lines 11-13).
 */

#ifndef EDGEPC_SAMPLING_UNIFORM_INDEX_SAMPLER_HPP
#define EDGEPC_SAMPLING_UNIFORM_INDEX_SAMPLER_HPP

#include "sampling/sampler.hpp"

namespace edgepc {

/** Stride sampler over the current point order. */
class UniformIndexSampler : public Sampler
{
  public:
    UniformIndexSampler() = default;

    std::vector<std::uint32_t> sample(std::span<const Vec3> points,
                                      std::size_t n) override;

    std::string name() const override { return "uniform-index"; }

    /**
     * Stride-pick @p n positions out of @p total: position k maps to
     * floor(k * total / n). Exposed so the Morton sampler and the
     * up-sampler share the exact same stride arithmetic.
     */
    static std::vector<std::uint32_t> stridePositions(std::size_t total,
                                                      std::size_t n);
};

} // namespace edgepc

#endif // EDGEPC_SAMPLING_UNIFORM_INDEX_SAMPLER_HPP
