/**
 * @file
 * Neighbor-search interface shared by the exact baselines (brute-force
 * k-NN, ball query, k-d tree) and the EdgePC approximate searcher.
 *
 * A search maps each query point to exactly k candidate indexes (the
 * fixed-k convention of PointNet++/DGCNN grouping: when fewer than k
 * true neighbors exist, the closest found index is repeated, matching
 * the ball-query padding behaviour of the reference implementations).
 */

#ifndef EDGEPC_NEIGHBOR_NEIGHBOR_SEARCH_HPP
#define EDGEPC_NEIGHBOR_NEIGHBOR_SEARCH_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geometry/vec3.hpp"

namespace edgepc {

/** Fixed-k neighbor lists for a batch of queries. */
struct NeighborLists
{
    /** Neighbors per query. */
    std::size_t k = 0;

    /** Row-major queries x k candidate indexes. */
    std::vector<std::uint32_t> indices;

    /** Number of query rows. */
    [[nodiscard]] std::size_t queries() const
    {
        return k == 0 ? 0 : indices.size() / k;
    }

    /** Neighbor row for query @p q. */
    [[nodiscard]] std::span<const std::uint32_t> row(std::size_t q) const
    {
        return {indices.data() + q * k, k};
    }
};

/** Abstract neighbor searcher. */
class NeighborSearch
{
  public:
    virtual ~NeighborSearch() = default;

    /**
     * Find k neighbors among @p candidates for every query.
     *
     * @param queries Query positions.
     * @param candidates Candidate positions (the search space).
     * @param k Neighbors per query.
     */
    [[nodiscard]] virtual NeighborLists
    search(std::span<const Vec3> queries, std::span<const Vec3> candidates,
           std::size_t k) = 0;

    /** Human-readable searcher name for reports. */
    virtual std::string name() const = 0;
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_NEIGHBOR_SEARCH_HPP
