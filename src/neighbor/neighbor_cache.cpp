#include "neighbor/neighbor_cache.hpp"

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace edgepc {

namespace {

/** Layers served from the cache (reused neighbor lists). */
obs::Counter &
hitCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter("neighbor_cache.hits");
    return counter;
}

/** Layers that had to compute their own lists. */
obs::Counter &
missCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter("neighbor_cache.misses");
    return counter;
}

/** Bytes held by the cached index matrix. */
obs::Gauge &
bytesGauge()
{
    static obs::Gauge &gauge =
        obs::MetricsRegistry::global().gauge("neighbor_cache.bytes");
    return gauge;
}

} // namespace

NeighborCache::NeighborCache(int reuse_distance) : dist(reuse_distance)
{
    if (reuse_distance < 0) {
        // NOLINTNEXTLINE(edgepc-R1): impossible configuration, not data
        fatal("NeighborCache: reuse_distance must be >= 0 (got %d)",
              reuse_distance);
    }
}

bool
NeighborCache::shouldCompute(int layer) const
{
    if (dist == 0 || layer <= 0) {
        return true;
    }
    // Pattern with distance d: compute, reuse x d, compute, reuse x d...
    return layer % (dist + 1) == 0;
}

void
NeighborCache::store(int layer, NeighborLists lists)
{
    missCounter().add(1);
    storedLayer = layer;
    cached = std::move(lists);
    bytesGauge().set(static_cast<std::int64_t>(memoryBytes()));
}

const NeighborLists &
NeighborCache::lookup(int layer) const
{
    if (storedLayer < 0) {
        // NOLINTNEXTLINE(edgepc-R1): caller protocol violation, not data
        panic("NeighborCache::lookup(%d) before any store", layer);
    }
    if (shouldCompute(layer)) {
        // NOLINTNEXTLINE(edgepc-R1): caller protocol violation, not data
        panic("NeighborCache::lookup(%d) on a compute layer", layer);
    }
    hitCounter().add(1);
    return cached;
}

std::size_t
NeighborCache::memoryBytes() const
{
    return cached.indices.size() * sizeof(std::uint32_t);
}

void
NeighborCache::clear()
{
    storedLayer = -1;
    cached = NeighborLists{};
}

} // namespace edgepc
