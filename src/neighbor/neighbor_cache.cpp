#include "neighbor/neighbor_cache.hpp"

#include "common/logging.hpp"

namespace edgepc {

NeighborCache::NeighborCache(int reuse_distance) : dist(reuse_distance)
{
    if (reuse_distance < 0) {
        // NOLINTNEXTLINE(edgepc-R1): impossible configuration, not data
        fatal("NeighborCache: reuse_distance must be >= 0 (got %d)",
              reuse_distance);
    }
}

bool
NeighborCache::shouldCompute(int layer) const
{
    if (dist == 0 || layer <= 0) {
        return true;
    }
    // Pattern with distance d: compute, reuse x d, compute, reuse x d...
    return layer % (dist + 1) == 0;
}

void
NeighborCache::store(int layer, NeighborLists lists)
{
    storedLayer = layer;
    cached = std::move(lists);
}

const NeighborLists &
NeighborCache::lookup(int layer) const
{
    if (storedLayer < 0) {
        // NOLINTNEXTLINE(edgepc-R1): caller protocol violation, not data
        panic("NeighborCache::lookup(%d) before any store", layer);
    }
    if (shouldCompute(layer)) {
        // NOLINTNEXTLINE(edgepc-R1): caller protocol violation, not data
        panic("NeighborCache::lookup(%d) on a compute layer", layer);
    }
    return cached;
}

std::size_t
NeighborCache::memoryBytes() const
{
    return cached.indices.size() * sizeof(std::uint32_t);
}

void
NeighborCache::clear()
{
    storedLayer = -1;
    cached = NeighborLists{};
}

} // namespace edgepc
