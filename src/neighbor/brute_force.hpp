/**
 * @file
 * Exact brute-force k-nearest-neighbor search: the k-NN baseline of
 * Sec 5.2.1. O(N) distance evaluations per query, O(QN) total.
 */

#ifndef EDGEPC_NEIGHBOR_BRUTE_FORCE_HPP
#define EDGEPC_NEIGHBOR_BRUTE_FORCE_HPP

#include "neighbor/neighbor_search.hpp"

namespace edgepc {

/** Exact k-NN by exhaustive distance computation. */
class BruteForceKnn : public NeighborSearch
{
  public:
    BruteForceKnn() = default;

    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> queries,
                         std::span<const Vec3> candidates,
                         std::size_t k) override;

    std::string name() const override { return "knn"; }

    /**
     * k-NN in an arbitrary-dimension feature space (row-major points
     * of dimension dim). Used by DGCNN's later EdgeConv modules, which
     * search neighbors by feature distance (Sec 5.2.3).
     */
    [[nodiscard]]
    static NeighborLists searchFeatureSpace(std::span<const float> queries,
                                            std::span<const float> candidates,
                                            std::size_t dim, std::size_t k);
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_BRUTE_FORCE_HPP
