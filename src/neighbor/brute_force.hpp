/**
 * @file
 * Exact brute-force k-nearest-neighbor search: the k-NN baseline of
 * Sec 5.2.1. O(N) distance evaluations per query, O(QN) total.
 */

#ifndef EDGEPC_NEIGHBOR_BRUTE_FORCE_HPP
#define EDGEPC_NEIGHBOR_BRUTE_FORCE_HPP

#include "geometry/simd_distance.hpp"
#include "neighbor/neighbor_search.hpp"

namespace edgepc {

/** Exact k-NN by exhaustive distance computation. */
class BruteForceKnn : public NeighborSearch
{
  public:
    /**
     * @param fixed_point Fixed-point distance gate (DESIGN.md §15).
     *     Off (default) keeps exact fp32 distances; On ranks neighbors
     *     by s16 grid distance when the cloud quantizes. Auto stays
     *     Off for k-NN — snap error reorders near-ties — so the
     *     approximation is strictly opt-in; EDGEPC_SIMD (int8 |
     *     scalar | simd) overrides. Coordinate-space search() only;
     *     searchFeatureSpace always runs fp32.
     */
    explicit BruteForceKnn(
        simd::FixedPointMode fixed_point = simd::FixedPointMode::Off)
        : fixedMode(fixed_point)
    {
    }

    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> queries,
                         std::span<const Vec3> candidates,
                         std::size_t k) override;

    std::string name() const override { return "knn"; }

    /**
     * k-NN in an arbitrary-dimension feature space (row-major points
     * of dimension dim). Used by DGCNN's later EdgeConv modules, which
     * search neighbors by feature distance (Sec 5.2.3).
     */
    [[nodiscard]]
    static NeighborLists searchFeatureSpace(std::span<const float> queries,
                                            std::span<const float> candidates,
                                            std::size_t dim, std::size_t k);

  private:
    simd::FixedPointMode fixedMode;
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_BRUTE_FORCE_HPP
