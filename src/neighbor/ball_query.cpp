#include "neighbor/ball_query.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

BallQuery::BallQuery(float radius) : r(radius)
{
    if (radius <= 0.0f) {
        raise(ErrorCode::InvalidArgument, "BallQuery: radius must be positive (got %f)",
              static_cast<double>(radius));
    }
}

NeighborLists
BallQuery::search(std::span<const Vec3> queries,
                  std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("ball-query", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.ball-query.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "BallQuery: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());
    const float r2 = r * r;

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);

    parallelFor(0, queries.size(), [&](std::size_t q) {
        std::uint32_t *row = out.indices.data() + q * k;
        std::size_t found = 0;
        float nearest_dist = std::numeric_limits<float>::max();
        std::uint32_t nearest_idx = 0;

        for (std::size_t c = 0; c < candidates.size() && found < k; ++c) {
            const float d = squaredDistance(queries[q], candidates[c]);
            if (d < nearest_dist) {
                nearest_dist = d;
                nearest_idx = static_cast<std::uint32_t>(c);
            }
            if (d <= r2) {
                row[found++] = static_cast<std::uint32_t>(c);
            }
        }

        if (found == 0) {
            // Empty ball: fall back to the nearest candidate seen so
            // far (we may have exited early only when found == k, so
            // at this point the whole set was scanned).
            row[0] = nearest_idx;
            found = 1;
        }
        // Pad with the first in-ball index (reference convention).
        for (std::size_t j = found; j < k; ++j) {
            row[j] = row[0];
        }
    });
    return out;
}

} // namespace edgepc
