#include "neighbor/ball_query.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "geometry/simd_distance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pointcloud/points_soa.hpp"

namespace edgepc {

namespace {

/// Distances are computed (and the in-ball mask evaluated) in blocks of
/// this many candidates; the early exit at k in-ball hits still fires
/// at block granularity, so a small block keeps the overshoot cheap.
constexpr std::size_t kChunk = 256;

} // namespace

BallQuery::BallQuery(float radius, simd::FixedPointMode fixed_point)
    : r(radius), fixedMode(fixed_point)
{
    if (radius <= 0.0f) {
        raise(ErrorCode::InvalidArgument, "BallQuery: radius must be positive (got %f)",
              static_cast<double>(radius));
    }
}

NeighborLists
BallQuery::search(std::span<const Vec3> queries,
                  std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("ball-query", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.ball-query.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "BallQuery: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());
    const float r2 = r * r;
    simd::recordDispatch();

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);

    ScratchArena &caller_arena = ScratchArena::local();
    const ScratchArena::Frame frame(caller_arena);
    const PointsSoA soa(candidates, caller_arena);
    const std::size_t nc = candidates.size();

    // Fixed-point route (DESIGN.md §15): snap candidates to the
    // per-cloud s16 grid once, then every chunk runs the integer
    // madd kernel against the quantized query with the radius
    // threshold re-expressed in quantized units. In-ball membership
    // near the boundary can differ from fp32 by up to one grid step;
    // the gate (env > per-searcher config > scale/radius heuristic)
    // keeps the path off unless that error is acceptable.
    PointsFixed fixed;
    bool use_fixed = false;
    if (simd::fixedPointConsidered(fixedMode)) {
        fixed = PointsFixed(soa, caller_arena);
        use_fixed = fixed.valid() &&
                    simd::resolveFixedPointBall(fixedMode, fixed.scale(),
                                                r);
    }
    const float r2q = use_fixed ? fixed.radiusSqQ(r) : r2;
    if (use_fixed) {
        simd::recordFixedDispatch(queries.size());
    }

    // EDGEPC_HOT: per-query in-ball scan — arena scratch only.
    parallelFor(0, queries.size(), [&](std::size_t q) {
        ScratchArena &arena = ScratchArena::local();
        const ScratchArena::Frame qframe(arena);
        const std::span<float> dist = arena.alloc<float>(kChunk);
        const std::span<std::uint64_t> mask =
            arena.alloc<std::uint64_t>(simd::maskWords(kChunk));

        std::int16_t fqx = 0, fqy = 0, fqz = 0;
        if (use_fixed) {
            fixed.quantizeQuery(queries[q], fqx, fqy, fqz);
        }

        std::uint32_t *row = out.indices.data() + q * k;
        std::size_t found = 0;
        float nearest_dist = std::numeric_limits<float>::max();
        std::uint32_t nearest_idx = 0;

        // The in-ball indices collected here are identical to the
        // original in-order scalar scan with its early exit at k hits:
        // the chunk merely computes a few distances past the exit
        // point, and the nearest-candidate fallback is only consulted
        // when found == 0, i.e. when no early exit happened and the
        // whole candidate set was scanned either way.
        for (std::size_t c = 0; c < nc && found < k; c += kChunk) {
            const std::size_t len = std::min(kChunk, nc - c);
            if (use_fixed) {
                simd::batchSqDistFixed(fixed.xy() + 2 * c,
                                       fixed.zw() + 2 * c, len, fqx, fqy,
                                       fqz, dist.data());
            } else {
                simd::batchSqDist(soa.xs() + c, soa.ys() + c,
                                  soa.zs() + c, len, queries[q],
                                  dist.data());
            }
            const std::size_t hits = simd::batchRadiusMask(
                dist.data(), len, r2q, mask.data());
            if (hits != 0) {
                const std::size_t words = simd::maskWords(len);
                for (std::size_t w = 0; w < words && found < k; ++w) {
                    std::uint64_t bits = mask[w];
                    while (bits != 0 && found < k) {
                        const std::size_t i =
                            w * 64 + static_cast<std::size_t>(
                                         std::countr_zero(bits));
                        bits &= bits - 1;
                        row[found++] =
                            static_cast<std::uint32_t>(c + i);
                    }
                }
            }
            if (found == 0) {
                simd::batchArgminUpdate(dist.data(), len,
                                        static_cast<std::uint32_t>(c),
                                        nearest_dist, nearest_idx);
            }
        }

        if (found == 0) {
            // Empty ball: fall back to the nearest candidate (the whole
            // set was scanned, so this is the global nearest).
            row[0] = nearest_idx;
            found = 1;
        }
        // Pad with the first in-ball index (reference convention).
        for (std::size_t j = found; j < k; ++j) {
            row[j] = row[0];
        }
    });
    return out;
}

} // namespace edgepc
