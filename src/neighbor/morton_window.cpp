#include "neighbor/morton_window.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "geometry/simd_distance.hpp"
#include "neighbor/kheap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

MortonWindowSearch::MortonWindowSearch(std::size_t window) : win(window) {}

// EDGEPC_HOT: per-query window scan — arena scratch only.
void
MortonWindowSearch::searchOne(const PointsSoA &sorted,
                              const Structurization &s,
                              std::uint32_t query_index, std::size_t k,
                              std::uint32_t *row) const
{
    const std::size_t n = s.size();
    const std::size_t w = std::max(win == 0 ? k : win, k);
    const std::size_t j = s.rank[query_index];

    // Window of sorted positions [j - w/2, j + w/2], shifted to stay
    // in range so every query sees a full window.
    std::size_t lo = j >= w / 2 ? j - w / 2 : 0;
    std::size_t hi = std::min(n - 1, lo + w);
    lo = hi >= w ? hi - w : 0;

    if (w <= k + 1) {
        // Pure index selection (Sec 4.3): the k consecutive points
        // {i_{j-k/2}, ..., i_j, ..., i_{j+k/2}} including the query
        // itself, with no distance computation at all (Fig 10b).
        std::size_t written = 0;
        for (std::size_t pos = lo; pos <= hi && written < k; ++pos) {
            row[written++] = s.order[pos];
        }
        while (written < k) {
            row[written++] = s.order[j];
        }
        return;
    }

    // W > k: keep the k nearest of the window points by true distance
    // (the query itself qualifies at distance zero, matching the
    // exact searchers, which also return the query). The Morton-sorted
    // SoA makes the window a contiguous lane range.
    const Vec3 q = sorted.at(j);
    const std::size_t len = hi - lo + 1;
    ScratchArena &arena = ScratchArena::local();
    const ScratchArena::Frame frame(arena);
    const std::span<float> dist = arena.alloc<float>(len);
    const std::span<std::uint64_t> mask =
        arena.alloc<std::uint64_t>(simd::maskWords(len));
    simd::batchSqDist(sorted.xs() + lo, sorted.ys() + lo, sorted.zs() + lo,
                      len, q, dist.data());
    KHeap heap(arena.alloc<KHeap::Key>(k));
    admitMasked(heap, dist.data(), len, mask.data(), len,
                [&](std::size_t pos) { return s.order[lo + pos]; });
    const auto entries = heap.finish();
    for (std::size_t i = 0; i < k; ++i) {
        row[i] = KHeap::indexOf(entries[std::min(i, entries.size() - 1)]);
    }
}

NeighborLists
MortonWindowSearch::search(std::span<const Vec3> points,
                           const Structurization &s,
                           std::span<const std::uint32_t> query_indices,
                           std::size_t k) const
{
    EDGEPC_TRACE_SCOPE("morton-window", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.morton-window.queries");
    qcount.add(query_indices.size());
    if (points.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "MortonWindowSearch: empty cloud or k == 0");
    }
    k = std::min(k, points.size());
    simd::recordDispatch();

    // Gathered once per call: lane pos holds points[s.order[pos]], so
    // every window read below is contiguous.
    ScratchArena &caller_arena = ScratchArena::local();
    const ScratchArena::Frame frame(caller_arena);
    const PointsSoA sorted(points, s.order, caller_arena);

    NeighborLists out;
    out.k = k;
    out.indices.resize(query_indices.size() * k);
    parallelFor(0, query_indices.size(), [&](std::size_t q) {
        searchOne(sorted, s, query_indices[q], k,
                  out.indices.data() + q * k);
    });
    return out;
}

NeighborLists
MortonWindowSearch::searchAll(std::span<const Vec3> points,
                              const Structurization &s, std::size_t k) const
{
    EDGEPC_TRACE_SCOPE("morton-window", "neighbor");
    static obs::Counter &all_qcount = obs::MetricsRegistry::global().counter(
        "neighbor.morton-window.queries");
    all_qcount.add(points.size());
    if (points.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "MortonWindowSearch: empty cloud or k == 0");
    }
    k = std::min(k, points.size());
    simd::recordDispatch();

    ScratchArena &caller_arena = ScratchArena::local();
    const ScratchArena::Frame frame(caller_arena);
    const PointsSoA sorted(points, s.order, caller_arena);

    NeighborLists out;
    out.k = k;
    out.indices.resize(points.size() * k);
    parallelFor(0, points.size(), [&](std::size_t q) {
        searchOne(sorted, s, static_cast<std::uint32_t>(q), k,
                  out.indices.data() + q * k);
    });
    return out;
}

MortonWindowKnn::MortonWindowKnn(std::size_t window, int code_bits)
    : win(window), bits(code_bits)
{
}

NeighborLists
MortonWindowKnn::search(std::span<const Vec3> queries,
                        std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("morton-window-knn", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.morton-window-knn.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "MortonWindowKnn: empty candidate set or k == 0");
    }
    const MortonSampler sampler(bits);
    const Structurization s = sampler.structurize(candidates);
    const MortonWindowSearch searcher(win);

    // Map each query to a rank by binary-searching its Morton code in
    // the sorted candidate codes; when the query is itself a candidate
    // this lands inside its code's run.
    const MortonEncoder encoder(Aabb::of(candidates), bits);
    std::vector<std::uint32_t> query_candidates(queries.size());
    parallelFor(0, queries.size(), [&](std::size_t q) {
        const std::uint64_t code = encoder.code(queries[q]);
        std::size_t lo = 0, hi = s.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (s.codes[s.order[mid]] < code) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if (lo >= s.size()) {
            lo = s.size() - 1;
        }
        query_candidates[q] = s.order[lo];
    });
    return searcher.search(candidates, s, query_candidates, k);
}

} // namespace edgepc
