#include "neighbor/metrics.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace edgepc {

namespace {

/** Sorted unique copy of one neighbor row. */
std::vector<std::uint32_t>
rowSet(const NeighborLists &lists, std::size_t q)
{
    const auto row = lists.row(q);
    std::vector<std::uint32_t> set(row.begin(), row.end());
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    return set;
}

} // namespace

double
falseNeighborRatio(const NeighborLists &approx, const NeighborLists &exact)
{
    if (approx.queries() != exact.queries()) {
        // NOLINTNEXTLINE(edgepc-R1): harness misuse, not sensor data
        fatal("falseNeighborRatio: query counts differ (%zu vs %zu)",
              approx.queries(), exact.queries());
    }
    if (approx.queries() == 0) {
        return 0.0;
    }

    std::size_t total = 0;
    std::size_t false_neighbors = 0;
    for (std::size_t q = 0; q < approx.queries(); ++q) {
        const auto truth = rowSet(exact, q);
        for (const std::uint32_t idx : approx.row(q)) {
            ++total;
            if (!std::binary_search(truth.begin(), truth.end(), idx)) {
                ++false_neighbors;
            }
        }
    }
    return static_cast<double>(false_neighbors) /
           static_cast<double>(total);
}

double
neighborRecall(const NeighborLists &approx, const NeighborLists &exact)
{
    if (approx.queries() != exact.queries()) {
        // NOLINTNEXTLINE(edgepc-R1): harness misuse, not sensor data
        fatal("neighborRecall: query counts differ (%zu vs %zu)",
              approx.queries(), exact.queries());
    }
    if (exact.queries() == 0) {
        return 1.0;
    }

    std::size_t total = 0;
    std::size_t hit = 0;
    for (std::size_t q = 0; q < exact.queries(); ++q) {
        const auto found = rowSet(approx, q);
        const auto truth = rowSet(exact, q);
        total += truth.size();
        for (const std::uint32_t idx : truth) {
            if (std::binary_search(found.begin(), found.end(), idx)) {
                ++hit;
            }
        }
    }
    return static_cast<double>(hit) / static_cast<double>(total);
}

} // namespace edgepc
