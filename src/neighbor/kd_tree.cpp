#include "neighbor/kd_tree.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

KdTree::KdTree(std::span<const Vec3> points)
    : pts(points.begin(), points.end())
{
    if (pts.empty()) {
        return;
    }
    nodes.reserve(pts.size());
    std::vector<std::uint32_t> index(pts.size());
    std::iota(index.begin(), index.end(), 0u);
    root = build(index.data(), index.data() + index.size(), 0);
}

std::int32_t
KdTree::build(std::uint32_t *begin, std::uint32_t *end, int depth)
{
    if (begin == end) {
        return -1;
    }
    const auto axis = static_cast<std::uint8_t>(depth % 3);
    std::uint32_t *mid = begin + (end - begin) / 2;
    std::nth_element(begin, mid, end,
                     [this, axis](std::uint32_t a, std::uint32_t b) {
                         return pts[a][axis] < pts[b][axis];
                     });

    const auto node_id = static_cast<std::int32_t>(nodes.size());
    nodes.push_back(Node{pts[*mid][axis], *mid, -1, -1, axis});
    // nodes may reallocate during recursion; assign children afterwards.
    const std::int32_t left = build(begin, mid, depth + 1);
    const std::int32_t right = build(mid + 1, end, depth + 1);
    nodes[node_id].left = left;
    nodes[node_id].right = right;
    return node_id;
}

void
KdTree::knnRecurse(std::int32_t node_id, const Vec3 &query, std::size_t k,
                   std::vector<std::pair<float, std::uint32_t>> &heap) const
{
    if (node_id < 0) {
        return;
    }
    const Node &node = nodes[node_id];

    const float d = squaredDistance(query, pts[node.point]);
    if (heap.size() < k) {
        heap.emplace_back(d, node.point);
        std::push_heap(heap.begin(), heap.end());
    } else if (d < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d, node.point};
        std::push_heap(heap.begin(), heap.end());
    }

    const float delta = query[node.axis] - node.split;
    const std::int32_t near = delta <= 0.0f ? node.left : node.right;
    const std::int32_t far = delta <= 0.0f ? node.right : node.left;

    knnRecurse(near, query, k, heap);
    // Visit the far side only if the splitting plane is closer than
    // the current k-th best distance.
    if (heap.size() < k || delta * delta < heap.front().first) {
        knnRecurse(far, query, k, heap);
    }
}

std::vector<std::uint32_t>
KdTree::knn(const Vec3 &query, std::size_t k) const
{
    std::vector<std::pair<float, std::uint32_t>> heap;
    heap.reserve(k + 1);
    knnRecurse(root, query, k, heap);
    std::sort_heap(heap.begin(), heap.end());
    std::vector<std::uint32_t> out(heap.size());
    for (std::size_t i = 0; i < heap.size(); ++i) {
        out[i] = heap[i].second;
    }
    return out;
}

void
KdTree::radiusRecurse(std::int32_t node_id, const Vec3 &query, float r2,
                      std::vector<std::uint32_t> &out) const
{
    if (node_id < 0) {
        return;
    }
    const Node &node = nodes[node_id];
    if (squaredDistance(query, pts[node.point]) <= r2) {
        out.push_back(node.point);
    }
    const float delta = query[node.axis] - node.split;
    const std::int32_t near = delta <= 0.0f ? node.left : node.right;
    const std::int32_t far = delta <= 0.0f ? node.right : node.left;
    radiusRecurse(near, query, r2, out);
    if (delta * delta <= r2) {
        radiusRecurse(far, query, r2, out);
    }
}

std::vector<std::uint32_t>
KdTree::radius(const Vec3 &query, float r) const
{
    std::vector<std::uint32_t> out;
    radiusRecurse(root, query, r * r, out);
    return out;
}

KdTreeBallQuery::KdTreeBallQuery(float radius) : r(radius)
{
    if (radius <= 0.0f) {
        raise(ErrorCode::InvalidArgument, "KdTreeBallQuery: radius must be positive (got %f)",
              static_cast<double>(radius));
    }
}

NeighborLists
KdTreeBallQuery::search(std::span<const Vec3> queries,
                        std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("kd-tree-ball", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.kd-tree-ball.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "KdTreeBallQuery: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());
    const KdTree tree(candidates);

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);
    parallelFor(0, queries.size(), [&](std::size_t q) {
        std::uint32_t *row = out.indices.data() + q * k;
        auto found = tree.radius(queries[q], r);
        if (found.empty()) {
            // Empty ball: fall back to the nearest candidate.
            found = tree.knn(queries[q], 1);
        }
        const std::size_t used = std::min(found.size(), k);
        for (std::size_t j = 0; j < used; ++j) {
            row[j] = found[j];
        }
        for (std::size_t j = used; j < k; ++j) {
            row[j] = row[0];
        }
    });
    return out;
}

NeighborLists
KdTreeKnn::search(std::span<const Vec3> queries,
                  std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("kd-tree", "neighbor");
    static obs::Counter &knn_qcount =
        obs::MetricsRegistry::global().counter("neighbor.kd-tree.queries");
    knn_qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "KdTreeKnn: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());
    const KdTree tree(candidates);

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);
    parallelFor(0, queries.size(), [&](std::size_t q) {
        const auto found = tree.knn(queries[q], k);
        for (std::size_t j = 0; j < k; ++j) {
            out.indices[q * k + j] = found[std::min(j, found.size() - 1)];
        }
    });
    return out;
}

} // namespace edgepc
