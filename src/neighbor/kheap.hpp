/**
 * @file
 * Fixed-capacity max-heap of the k smallest (distance, index) pairs,
 * backed by caller-provided storage (typically a ScratchArena span).
 *
 * Replaces the per-query std::vector heaps in the neighbor searchers so
 * steady-state queries perform zero heap allocations. Each entry packs
 * the distance bits and the candidate index into one 64-bit key
 * (squared distances are non-negative, so their IEEE-754 bits order
 * like the floats), making every sift comparison a single integer
 * compare. Admission keeps the original semantics: strict `<` on the
 * distance alone against the current k-th distance, so on distance
 * ties the first-encountered candidate wins regardless of index.
 */

#ifndef EDGEPC_NEIGHBOR_KHEAP_HPP
#define EDGEPC_NEIGHBOR_KHEAP_HPP

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "geometry/simd_distance.hpp"

namespace edgepc {

/**
 * Bounded selector over borrowed storage keeping the k smallest
 * entries. Internally an unsorted array with a cached maximum rather
 * than a binary heap: k is small (tens), so an eviction is one store
 * plus a k-element max rescan of packed integer keys — cheaper than
 * two heap sifts — and the non-evicting admission test is a single
 * compare against the cached worst. Evictions remove the largest
 * (distance, index) key, exactly like the max-heap of pairs this
 * replaces, so results are bit-identical.
 */
class KHeap
{
  public:
    /** Packed (distance bits << 32) | candidate index. */
    using Key = std::uint64_t;

    static Key pack(float dist, std::uint32_t idx)
    {
        return (static_cast<Key>(std::bit_cast<std::uint32_t>(dist))
                << 32) |
               idx;
    }
    static float distOf(Key key)
    {
        return std::bit_cast<float>(
            static_cast<std::uint32_t>(key >> 32));
    }
    static std::uint32_t indexOf(Key key)
    {
        return static_cast<std::uint32_t>(key);
    }

    /** @p storage must hold at least the heap capacity k. */
    explicit KHeap(std::span<Key> storage)
        : data(storage.data()), cap(storage.size())
    {
    }

    std::size_t size() const { return count; }
    bool full() const { return count == cap; }

    /** Current k-th smallest distance; only valid when full(). */
    float worst() const { return distOf(worstKey); }

    void push(float dist, std::uint32_t idx)
    {
        if (count < cap) {
            const Key key = pack(dist, idx);
            if (count == 0 || key > worstKey) {
                worstKey = key;
                worstSlot = count;
            }
            data[count] = key;
            ++count;
        } else if (dist < worst()) {
            // Strict compare on the distance alone: an equal distance
            // never evicts, keeping first-encountered ties.
            evict(pack(dist, idx));
        }
    }

    /** Sort ascending by (distance, index) and return the keys. */
    std::span<const Key> finish()
    {
        std::sort(data, data + count);
        return {data, count};
    }

  private:
    /** Replace the current worst and rescan for the new one. Kept out
     *  of line so the non-evicting fast path of push() stays small
     *  enough to inline into the scan loops. */
    __attribute__((noinline)) void evict(Key key)
    {
        data[worstSlot] = key;
        Key w = data[0];
        std::size_t slot = 0;
        for (std::size_t i = 1; i < count; ++i) {
            const bool greater = data[i] > w;
            w = greater ? data[i] : w;
            slot = greater ? i : slot;
        }
        worstKey = w;
        worstSlot = slot;
    }

    Key *data;
    std::size_t cap;
    std::size_t count = 0;
    Key worstKey = 0;
    std::size_t worstSlot = 0;
};

/**
 * Admit a precomputed distance buffer into @p heap in index order,
 * prefiltering each @p chunk with batchBelowMask against the (possibly
 * stale) k-th distance. The threshold only shrinks as entries are
 * admitted, so the packed mask is a superset of the admissible
 * candidates and the exact strict `<` re-check on every set bit keeps
 * the result identical to a plain scalar scan. @p mask must hold
 * simd::maskWords(chunk) words; @p indexOf maps a buffer position to
 * the candidate index stored in the heap.
 */
template <typename IndexFn>
inline void
admitMasked(KHeap &heap, const float *dist, std::size_t n,
            std::uint64_t *mask, std::size_t chunk, IndexFn &&indexOf)
{
    std::size_t c = 0;
    for (; c < n && !heap.full(); ++c) {
        heap.push(dist[c], indexOf(c));
    }
    // Warm chunk: right after the fill the k-th distance is still so
    // loose that a mask would select nearly every lane, so stream it
    // with a plain float compare instead.
    const std::size_t warm = std::min(n, chunk);
    float worst = heap.worst();
    for (; c < warm; ++c) {
        if (dist[c] < worst) {
            heap.push(dist[c], indexOf(c));
            worst = heap.worst();
        }
    }
    while (c < n) {
        const std::size_t len = std::min(chunk, n - c);
        const std::size_t hits =
            simd::batchBelowMask(dist + c, len, worst, mask);
        if (hits != 0) {
            const std::size_t words = simd::maskWords(len);
            for (std::size_t w = 0; w < words; ++w) {
                std::uint64_t bits = mask[w];
                while (bits != 0) {
                    const std::size_t i =
                        c + w * 64 +
                        static_cast<std::size_t>(std::countr_zero(bits));
                    bits &= bits - 1;
                    if (dist[i] < worst) {
                        heap.push(dist[i], indexOf(i));
                        worst = heap.worst();
                    }
                }
            }
        }
        c += len;
    }
}

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_KHEAP_HPP
