/**
 * @file
 * Ball query: the PointNet++ neighbor searcher (Sec 5.2.1, Fig 10a).
 * Returns the first k candidates within radius R of each query; when
 * fewer than k are inside the ball, the first found index is repeated
 * (the reference implementation's padding convention). When none are
 * inside, the nearest candidate is used.
 */

#ifndef EDGEPC_NEIGHBOR_BALL_QUERY_HPP
#define EDGEPC_NEIGHBOR_BALL_QUERY_HPP

#include "geometry/simd_distance.hpp"
#include "neighbor/neighbor_search.hpp"

namespace edgepc {

/** Fixed-radius neighbor searcher with k-padding. */
class BallQuery : public NeighborSearch
{
  public:
    /**
     * @param radius Ball radius R.
     * @param fixed_point Fixed-point distance gate (DESIGN.md §15):
     *     Off keeps the exact fp32 kernels (default, bit-identical to
     *     the reference scan); On snaps candidates to the per-cloud
     *     s16 grid when the cloud quantizes; Auto engages only when
     *     the grid step is much finer than the radius. EDGEPC_SIMD
     *     (int8 | scalar | simd) overrides this per-searcher config.
     */
    explicit BallQuery(
        float radius,
        simd::FixedPointMode fixed_point = simd::FixedPointMode::Off);

    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> queries,
                         std::span<const Vec3> candidates,
                         std::size_t k) override;

    std::string name() const override { return "ball-query"; }

    float radius() const { return r; }

  private:
    float r;
    simd::FixedPointMode fixedMode;
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_BALL_QUERY_HPP
