/**
 * @file
 * Neighbor-search quality metrics: the false-neighbor ratio of Figs 6,
 * 11 and 15a of the paper, plus recall.
 */

#ifndef EDGEPC_NEIGHBOR_METRICS_HPP
#define EDGEPC_NEIGHBOR_METRICS_HPP

#include "neighbor/neighbor_search.hpp"

namespace edgepc {

/**
 * Fraction of approximate neighbor entries that do not appear in the
 * corresponding exact neighbor row (the paper's false-neighbor ratio).
 * Duplicate padding entries in the exact row are treated as a set.
 *
 * @param approx Approximate lists (queries x k).
 * @param exact Exact lists for the same queries (row sets may have a
 *        different k).
 */
double falseNeighborRatio(const NeighborLists &approx,
                          const NeighborLists &exact);

/**
 * Fraction of exact neighbors recovered by the approximate lists
 * (micro-averaged recall over query rows).
 */
double neighborRecall(const NeighborLists &approx,
                      const NeighborLists &exact);

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_METRICS_HPP
