#include "neighbor/brute_force.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

namespace {

/** Max-heap insert keeping the k smallest (distance, index) pairs. */
inline void
keepSmallest(std::vector<std::pair<float, std::uint32_t>> &heap,
             std::size_t k, float dist, std::uint32_t idx)
{
    if (heap.size() < k) {
        heap.emplace_back(dist, idx);
        std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {dist, idx};
        std::push_heap(heap.begin(), heap.end());
    }
}

} // namespace

NeighborLists
BruteForceKnn::search(std::span<const Vec3> queries,
                      std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("brute-force", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.brute-force.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "BruteForceKnn: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);

    parallelFor(0, queries.size(), [&](std::size_t q) {
        std::vector<std::pair<float, std::uint32_t>> heap;
        heap.reserve(k + 1);
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            keepSmallest(heap, k,
                         squaredDistance(queries[q], candidates[c]),
                         static_cast<std::uint32_t>(c));
        }
        std::sort_heap(heap.begin(), heap.end());
        for (std::size_t j = 0; j < k; ++j) {
            out.indices[q * k + j] = heap[j].second;
        }
    });
    return out;
}

NeighborLists
BruteForceKnn::searchFeatureSpace(std::span<const float> queries,
                                  std::span<const float> candidates,
                                  std::size_t dim, std::size_t k)
{
    if (dim == 0 || candidates.empty()) {
        raise(ErrorCode::EmptyCloud, "searchFeatureSpace: empty candidates or dim == 0");
    }
    const std::size_t nq = queries.size() / dim;
    const std::size_t nc = candidates.size() / dim;
    k = std::min(k, nc);

    NeighborLists out;
    out.k = k;
    out.indices.resize(nq * k);

    parallelFor(0, nq, [&](std::size_t q) {
        const float *qrow = queries.data() + q * dim;
        std::vector<std::pair<float, std::uint32_t>> heap;
        heap.reserve(k + 1);
        for (std::size_t c = 0; c < nc; ++c) {
            const float *crow = candidates.data() + c * dim;
            float dist = 0.0f;
            for (std::size_t d = 0; d < dim; ++d) {
                const float diff = qrow[d] - crow[d];
                dist += diff * diff;
            }
            keepSmallest(heap, k, dist, static_cast<std::uint32_t>(c));
        }
        std::sort_heap(heap.begin(), heap.end());
        for (std::size_t j = 0; j < k; ++j) {
            out.indices[q * k + j] = heap[j].second;
        }
    });
    return out;
}

} // namespace edgepc
