#include "neighbor/brute_force.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "geometry/simd_distance.hpp"
#include "neighbor/kheap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pointcloud/points_soa.hpp"

namespace edgepc {

namespace {

/// Candidates are masked against the current k-th distance in blocks of
/// this many precomputed distances before touching the heap.
constexpr std::size_t kMaskChunk = 256;

} // namespace

NeighborLists
BruteForceKnn::search(std::span<const Vec3> queries,
                      std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("brute-force", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.brute-force.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "BruteForceKnn: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());
    simd::recordDispatch();

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);

    // The SoA is built once on the calling thread; worker threads only
    // read it (the task queue publication orders those reads).
    ScratchArena &caller_arena = ScratchArena::local();
    const ScratchArena::Frame frame(caller_arena);
    const PointsSoA soa(candidates, caller_arena);
    const std::size_t nc = candidates.size();

    // Fixed-point route (DESIGN.md §15): neighbors rank by exact
    // integer grid distance instead of fp32 distance. Opt-in only
    // (Auto resolves Off for k-NN) — see resolveFixedPointKnn.
    PointsFixed fixed;
    bool use_fixed = false;
    if (simd::resolveFixedPointKnn(fixedMode)) {
        fixed = PointsFixed(soa, caller_arena);
        use_fixed = fixed.valid();
    }
    if (use_fixed) {
        simd::recordFixedDispatch(queries.size());
    }

    // EDGEPC_HOT: per-query scan — arena scratch only, no allocation.
    parallelFor(0, queries.size(), [&](std::size_t q) {
        ScratchArena &arena = ScratchArena::local();
        const ScratchArena::Frame qframe(arena);
        const std::span<float> dist = arena.alloc<float>(nc);
        const std::span<std::uint64_t> mask =
            arena.alloc<std::uint64_t>(simd::maskWords(kMaskChunk));
        if (use_fixed) {
            std::int16_t fqx = 0, fqy = 0, fqz = 0;
            fixed.quantizeQuery(queries[q], fqx, fqy, fqz);
            simd::batchSqDistFixed(fixed.xy(), fixed.zw(), nc, fqx, fqy,
                                   fqz, dist.data());
        } else {
            simd::batchSqDist(soa.xs(), soa.ys(), soa.zs(), nc,
                              queries[q], dist.data());
        }
        KHeap heap(arena.alloc<KHeap::Key>(k));
        admitMasked(heap, dist.data(), nc, mask.data(), kMaskChunk,
                    [](std::size_t i) {
                        return static_cast<std::uint32_t>(i);
                    });
        const auto row = heap.finish();
        for (std::size_t j = 0; j < k; ++j) {
            out.indices[q * k + j] = KHeap::indexOf(row[j]);
        }
    });
    return out;
}

NeighborLists
BruteForceKnn::searchFeatureSpace(std::span<const float> queries,
                                  std::span<const float> candidates,
                                  std::size_t dim, std::size_t k)
{
    if (dim == 0 || candidates.empty()) {
        raise(ErrorCode::EmptyCloud, "searchFeatureSpace: empty candidates or dim == 0");
    }
    const std::size_t nq = queries.size() / dim;
    const std::size_t nc = candidates.size() / dim;
    k = std::min(k, nc);

    NeighborLists out;
    out.k = k;
    out.indices.resize(nq * k);

    // EDGEPC_HOT: feature-space scan — arena heap, no per-query vector.
    parallelFor(0, nq, [&](std::size_t q) {
        const float *qrow = queries.data() + q * dim;
        ScratchArena &arena = ScratchArena::local();
        const ScratchArena::Frame qframe(arena);
        KHeap heap(arena.alloc<KHeap::Key>(k));
        for (std::size_t c = 0; c < nc; ++c) {
            const float *crow = candidates.data() + c * dim;
            float dist = 0.0f;
            for (std::size_t d = 0; d < dim; ++d) {
                const float diff = qrow[d] - crow[d];
                dist += diff * diff;
            }
            heap.push(dist, static_cast<std::uint32_t>(c));
        }
        const auto row = heap.finish();
        for (std::size_t j = 0; j < k; ++j) {
            out.indices[q * k + j] = KHeap::indexOf(row[j]);
        }
    });
    return out;
}

} // namespace edgepc
