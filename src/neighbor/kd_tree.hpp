/**
 * @file
 * k-d tree neighbor search.
 *
 * The tree-based baseline the paper's footnote discusses: O(N log N)
 * construction plus O(log N) expected per-query traversal, but with
 * irregular memory access and limited parallelism (the Crescent paper
 * attacks exactly this structure). Included both as a correctness
 * oracle and as a latency baseline for the benches.
 */

#ifndef EDGEPC_NEIGHBOR_KD_TREE_HPP
#define EDGEPC_NEIGHBOR_KD_TREE_HPP

#include <memory>

#include "neighbor/neighbor_search.hpp"

namespace edgepc {

/** Static k-d tree over a fixed point set. */
class KdTree
{
  public:
    /** Build over @p points (copied into the tree). */
    explicit KdTree(std::span<const Vec3> points);

    /** Number of indexed points. */
    std::size_t size() const { return pts.size(); }

    /**
     * Exact k nearest neighbors of @p query, ascending by distance.
     * Returns fewer than k only when the tree holds fewer points.
     */
    std::vector<std::uint32_t> knn(const Vec3 &query, std::size_t k) const;

    /** All point indexes within @p radius of @p query (unsorted). */
    std::vector<std::uint32_t> radius(const Vec3 &query, float radius)
        const;

  private:
    struct Node
    {
        /** Split coordinate value along axis. */
        float split;
        /** Point index stored at this node. */
        std::uint32_t point;
        /** Children; -1 when absent. */
        std::int32_t left = -1;
        std::int32_t right = -1;
        /** Split axis (0..2). */
        std::uint8_t axis;
    };

    std::int32_t build(std::uint32_t *begin, std::uint32_t *end, int depth);

    void knnRecurse(std::int32_t node, const Vec3 &query, std::size_t k,
                    std::vector<std::pair<float, std::uint32_t>> &heap)
        const;

    void radiusRecurse(std::int32_t node, const Vec3 &query, float r2,
                       std::vector<std::uint32_t> &out) const;

    std::vector<Vec3> pts;
    std::vector<Node> nodes;
    std::int32_t root = -1;
};

/**
 * NeighborSearch adapter that builds a KdTree over the candidates on
 * every call (tree construction is part of the measured cost, as it is
 * in the real pipelines the paper profiles).
 */
class KdTreeKnn : public NeighborSearch
{
  public:
    KdTreeKnn() = default;

    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> queries,
                         std::span<const Vec3> candidates,
                         std::size_t k) override;

    std::string name() const override { return "kdtree-knn"; }
};

/**
 * Tree-accelerated ball query with the same padding convention as
 * BallQuery: up to k in-ball points, padded with the first found,
 * falling back to the nearest candidate when the ball is empty.
 */
class KdTreeBallQuery : public NeighborSearch
{
  public:
    /** @param radius Ball radius R. */
    explicit KdTreeBallQuery(float radius);

    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> queries,
                         std::span<const Vec3> candidates,
                         std::size_t k) override;

    std::string name() const override { return "kdtree-ball-query"; }

    float radius() const { return r; }

  private:
    float r;
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_KD_TREE_HPP
