/**
 * @file
 * Uniform-grid neighbor search — the grid-based related-work baseline
 * the paper cites (cuNSearch / FRNN style, Sec 3.2): bin candidates
 * into voxels once, then examine only the voxels overlapping each
 * query ball. Exact results like BallQuery, typically far fewer
 * distance evaluations, but with a per-frame grid-construction cost
 * and still O(candidates-in-ball) per query — unlike the EdgePC
 * window searcher it cannot trade accuracy for time.
 */

#ifndef EDGEPC_NEIGHBOR_GRID_QUERY_HPP
#define EDGEPC_NEIGHBOR_GRID_QUERY_HPP

#include "neighbor/neighbor_search.hpp"

namespace edgepc {

/** Grid-accelerated exact fixed-radius search with k-padding. */
class GridBallQuery : public NeighborSearch
{
  public:
    /**
     * @param radius Ball radius R.
     * @param cell_size Grid cell edge; 0 picks R (the classic
     *        radius-sized binning).
     */
    explicit GridBallQuery(float radius, float cell_size = 0.0f);

    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> queries,
                         std::span<const Vec3> candidates,
                         std::size_t k) override;

    std::string name() const override { return "grid-ball-query"; }

    float radius() const { return r; }

  private:
    float r;
    float cell;
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_GRID_QUERY_HPP
