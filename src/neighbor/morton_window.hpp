/**
 * @file
 * The EdgePC index-based approximate neighbor searcher (Sec 5.2.2,
 * Fig 10b of the paper).
 *
 * Operating on a Morton-structurized cloud, the k neighbors of the
 * point at sorted position j are taken from the window of sorted
 * positions [j - W/2, j + W/2]. With W == k the window points are
 * returned directly with no distance computation at all; with W > k
 * the k nearest of the W window points are kept (trading a little
 * compute for a lower false-neighbor ratio — the Fig 15a sweep).
 * Per-query cost is O(W) instead of the O(N) of ball query / k-NN.
 */

#ifndef EDGEPC_NEIGHBOR_MORTON_WINDOW_HPP
#define EDGEPC_NEIGHBOR_MORTON_WINDOW_HPP

#include "neighbor/neighbor_search.hpp"
#include "pointcloud/points_soa.hpp"
#include "sampling/morton_sampler.hpp"

namespace edgepc {

/** Index-window approximate neighbor searcher. */
class MortonWindowSearch
{
  public:
    /**
     * @param window Search window size W (>= k). W == 0 means
     *        "use exactly k" (the pure index-selection mode).
     */
    explicit MortonWindowSearch(std::size_t window = 0);

    /**
     * Search neighbors for queries identified by their original point
     * indexes within the structurized cloud (the SA-module case where
     * the queries are the sampled subset of the candidates).
     *
     * @param points Candidate positions (the structurized cloud).
     * @param s Structurization of @p points.
     * @param query_indices Original indexes of the query points.
     * @param k Neighbors per query.
     * @return Neighbor lists whose entries are original point indexes.
     */
    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> points,
                         const Structurization &s,
                         std::span<const std::uint32_t> query_indices,
                         std::size_t k) const;

    /**
     * Search neighbors for every point of the cloud (the DGCNN case
     * where every point queries the full set).
     */
    [[nodiscard]]
    NeighborLists searchAll(std::span<const Vec3> points,
                            const Structurization &s, std::size_t k) const;

    std::size_t window() const { return win; }

    std::string name() const { return "morton-window"; }

  private:
    /**
     * @p sorted is the cloud gathered into Morton order (lane pos holds
     * the point at sorted position pos), so the W-window is a
     * contiguous lane range the batch kernels can stream.
     */
    void searchOne(const PointsSoA &sorted, const Structurization &s,
                   std::uint32_t query_index, std::size_t k,
                   std::uint32_t *row) const;

    std::size_t win;
};

/**
 * NeighborSearch adapter running structurization + window search; used
 * where a drop-in replacement for the exact searchers is convenient
 * (e.g. the false-neighbor-ratio benches). The candidates are
 * structurized on every call, which mirrors the DGCNN layer-1 cost.
 */
class MortonWindowKnn : public NeighborSearch
{
  public:
    explicit MortonWindowKnn(
        std::size_t window = 0,
        int code_bits = MortonEncoder::kDefaultCodeBits);

    /**
     * Approximates neighbors for queries that must be a subset of (or
     * equal to) the candidates; each query is matched to a candidate
     * by exact position equality, falling back to the Morton rank of
     * its own code.
     */
    [[nodiscard]]
    NeighborLists search(std::span<const Vec3> queries,
                         std::span<const Vec3> candidates,
                         std::size_t k) override;

    std::string name() const override { return "morton-window"; }

  private:
    std::size_t win;
    int bits;
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_MORTON_WINDOW_HPP
