/**
 * @file
 * Cross-layer neighbor-index reuse (Sec 5.2.3 of the paper).
 *
 * DGCNN's later EdgeConv modules search neighbors in feature space,
 * which Morton codes cannot index. EdgePC instead interleaves "reuse"
 * and "compute": with reuse distance d, a layer that computed its
 * neighbor lists serves them to the next d layers unchanged, on the
 * observation that point neighborhoods drift slowly across layers.
 * The cached index matrix occupies GPU (here: host) memory — the cache
 * reports its footprint so the energy model can charge for it.
 */

#ifndef EDGEPC_NEIGHBOR_NEIGHBOR_CACHE_HPP
#define EDGEPC_NEIGHBOR_NEIGHBOR_CACHE_HPP

#include "neighbor/neighbor_search.hpp"

namespace edgepc {

/** Reuse schedule + storage for neighbor lists across layers. */
class NeighborCache
{
  public:
    /**
     * @param reuse_distance How many subsequent layers reuse a
     *        computed result. 0 disables reuse (every layer computes).
     */
    explicit NeighborCache(int reuse_distance = 1);

    /**
     * True if layer @p layer (0-based) must run its own search; false
     * if it should reuse the cached lists. Layer 0 always computes.
     */
    bool shouldCompute(int layer) const;

    /** Store the lists computed by @p layer. */
    void store(int layer, NeighborLists lists);

    /**
     * The lists to reuse at layer @p layer. Fatal error if called on a
     * layer that shouldCompute() or before anything was stored.
     */
    const NeighborLists &lookup(int layer) const;

    /** Bytes held by the cached index matrix. */
    std::size_t memoryBytes() const;

    /** Reuse distance configured. */
    int reuseDistance() const { return dist; }

    /** Drop cached data (between frames). */
    void clear();

  private:
    int dist;
    int storedLayer = -1;
    NeighborLists cached;
};

} // namespace edgepc

#endif // EDGEPC_NEIGHBOR_NEIGHBOR_CACHE_HPP
