#include "neighbor/grid_query.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "geometry/voxel_grid.hpp"

namespace edgepc {

GridBallQuery::GridBallQuery(float radius, float cell_size)
    : r(radius), cell(cell_size > 0.0f ? cell_size : radius)
{
    if (radius <= 0.0f) {
        raise(ErrorCode::InvalidArgument, "GridBallQuery: radius must be positive (got %f)",
              static_cast<double>(radius));
    }
}

NeighborLists
GridBallQuery::search(std::span<const Vec3> queries,
                      std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("grid-ball-query", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.grid-ball-query.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "GridBallQuery: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());
    const float r2 = r * r;
    const VoxelGrid grid(candidates, cell);

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);

    parallelFor(0, queries.size(), [&](std::size_t q) {
        std::uint32_t *row = out.indices.data() + q * k;
        std::size_t found = 0;
        float nearest_dist = std::numeric_limits<float>::max();
        std::uint32_t nearest_idx = 0;

        grid.forEachCandidate(queries[q], r, [&](std::uint32_t c) {
            const float d = squaredDistance(queries[q], candidates[c]);
            if (d < nearest_dist) {
                nearest_dist = d;
                nearest_idx = c;
            }
            if (d <= r2 && found < k) {
                row[found++] = c;
            }
        });

        if (found == 0) {
            // Nothing in the overlapping voxels: fall back to a full
            // scan for the nearest candidate (rare, sparse regions).
            for (std::size_t c = 0; c < candidates.size(); ++c) {
                const float d =
                    squaredDistance(queries[q], candidates[c]);
                if (d < nearest_dist) {
                    nearest_dist = d;
                    nearest_idx = static_cast<std::uint32_t>(c);
                }
            }
            row[0] = nearest_idx;
            found = 1;
        }
        for (std::size_t j = found; j < k; ++j) {
            row[j] = row[0];
        }
    });
    return out;
}

} // namespace edgepc
