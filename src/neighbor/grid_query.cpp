#include "neighbor/grid_query.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "geometry/simd_distance.hpp"
#include "geometry/voxel_grid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pointcloud/points_soa.hpp"

namespace edgepc {

namespace {

/// Cell spans (and the fallback full scan) are processed in blocks of
/// this many candidates through the batch kernels.
constexpr std::size_t kChunk = 512;

} // namespace

GridBallQuery::GridBallQuery(float radius, float cell_size)
    : r(radius), cell(cell_size > 0.0f ? cell_size : radius)
{
    if (radius <= 0.0f) {
        raise(ErrorCode::InvalidArgument, "GridBallQuery: radius must be positive (got %f)",
              static_cast<double>(radius));
    }
}

NeighborLists
GridBallQuery::search(std::span<const Vec3> queries,
                      std::span<const Vec3> candidates, std::size_t k)
{
    EDGEPC_TRACE_SCOPE("grid-ball-query", "neighbor");
    static obs::Counter &qcount = obs::MetricsRegistry::global().counter(
        "neighbor.grid-ball-query.queries");
    qcount.add(queries.size());
    if (candidates.empty() || k == 0) {
        raise(ErrorCode::EmptyCloud, "GridBallQuery: empty candidate set or k == 0");
    }
    k = std::min(k, candidates.size());
    const float r2 = r * r;
    const VoxelGrid grid(candidates, cell);
    simd::recordDispatch();

    NeighborLists out;
    out.k = k;
    out.indices.resize(queries.size() * k);

    ScratchArena &caller_arena = ScratchArena::local();
    const ScratchArena::Frame frame(caller_arena);
    const PointsSoA soa(candidates, caller_arena);
    const std::size_t nc = candidates.size();

    // EDGEPC_HOT: per-query voxel scan — arena scratch only.
    parallelFor(0, queries.size(), [&](std::size_t q) {
        ScratchArena &arena = ScratchArena::local();
        const ScratchArena::Frame qframe(arena);
        const std::span<float> dist = arena.alloc<float>(kChunk);
        const std::span<std::uint64_t> mask =
            arena.alloc<std::uint64_t>(simd::maskWords(kChunk));

        std::uint32_t *row = out.indices.data() + q * k;
        std::size_t found = 0;
        float nearest_dist = std::numeric_limits<float>::max();
        std::uint32_t nearest_idx = 0;

        // Visits cells in the same deterministic order as the original
        // per-point callback, gathering SoA lanes through each cell's
        // index span. The nearest-candidate fallback is only consulted
        // when found == 0, so tracking it can stop at the first in-ball
        // hit, and the scan can stop once the row is full.
        grid.forEachCandidateSpan(
            queries[q], r, [&](std::span<const std::uint32_t> cell_idx) {
                for (std::size_t off = 0;
                     off < cell_idx.size() && found < k; off += kChunk) {
                    const std::size_t len =
                        std::min(kChunk, cell_idx.size() - off);
                    simd::batchSqDistGather(soa.xs(), soa.ys(), soa.zs(),
                                            cell_idx.data() + off, len,
                                            queries[q], dist.data());
                    const std::size_t hits = simd::batchRadiusMask(
                        dist.data(), len, r2, mask.data());
                    if (hits != 0) {
                        const std::size_t words = simd::maskWords(len);
                        for (std::size_t w = 0; w < words && found < k;
                             ++w) {
                            std::uint64_t bits = mask[w];
                            while (bits != 0 && found < k) {
                                const std::size_t i =
                                    w * 64 +
                                    static_cast<std::size_t>(
                                        std::countr_zero(bits));
                                bits &= bits - 1;
                                row[found++] = cell_idx[off + i];
                            }
                        }
                    }
                    if (found == 0) {
                        float chunk_best = nearest_dist;
                        std::uint32_t chunk_pos = 0;
                        simd::batchArgminUpdate(dist.data(), len, 0,
                                                chunk_best, chunk_pos);
                        if (chunk_best < nearest_dist) {
                            nearest_dist = chunk_best;
                            nearest_idx = cell_idx[off + chunk_pos];
                        }
                    }
                }
            });

        if (found == 0) {
            // Nothing in the overlapping voxels: fall back to a full
            // scan for the nearest candidate (rare, sparse regions).
            for (std::size_t c = 0; c < nc; c += kChunk) {
                const std::size_t len = std::min(kChunk, nc - c);
                simd::batchSqDist(soa.xs() + c, soa.ys() + c,
                                  soa.zs() + c, len, queries[q],
                                  dist.data());
                simd::batchArgminUpdate(dist.data(), len,
                                        static_cast<std::uint32_t>(c),
                                        nearest_dist, nearest_idx);
            }
            row[0] = nearest_idx;
            found = 1;
        }
        for (std::size_t j = found; j < k; ++j) {
            row[j] = row[0];
        }
    });
    return out;
}

} // namespace edgepc
