#include "energy/energy_model.hpp"

namespace edgepc {

EnergyModel::EnergyModel(PowerProfile profile) : power(profile) {}

double
EnergyModel::inferenceEnergyMj(const StageTimer &stages,
                               const EdgePcConfig &cfg) const
{
    const double feature_ms = stages.total(kStageFeature);
    const double other_ms = stages.grandTotal() - feature_ms;

    const double compute_w = cfg.approximate() ? power.computeApproxW
                                               : power.computeBaselineW;
    const double feature_w =
        cfg.useTensorCores() ? power.computeTensorW : compute_w;

    const bool reuse_live = cfg.approximate() && cfg.reuseDistance > 0;
    const double memory_w =
        reuse_live ? power.memoryReuseW : power.memoryBaselineW;

    // P (W) x t (ms) = energy in mJ.
    return other_ms * compute_w + feature_ms * feature_w +
           stages.grandTotal() * memory_w;
}

} // namespace edgepc
