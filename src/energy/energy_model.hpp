/**
 * @file
 * Energy model standing in for the Jetson board's tegrastats power
 * telemetry (see DESIGN.md).
 *
 * The paper derives energy as average power times execution time and
 * reports the power levels it measured: ~4.5 W compute for the
 * baseline pipeline, ~4.2 W with the approximations (less switching
 * activity in the sample/NS kernels), memory power rising from 1.35 W
 * to 1.63 W when the neighbor-reuse cache is live, and a further
 * efficiency gain when the feature stage runs on the tensor cores. We
 * keep those calibrated power states and integrate them over the
 * latencies this implementation measures, preserving the shape of
 * Fig 13c.
 */

#ifndef EDGEPC_ENERGY_ENERGY_MODEL_HPP
#define EDGEPC_ENERGY_ENERGY_MODEL_HPP

#include "common/timer.hpp"
#include "core/config.hpp"

namespace edgepc {

/** Calibrated power states (watts). */
struct PowerProfile
{
    /** Compute rail, baseline exact kernels. */
    double computeBaselineW = 4.5;

    /** Compute rail with the Morton approximations active. */
    double computeApproxW = 4.2;

    /**
     * Compute rail for the feature stage on tensor cores (higher
     * instantaneous power, but over a much shorter time).
     */
    double computeTensorW = 5.0;

    /** Memory rail, baseline. */
    double memoryBaselineW = 1.35;

    /** Memory rail with the neighbor-reuse cache resident. */
    double memoryReuseW = 1.63;

    /** The Jetson AGX Xavier profile used throughout the evaluation. */
    static PowerProfile jetsonAgxXavier() { return PowerProfile{}; }
};

/** Integrates power states over measured stage latencies. */
class EnergyModel
{
  public:
    explicit EnergyModel(
        PowerProfile profile = PowerProfile::jetsonAgxXavier());

    /**
     * Energy (millijoules) of one inference whose stage latencies are
     * in @p stages, run under @p cfg.
     *
     * Compute energy: non-feature stages run at the baseline or
     * approximate compute power depending on cfg; the feature stage
     * runs at tensor-core power when cfg selects S+N+F. Memory energy:
     * the whole inference pays the reuse-elevated memory power when
     * the neighbor cache is enabled.
     */
    double inferenceEnergyMj(const StageTimer &stages,
                             const EdgePcConfig &cfg) const;

    const PowerProfile &profile() const { return power; }

  private:
    PowerProfile power;
};

} // namespace edgepc

#endif // EDGEPC_ENERGY_ENERGY_MODEL_HPP
