/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component of the library (dataset generators, weight
 * initialization, augmentation, FPS seed point) draws from an explicitly
 * seeded Rng so experiments are exactly reproducible.
 */

#ifndef EDGEPC_COMMON_RNG_HPP
#define EDGEPC_COMMON_RNG_HPP

#include <cstdint>

namespace edgepc {

/**
 * xoshiro256** PRNG with a splitmix64-based seeding routine.
 *
 * Small, fast, and with well-understood statistical quality; used in
 * preference to std::mt19937 because its state is trivially copyable
 * and its output is identical across standard libraries.
 */
class Rng
{
  public:
    /** Seed from a single 64-bit value (expanded through splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output. */
    std::uint64_t nextU64();

    /** Uniform in [0, bound). bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Standard normal via Box-Muller (cached second value). */
    float normal();

    /** Normal with the given mean / standard deviation. */
    float normal(float mean, float stddev);

    /** Derive an independent stream (for per-thread generators). */
    Rng split();

  private:
    std::uint64_t state[4];
    bool haveCachedNormal = false;
    float cachedNormal = 0.0f;
};

/** splitmix64 step, exposed for seeding helpers and tests. */
std::uint64_t splitmix64(std::uint64_t &state);

} // namespace edgepc

#endif // EDGEPC_COMMON_RNG_HPP
