/**
 * @file
 * Console table / CSV writer used by the benchmark harness to print the
 * rows and series of the paper's tables and figures.
 */

#ifndef EDGEPC_COMMON_TABLE_HPP
#define EDGEPC_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace edgepc {

/**
 * A small column-aligned text table.
 *
 * Rows are strings; numeric helpers format with a fixed precision.
 * print() renders an ASCII table; csv() emits comma-separated values.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. Subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted double cell (fixed, @p precision decimals). */
    Table &cell(double value, int precision = 2);

    /** Append an integer cell. */
    Table &cell(long long value);

    /** Number of data rows. */
    std::size_t rows() const { return data.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void csv(std::ostream &os) const;

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> data;
};

/** Format helper: "3.68x" style multiplier strings. */
std::string formatSpeedup(double speedup);

/** Format helper: "54.2%" style percentage strings. */
std::string formatPercent(double fraction);

} // namespace edgepc

#endif // EDGEPC_COMMON_TABLE_HPP
