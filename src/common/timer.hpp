/**
 * @file
 * Wall-clock timing utilities.
 *
 * StageTimer is the instrument behind every latency figure in the
 * evaluation: pipelines record named stage durations (sample, neighbor
 * search, grouping, feature compute, ...) and the benchmark harness
 * aggregates them into the paper's breakdowns and speedups.
 */

#ifndef EDGEPC_COMMON_TIMER_HPP
#define EDGEPC_COMMON_TIMER_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace edgepc {

/** Simple monotonic stopwatch returning elapsed time in milliseconds. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start = Clock::now(); }

    /** Elapsed milliseconds since construction or the last reset(). */
    double elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - start)
            .count();
    }

    /** Elapsed microseconds since construction or the last reset(). */
    double elapsedUs() const
    {
        return std::chrono::duration<double, std::micro>(
                   Clock::now() - start)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

/**
 * Accumulates named per-stage durations across one or more runs.
 *
 * Stage names are free-form; the pipeline uses the canonical set in
 * core/pipeline.hpp (kStageSample, kStageNeighbor, ...).
 */
class StageTimer
{
  public:
    /** Add @p ms milliseconds to stage @p stage. */
    void add(const std::string &stage, double ms);

    /** Total milliseconds recorded for @p stage (0 if absent). */
    double total(const std::string &stage) const;

    /** Sum of all stages. */
    double grandTotal() const;

    /** Fraction of grandTotal() spent in @p stage (0 if empty). */
    double fraction(const std::string &stage) const;

    /** All stages in insertion order with their totals. */
    const std::vector<std::pair<std::string, double>> &entries() const;

    /** Merge another timer's totals into this one. */
    void merge(const StageTimer &other);

    /** Divide every stage total by @p n (averaging over n runs). */
    void scale(double factor);

    /** Drop all recorded data. */
    void clear();

    /**
     * RAII scope that adds its lifetime to a stage on destruction.
     * Usage: { ScopedStage s(timer, "sample"); ...work... }
     *
     * Every scoped stage also emits a "stage"-category span on the
     * global tracer, so the figure benches can rebuild the paper's
     * per-stage breakdown from span data alone (DESIGN.md §8).
     */
    class ScopedStage
    {
      public:
        ScopedStage(StageTimer &timer, std::string stage)
            : owner(timer), name(std::move(stage)), span(name, "stage")
        {
        }
        ~ScopedStage() { owner.add(name, watch.elapsedMs()); }

        ScopedStage(const ScopedStage &) = delete;
        ScopedStage &operator=(const ScopedStage &) = delete;

      private:
        StageTimer &owner;
        std::string name;
        obs::TraceScope span;
        Timer watch;
    };

  private:
    std::vector<std::pair<std::string, double>> stages;
};

} // namespace edgepc

#endif // EDGEPC_COMMON_TIMER_HPP
