#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace edgepc {

Table::Table(std::vector<std::string> headers) : columns(std::move(headers))
{
}

Table &
Table::row()
{
    data.emplace_back();
    data.back().reserve(columns.size());
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (data.empty()) {
        row();
    }
    data.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(std::string(buf));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(columns.size(), 0);
    for (std::size_t c = 0; c < columns.size(); ++c) {
        widths[c] = columns[c].size();
    }
    for (const auto &r : data) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }

    auto rule = [&] {
        os << '+';
        for (auto w : widths) {
            os << std::string(w + 2, '-') << '+';
        }
        os << '\n';
    };

    rule();
    os << '|';
    for (std::size_t c = 0; c < columns.size(); ++c) {
        os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
           << columns[c] << " |";
    }
    os << '\n';
    rule();
    for (const auto &r : data) {
        os << '|';
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const std::string &v = c < r.size() ? r[c] : std::string();
            os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
               << v << " |";
        }
        os << '\n';
    }
    rule();
}

void
Table::csv(std::ostream &os) const
{
    for (std::size_t c = 0; c < columns.size(); ++c) {
        os << columns[c] << (c + 1 < columns.size() ? "," : "\n");
    }
    for (const auto &r : data) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            os << r[c] << (c + 1 < r.size() ? "," : "\n");
        }
    }
}

std::string
formatSpeedup(double speedup)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
    return buf;
}

std::string
formatPercent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace edgepc
