#include "common/scratch_arena.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace edgepc {

namespace {

/** Heap growths across every thread's arena (for the zero-alloc tests). */
std::atomic<std::uint64_t> &
globalGrowCount()
{
    static std::atomic<std::uint64_t> count{0};
    return count;
}

/** First block size when the arena grows from empty. */
constexpr std::size_t kMinBlockBytes = 64 * 1024;

} // namespace

ScratchArena::ScratchArena(std::size_t initial_bytes)
{
    if (initial_bytes > 0) {
        grow(initial_bytes);
    }
}

ScratchArena::~ScratchArena()
{
    for (Block &b : blocks) {
        ::operator delete[](b.data, std::align_val_t{kAlignment});
    }
}

ScratchArena &
ScratchArena::local()
{
    static thread_local ScratchArena arena;
    return arena;
}

std::uint64_t
ScratchArena::totalGrowCount()
{
    return globalGrowCount().load(std::memory_order_relaxed);
}

void
ScratchArena::grow(std::size_t at_least)
{
    // Geometric growth keeps the number of blocks (and therefore heap
    // allocations) logarithmic in the peak working set.
    std::size_t size = std::max(kMinBlockBytes, capacity);
    size = std::max(size, at_least);
    Block block;
    block.data = static_cast<std::byte *>(
        ::operator new[](size, std::align_val_t{kAlignment}));
    block.size = size;
    blocks.push_back(block);
    capacity += size;
    ++grows;
    globalGrowCount().fetch_add(1, std::memory_order_relaxed);
    static obs::Counter &growCounter =
        obs::MetricsRegistry::global().counter("scratch.grow_count");
    growCounter.add(1);
}

void *
ScratchArena::allocBytes(std::size_t bytes)
{
    // Every span starts 32-byte aligned, so round each request up.
    const std::size_t need =
        (bytes + kAlignment - 1) / kAlignment * kAlignment;
    if (need < bytes) {
        raise(ErrorCode::InvalidArgument,
              "ScratchArena: allocation size overflow (%zu bytes)", bytes);
    }

    // Walk to the first existing block with room before growing.
    while (currentBlock < blocks.size() &&
           blocks[currentBlock].size - blockUsed < need) {
        used += blocks[currentBlock].size - blockUsed; // Skipped slack.
        ++currentBlock;
        blockUsed = 0;
    }
    if (currentBlock == blocks.size()) {
        grow(need);
    }

    std::byte *p = blocks[currentBlock].data + blockUsed;
    blockUsed += need;
    used += need;
    return p;
}

void
ScratchArena::rewind(std::size_t block, std::size_t block_used,
                     std::size_t total_used)
{
    currentBlock = block;
    blockUsed = block_used;
    used = total_used;
}

} // namespace edgepc
