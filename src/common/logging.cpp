#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace edgepc {

namespace {

LogLevel g_level = LogLevel::Info;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "DEBUG";
      case LogLevel::Info:
        return "INFO";
      case LogLevel::Warn:
        return "WARN";
      case LogLevel::Error:
        return "ERROR";
    }
    return "?";
}

void
vlog(LogLevel level, const char *fmt, va_list args)
{
    if (level < g_level) {
        return;
    }
    std::fprintf(stderr, "[edgepc %s] ", levelName(level));
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
log(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog(level, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Info, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[edgepc FATAL] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[edgepc PANIC] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::abort();
}

} // namespace edgepc
