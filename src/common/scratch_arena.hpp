/**
 * @file
 * Thread-local bump allocator backing the per-query scratch of the
 * sampling and neighbor-search hot paths.
 *
 * Kernels that run once per query (heaps, candidate lists, distance
 * buffers, radius masks) must not touch the heap in steady state: the
 * arena hands out 32-byte-aligned spans by bumping an offset inside
 * pre-reserved blocks, and a Frame rewinds the offset on scope exit.
 * Blocks grow geometrically and are never freed while the arena lives,
 * so after a warm-up pass every query allocates nothing.
 *
 * One arena per thread (local()): pool workers never contend, and a
 * span handed out on one thread may be read from another (the usual
 * publish-via-parallelFor pattern) because the pool's queue mutex
 * provides the happens-before edge.
 *
 * Lifetime contract: an alloc() span (or any view built over one,
 * like an arena-backed PointsSoA) is valid only until the enclosing
 * Frame rewinds — returning one or storing one beyond the function
 * that allocated it is a dangling reference. edgepc-R8 flags these
 * escapes statically (DESIGN.md §12); copy into caller-owned storage
 * at the boundary instead.
 */

#ifndef EDGEPC_COMMON_SCRATCH_ARENA_HPP
#define EDGEPC_COMMON_SCRATCH_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace edgepc {

/** Thread-local bump allocator for kernel scratch memory. */
class ScratchArena
{
  public:
    /** Alignment of every span handed out (AVX2 vector width). */
    static constexpr std::size_t kAlignment = 32;

    explicit ScratchArena(std::size_t initial_bytes = 0);
    ~ScratchArena();

    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** The calling thread's arena (created on first use). */
    static ScratchArena &local();

    /**
     * Hand out an uninitialized span of @p n elements, 32-byte
     * aligned. T must be trivial (the arena never runs constructors or
     * destructors). Valid until the enclosing Frame is destroyed.
     */
    template <typename T>
    std::span<T> alloc(std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                          std::is_trivially_destructible_v<T>,
                      "ScratchArena only holds trivial types");
        if (n == 0) {
            return {};
        }
        void *p = allocBytes(n * sizeof(T));
        return {static_cast<T *>(p), n};
    }

    /** Bytes currently reserved across all blocks. */
    std::size_t capacityBytes() const { return capacity; }

    /** Bytes handed out since the last full rewind. */
    std::size_t usedBytes() const { return used; }

    /** Heap growths of this arena (one per new block). */
    std::uint64_t growCount() const { return grows; }

    /**
     * Heap growths summed over every thread's arena since process
     * start; the zero-allocation tests assert this stays flat across
     * steady-state queries.
     */
    static std::uint64_t totalGrowCount();

    /**
     * RAII scope: captures the arena offset on entry and rewinds on
     * exit. Frames nest; spans allocated inside a frame are invalid
     * after it closes (the memory is recycled, not freed).
     */
    class Frame
    {
      public:
        explicit Frame(ScratchArena &arena)
            : owner(arena), savedBlock(arena.currentBlock),
              savedUsed(arena.blockUsed), savedTotal(arena.used)
        {
        }
        ~Frame() { owner.rewind(savedBlock, savedUsed, savedTotal); }

        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

      private:
        ScratchArena &owner;
        std::size_t savedBlock;
        std::size_t savedUsed;
        std::size_t savedTotal;
    };

  private:
    struct Block
    {
        std::byte *data = nullptr;
        std::size_t size = 0;
    };

    void *allocBytes(std::size_t bytes);
    void grow(std::size_t at_least);
    void rewind(std::size_t block, std::size_t block_used,
                std::size_t total_used);

    std::vector<Block> blocks;
    std::size_t currentBlock = 0; ///< Index of the block being bumped.
    std::size_t blockUsed = 0;    ///< Offset inside the current block.
    std::size_t used = 0;         ///< Total live bytes (all blocks).
    std::size_t capacity = 0;
    std::uint64_t grows = 0;
};

} // namespace edgepc

#endif // EDGEPC_COMMON_SCRATCH_ARENA_HPP
