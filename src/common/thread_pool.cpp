#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <future>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace edgepc {

namespace {

/** Tasks currently queued (enqueued, not yet picked up). */
obs::Gauge &
queueDepthGauge()
{
    static obs::Gauge &gauge =
        obs::MetricsRegistry::global().gauge("threadpool.queue_depth");
    return gauge;
}

/** Tasks ever enqueued. */
obs::Counter &
taskCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter("threadpool.tasks");
    return counter;
}

/** Enqueue-to-completion latency (queue wait + execution). */
obs::Histogram &
taskLatencyHistogram()
{
    static obs::Histogram &hist =
        obs::MetricsRegistry::global().histogram("threadpool.task_ms");
    return hist;
}

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        // The caller participates in parallelFor, so target one thread
        // per core by spawning hardware_concurrency - 1 workers; on a
        // single-core device the pool runs fully inline. EDGEPC_THREADS
        // overrides the total concurrency (workers + caller).
        std::size_t concurrency =
            std::max(1u, std::thread::hardware_concurrency());
        if (const char *env = std::getenv("EDGEPC_THREADS")) {
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end != env && *end == '\0' && v >= 1) {
                concurrency = static_cast<std::size_t>(v);
            } else {
                warn("EDGEPC_THREADS: ignoring invalid value '%s'", env);
            }
        }
        num_threads = concurrency - 1;
    }
    workers.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    for (auto &w : workers) {
        w.join();
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            UniqueMutexLock lock(queueMutex);
            // Explicit wait loop: wait(lock, pred) lambdas are
            // analyzed as separate functions by -Wthread-safety and
            // would reject the guarded reads.
            while (!stopping && tasks.empty()) {
                queueCv.wait(lock);
            }
            if (stopping && tasks.empty()) {
                return;
            }
            task = std::move(tasks.front());
            tasks.pop();
        }
        queueDepthGauge().add(-1);
        task.body();
        taskLatencyHistogram().observe(task.queued.elapsedMs());
    }
}

void
ThreadPool::parallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)> &fn,
    std::size_t grain)
{
    if (begin >= end) {
        return;
    }
    const std::size_t n = end - begin;
    const std::size_t nthreads = workers.size() + 1;
    if (grain == 0) {
        grain = std::max<std::size_t>(1, n / (nthreads * 4));
    }
    const std::size_t nchunks = (n + grain - 1) / grain;

    if (nchunks <= 1) {
        fn(begin, end);
        return;
    }

    // The control block is shared with the helper tasks: a helper may
    // be dequeued only after every chunk has already been claimed and
    // the caller has returned, so it must not touch the caller's
    // stack. Everything a late helper can reach lives here.
    struct Batch
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t nchunks;
        std::size_t begin;
        std::size_t end;
        std::size_t grain;
        const std::function<void(std::size_t, std::size_t)> *body;
        // EDGEPC_LOCK_RANK(25): per-batch error capture lock — leaf
        // lock under queueMutex (30); nothing is acquired inside it.
        Mutex errorMutex;
        std::exception_ptr error EDGEPC_GUARDED_BY(errorMutex);
        std::promise<void> allDone;
    };
    auto batch = std::make_shared<Batch>();
    batch->nchunks = nchunks;
    batch->begin = begin;
    batch->end = end;
    batch->grain = grain;
    // The body itself stays on the caller's stack: any helper that
    // claims a chunk finishes it (and its done increment) before the
    // caller is released, so the pointer never dangles while used.
    batch->body = &fn;

    auto run_chunks = [](const std::shared_ptr<Batch> &b) {
        for (;;) {
            const std::size_t c = b->next.fetch_add(1);
            if (c >= b->nchunks) {
                break;
            }
            const std::size_t lo = b->begin + c * b->grain;
            const std::size_t hi = std::min(b->end, lo + b->grain);
            try {
                (*b->body)(lo, hi);
            } catch (...) {
                MutexLock lock(b->errorMutex);
                if (!b->error) {
                    b->error = std::current_exception();
                }
            }
            if (b->done.fetch_add(1) + 1 == b->nchunks) {
                b->allDone.set_value();
            }
        }
    };

    const std::size_t helpers = std::min(nchunks - 1, workers.size());
    // Bumped before the push so the gauge can never dip negative when
    // a worker pops (and decrements) immediately.
    taskCounter().add(helpers);
    queueDepthGauge().add(static_cast<std::int64_t>(helpers));
    {
        MutexLock lock(queueMutex);
        for (std::size_t i = 0; i < helpers; ++i) {
            tasks.push(Task{[batch, run_chunks] { run_chunks(batch); }});
        }
    }
    queueCv.notify_all();

    run_chunks(batch);
    batch->allDone.get_future().wait();

    // allDone already orders every helper's writes before this read,
    // but the lock keeps the guarded_by contract checkable (and is
    // uncontended by then — one acquisition per parallelFor call).
    std::exception_ptr err;
    {
        MutexLock lock(batch->errorMutex);
        err = batch->error;
    }
    if (err) {
        std::rethrow_exception(err);
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t grain)
{
    parallelForChunked(
        begin, end,
        [&fn](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                fn(i);
            }
        },
        grain);
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
    std::future<void> future = task->get_future();
    taskCounter().add(1);
    if (workers.empty()) {
        // Serial pool (single-core target): nobody would ever drain
        // the queue, so the task runs inline on the caller.
        (*task)();
        return future;
    }
    queueDepthGauge().add(1);
    {
        MutexLock lock(queueMutex);
        tasks.push(Task{[task] { (*task)(); }});
    }
    queueCv.notify_one();
    return future;
}

ThreadPool &
ThreadPool::globalPool()
{
    static ThreadPool pool;
    return pool;
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &fn, std::size_t grain)
{
    ThreadPool::globalPool().parallelFor(begin, end, fn, grain);
}

} // namespace edgepc
