/**
 * @file Compile-time concurrency contracts: wrappers for Clang's
 * thread-safety analysis attributes plus capability-annotated mutex
 * and lock types.
 *
 * The macros expand to `__attribute__((...))` under Clang and to
 * nothing everywhere else, so annotated code builds unchanged with
 * GCC/MSVC. Building with Clang and `-DEDGEPC_THREAD_SAFETY=ON`
 * turns the annotations into hard compile errors
 * (`-Wthread-safety -Werror=thread-safety`); the CI `thread-safety`
 * job does exactly that on every PR.
 *
 * Conventions (see DESIGN.md §12 "Concurrency contracts"):
 *  - Every mutex member is an `edgepc::Mutex` (never a raw
 *    `std::mutex`), carries an `EDGEPC_LOCK_RANK(n)` comment, and
 *    guards named members via EDGEPC_GUARDED_BY. edgepc-lint rule R9
 *    enforces this; R7 enforces that nested acquisitions follow the
 *    declared rank order (higher rank acquired first).
 *  - Private `...Locked()` helpers that expect the lock held are
 *    annotated EDGEPC_REQUIRES(mu); public entry points that take the
 *    lock themselves are annotated EDGEPC_EXCLUDES(mu).
 *  - Single-threaded-by-contract state (e.g. per-stream pipeline
 *    counters) uses `ThreadRole`, a virtual capability with no
 *    runtime cost, so the contract is still machine-checked.
 */
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define EDGEPC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EDGEPC_THREAD_ANNOTATION(x) // no-op on GCC/MSVC
#endif

/** Marks a type as a capability (lockable). */
#define EDGEPC_CAPABILITY(x) EDGEPC_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose ctor acquires and dtor releases. */
#define EDGEPC_SCOPED_CAPABILITY EDGEPC_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define EDGEPC_GUARDED_BY(x) EDGEPC_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define EDGEPC_PT_GUARDED_BY(x) EDGEPC_THREAD_ANNOTATION(pt_guarded_by(x))

/** Declares acquisition order relative to other capabilities. */
#define EDGEPC_ACQUIRED_BEFORE(...)                                          \
    EDGEPC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EDGEPC_ACQUIRED_AFTER(...)                                           \
    EDGEPC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function requires the capability held on entry (and keeps it). */
#define EDGEPC_REQUIRES(...)                                                 \
    EDGEPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define EDGEPC_ACQUIRE(...)                                                  \
    EDGEPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define EDGEPC_RELEASE(...)                                                  \
    EDGEPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attempts acquisition; first arg is the success value. */
#define EDGEPC_TRY_ACQUIRE(...)                                              \
    EDGEPC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called with the capability held. */
#define EDGEPC_EXCLUDES(...)                                                 \
    EDGEPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the calling thread holds the capability. */
#define EDGEPC_ASSERT_CAPABILITY(x)                                          \
    EDGEPC_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define EDGEPC_RETURN_CAPABILITY(x)                                          \
    EDGEPC_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis (use sparingly, say why). */
#define EDGEPC_NO_THREAD_SAFETY_ANALYSIS                                     \
    EDGEPC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace edgepc
{

/**
 * Capability-annotated wrapper around std::mutex. Drop-in for the
 * repo's locking idiom: members it guards are annotated
 * EDGEPC_GUARDED_BY(theMutex) and Clang rejects unlocked access.
 */
class EDGEPC_CAPABILITY("mutex") Mutex
{
public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() EDGEPC_ACQUIRE() { m.lock(); }
    void unlock() EDGEPC_RELEASE() { m.unlock(); }
    bool try_lock() EDGEPC_TRY_ACQUIRE(true) { return m.try_lock(); }

private:
    std::mutex m;
};

/**
 * RAII lock for edgepc::Mutex, equivalent to std::lock_guard but
 * visible to the thread-safety analysis as a scoped capability.
 */
class EDGEPC_SCOPED_CAPABILITY MutexLock
{
public:
    explicit MutexLock(Mutex &m) EDGEPC_ACQUIRE(m) : mu(m) { mu.lock(); }
    ~MutexLock() EDGEPC_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

private:
    Mutex &mu;
};

/**
 * Relockable RAII lock (std::unique_lock analogue) that satisfies
 * BasicLockable, so it works with std::condition_variable_any:
 *
 *     UniqueMutexLock lock(engineMu);
 *     while (!condLocked())
 *         cv.wait(lock);
 *
 * Note: condition predicates must be written as explicit while-loops
 * around wait(lock); lambda predicates passed to wait(lock, pred) are
 * analyzed as separate functions and trip guarded_by checks.
 */
class EDGEPC_SCOPED_CAPABILITY UniqueMutexLock
{
public:
    explicit UniqueMutexLock(Mutex &m) EDGEPC_ACQUIRE(m) : mu(m), held(true)
    {
        mu.lock();
    }
    ~UniqueMutexLock() EDGEPC_RELEASE()
    {
        if (held)
            mu.unlock();
    }

    void lock() EDGEPC_ACQUIRE()
    {
        mu.lock();
        held = true;
    }
    void unlock() EDGEPC_RELEASE()
    {
        mu.unlock();
        held = false;
    }
    [[nodiscard]] bool ownsLock() const { return held; }

    UniqueMutexLock(const UniqueMutexLock &) = delete;
    UniqueMutexLock &operator=(const UniqueMutexLock &) = delete;

private:
    Mutex &mu;
    bool held;
};

/**
 * A virtual capability representing a single-caller contract rather
 * than a lock: state that is "owned" by one logical thread (the
 * dispatcher, the per-stream pipeline caller) is annotated
 * EDGEPC_GUARDED_BY(role), and the functions allowed to touch it call
 * role.assertHeld() on entry (a no-op at runtime) or are annotated
 * EDGEPC_REQUIRES(role). Clang then flags any new code path that
 * touches the state without declaring participation in the contract.
 */
class EDGEPC_CAPABILITY("role") ThreadRole
{
public:
    ThreadRole() = default;
    ThreadRole(const ThreadRole &) = delete;
    ThreadRole &operator=(const ThreadRole &) = delete;

    /** Assert (statically) that the caller acts under this role. */
    void assertHeld() const EDGEPC_ASSERT_CAPABILITY(this) {}
};

} // namespace edgepc
