/**
 * @file
 * Work-stealing-free, fixed-size thread pool used to emulate the
 * data-parallel execution model of the paper's CUDA kernels.
 *
 * Every EdgePC kernel is expressed as a parallel map over an index range
 * (the same decomposition the original CUDA implementation uses: one GPU
 * thread per point / per sampled point). parallelFor() blocks until the
 * whole range has been processed, mirroring a kernel launch + sync.
 */

#ifndef EDGEPC_COMMON_THREAD_POOL_HPP
#define EDGEPC_COMMON_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/timer.hpp"

namespace edgepc {

/**
 * A fixed-size pool of worker threads with a shared task queue.
 *
 * The pool is cheap to keep alive for the lifetime of the process; the
 * global instance returned by globalPool() is what the library kernels
 * use. A dedicated pool can be constructed for tests.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool.
     *
     * @param num_threads Number of workers; 0 sizes the pool so workers
     *                    plus the participating caller match the
     *                    hardware concurrency (so a single-core device
     *                    gets zero workers and runs fully inline). The
     *                    EDGEPC_THREADS environment variable overrides
     *                    that total.
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 on a single-core default pool). */
    std::size_t size() const { return workers.size(); }

    /** Total concurrency of parallelFor: workers + the caller. */
    std::size_t concurrency() const { return workers.size() + 1; }

    /**
     * Run fn(i) for every i in [begin, end), distributing contiguous
     * chunks across the workers, and block until all are done.
     *
     * The calling thread participates in the work, so the pool is usable
     * even with zero queued capacity. Exceptions thrown by fn propagate
     * to the caller (first one wins).
     *
     * @param begin First index (inclusive).
     * @param end   Last index (exclusive).
     * @param fn    Body invoked once per index.
     * @param grain Minimum indices per chunk; 0 picks a heuristic.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn,
                     std::size_t grain = 0);

    /**
     * Run fn(chunk_begin, chunk_end) over chunked subranges.
     * Useful when the body wants to amortize per-chunk setup.
     */
    void parallelForChunked(
        std::size_t begin, std::size_t end,
        const std::function<void(std::size_t, std::size_t)> &fn,
        std::size_t grain = 0);

    /**
     * Enqueue a single task and return a future for its completion.
     *
     * Unlike parallelFor(), the caller does not participate: the task
     * runs on a worker thread while the caller is free to wait with a
     * timeout (this is what the RobustPipeline deadline watchdog
     * does). An exception thrown by @p fn is rethrown from
     * future::get().
     */
    std::future<void> submit(std::function<void()> fn);

    /** The process-wide pool shared by the library's kernels. */
    static ThreadPool &globalPool();

  private:
    struct Task
    {
        std::function<void()> body;
        /** Started at enqueue; feeds the task-latency histogram. */
        Timer queued;
    };

    void workerLoop() EDGEPC_EXCLUDES(queueMutex);

    /** Immutable after the constructor returns (workers spawn once
        and only join in the destructor). */
    std::vector<std::thread> workers;
    // EDGEPC_LOCK_RANK(30): shared task-queue lock — may be acquired
    // while a caller holds engineMu (40); must never be held while
    // taking engineMu back.
    Mutex queueMutex;
    std::queue<Task> tasks EDGEPC_GUARDED_BY(queueMutex);
    std::condition_variable_any queueCv;
    bool stopping EDGEPC_GUARDED_BY(queueMutex) = false;
};

/** Convenience wrapper over ThreadPool::globalPool().parallelFor(). */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &fn,
                 std::size_t grain = 0);

} // namespace edgepc

#endif // EDGEPC_COMMON_THREAD_POOL_HPP
