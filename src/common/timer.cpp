#include "common/timer.hpp"

#include <algorithm>

namespace edgepc {

void
StageTimer::add(const std::string &stage, double ms)
{
    for (auto &entry : stages) {
        if (entry.first == stage) {
            entry.second += ms;
            return;
        }
    }
    stages.emplace_back(stage, ms);
}

double
StageTimer::total(const std::string &stage) const
{
    for (const auto &entry : stages) {
        if (entry.first == stage) {
            return entry.second;
        }
    }
    return 0.0;
}

double
StageTimer::grandTotal() const
{
    double sum = 0.0;
    for (const auto &entry : stages) {
        sum += entry.second;
    }
    return sum;
}

double
StageTimer::fraction(const std::string &stage) const
{
    const double all = grandTotal();
    if (all <= 0.0) {
        return 0.0;
    }
    return total(stage) / all;
}

const std::vector<std::pair<std::string, double>> &
StageTimer::entries() const
{
    return stages;
}

void
StageTimer::merge(const StageTimer &other)
{
    for (const auto &entry : other.stages) {
        add(entry.first, entry.second);
    }
}

void
StageTimer::scale(double factor)
{
    for (auto &entry : stages) {
        entry.second *= factor;
    }
}

void
StageTimer::clear()
{
    stages.clear();
}

} // namespace edgepc
