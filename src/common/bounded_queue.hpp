/**
 * @file
 * Bounded FIFO queue connecting pipeline stages (DESIGN.md §14).
 *
 * One producer and one consumer thread hand items across a fixed-size
 * ring: push() blocks while the ring is full (backpressure toward the
 * frame source), pop() blocks while it is empty, and close() starts
 * the drain — producers are refused from then on, but every item
 * already queued is still delivered before pop() reports exhaustion.
 * The mutex hand-off is what gives each frame its happens-before edge
 * between stage workers, so the per-frame context needs no atomics of
 * its own.
 *
 * The implementation is a lock-ranked edgepc::Mutex (rank 35) plus a
 * condition variable rather than a lock-free ring: the queue moves
 * one pointer-sized slot per frame (hundreds of Hz), not per point,
 * so contention is negligible and the blocking semantics stay simple
 * enough to verify. No user code runs under the lock.
 */

#ifndef EDGEPC_COMMON_BOUNDED_QUEUE_HPP
#define EDGEPC_COMMON_BOUNDED_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace edgepc {

/**
 * Bounded blocking FIFO with close/drain semantics. T must be movable;
 * moves happen under the queue lock, so keep T cheap to move (the
 * staged pipeline passes frame-slot pointers).
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : cap(capacity == 0 ? 1 : capacity)
    {
        ring.resize(cap);
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p item, blocking while the queue is full. Returns false
     * (item untouched) when the queue was closed before space opened.
     */
    [[nodiscard]] bool push(T item) EDGEPC_EXCLUDES(queueMu)
    {
        UniqueMutexLock lock(queueMu);
        while (count == cap && !closedFlag) {
            notFullCv.wait(lock);
        }
        if (closedFlag) {
            return false;
        }
        ring[(head + count) % cap] = std::move(item);
        ++count;
        notEmptyCv.notify_one();
        return true;
    }

    /** Enqueue without blocking; false when full or closed. */
    [[nodiscard]] bool tryPush(T item) EDGEPC_EXCLUDES(queueMu)
    {
        MutexLock lock(queueMu);
        if (count == cap || closedFlag) {
            return false;
        }
        ring[(head + count) % cap] = std::move(item);
        ++count;
        notEmptyCv.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while the queue is empty. Returns
     * false only when the queue is closed AND fully drained — items
     * queued before close() are always delivered.
     */
    [[nodiscard]] bool pop(T &out) EDGEPC_EXCLUDES(queueMu)
    {
        UniqueMutexLock lock(queueMu);
        while (count == 0 && !closedFlag) {
            notEmptyCv.wait(lock);
        }
        if (count == 0) {
            return false; // Closed and drained.
        }
        out = std::move(ring[head]);
        head = (head + 1) % cap;
        --count;
        notFullCv.notify_one();
        return true;
    }

    /** Dequeue without blocking; false when nothing is queued. */
    [[nodiscard]] bool tryPop(T &out) EDGEPC_EXCLUDES(queueMu)
    {
        MutexLock lock(queueMu);
        if (count == 0) {
            return false;
        }
        out = std::move(ring[head]);
        head = (head + 1) % cap;
        --count;
        notFullCv.notify_one();
        return true;
    }

    /**
     * Refuse future pushes and wake every waiter. Idempotent. Items
     * already queued remain poppable (drain semantics).
     */
    void close() EDGEPC_EXCLUDES(queueMu)
    {
        MutexLock lock(queueMu);
        closedFlag = true;
        notEmptyCv.notify_all();
        notFullCv.notify_all();
    }

    /** Items currently queued (instantaneous; for gauges/tests). */
    std::size_t depth() const EDGEPC_EXCLUDES(queueMu)
    {
        MutexLock lock(queueMu);
        return count;
    }

    std::size_t capacity() const { return cap; }

    /** True once close() ran. */
    bool closed() const EDGEPC_EXCLUDES(queueMu)
    {
        MutexLock lock(queueMu);
        return closedFlag;
    }

  private:
    const std::size_t cap;

    // EDGEPC_LOCK_RANK(35): inter-stage queue lock — leaf in practice
    // (only ring bookkeeping runs under it; no kernel or callback code),
    // ranked between ServingEngine::engineMu (40) and
    // ThreadPool::queueMutex (30) so a dispatcher may hand frames to a
    // stage queue while pool workers stay acquirable downstream.
    mutable Mutex queueMu;
    std::condition_variable_any notEmptyCv;
    std::condition_variable_any notFullCv;
    std::vector<T> ring EDGEPC_GUARDED_BY(queueMu);
    std::size_t head EDGEPC_GUARDED_BY(queueMu) = 0;
    std::size_t count EDGEPC_GUARDED_BY(queueMu) = 0;
    bool closedFlag EDGEPC_GUARDED_BY(queueMu) = false;
};

} // namespace edgepc

#endif // EDGEPC_COMMON_BOUNDED_QUEUE_HPP
