/**
 * @file
 * Minimal leveled logging plus the fatal()/panic() error idiom.
 *
 * fatal() is for user errors (bad configuration, impossible request):
 * prints and exits cleanly. panic() is for internal invariant
 * violations: prints and aborts. Both accept printf-style formatting.
 *
 * For recoverable, data-dependent failures (a corrupt frame, a
 * malformed file) use raise() from common/error.hpp instead — it
 * throws a typed EdgePcException a serving layer can catch.
 */

#ifndef EDGEPC_COMMON_LOGGING_HPP
#define EDGEPC_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace edgepc {

/** Severity levels for log(). */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Global threshold; messages below it are dropped. Default Info. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit a formatted message at @p level to stderr. */
void log(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something works but deserves the user's attention. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Unrecoverable user error: prints and exits(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal bug: prints and aborts. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace edgepc

#endif // EDGEPC_COMMON_LOGGING_HPP
