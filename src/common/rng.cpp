#include "common/rng.hpp"

#include <cmath>

namespace edgepc {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state) {
        s = splitmix64(sm);
    }
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = nextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = nextU64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat()
{
    return static_cast<float>(nextU64() >> 40) * 0x1.0p-24f;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * nextFloat();
}

float
Rng::normal()
{
    if (haveCachedNormal) {
        haveCachedNormal = false;
        return cachedNormal;
    }
    float u1 = nextFloat();
    float u2 = nextFloat();
    // Avoid log(0).
    if (u1 < 1e-12f) {
        u1 = 1e-12f;
    }
    const float radius = std::sqrt(-2.0f * std::log(u1));
    const float angle = 2.0f * static_cast<float>(M_PI) * u2;
    cachedNormal = radius * std::sin(angle);
    haveCachedNormal = true;
    return radius * std::cos(angle);
}

float
Rng::normal(float mean, float stddev)
{
    return mean + stddev * normal();
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

} // namespace edgepc
