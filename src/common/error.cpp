#include "common/error.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/logging.hpp"

namespace edgepc {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0) {
        return std::string(fmt);
    }
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidArgument:
        return "invalid-argument";
      case ErrorCode::EmptyCloud:
        return "empty-cloud";
      case ErrorCode::DegenerateGeometry:
        return "degenerate-geometry";
      case ErrorCode::ShapeMismatch:
        return "shape-mismatch";
      case ErrorCode::NonFiniteData:
        return "non-finite-data";
      case ErrorCode::MalformedFile:
        return "malformed-file";
      case ErrorCode::TruncatedFile:
        return "truncated-file";
      case ErrorCode::IoError:
        return "io-error";
      case ErrorCode::DeadlineExceeded:
        return "deadline-exceeded";
      case ErrorCode::FrameRejected:
        return "frame-rejected";
      case ErrorCode::QueueFull:
        return "queue-full";
      case ErrorCode::StreamQuarantined:
        return "stream-quarantined";
      case ErrorCode::LoadShed:
        return "load-shed";
      case ErrorCode::Internal:
        return "internal";
    }
    return "?";
}

std::string
EdgePcError::toString() const
{
    return std::string("[") + errorCodeName(code) + "] " + message;
}

EdgePcError
makeError(ErrorCode code, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    EdgePcError err{code, vformat(fmt, args)};
    va_end(args);
    return err;
}

void
raise(ErrorCode code, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    EdgePcError err{code, vformat(fmt, args)};
    va_end(args);
    log(LogLevel::Debug, "raise: %s", err.toString().c_str());
    throw EdgePcException(std::move(err));
}

namespace detail {

void
resultAccessPanic(const char *what)
{
    panic("Result: bad access: %s", what);
}

} // namespace detail

} // namespace edgepc
