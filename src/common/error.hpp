/**
 * @file
 * Recoverable-error taxonomy: EdgePcError (code + context string),
 * Result<T> for fallible public APIs, and raise() for data-dependent
 * failures deep inside kernels.
 *
 * The repo's error policy has three tiers:
 *  - panic()  — internal invariant violation; prints and aborts.
 *  - fatal()  — unrecoverable user error (impossible configuration);
 *               prints and exits.
 *  - raise()  — data-dependent, recoverable failure (empty frame,
 *               degenerate geometry, malformed file): throws an
 *               EdgePcException carrying an EdgePcError so a serving
 *               layer (see core/robust_pipeline.hpp) can catch it and
 *               degrade gracefully instead of killing the stream.
 *
 * Boundary APIs that are expected to fail on ordinary input (file
 * loaders, the pipeline entry points) return Result<T> instead of
 * throwing, so callers handle errors as values.
 */

#ifndef EDGEPC_COMMON_ERROR_HPP
#define EDGEPC_COMMON_ERROR_HPP

#include <exception>
#include <string>
#include <utility>
#include <variant>

namespace edgepc {

/** Classification of every recoverable failure the library reports. */
enum class ErrorCode
{
    /** An argument value is outside its documented domain. */
    InvalidArgument = 0,
    /** A cloud / candidate set / source set is empty where points are
        required. */
    EmptyCloud,
    /** Geometry degenerated (zero extent bounds, non-positive derived
        cell or grid size). */
    DegenerateGeometry,
    /** Array / matrix dimensions disagree (feature-dim mismatch …). */
    ShapeMismatch,
    /** Input data contains NaN or Inf where finite values are needed. */
    NonFiniteData,
    /** A file exists but its contents do not parse. */
    MalformedFile,
    /** A file ended before the declared data was read. */
    TruncatedFile,
    /** The OS could not open / read / write a file. */
    IoError,
    /** A frame exceeded its processing deadline. */
    DeadlineExceeded,
    /** A frame was rejected by the sanitizer policy. */
    FrameRejected,
    /** A bounded request queue refused a frame (backpressure). */
    QueueFull,
    /** The stream's circuit breaker is open; frames are quarantined. */
    StreamQuarantined,
    /** A frame was shed by the admission controller / shutdown. */
    LoadShed,
    /** Recoverable internal condition with no better classification. */
    Internal,
};

/** Number of ErrorCode values (for per-code counters). */
inline constexpr std::size_t kErrorCodeCount =
    static_cast<std::size_t>(ErrorCode::Internal) + 1;

/** Stable lower-case name of a code ("empty-cloud", "io-error", …). */
const char *errorCodeName(ErrorCode code);

/** A recoverable error: taxonomy code plus human-readable context. */
struct EdgePcError
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;

    /** "[empty-cloud] PointNetPP::forward: empty cloud" style string. */
    std::string toString() const;
};

/** Build an EdgePcError with printf-style context formatting. */
EdgePcError makeError(ErrorCode code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Exception wrapper used by raise(). Deep kernels cannot return
 * Result<T> without threading it through every signature, so they
 * throw; boundary APIs catch and convert to Result<T>.
 */
class EdgePcException : public std::exception
{
  public:
    explicit EdgePcException(EdgePcError error)
        : err(std::move(error)), text(err.toString())
    {
    }

    const EdgePcError &error() const { return err; }
    ErrorCode code() const { return err.code; }
    const char *what() const noexcept override { return text.c_str(); }

  private:
    EdgePcError err;
    std::string text;
};

/**
 * Report a recoverable, data-dependent failure: throws EdgePcException
 * with printf-style context. Replaces fatal() at call sites a serving
 * layer must survive.
 */
[[noreturn]] void raise(ErrorCode code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Value-or-error return type for fallible boundary APIs.
 *
 * Holds either a T or an EdgePcError. Accessing the wrong alternative
 * is an internal bug (panics).
 *
 * The class is [[nodiscard]]: silently dropping a Result loses the
 * error, so a deliberate discard must be spelled `(void)call();` with
 * a comment (enforced by edgepc-lint rule R2).
 */
template <typename T> class [[nodiscard]] Result
{
  public:
    /** Success. */
    Result(T value) : state(std::move(value)) {}

    /** Failure. */
    Result(EdgePcError error) : state(std::move(error)) {}

    /** True when a value is present. */
    bool ok() const { return std::holds_alternative<T>(state); }
    explicit operator bool() const { return ok(); }

    /** The value; panics when the result holds an error. */
    T &value();
    const T &value() const;

    /** The error; panics when the result holds a value. */
    const EdgePcError &error() const;

    /** The error code, or ErrorCode::Internal when ok(). */
    ErrorCode code() const
    {
        return ok() ? ErrorCode::Internal : error().code;
    }

    /** The value, or @p fallback when the result holds an error. */
    T valueOr(T fallback) const
    {
        return ok() ? std::get<T>(state) : std::move(fallback);
    }

    /** Move the value out; panics when the result holds an error. */
    T take() { return std::move(value()); }

  private:
    std::variant<T, EdgePcError> state;
};

/** Result<void>: success carries no value. */
template <> class [[nodiscard]] Result<void>
{
  public:
    Result() = default;
    Result(EdgePcError error) : err(std::move(error)), failed(true) {}

    bool ok() const { return !failed; }
    explicit operator bool() const { return ok(); }

    const EdgePcError &error() const;

    ErrorCode code() const
    {
        return ok() ? ErrorCode::Internal : err.code;
    }

  private:
    EdgePcError err;
    bool failed = false;
};

namespace detail {
[[noreturn]] void resultAccessPanic(const char *what);
} // namespace detail

template <typename T>
T &
Result<T>::value()
{
    if (!ok()) {
        detail::resultAccessPanic(
            std::get<EdgePcError>(state).toString().c_str());
    }
    return std::get<T>(state);
}

template <typename T>
const T &
Result<T>::value() const
{
    if (!ok()) {
        detail::resultAccessPanic(
            std::get<EdgePcError>(state).toString().c_str());
    }
    return std::get<T>(state);
}

template <typename T>
const EdgePcError &
Result<T>::error() const
{
    if (ok()) {
        detail::resultAccessPanic("error() on a successful Result");
    }
    return std::get<EdgePcError>(state);
}

inline const EdgePcError &
Result<void>::error() const
{
    if (ok()) {
        detail::resultAccessPanic("error() on a successful Result");
    }
    return err;
}

} // namespace edgepc

#endif // EDGEPC_COMMON_ERROR_HPP
