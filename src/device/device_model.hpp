/**
 * @file
 * Analytical edge-GPU execution model for batch-level scheduling.
 *
 * This closes the one Table-1 effect a frame-at-a-time CPU harness
 * cannot measure: the paper attributes W1's larger SMP+NS speedup
 * over W2 (5.21x vs 3.44x) to batch size — the baseline's quadratic,
 * launch-serialized kernels process a batch sequentially, while the
 * EdgePC kernels are massively parallel and overlap across the frames
 * of a batch (Sec 6.2).
 *
 * The model is deliberately simple and fully documented: a device has
 * L lanes at a fixed per-lane throughput and a per-launch overhead.
 * A kernel is (total ops, exploitable parallelism, serial launches).
 * One kernel's latency is its serial-launch chain plus its throughput
 * time at min(parallelism, lanes). A batch's makespan is the larger
 * of (a) the whole batch's work at full device throughput — frames
 * overlap freely — and (b) the longest single-frame serial chain,
 * which nothing can overlap away. FPS's n dependent selections make
 * (b) dominate the baseline; the Morton kernels have O(1) launches,
 * so (a) dominates and the batch fills the device.
 */

#ifndef EDGEPC_DEVICE_DEVICE_MODEL_HPP
#define EDGEPC_DEVICE_DEVICE_MODEL_HPP

#include <cstddef>
#include <vector>

namespace edgepc {

/** Work descriptor of one kernel as launched on the device. */
struct KernelWork
{
    /** Total scalar operations across all launches. */
    double ops = 0.0;

    /** Lanes the kernel can usefully occupy at once. */
    double parallelism = 1.0;

    /**
     * Dependent sequential launches (FPS: one per selected point;
     * data-parallel kernels: 1).
     */
    std::size_t serialLaunches = 1;
};

/** Throughput/launch-latency model of a massively parallel device. */
class DeviceModel
{
  public:
    /**
     * @param lanes Parallel lanes (512 for the Xavier's Volta GPU).
     * @param ops_per_lane_per_us Per-lane throughput.
     * @param launch_overhead_us Fixed cost of one dependent launch.
     */
    DeviceModel(std::size_t lanes = 512,
                double ops_per_lane_per_us = 20.0,
                double launch_overhead_us = 5.0);

    /** Latency of one kernel executed alone (microseconds). */
    double kernelTimeUs(const KernelWork &kernel) const;

    /**
     * Makespan of a batch of independent per-frame kernel chains
     * (microseconds): max of the device-throughput bound over all
     * work and the longest per-frame serial chain.
     *
     * @param frames One entry per frame; each frame is a chain of
     *        kernels executed in order.
     */
    double batchMakespanUs(
        const std::vector<std::vector<KernelWork>> &frames) const;

    std::size_t lanes() const { return laneCount; }

  private:
    double serialTimeUs(const KernelWork &kernel) const;
    double throughputOpsPerUs() const;

    std::size_t laneCount;
    double laneThroughput;
    double launchOverheadUs;
};

/** FPS on N points selecting n: n dependent O(N) update launches. */
KernelWork fpsKernel(std::size_t n_points, std::size_t n_samples);

/** Ball query / k-NN: q independent O(N) scans, one launch. */
KernelWork exactSearchKernel(std::size_t n_points, std::size_t queries);

/** Morton structurize: code generation + radix sort passes. */
KernelWork mortonStructurizeKernel(std::size_t n_points);

/** Stride sampling on the sorted order: one trivial launch. */
KernelWork strideSampleKernel(std::size_t n_samples);

/** Window search: q independent O(W) scans, one launch. */
KernelWork windowSearchKernel(std::size_t queries, std::size_t window);

} // namespace edgepc

#endif // EDGEPC_DEVICE_DEVICE_MODEL_HPP
