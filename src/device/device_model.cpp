#include "device/device_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace edgepc {

DeviceModel::DeviceModel(std::size_t lanes, double ops_per_lane_per_us,
                         double launch_overhead_us)
    : laneCount(lanes), laneThroughput(ops_per_lane_per_us),
      launchOverheadUs(launch_overhead_us)
{
    if (lanes == 0 || ops_per_lane_per_us <= 0.0) {
        fatal("DeviceModel: lanes and throughput must be positive");
    }
}

double
DeviceModel::throughputOpsPerUs() const
{
    return static_cast<double>(laneCount) * laneThroughput;
}

double
DeviceModel::serialTimeUs(const KernelWork &kernel) const
{
    // Each dependent launch pays the launch overhead plus its share
    // of the work at the kernel's own exploitable parallelism.
    const double usable =
        std::min(kernel.parallelism, static_cast<double>(laneCount));
    const double per_launch_ops =
        kernel.ops / static_cast<double>(std::max<std::size_t>(
                         1, kernel.serialLaunches));
    const double per_launch_time =
        launchOverheadUs +
        per_launch_ops / std::max(1.0, usable * laneThroughput);
    return per_launch_time *
           static_cast<double>(std::max<std::size_t>(
               1, kernel.serialLaunches));
}

double
DeviceModel::kernelTimeUs(const KernelWork &kernel) const
{
    return serialTimeUs(kernel);
}

double
DeviceModel::batchMakespanUs(
    const std::vector<std::vector<KernelWork>> &frames) const
{
    double total_ops = 0.0;
    double longest_chain = 0.0;
    for (const auto &chain : frames) {
        double chain_time = 0.0;
        for (const KernelWork &kernel : chain) {
            total_ops += kernel.ops;
            chain_time += serialTimeUs(kernel);
        }
        longest_chain = std::max(longest_chain, chain_time);
    }
    // Frames overlap freely up to the device's total throughput; the
    // longest per-frame dependency chain cannot be overlapped away.
    const double throughput_bound = total_ops / throughputOpsPerUs();
    return std::max(throughput_bound, longest_chain);
}

KernelWork
fpsKernel(std::size_t n_points, std::size_t n_samples)
{
    KernelWork kernel;
    kernel.ops = static_cast<double>(n_points) *
                 static_cast<double>(n_samples);
    kernel.parallelism = static_cast<double>(n_points);
    kernel.serialLaunches = std::max<std::size_t>(1, n_samples);
    return kernel;
}

KernelWork
exactSearchKernel(std::size_t n_points, std::size_t queries)
{
    KernelWork kernel;
    kernel.ops =
        static_cast<double>(n_points) * static_cast<double>(queries);
    kernel.parallelism = static_cast<double>(queries);
    kernel.serialLaunches = 1;
    return kernel;
}

KernelWork
mortonStructurizeKernel(std::size_t n_points)
{
    KernelWork kernel;
    // Code generation (O(N)) + 4 radix passes (O(N) each).
    kernel.ops = 5.0 * static_cast<double>(n_points);
    kernel.parallelism = static_cast<double>(n_points);
    kernel.serialLaunches = 5;
    return kernel;
}

KernelWork
strideSampleKernel(std::size_t n_samples)
{
    KernelWork kernel;
    kernel.ops = static_cast<double>(n_samples);
    kernel.parallelism = static_cast<double>(n_samples);
    kernel.serialLaunches = 1;
    return kernel;
}

KernelWork
windowSearchKernel(std::size_t queries, std::size_t window)
{
    KernelWork kernel;
    kernel.ops =
        static_cast<double>(queries) * static_cast<double>(window);
    kernel.parallelism = static_cast<double>(queries);
    kernel.serialLaunches = 1;
    return kernel;
}

} // namespace edgepc
