#include "models/pointnetpp.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "neighbor/ball_query.hpp"
#include "neighbor/brute_force.hpp"
#include "neighbor/morton_window.hpp"
#include "sampling/fps.hpp"

namespace edgepc {

namespace {

/** Accumulate @p g into @p acc, allocating @p acc on first use. */
void
accumulate(nn::Matrix &acc, const nn::Matrix &g)
{
    if (acc.numel() == 0 && acc.rows() == 0) {
        acc = g;
    } else {
        acc.add(g);
    }
}

} // namespace

PointNetPPConfig
PointNetPPConfig::semanticSegmentation(std::size_t num_points,
                                       std::size_t num_classes)
{
    auto at_least_one = [](std::size_t v) {
        return std::max<std::size_t>(1, v);
    };
    PointNetPPConfig cfg;
    cfg.numClasses = num_classes;
    cfg.sa = {
        {at_least_one(num_points / 8), 32, 0.1f, NeighborMode::BallQuery,
         {32, 32, 64}},
        {at_least_one(num_points / 32), 32, 0.2f, NeighborMode::BallQuery,
         {64, 64, 128}},
        {at_least_one(num_points / 128), 32, 0.4f,
         NeighborMode::BallQuery, {128, 128, 256}},
        {at_least_one(num_points / 512), 32, 0.8f,
         NeighborMode::BallQuery, {256, 256, 512}},
    };
    cfg.fp = {
        {{256, 256}},
        {{256, 256}},
        {{256, 128}},
        {{128, 128, 128}},
    };
    cfg.headMlp = {128};
    return cfg;
}

PointNetPPConfig
PointNetPPConfig::liteSegmentation(std::size_t num_points,
                                   std::size_t num_classes)
{
    auto at_least_one = [](std::size_t v) {
        return std::max<std::size_t>(1, v);
    };
    PointNetPPConfig cfg;
    cfg.numClasses = num_classes;
    cfg.sa = {
        {at_least_one(num_points / 4), 16, 0.2f, NeighborMode::BallQuery,
         {16, 32}},
        {at_least_one(num_points / 16), 8, 0.4f, NeighborMode::BallQuery,
         {32, 64}},
    };
    cfg.fp = {
        {{64}},
        {{64, 32}},
    };
    cfg.headMlp = {32};
    return cfg;
}

PointNetPPConfig
PointNetPPConfig::liteClassification(std::size_t num_points,
                                     std::size_t num_classes)
{
    auto at_least_one = [](std::size_t v) {
        return std::max<std::size_t>(1, v);
    };
    PointNetPPConfig cfg;
    cfg.numClasses = num_classes;
    cfg.sa = {
        {at_least_one(num_points / 4), 16, 0.25f,
         NeighborMode::BallQuery, {16, 32}},
        {at_least_one(num_points / 16), 8, 0.5f, NeighborMode::BallQuery,
         {32, 64}},
    };
    cfg.headMlp = {64};
    return cfg;
}

PointNetPP::PointNetPP(PointNetPPConfig config, std::uint64_t seed)
    : cfg(std::move(config))
{
    if (cfg.sa.empty()) {
        // NOLINTNEXTLINE(edgepc-R1): impossible configuration, not data
        fatal("PointNetPP: at least one SA module is required");
    }
    if (!cfg.fp.empty() && cfg.fp.size() != cfg.sa.size()) {
        // NOLINTNEXTLINE(edgepc-R1): impossible configuration, not data
        fatal("PointNetPP: fp modules (%zu) must match sa modules (%zu) "
              "or be empty",
              cfg.fp.size(), cfg.sa.size());
    }
    Rng rng(seed);

    // SA blocks: channel chain C_0 -> ... -> C_L.
    std::vector<std::size_t> level_dims;
    level_dims.push_back(cfg.inputFeatureDim);
    for (std::size_t si = 0; si < cfg.sa.size(); ++si) {
        const SaConfig &sa = cfg.sa[si];
        SaBlock block;
        block.conf = sa;
        std::size_t in_dim = 3 + level_dims.back();
        for (std::size_t wi = 0; wi < sa.mlp.size(); ++wi) {
            const std::size_t width = sa.mlp[wi];
            // Classifier: the deepest SA output feeds a global
            // max-pool; per-cloud batch norm right before it would
            // standardize away the cloud's identity, so the final
            // stage is Linear + ReLU only (see the matching note in
            // dgcnn.cpp). The pair fuses into one GEMM with a
            // BiasRelu epilogue; the parameter stream is identical
            // to a separate Linear + ReLU, so checkpoints interop.
            const bool last_stage_before_global_pool =
                cfg.fp.empty() && si + 1 == cfg.sa.size() &&
                wi + 1 == sa.mlp.size();
            if (last_stage_before_global_pool) {
                block.mlp.addLinearRelu(in_dim, width, rng);
            } else {
                block.mlp.addLinearBnRelu(in_dim, width, rng);
            }
            in_dim = width;
        }
        block.pool = std::make_unique<nn::MaxPoolNeighbors>(sa.k);
        level_dims.push_back(in_dim);
        saBlocks.push_back(std::move(block));
    }

    // FP blocks (deepest first).
    std::size_t carried = level_dims.back();
    const std::size_t num_levels = level_dims.size();
    for (std::size_t m = 0; m < cfg.fp.size(); ++m) {
        FpBlock block;
        block.conf = cfg.fp[m];
        const std::size_t fine_level = num_levels - 2 - m;
        std::size_t in_dim = carried + level_dims[fine_level];
        for (const std::size_t width : cfg.fp[m].mlp) {
            block.mlp.addLinearBnRelu(in_dim, width, rng);
            in_dim = width;
        }
        carried = in_dim;
        fpBlocks.push_back(std::move(block));
    }

    // Head: hidden blocks plus a bare final Linear to the classes.
    std::size_t head_in = cfg.fp.empty() ? level_dims.back() : carried;
    for (const std::size_t width : cfg.headMlp) {
        head.addLinearBnRelu(head_in, width, rng);
        head_in = width;
    }
    head.add(std::make_unique<nn::Linear>(head_in, cfg.numClasses, rng));

    // Propagate the int8-inference config to every Linear layer; the
    // per-call resolve (env > config > shape heuristic) happens inside
    // the layers.
    for (auto &block : saBlocks) {
        block.mlp.setQuantMode(cfg.quantizedInference);
    }
    for (auto &block : fpBlocks) {
        block.mlp.setQuantMode(cfg.quantizedInference);
    }
    head.setQuantMode(cfg.quantizedInference);
}

void
PointNetPP::saSampleStage(std::size_t module, const EdgePcConfig &config,
                          StageTimer *timer, LevelState &cur) const
{
    const SaBlock &block = saBlocks[module];
    const std::size_t num_points = cur.positions.size();
    const std::size_t n = std::min(block.conf.points, num_points);

    const bool morton_sample =
        config.approximate() &&
        static_cast<int>(module) < config.optimizedSampleLayers;
    {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageSample);
        if (morton_sample) {
            const MortonSampler sampler(config.codeBits);
            cur.structur = sampler.structurize(cur.positions);
            cur.mortonSampled = true;
            cur.sampleIndices =
                sampler.sampleStructurized(cur.structur, n);
        } else {
            FarthestPointSampler sampler;
            cur.sampleIndices = sampler.sample(cur.positions, n);
        }
    }
}

NeighborLists
PointNetPP::saNeighborStage(std::size_t module,
                            const EdgePcConfig &config,
                            StageTimer *timer, LevelState &cur) const
{
    const SaBlock &block = saBlocks[module];
    const std::size_t k = block.conf.k;

    NeighborLists neighbors;
    const bool morton_ns =
        config.approximate() &&
        static_cast<int>(module) < config.optimizedNeighborLayers;
    {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageNeighbor);
        if (morton_ns) {
            if (!cur.mortonSampled) {
                // No structurization to reuse from the sampler: build
                // one here (its cost counts against this stage).
                const MortonSampler sampler(config.codeBits);
                cur.structur = sampler.structurize(cur.positions);
                cur.mortonSampled = true;
            }
            const MortonWindowSearch searcher(config.searchWindow);
            neighbors = searcher.search(cur.positions, cur.structur,
                                        cur.sampleIndices, k);
        } else {
            std::vector<Vec3> queries(cur.sampleIndices.size());
            for (std::size_t i = 0; i < queries.size(); ++i) {
                queries[i] = cur.positions[cur.sampleIndices[i]];
            }
            if (block.conf.mode == NeighborMode::BallQuery) {
                BallQuery searcher(block.conf.radius,
                                   cfg.fixedPointSearch);
                neighbors = searcher.search(queries, cur.positions, k);
            } else {
                BruteForceKnn searcher(cfg.fixedPointSearch);
                neighbors = searcher.search(queries, cur.positions, k);
            }
        }
    }
    return neighbors;
}

NeighborLists
PointNetPP::saSampleAndSearch(std::size_t module,
                              const EdgePcConfig &config,
                              StageTimer *timer, LevelState &cur)
{
    saSampleStage(module, config, timer, cur);
    return saNeighborStage(module, config, timer, cur);
}

void
PointNetPP::runSaModule(std::size_t module, const EdgePcConfig &config,
                        StageTimer *timer, bool train)
{
    SaBlock &block = saBlocks[module];
    LevelState &cur = levels[module];
    LevelState &next = levels[module + 1];

    const NeighborLists neighbors =
        saSampleAndSearch(module, config, timer, cur);

    // The searchers clamp k when the candidate set is smaller than
    // the configured neighbor count; everything downstream must use
    // the effective k.
    const std::size_t k_eff = neighbors.k;
    const std::size_t feat_dim = cur.saFeatures.cols();

    // Delayed aggregation (DESIGN.md §13): run the first Linear over
    // the level's unique rows before the gather. A single-stage
    // LinearRelu block (the classifier's deepest) has no eager-tail
    // state to cache, so its delayed route is inference-only.
    auto *lin0 = block.mlp.size() == 0
                     ? nullptr
                     : dynamic_cast<nn::Linear *>(block.mlp.layerAt(0));
    auto *linrelu0 =
        block.mlp.size() == 0
            ? nullptr
            : dynamic_cast<nn::LinearRelu *>(block.mlp.layerAt(0));
    const double flop_ratio = nn::saDelayedFlopRatio(
        cur.positions.size(), cur.sampleIndices.size(), k_eff, feat_dim);
    block.delayedActive =
        nn::resolveDelayedAgg(cfg.delayedAggregation, flop_ratio) &&
        (lin0 != nullptr || (linrelu0 != nullptr && !train));

    if (block.delayedActive) {
        // The gather no longer feeds a GEMM, so the whole block counts
        // as feature compute; the grouping stage is what this route
        // deletes.
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageFeature);
        cur.groupedFeatureDim = feat_dim;
        nn::GemmEngine &engine = nn::GemmEngine::globalEngine();
        if (linrelu0 != nullptr) {
            next.saFeatures = nn::delayedSaSingleStageInfer(
                cur.positions, cur.saFeatures, cur.sampleIndices,
                neighbors, linrelu0->weights().value,
                linrelu0->biases().value, engine);
        } else {
            const nn::Matrix pre = nn::delayedSaFirstLinear(
                cur.positions, cur.saFeatures, cur.sampleIndices,
                neighbors, lin0->weights().value, lin0->biases().value,
                engine, train ? &block.delayedCache : nullptr);
            const nn::Matrix activated =
                block.mlp.forwardFrom(1, pre, train);
            block.pool = std::make_unique<nn::MaxPoolNeighbors>(k_eff);
            next.saFeatures = block.pool->forward(activated, train);
        }
        next.positions.resize(cur.sampleIndices.size());
        for (std::size_t i = 0; i < cur.sampleIndices.size(); ++i) {
            next.positions[i] = cur.positions[cur.sampleIndices[i]];
        }
        return;
    }

    // --- Grouping stage -------------------------------------------
    nn::Matrix grouped;
    {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageGroup);
        cur.groupedFeatureDim = feat_dim;

        // Relative coordinates (constant w.r.t. learnable activations).
        const std::size_t rows = cur.sampleIndices.size() * k_eff;
        nn::Matrix rel(rows, 3);
        parallelFor(0, cur.sampleIndices.size(), [&](std::size_t i) {
            const Vec3 center = cur.positions[cur.sampleIndices[i]];
            const auto row = neighbors.row(i);
            for (std::size_t j = 0; j < k_eff; ++j) {
                float *dst = rel.data() + (i * k_eff + j) * 3;
                const Vec3 d = cur.positions[row[j]] - center;
                dst[0] = d.x;
                dst[1] = d.y;
                dst[2] = d.z;
            }
        });

        if (feat_dim > 0) {
            block.gather.setIndices(neighbors.indices);
            const nn::Matrix gathered =
                block.gather.forward(cur.saFeatures, train);
            grouped = nn::concatCols(rel, gathered);
        } else {
            grouped = std::move(rel);
        }
    }

    // --- Feature compute stage ------------------------------------
    {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageFeature);
        const nn::Matrix activated = block.mlp.forward(grouped, train);
        block.pool = std::make_unique<nn::MaxPoolNeighbors>(k_eff);
        next.saFeatures = block.pool->forward(activated, train);
    }

    next.positions.resize(cur.sampleIndices.size());
    for (std::size_t i = 0; i < cur.sampleIndices.size(); ++i) {
        next.positions[i] = cur.positions[cur.sampleIndices[i]];
    }
}

InterpolationPlan
PointNetPP::fpUpsamplePlan(std::size_t fine_index,
                           const EdgePcConfig &config, StageTimer *timer,
                           const LevelState &fine_level,
                           const LevelState &coarse_level) const
{
    // --- Up-sampling search (counted as sample stage) --------------
    InterpolationPlan plan;
    const bool morton_up =
        config.approximate() &&
        static_cast<int>(fine_index) < config.optimizedSampleLayers &&
        fine_level.mortonSampled;
    {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageSample);
        if (morton_up) {
            const MortonUpsampler upsampler;
            plan = upsampler.plan(fine_level.positions,
                                  fine_level.structur,
                                  fine_level.sampleIndices);
        } else {
            plan = exactInterpolation(fine_level.positions,
                                      coarse_level.positions, 3);
        }
    }
    return plan;
}

void
PointNetPP::runFpModule(std::size_t module, const EdgePcConfig &config,
                        StageTimer *timer, bool train)
{
    FpBlock &block = fpBlocks[module];
    const std::size_t num_levels = levels.size();
    const std::size_t coarse = num_levels - 1 - module;
    const std::size_t fine = coarse - 1;
    LevelState &fine_level = levels[fine];

    InterpolationPlan plan =
        fpUpsamplePlan(fine, config, timer, fine_level, levels[coarse]);

    // --- Interpolation apply + skip concat (grouping stage) --------
    nn::Matrix concat;
    {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageGroup);
        block.interp.setPlan(std::move(plan));
        const nn::Matrix up =
            block.interp.forward(fpFeatures[coarse], train);
        if (fine_level.saFeatures.cols() > 0) {
            concat = nn::concatCols(up, fine_level.saFeatures);
        } else {
            concat = up;
        }
    }

    // --- Feature compute -------------------------------------------
    {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageFeature);
        fpFeatures[fine] = block.mlp.forward(concat, train);
    }
}

nn::Matrix
PointNetPP::forward(const PointCloud &cloud, const EdgePcConfig &config,
                    StageTimer *timer, bool train)
{
    if (cloud.empty()) {
        raise(ErrorCode::EmptyCloud, "PointNetPP::forward: empty cloud");
    }
    if (cloud.featureDim() != cfg.inputFeatureDim) {
        raise(ErrorCode::ShapeMismatch, "PointNetPP::forward: cloud feature dim %zu != model %zu",
              cloud.featureDim(), cfg.inputFeatureDim);
    }
    trainMode = train;

    levels.assign(cfg.sa.size() + 1, LevelState{});
    levels[0].positions = cloud.positions();
    levels[0].saFeatures =
        nn::Matrix(cloud.size(), cfg.inputFeatureDim,
                   std::vector<float>(cloud.features()));

    for (std::size_t i = 0; i < saBlocks.size(); ++i) {
        runSaModule(i, config, timer, train);
    }

    if (isClassifier()) {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageFeature);
        const nn::Matrix pooled =
            globalPool.forward(levels.back().saFeatures, train);
        return head.forward(pooled, train);
    }

    fpFeatures.assign(levels.size(), nn::Matrix{});
    fpFeatures.back() = levels.back().saFeatures;
    for (std::size_t m = 0; m < fpBlocks.size(); ++m) {
        runFpModule(m, config, timer, train);
    }

    StageTimer dummy;
    StageTimer::ScopedStage scope(timer ? *timer : dummy, kStageFeature);
    return head.forward(fpFeatures[0], train);
}

nn::Matrix
PointNetPP::infer(const PointCloud &cloud, const EdgePcConfig &config,
                  StageTimer *timer)
{
    return forward(cloud, config, timer, false);
}

namespace {

/** Inference-only neighbor max-pool over a row range of a stacked
    activation matrix: rows [offset, offset + rows) hold one cloud's
    groups of @p k rows each, pooled to rows / k output rows. Reading
    the range in place is what lets the batched path skip the
    per-cloud sliceRows copy. */
nn::Matrix
maxPoolStackedRows(const nn::Matrix &act, std::size_t offset,
                   std::size_t rows, std::size_t k)
{
    const std::size_t points = rows / k;
    const std::size_t cols = act.cols();
    nn::Matrix out(points, cols);
    parallelFor(0, points, [&](std::size_t p) {
        const float *src = act.data() + (offset + p * k) * cols;
        float *dst = out.data() + p * cols;
        std::copy(src, src + cols, dst);
        for (std::size_t j = 1; j < k; ++j) {
            const float *row = src + j * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                if (row[c] > dst[c]) {
                    dst[c] = row[c];
                }
            }
        }
    });
    return out;
}

} // namespace

std::vector<nn::Matrix>
PointNetPP::inferBatch(std::span<const PointCloud> clouds,
                       const EdgePcConfig &config, StageTimer *timer)
{
    if (clouds.size() <= 1) {
        // Stacking a single cloud buys nothing; take the plain path.
        std::vector<nn::Matrix> out;
        for (const PointCloud &cloud : clouds) {
            out.push_back(infer(cloud, config, timer));
        }
        return out;
    }
    for (const PointCloud &cloud : clouds) {
        if (cloud.empty()) {
            raise(ErrorCode::EmptyCloud,
                  "PointNetPP::inferBatch: empty cloud");
        }
        if (cloud.featureDim() != cfg.inputFeatureDim) {
            raise(ErrorCode::ShapeMismatch,
                  "PointNetPP::inferBatch: cloud feature dim %zu != "
                  "model %zu",
                  cloud.featureDim(), cfg.inputFeatureDim);
        }
    }

    const std::size_t batch = clouds.size();
    const std::size_t num_levels = cfg.sa.size() + 1;
    // Per-cloud level states, advanced in lockstep. Geometry stages
    // use the free-function grouping path rather than the
    // GroupingLayer/InterpolateLayer members, so the training caches
    // of the single-cloud path stay untouched.
    std::vector<std::vector<LevelState>> st(
        batch, std::vector<LevelState>(num_levels));
    for (std::size_t b = 0; b < batch; ++b) {
        st[b][0].positions = clouds[b].positions();
        st[b][0].saFeatures =
            nn::Matrix(clouds[b].size(), cfg.inputFeatureDim,
                       std::vector<float>(clouds[b].features()));
    }

    std::vector<nn::Matrix> parts(batch);
    std::vector<std::size_t> seg_rows(batch);
    std::vector<std::size_t> k_eff(batch);
    std::vector<NeighborLists> neigh(batch);

    for (std::size_t i = 0; i < saBlocks.size(); ++i) {
        SaBlock &block = saBlocks[i];
        auto *lin0 = block.mlp.size() == 0
                         ? nullptr
                         : dynamic_cast<nn::Linear *>(block.mlp.layerAt(0));
        auto *linrelu0 =
            block.mlp.size() == 0
                ? nullptr
                : dynamic_cast<nn::LinearRelu *>(block.mlp.layerAt(0));
        std::size_t total_rows = 0;
        // The delayed-aggregation decision is per cloud with exactly
        // the single-cloud formula, so each cloud's logits keep
        // matching infer() whatever the batch composition.
        std::vector<char> delayed(batch, 0);
        bool any_delayed = false;
        for (std::size_t b = 0; b < batch; ++b) {
            LevelState &cur = st[b][i];
            neigh[b] = saSampleAndSearch(i, config, timer, cur);
            k_eff[b] = neigh[b].k;
            seg_rows[b] = cur.sampleIndices.size() * neigh[b].k;
            total_rows += seg_rows[b];
            const double flop_ratio = nn::saDelayedFlopRatio(
                cur.positions.size(), cur.sampleIndices.size(), k_eff[b],
                cur.saFeatures.cols());
            delayed[b] =
                nn::resolveDelayedAgg(cfg.delayedAggregation,
                                      flop_ratio) &&
                        (lin0 != nullptr || linrelu0 != nullptr)
                    ? 1
                    : 0;
            any_delayed = any_delayed || delayed[b] != 0;
        }
        if (any_delayed && linrelu0 != nullptr) {
            // Single-stage BN-free block (classifier deepest): the
            // fully delayed route never materializes a stacked matrix,
            // so there is nothing to batch — run per cloud.
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageFeature);
            for (std::size_t b = 0; b < batch; ++b) {
                LevelState &cur = st[b][i];
                if (delayed[b] != 0) {
                    st[b][i + 1].saFeatures =
                        nn::delayedSaSingleStageInfer(
                            cur.positions, cur.saFeatures,
                            cur.sampleIndices, neigh[b],
                            linrelu0->weights().value,
                            linrelu0->biases().value,
                            nn::GemmEngine::globalEngine());
                    continue;
                }
                const nn::Matrix grouped = nn::groupWithRelativeCoords(
                    cur.positions, cur.saFeatures, cur.sampleIndices,
                    neigh[b]);
                const nn::Matrix activated =
                    block.mlp.forward(grouped, false);
                st[b][i + 1].saFeatures = maxPoolStackedRows(
                    activated, 0, seg_rows[b], k_eff[b]);
            }
        } else if (any_delayed) {
            // Tier-B mixed batch: every cloud's first-Linear output
            // lands in its row range (delayed clouds via the
            // unique-row GEMMs, eager ones via grouped rows — the
            // packed GEMM is row-independent, so each row is bit-exact
            // with the cloud's single-cloud route), then the BN+ReLU
            // tail runs segmented from layer 1.
            nn::Matrix stacked(total_rows, lin0->outDim());
            {
                StageTimer dummy;
                StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                              kStageFeature);
                std::size_t offset = 0;
                for (std::size_t b = 0; b < batch; ++b) {
                    LevelState &cur = st[b][i];
                    nn::Matrix pre;
                    if (delayed[b] != 0) {
                        pre = nn::delayedSaFirstLinear(
                            cur.positions, cur.saFeatures,
                            cur.sampleIndices, neigh[b],
                            lin0->weights().value, lin0->biases().value,
                            nn::GemmEngine::globalEngine(), nullptr);
                    } else {
                        const nn::Matrix grouped =
                            nn::groupWithRelativeCoords(
                                cur.positions, cur.saFeatures,
                                cur.sampleIndices, neigh[b]);
                        pre = lin0->forward(grouped, false);
                    }
                    std::copy(pre.data(), pre.data() + pre.numel(),
                              stacked.data() + offset * stacked.cols());
                    offset += seg_rows[b];
                }
            }
            {
                StageTimer dummy;
                StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                              kStageFeature);
                const nn::Matrix activated =
                    block.mlp.forwardSegmented(stacked, seg_rows, 1);
                std::size_t offset = 0;
                for (std::size_t b = 0; b < batch; ++b) {
                    st[b][i + 1].saFeatures = maxPoolStackedRows(
                        activated, offset, seg_rows[b], k_eff[b]);
                    offset += seg_rows[b];
                }
            }
        } else {
        // Group every cloud straight into its row range of the
        // stacked batch: the stacking itself costs no extra pass.
        nn::Matrix stacked(total_rows,
                           3 + st[0][i].saFeatures.cols());
        {
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageGroup);
            std::size_t offset = 0;
            for (std::size_t b = 0; b < batch; ++b) {
                LevelState &cur = st[b][i];
                nn::groupWithRelativeCoordsInto(
                    cur.positions, cur.saFeatures, cur.sampleIndices,
                    neigh[b],
                    std::span<float>(stacked.data() +
                                         offset * stacked.cols(),
                                     seg_rows[b] * stacked.cols()));
                offset += seg_rows[b];
            }
        }
        {
            // The batched payoff: one tall GEMM per MLP stage instead
            // of `batch` skinny ones, and the per-cloud max-pool reads
            // its row range of the stacked activation in place.
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageFeature);
            const nn::Matrix activated =
                block.mlp.forwardSegmented(stacked, seg_rows);
            std::size_t offset = 0;
            for (std::size_t b = 0; b < batch; ++b) {
                st[b][i + 1].saFeatures = maxPoolStackedRows(
                    activated, offset, seg_rows[b], k_eff[b]);
                offset += seg_rows[b];
            }
        }
        }
        for (std::size_t b = 0; b < batch; ++b) {
            const LevelState &cur = st[b][i];
            LevelState &next = st[b][i + 1];
            next.positions.resize(cur.sampleIndices.size());
            for (std::size_t j = 0; j < cur.sampleIndices.size(); ++j) {
                next.positions[j] = cur.positions[cur.sampleIndices[j]];
            }
        }
    }

    std::vector<nn::Matrix> logits(batch);
    if (isClassifier()) {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageFeature);
        for (std::size_t b = 0; b < batch; ++b) {
            nn::GlobalMaxPool pool;
            parts[b] = pool.forward(st[b].back().saFeatures, false);
            seg_rows[b] = 1;
        }
        const nn::Matrix out =
            head.forwardSegmented(nn::concatRows(parts), seg_rows);
        for (std::size_t b = 0; b < batch; ++b) {
            logits[b] = nn::sliceRows(out, b, b + 1);
        }
        return logits;
    }

    std::vector<std::vector<nn::Matrix>> fp_feat(
        batch, std::vector<nn::Matrix>(num_levels));
    for (std::size_t b = 0; b < batch; ++b) {
        fp_feat[b].back() = st[b].back().saFeatures;
    }
    std::vector<InterpolationPlan> plans(batch);
    // Stacked output of the last (finest) FP module: it feeds the
    // segmentation head still stacked, skipping a slice + re-concat.
    nn::Matrix fp0_stacked;
    for (std::size_t m = 0; m < fpBlocks.size(); ++m) {
        FpBlock &block = fpBlocks[m];
        const std::size_t coarse = num_levels - 1 - m;
        const std::size_t fine = coarse - 1;
        std::size_t total_rows = 0;
        for (std::size_t b = 0; b < batch; ++b) {
            plans[b] = fpUpsamplePlan(fine, config, timer, st[b][fine],
                                      st[b][coarse]);
            seg_rows[b] = plans[b].targets();
            total_rows += seg_rows[b];
        }
        const std::size_t up_cols = fp_feat[0][coarse].cols();
        const std::size_t sa_cols = st[0][fine].saFeatures.cols();
        // Upsample into the left columns and the skip features into
        // the right columns of the stacked batch directly, replacing
        // the per-cloud concatCols + concatRows passes.
        nn::Matrix stacked(total_rows, up_cols + sa_cols);
        {
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageGroup);
            std::size_t offset = 0;
            for (std::size_t b = 0; b < batch; ++b) {
                float *base =
                    stacked.data() + offset * stacked.cols();
                nn::applyInterpolationInto(
                    plans[b], fp_feat[b][coarse],
                    std::span<float>(base,
                                     seg_rows[b] * stacked.cols()),
                    stacked.cols());
                if (sa_cols > 0) {
                    const nn::Matrix &skip = st[b][fine].saFeatures;
                    for (std::size_t r = 0; r < seg_rows[b]; ++r) {
                        const float *src = skip.data() + r * sa_cols;
                        std::copy(src, src + sa_cols,
                                  base + r * stacked.cols() + up_cols);
                    }
                }
                offset += seg_rows[b];
            }
        }
        {
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageFeature);
            nn::Matrix out =
                block.mlp.forwardSegmented(stacked, seg_rows);
            if (fine == 0) {
                fp0_stacked = std::move(out);
                continue;
            }
            std::size_t offset = 0;
            for (std::size_t b = 0; b < batch; ++b) {
                fp_feat[b][fine] = nn::sliceRows(out, offset,
                                                 offset + seg_rows[b]);
                offset += seg_rows[b];
            }
        }
    }

    StageTimer dummy;
    StageTimer::ScopedStage scope(timer ? *timer : dummy, kStageFeature);
    if (fp0_stacked.rows() == 0) {
        // No FP module produced the finest level stacked (e.g. a
        // headless FP configuration): stack the per-cloud features.
        for (std::size_t b = 0; b < batch; ++b) {
            parts[b] = std::move(fp_feat[b][0]);
            seg_rows[b] = parts[b].rows();
        }
        fp0_stacked = nn::concatRows(parts);
    }
    const nn::Matrix out = head.forwardSegmented(fp0_stacked, seg_rows);
    std::size_t offset = 0;
    for (std::size_t b = 0; b < batch; ++b) {
        logits[b] = nn::sliceRows(out, offset, offset + seg_rows[b]);
        offset += seg_rows[b];
    }
    return logits;
}

/**
 * Per-frame context handed between the staged executor's workers. All
 * members are frame-local heap state (no arena views, no references
 * into the model), so a frame may sit in a queue or run on any stage
 * worker while other frames occupy the other stages.
 */
struct PointNetPP::StagedState : StagedFrame
{
    std::vector<LevelState> levels;
    std::vector<NeighborLists> neighbors;
    std::vector<InterpolationPlan> plans;

    void reset() override
    {
        StagedFrame::reset();
        levels.clear();
        neighbors.clear();
        plans.clear();
    }
};

std::unique_ptr<StagedFrame>
PointNetPP::makeStagedFrame()
{
    return std::make_unique<StagedState>();
}

void
PointNetPP::stagedSample(StagedFrame &frame, const PointCloud &cloud,
                         const EdgePcConfig &config, StageTimer *timer)
{
    auto &st = static_cast<StagedState &>(frame);
    if (cloud.empty()) {
        raise(ErrorCode::EmptyCloud,
              "PointNetPP::stagedSample: empty cloud");
    }
    if (cloud.featureDim() != cfg.inputFeatureDim) {
        raise(ErrorCode::ShapeMismatch,
              "PointNetPP::stagedSample: cloud feature dim %zu != "
              "model %zu",
              cloud.featureDim(), cfg.inputFeatureDim);
    }
    const std::size_t num_levels = cfg.sa.size() + 1;
    st.levels.assign(num_levels, LevelState{});
    st.neighbors.assign(cfg.sa.size(), NeighborLists{});
    st.plans.assign(cfg.fp.size(), InterpolationPlan{});
    st.levels[0].positions = cloud.positions();
    st.levels[0].saFeatures =
        nn::Matrix(cloud.size(), cfg.inputFeatureDim,
                   std::vector<float>(cloud.features()));

    // The whole sampling chain runs here: level i+1's positions are a
    // pure gather of level i's sample indices, so no neighbor or
    // feature result is ever needed to keep sampling.
    for (std::size_t i = 0; i < saBlocks.size(); ++i) {
        LevelState &cur = st.levels[i];
        saSampleStage(i, config, timer, cur);
        LevelState &next = st.levels[i + 1];
        next.positions.resize(cur.sampleIndices.size());
        for (std::size_t j = 0; j < cur.sampleIndices.size(); ++j) {
            next.positions[j] = cur.positions[cur.sampleIndices[j]];
        }
    }

    // FP up-sample plans read only positions / structurizations; the
    // morton_up reuse condition (fine level under optimizedSampleLayers)
    // implies the sampler above already built that structurization, so
    // planning here is exactly the plan the sequential path computes.
    for (std::size_t m = 0; m < fpBlocks.size(); ++m) {
        const std::size_t coarse = num_levels - 1 - m;
        const std::size_t fine = coarse - 1;
        st.plans[m] = fpUpsamplePlan(fine, config, timer,
                                     st.levels[fine], st.levels[coarse]);
    }
}

void
PointNetPP::stagedNeighbor(StagedFrame &frame, const EdgePcConfig &config,
                           StageTimer *timer)
{
    auto &st = static_cast<StagedState &>(frame);
    for (std::size_t i = 0; i < saBlocks.size(); ++i) {
        st.neighbors[i] = saNeighborStage(i, config, timer, st.levels[i]);
    }
}

nn::Matrix
PointNetPP::stagedFeature(StagedFrame &frame, const EdgePcConfig &config,
                          StageTimer *timer)
{
    (void)config;
    auto &st = static_cast<StagedState &>(frame);
    const std::size_t num_levels = st.levels.size();

    for (std::size_t i = 0; i < saBlocks.size(); ++i) {
        SaBlock &block = saBlocks[i];
        LevelState &cur = st.levels[i];
        LevelState &next = st.levels[i + 1];
        const NeighborLists &neighbors = st.neighbors[i];
        const std::size_t k_eff = neighbors.k;
        const std::size_t feat_dim = cur.saFeatures.cols();
        const std::size_t rows = cur.sampleIndices.size() * k_eff;

        // Same per-frame delayed-aggregation decision as runSaModule
        // (inference mode), but without touching block.delayedActive:
        // the training route must not observe serving traffic.
        auto *lin0 =
            block.mlp.size() == 0
                ? nullptr
                : dynamic_cast<nn::Linear *>(block.mlp.layerAt(0));
        auto *linrelu0 =
            block.mlp.size() == 0
                ? nullptr
                : dynamic_cast<nn::LinearRelu *>(block.mlp.layerAt(0));
        const double flop_ratio = nn::saDelayedFlopRatio(
            cur.positions.size(), cur.sampleIndices.size(), k_eff,
            feat_dim);
        const bool delayed =
            nn::resolveDelayedAgg(cfg.delayedAggregation, flop_ratio) &&
            (lin0 != nullptr || linrelu0 != nullptr);

        if (delayed && linrelu0 != nullptr) {
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageFeature);
            next.saFeatures = nn::delayedSaSingleStageInfer(
                cur.positions, cur.saFeatures, cur.sampleIndices,
                neighbors, linrelu0->weights().value,
                linrelu0->biases().value,
                nn::GemmEngine::globalEngine());
        } else if (delayed) {
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageFeature);
            const nn::Matrix pre = nn::delayedSaFirstLinear(
                cur.positions, cur.saFeatures, cur.sampleIndices,
                neighbors, lin0->weights().value, lin0->biases().value,
                nn::GemmEngine::globalEngine(), nullptr);
            const nn::Matrix activated =
                block.mlp.forwardFrom(1, pre, false);
            next.saFeatures =
                maxPoolStackedRows(activated, 0, rows, k_eff);
        } else {
            nn::Matrix grouped;
            {
                StageTimer dummy;
                StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                              kStageGroup);
                grouped = nn::groupWithRelativeCoords(
                    cur.positions, cur.saFeatures, cur.sampleIndices,
                    neighbors);
            }
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageFeature);
            const nn::Matrix activated =
                block.mlp.forward(grouped, false);
            next.saFeatures =
                maxPoolStackedRows(activated, 0, rows, k_eff);
        }
        if (isClassifier()) {
            // No skip connections ahead: free the consumed level now —
            // with several frames in flight, peak footprint matters.
            cur.saFeatures = nn::Matrix{};
        }
    }

    if (isClassifier()) {
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageFeature);
        nn::GlobalMaxPool pool;
        const nn::Matrix pooled =
            pool.forward(st.levels.back().saFeatures, false);
        return head.forward(pooled, false);
    }

    std::vector<nn::Matrix> fp_feat(num_levels);
    fp_feat.back() = std::move(st.levels.back().saFeatures);
    for (std::size_t m = 0; m < fpBlocks.size(); ++m) {
        FpBlock &block = fpBlocks[m];
        const std::size_t coarse = num_levels - 1 - m;
        const std::size_t fine = coarse - 1;
        const LevelState &fine_level = st.levels[fine];
        nn::Matrix concat;
        {
            StageTimer dummy;
            StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                          kStageGroup);
            const nn::Matrix up =
                nn::applyInterpolation(st.plans[m], fp_feat[coarse]);
            if (fine_level.saFeatures.cols() > 0) {
                concat = nn::concatCols(up, fine_level.saFeatures);
            } else {
                concat = up;
            }
        }
        StageTimer dummy;
        StageTimer::ScopedStage scope(timer ? *timer : dummy,
                                      kStageFeature);
        fp_feat[fine] = block.mlp.forward(concat, false);
    }

    StageTimer dummy;
    StageTimer::ScopedStage scope(timer ? *timer : dummy, kStageFeature);
    return head.forward(fp_feat[0], false);
}

void
PointNetPP::backward(const nn::Matrix &grad_logits)
{
    if (!trainMode) {
        // NOLINTNEXTLINE(edgepc-R1): caller protocol violation, not data
        panic("PointNetPP::backward without forward(train=true)");
    }
    const std::size_t num_levels = levels.size();

    // Gradients w.r.t. each level's SA-output features.
    std::vector<nn::Matrix> grad_sa(num_levels);

    nn::Matrix g = head.backward(grad_logits);

    if (isClassifier()) {
        accumulate(grad_sa[num_levels - 1], globalPool.backward(g));
    } else {
        // FP backward: module m maps fine = L-1-m; iterate so dG[fine]
        // is available (shallowest module first).
        std::vector<nn::Matrix> grad_fp(num_levels);
        grad_fp[0] = std::move(g);
        for (std::size_t idx = 0; idx < fpBlocks.size(); ++idx) {
            const std::size_t m = fpBlocks.size() - 1 - idx;
            const std::size_t coarse = num_levels - 1 - m;
            const std::size_t fine = coarse - 1;
            FpBlock &block = fpBlocks[m];

            nn::Matrix grad_concat =
                block.mlp.backward(grad_fp[fine]);
            const std::size_t up_cols =
                grad_concat.cols() - levels[fine].saFeatures.cols();
            auto [up_grad, skip_grad] =
                nn::splitCols(grad_concat, up_cols);

            const nn::Matrix coarse_grad =
                block.interp.backward(up_grad);
            if (coarse == num_levels - 1) {
                accumulate(grad_sa[coarse], coarse_grad);
            } else {
                accumulate(grad_fp[coarse], coarse_grad);
            }
            if (skip_grad.cols() > 0) {
                accumulate(grad_sa[fine], skip_grad);
            }
        }
    }

    // SA backward, deepest first.
    for (std::size_t i = saBlocks.size(); i-- > 0;) {
        SaBlock &block = saBlocks[i];
        nn::Matrix pooled_grad = std::move(grad_sa[i + 1]);
        if (pooled_grad.numel() == 0 && pooled_grad.rows() == 0) {
            // No gradient reached this level (possible in ablations).
            continue;
        }
        nn::Matrix act_grad = block.pool->backward(pooled_grad);
        if (block.delayedActive) {
            // Delayed route: the tail stops at layer 1 and the first
            // Linear's gradients come from the scatter/segment-sum
            // formulation. Training never delays a LinearRelu-first
            // block, so layer 0 is a plain Linear here.
            nn::Matrix pre_grad = block.mlp.backwardFrom(1, act_grad);
            auto *lin0 =
                static_cast<nn::Linear *>(block.mlp.layerAt(0));
            nn::Matrix feat_grad = nn::delayedSaFirstLinearBackward(
                block.delayedCache, pre_grad, lin0->weights(),
                lin0->biases(), nn::GemmEngine::globalEngine());
            if (levels[i].groupedFeatureDim > 0) {
                accumulate(grad_sa[i], feat_grad);
            }
            continue;
        }
        nn::Matrix grouped_grad = block.mlp.backward(act_grad);
        if (levels[i].groupedFeatureDim > 0) {
            auto [rel_grad, feat_grad] = nn::splitCols(grouped_grad, 3);
            (void)rel_grad; // Coordinates carry no learnable gradient.
            accumulate(grad_sa[i], block.gather.backward(feat_grad));
        }
    }
}

void
PointNetPP::collectParameters(std::vector<nn::Parameter *> &out)
{
    for (auto &block : saBlocks) {
        block.mlp.collectParameters(out);
    }
    for (auto &block : fpBlocks) {
        block.mlp.collectParameters(out);
    }
    head.collectParameters(out);
}

void
PointNetPP::collectBuffers(std::vector<std::vector<float> *> &out)
{
    for (auto &block : saBlocks) {
        block.mlp.collectBuffers(out);
    }
    for (auto &block : fpBlocks) {
        block.mlp.collectBuffers(out);
    }
    head.collectBuffers(out);
}

} // namespace edgepc
