/**
 * @file
 * DGCNN (dynamic graph CNN, Wang et al.) with the EdgePC
 * approximations integrated (Fig 2b of the EdgePC paper).
 *
 * The network stacks EdgeConv (EC) modules: k-NN search, edge-feature
 * construction [f_i | f_j - f_i], shared MLP and max-pool over the k
 * neighbors. The point count is constant through the network (no
 * sampling stage). Module 1 searches neighbors in coordinate space;
 * later modules search in feature space, which Morton codes cannot
 * index — there EdgePC interleaves "reuse" and "compute" with a
 * configurable reuse distance (Sec 5.2.3).
 *
 * Variants: classification (global pool + head), part/semantic
 * segmentation (per-point head over the concatenated EC outputs plus
 * the broadcast global feature).
 */

#ifndef EDGEPC_MODELS_DGCNN_HPP
#define EDGEPC_MODELS_DGCNN_HPP

#include <memory>

#include "geometry/simd_distance.hpp"
#include "models/model.hpp"
#include "neighbor/neighbor_cache.hpp"
#include "nn/delayed_agg.hpp"
#include "nn/grouping.hpp"
#include "nn/layers.hpp"

namespace edgepc {

/** DGCNN task variants (the paper's (c), (p) and (s)). */
enum class DgcnnTask
{
    Classification,
    PartSegmentation,
    SemanticSegmentation,
};

/** DGCNN hyper-parameters. */
struct DgcnnConfig
{
    DgcnnTask task = DgcnnTask::Classification;

    /** Output classes. */
    std::size_t numClasses = 0;

    /** Neighbors per point (k). */
    std::size_t k = 20;

    /** Output width of each EdgeConv module. */
    std::vector<std::size_t> ecWidths;

    /** Width of the embedding 1x1 conv after the EC concat. */
    std::size_t embeddingDim = 1024;

    /** Hidden widths of the head (classes appended internally). */
    std::vector<std::size_t> headMlp;

    /**
     * Delayed aggregation (DESIGN.md §13): split each EdgeConv's first
     * Linear into its x_i and x_j − x_i terms so it runs once per
     * unique point instead of once per edge (a k× first-layer FLOP
     * cut). Auto delays iff k reaches nn::kDelayedAggFlopRatio;
     * EDGEPC_DELAYED_AGG overrides. Checkpoint-compatible either way.
     */
    nn::DelayedAggMode delayedAggregation = nn::DelayedAggMode::Auto;

    /**
     * Int8 quantized inference (DESIGN.md §15): route the model's
     * Linear layers through the quantized GEMM at inference. Off by
     * default so default numerics match fp32 exactly; EDGEPC_GEMM=int8
     * overrides, and Auto defers to the per-call shape heuristic.
     * Training always runs fp32; checkpoints are unchanged.
     */
    nn::QuantMode quantizedInference = nn::QuantMode::Off;

    /**
     * Fixed-point neighbor search (DESIGN.md §15) for the module-1
     * coordinate-space k-NN. Off by default (exact fp32 distances);
     * Auto stays Off for k-NN, so only On (or EDGEPC_SIMD=int8)
     * engages it. Feature-space modules always run fp32.
     */
    simd::FixedPointMode fixedPointSearch = simd::FixedPointMode::Off;

    /** Paper-scale DGCNN(c): 4 ECs, k=20, 1024-d embedding. */
    static DgcnnConfig classification(std::size_t num_classes);

    /** Paper-scale DGCNN(p): 3 ECs for part segmentation. */
    static DgcnnConfig partSegmentation(std::size_t num_classes);

    /** Paper-scale DGCNN(s): 3 ECs for semantic segmentation. */
    static DgcnnConfig semanticSegmentation(std::size_t num_classes);

    /** Small trainable classification variant. */
    static DgcnnConfig liteClassification(std::size_t num_classes);

    /** Small trainable segmentation variant. */
    static DgcnnConfig liteSegmentation(std::size_t num_classes);
};

/** DGCNN with selectable baseline / EdgePC kernels. */
class Dgcnn : public TrainableModel
{
  public:
    Dgcnn(DgcnnConfig config, std::uint64_t seed = 42);

    nn::Matrix infer(const PointCloud &cloud, const EdgePcConfig &cfg,
                     StageTimer *timer = nullptr) override;

    /** Forward keeping intermediates when @p train is true. */
    nn::Matrix forward(const PointCloud &cloud, const EdgePcConfig &cfg,
                       StageTimer *timer, bool train);

    /** Backward from dLoss/dLogits (after forward(train=true)). */
    void backward(const nn::Matrix &grad_logits);

    std::string name() const override;
    std::size_t numClasses() const override { return cfg.numClasses; }
    void collectParameters(std::vector<nn::Parameter *> &out) override;
    void collectBuffers(std::vector<std::vector<float> *> &out) override;

    const DgcnnConfig &config() const { return cfg; }

    bool isClassifier() const
    {
        return cfg.task == DgcnnTask::Classification;
    }

  private:
    struct EcBlock
    {
        nn::EdgeFeatureLayer edge;
        nn::Sequential mlp;
        std::unique_ptr<nn::MaxPoolNeighbors> pool;
        /** Route taken by the last training forward (backward follows
            the same route over the same parameters). */
        bool delayedActive = false;
        nn::DelayedEdgeCache delayedCache;
    };

    /** Run the neighbor-search stage of EC module @p module. */
    NeighborLists searchNeighbors(std::size_t module,
                                  const EdgePcConfig &config,
                                  std::span<const Vec3> positions,
                                  const nn::Matrix &features,
                                  NeighborCache &cache);

    DgcnnConfig cfg;
    std::vector<EcBlock> ecBlocks;
    nn::Sequential embedding;
    nn::Sequential head;
    nn::GlobalMaxPool globalPool;

    // Forward state for backward.
    std::vector<nn::Matrix> ecOutputs;
    std::size_t savedPoints = 0;
    bool trainMode = false;
};

} // namespace edgepc

#endif // EDGEPC_MODELS_DGCNN_HPP
