#include "models/dgcnn.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "neighbor/brute_force.hpp"
#include "neighbor/morton_window.hpp"
#include "sampling/morton_sampler.hpp"

namespace edgepc {

DgcnnConfig
DgcnnConfig::classification(std::size_t num_classes)
{
    DgcnnConfig cfg;
    cfg.task = DgcnnTask::Classification;
    cfg.numClasses = num_classes;
    cfg.k = 20;
    cfg.ecWidths = {64, 64, 128, 256};
    cfg.embeddingDim = 1024;
    cfg.headMlp = {512, 256};
    return cfg;
}

DgcnnConfig
DgcnnConfig::partSegmentation(std::size_t num_classes)
{
    DgcnnConfig cfg;
    cfg.task = DgcnnTask::PartSegmentation;
    cfg.numClasses = num_classes;
    cfg.k = 20;
    cfg.ecWidths = {64, 64, 64};
    cfg.embeddingDim = 1024;
    cfg.headMlp = {256, 128};
    return cfg;
}

DgcnnConfig
DgcnnConfig::semanticSegmentation(std::size_t num_classes)
{
    DgcnnConfig cfg = partSegmentation(num_classes);
    cfg.task = DgcnnTask::SemanticSegmentation;
    return cfg;
}

DgcnnConfig
DgcnnConfig::liteClassification(std::size_t num_classes)
{
    DgcnnConfig cfg;
    cfg.task = DgcnnTask::Classification;
    cfg.numClasses = num_classes;
    cfg.k = 10;
    cfg.ecWidths = {32, 64};
    cfg.embeddingDim = 128;
    cfg.headMlp = {64};
    return cfg;
}

DgcnnConfig
DgcnnConfig::liteSegmentation(std::size_t num_classes)
{
    DgcnnConfig cfg;
    cfg.task = DgcnnTask::SemanticSegmentation;
    cfg.numClasses = num_classes;
    cfg.k = 8;
    cfg.ecWidths = {16, 32};
    cfg.embeddingDim = 64;
    cfg.headMlp = {32};
    return cfg;
}

Dgcnn::Dgcnn(DgcnnConfig config, std::uint64_t seed) : cfg(std::move(config))
{
    if (cfg.ecWidths.empty()) {
        // NOLINTNEXTLINE(edgepc-R1): impossible configuration, not data
        fatal("Dgcnn: at least one EdgeConv module is required");
    }
    Rng rng(seed);

    std::size_t feat_dim = 3; // EC1 consumes coordinates.
    std::size_t concat_dim = 0;
    for (const std::size_t width : cfg.ecWidths) {
        // Linear + BN + LeakyReLU(0.2), as in the reference DGCNN.
        EcBlock block;
        block.mlp.add(
            std::make_unique<nn::Linear>(2 * feat_dim, width, rng));
        block.mlp.add(std::make_unique<nn::BatchNorm>(width));
        block.mlp.add(std::make_unique<nn::LeakyReLU>());
        block.pool = std::make_unique<nn::MaxPoolNeighbors>(cfg.k);
        ecBlocks.push_back(std::move(block));
        feat_dim = width;
        concat_dim += width;
    }

    // No batch norm here: this runs per cloud, and normalizing right
    // before the global max-pool would standardize every cloud's
    // feature distribution, collapsing the pooled statistic to a
    // near-constant (the reference implementation normalizes across a
    // large multi-cloud batch, where this effect does not arise).
    embedding.add(
        std::make_unique<nn::Linear>(concat_dim, cfg.embeddingDim, rng));
    embedding.add(std::make_unique<nn::LeakyReLU>());

    std::size_t head_in = isClassifier()
                              ? cfg.embeddingDim
                              : concat_dim + cfg.embeddingDim;
    for (const std::size_t width : cfg.headMlp) {
        head.addLinearBnRelu(head_in, width, rng);
        head_in = width;
    }
    head.add(std::make_unique<nn::Linear>(head_in, cfg.numClasses, rng));

    // Propagate the int8-inference config to every Linear layer; the
    // per-call resolve (env > config > shape heuristic) happens inside
    // the layers.
    for (auto &block : ecBlocks) {
        block.mlp.setQuantMode(cfg.quantizedInference);
    }
    embedding.setQuantMode(cfg.quantizedInference);
    head.setQuantMode(cfg.quantizedInference);
}

std::string
Dgcnn::name() const
{
    switch (cfg.task) {
      case DgcnnTask::Classification:
        return "dgcnn(c)";
      case DgcnnTask::PartSegmentation:
        return "dgcnn(p)";
      case DgcnnTask::SemanticSegmentation:
        return "dgcnn(s)";
    }
    return "dgcnn";
}

NeighborLists
Dgcnn::searchNeighbors(std::size_t module, const EdgePcConfig &config,
                       std::span<const Vec3> positions,
                       const nn::Matrix &features, NeighborCache &cache)
{
    const std::size_t k = cfg.k;
    const int layer = static_cast<int>(module);

    if (module == 0) {
        // Geometric search: EdgePC replaces it with the Morton window.
        if (config.approximate() && config.optimizedNeighborLayers > 0) {
            const MortonSampler sampler(config.codeBits);
            const Structurization s = sampler.structurize(positions);
            const MortonWindowSearch searcher(config.searchWindow);
            NeighborLists lists = searcher.searchAll(positions, s, k);
            if (config.reuseDistance > 0) {
                cache.store(layer, lists);
            }
            return lists;
        }
        BruteForceKnn searcher(cfg.fixedPointSearch);
        NeighborLists lists = searcher.search(positions, positions, k);
        if (config.approximate() && config.reuseDistance > 0) {
            cache.store(layer, lists);
        }
        return lists;
    }

    // Feature-space search (modules >= 2): Morton codes cannot index
    // high-dimensional features, so EdgePC interleaves reuse/compute.
    if (config.approximate() && config.reuseDistance > 0 &&
        !cache.shouldCompute(layer)) {
        return cache.lookup(layer);
    }
    NeighborLists lists = BruteForceKnn::searchFeatureSpace(
        {features.data(), features.numel()},
        {features.data(), features.numel()}, features.cols(), k);
    if (config.approximate() && config.reuseDistance > 0) {
        cache.store(layer, lists);
    }
    return lists;
}

nn::Matrix
Dgcnn::forward(const PointCloud &cloud, const EdgePcConfig &config,
               StageTimer *timer, bool train)
{
    if (cloud.empty()) {
        raise(ErrorCode::EmptyCloud, "Dgcnn::forward: empty cloud");
    }
    trainMode = train;
    const std::size_t n = cloud.size();
    savedPoints = n;
    NeighborCache cache(config.reuseDistance);

    // Initial features: the coordinates.
    nn::Matrix features(n, 3);
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 &p = cloud.position(i);
        features.at(i, 0) = p.x;
        features.at(i, 1) = p.y;
        features.at(i, 2) = p.z;
    }

    ecOutputs.assign(ecBlocks.size(), nn::Matrix{});
    StageTimer dummy;
    StageTimer &t = timer ? *timer : dummy;

    for (std::size_t m = 0; m < ecBlocks.size(); ++m) {
        EcBlock &block = ecBlocks[m];
        NeighborLists neighbors;
        {
            StageTimer::ScopedStage scope(t, kStageNeighbor);
            neighbors = searchNeighbors(m, config, cloud.positions(),
                                        features, cache);
        }
        // The searchers clamp k for tiny clouds; pool with the
        // effective group size.
        const std::size_t k_eff = neighbors.k;

        // Delayed aggregation (DESIGN.md §13): the first Linear splits
        // into per-point x_i and x_j − x_i terms, so it runs once per
        // unique point and the per-edge work is a gather + add.
        auto *lin0 =
            block.mlp.size() == 0
                ? nullptr
                : dynamic_cast<nn::Linear *>(block.mlp.layerAt(0));
        block.delayedActive =
            lin0 != nullptr &&
            nn::resolveDelayedAgg(cfg.delayedAggregation,
                                  nn::edgeDelayedFlopRatio(k_eff));
        if (block.delayedActive) {
            StageTimer::ScopedStage scope(t, kStageFeature);
            const nn::Matrix pre = nn::delayedEdgeFirstLinear(
                features, neighbors, lin0->weights().value,
                lin0->biases().value, nn::GemmEngine::globalEngine(),
                train ? &block.delayedCache : nullptr);
            const nn::Matrix activated =
                block.mlp.forwardFrom(1, pre, train);
            block.pool = std::make_unique<nn::MaxPoolNeighbors>(k_eff);
            ecOutputs[m] = block.pool->forward(activated, train);
            features = ecOutputs[m];
            continue;
        }

        nn::Matrix edges;
        {
            StageTimer::ScopedStage scope(t, kStageGroup);
            block.edge.setNeighbors(std::move(neighbors));
            edges = block.edge.forward(features, train);
        }
        {
            StageTimer::ScopedStage scope(t, kStageFeature);
            const nn::Matrix activated = block.mlp.forward(edges, train);
            block.pool =
                std::make_unique<nn::MaxPoolNeighbors>(k_eff);
            ecOutputs[m] = block.pool->forward(activated, train);
        }
        features = ecOutputs[m];
    }

    StageTimer::ScopedStage scope(t, kStageFeature);
    nn::Matrix concat = ecOutputs[0];
    for (std::size_t m = 1; m < ecOutputs.size(); ++m) {
        concat = nn::concatCols(concat, ecOutputs[m]);
    }

    const nn::Matrix embedded = embedding.forward(concat, train);
    const nn::Matrix pooled = globalPool.forward(embedded, train);

    if (isClassifier()) {
        return head.forward(pooled, train);
    }
    const nn::Matrix broadcast = nn::broadcastRow(pooled, n);
    const nn::Matrix head_in = nn::concatCols(concat, broadcast);
    return head.forward(head_in, train);
}

nn::Matrix
Dgcnn::infer(const PointCloud &cloud, const EdgePcConfig &config,
             StageTimer *timer)
{
    return forward(cloud, config, timer, false);
}

void
Dgcnn::backward(const nn::Matrix &grad_logits)
{
    if (!trainMode) {
        // NOLINTNEXTLINE(edgepc-R1): caller protocol violation, not data
        panic("Dgcnn::backward without forward(train=true)");
    }
    const std::size_t num_ec = ecBlocks.size();
    std::size_t concat_dim = 0;
    for (const auto &out : ecOutputs) {
        concat_dim += out.cols();
    }

    nn::Matrix grad_concat(savedPoints, concat_dim);
    nn::Matrix grad_pooled;

    nn::Matrix g = head.backward(grad_logits);
    if (isClassifier()) {
        grad_pooled = std::move(g);
    } else {
        auto [concat_part, broadcast_part] = nn::splitCols(g, concat_dim);
        grad_concat.add(concat_part);
        // Sum the broadcast gradient back into the single global row.
        grad_pooled = nn::Matrix(1, broadcast_part.cols());
        for (std::size_t r = 0; r < broadcast_part.rows(); ++r) {
            const float *row =
                broadcast_part.data() + r * broadcast_part.cols();
            for (std::size_t c = 0; c < broadcast_part.cols(); ++c) {
                grad_pooled.at(0, c) += row[c];
            }
        }
    }

    const nn::Matrix grad_embedded = globalPool.backward(grad_pooled);
    grad_concat.add(embedding.backward(grad_embedded));

    // Split the concat gradient into per-EC contributions.
    std::vector<nn::Matrix> grad_ec(num_ec);
    std::size_t offset = 0;
    for (std::size_t m = 0; m < num_ec; ++m) {
        const std::size_t width = ecOutputs[m].cols();
        grad_ec[m] = nn::Matrix(savedPoints, width);
        for (std::size_t r = 0; r < savedPoints; ++r) {
            const float *src =
                grad_concat.data() + r * concat_dim + offset;
            std::copy(src, src + width,
                      grad_ec[m].data() + r * width);
        }
        offset += width;
    }

    // EC backward, deepest first; each module adds its input gradient
    // to the previous module's output gradient.
    for (std::size_t m = num_ec; m-- > 0;) {
        EcBlock &block = ecBlocks[m];
        nn::Matrix gg = block.pool->backward(grad_ec[m]);
        if (block.delayedActive) {
            // Delayed route: tail stops at layer 1 and the first
            // Linear's gradients come from the segment-sum / scatter
            // formulation (which also folds in the edge layer's
            // endpoint scatter).
            gg = block.mlp.backwardFrom(1, gg);
            auto *lin0 =
                static_cast<nn::Linear *>(block.mlp.layerAt(0));
            gg = nn::delayedEdgeFirstLinearBackward(
                block.delayedCache, gg, lin0->weights(), lin0->biases(),
                nn::GemmEngine::globalEngine());
        } else {
            gg = block.mlp.backward(gg);
            gg = block.edge.backward(gg);
        }
        if (m > 0) {
            grad_ec[m - 1].add(gg);
        }
        // m == 0: gradient w.r.t. the coordinates is discarded.
    }
}

void
Dgcnn::collectParameters(std::vector<nn::Parameter *> &out)
{
    for (auto &block : ecBlocks) {
        block.mlp.collectParameters(out);
    }
    embedding.collectParameters(out);
    head.collectParameters(out);
}

void
Dgcnn::collectBuffers(std::vector<std::vector<float> *> &out)
{
    for (auto &block : ecBlocks) {
        block.mlp.collectBuffers(out);
    }
    embedding.collectBuffers(out);
    head.collectBuffers(out);
}

} // namespace edgepc
