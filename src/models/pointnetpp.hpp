/**
 * @file
 * PointNet++ (Qi et al., NeurIPS 2017) with the EdgePC approximations
 * integrated (Fig 2a of the EdgePC paper).
 *
 * The semantic-segmentation variant stacks SetAbstraction (SA) modules
 * — sample, neighbor search, group, shared MLP, max-pool — followed by
 * FeaturePropagation (FP) modules — interpolate/up-sample, concat skip
 * features, shared MLP — and a per-point head. A classification
 * variant (empty FP list) global-pools the deepest features instead.
 *
 * Every stage honors the EdgePcConfig: baseline runs FPS + ball query
 * + exact 3-NN interpolation; S+N swaps the configured leading layers
 * for the Morton sampler / window searcher / stride up-sampler,
 * reusing one structurization across the sample and neighbor-search
 * stages of the same module (Sec 5.2.3).
 *
 * Full manual backprop is implemented so the network can be retrained
 * with the approximations in the training loop (Sec 5.3).
 */

#ifndef EDGEPC_MODELS_POINTNETPP_HPP
#define EDGEPC_MODELS_POINTNETPP_HPP

#include <memory>

#include "geometry/simd_distance.hpp"
#include "models/model.hpp"
#include "neighbor/neighbor_search.hpp"
#include "nn/delayed_agg.hpp"
#include "nn/grouping.hpp"
#include "nn/layers.hpp"
#include "sampling/interpolation.hpp"
#include "sampling/morton_sampler.hpp"

namespace edgepc {

/** How an SA module searches neighbors in the baseline. */
enum class NeighborMode
{
    BallQuery,
    Knn,
};

/** One SetAbstraction module's hyper-parameters. */
struct SaConfig
{
    /** Points sampled by this module (n). */
    std::size_t points;
    /** Neighbors per sampled point (k). */
    std::size_t k;
    /** Ball-query radius (ignored in Knn mode). */
    float radius;
    /** Baseline neighbor searcher. */
    NeighborMode mode = NeighborMode::BallQuery;
    /** Shared-MLP channel widths. */
    std::vector<std::size_t> mlp;
};

/** One FeaturePropagation module's hyper-parameters. */
struct FpConfig
{
    /** Shared-MLP channel widths. */
    std::vector<std::size_t> mlp;
};

/** Whole-network hyper-parameters. */
struct PointNetPPConfig
{
    /** Extra per-point input features beyond xyz (0 = coords only). */
    std::size_t inputFeatureDim = 0;

    /** Output classes. */
    std::size_t numClasses = 0;

    /** SA modules, shallowest first. */
    std::vector<SaConfig> sa;

    /**
     * FP modules, deepest first (fp[0] propagates from the deepest
     * level). Must match sa.size() for segmentation; empty makes the
     * network a classifier (global pool + head).
     */
    std::vector<FpConfig> fp;

    /** Hidden widths of the final head (classes appended internally). */
    std::vector<std::size_t> headMlp;

    /**
     * Delayed aggregation (DESIGN.md §13): run each SA block's first
     * Linear over the level's unique points before the neighborhood
     * gather. Auto delays a block iff its first-layer FLOP ratio
     * reaches nn::kDelayedAggFlopRatio; EDGEPC_DELAYED_AGG overrides.
     * Checkpoint-compatible either way (same parameters, either route).
     */
    nn::DelayedAggMode delayedAggregation = nn::DelayedAggMode::Auto;

    /**
     * Int8 quantized inference (DESIGN.md §15): route the model's
     * Linear layers through the quantized GEMM at inference. Off by
     * default so default numerics match fp32 exactly; EDGEPC_GEMM=int8
     * overrides, and Auto defers to the per-call shape heuristic.
     * Training always runs fp32; checkpoints are unchanged.
     */
    nn::QuantMode quantizedInference = nn::QuantMode::Off;

    /**
     * Fixed-point neighbor search (DESIGN.md §15): snap coordinates to
     * the per-cloud s16 grid in the baseline ball-query / k-NN stages.
     * Off by default (exact fp32 distances); Auto engages ball query
     * only when the grid step is much finer than the radius (k-NN
     * stays fp32 under Auto). EDGEPC_SIMD=int8 overrides.
     */
    simd::FixedPointMode fixedPointSearch = simd::FixedPointMode::Off;

    /**
     * The paper's PointNet++(s) for semantic segmentation: 4 SA + 4 FP
     * with the reference SSG widths, module point counts scaled from
     * @p num_points (N/8, N/32, N/128, N/512).
     */
    static PointNetPPConfig semanticSegmentation(std::size_t num_points,
                                                 std::size_t num_classes);

    /** Small trainable segmentation variant (2 SA + 2 FP). */
    static PointNetPPConfig liteSegmentation(std::size_t num_points,
                                             std::size_t num_classes);

    /** Small trainable classification variant (2 SA, global pool). */
    static PointNetPPConfig liteClassification(std::size_t num_points,
                                               std::size_t num_classes);
};

/** PointNet++ with selectable baseline / EdgePC kernels. */
class PointNetPP : public TrainableModel
{
  public:
    /**
     * @param config Network hyper-parameters.
     * @param seed Weight-initialization seed.
     */
    PointNetPP(PointNetPPConfig config, std::uint64_t seed = 42);

    nn::Matrix infer(const PointCloud &cloud, const EdgePcConfig &cfg,
                     StageTimer *timer = nullptr) override;

    /**
     * Lockstep batched inference: each cloud runs its own sample /
     * neighbor-search / grouping stages (per-cloud geometry cannot be
     * merged), but the shared-MLP feature compute runs once over the
     * row-stacked batch via Sequential::forwardSegmented, so the
     * packed GEMM sees a tall M instead of B skinny calls. BatchNorm
     * segments keep per-cloud instance statistics, so each cloud's
     * logits match single-cloud infer() up to GEMM-path float
     * reassociation. Does not touch the training-state members
     * (levels / fpFeatures / layer caches).
     */
    std::vector<nn::Matrix> inferBatch(std::span<const PointCloud> clouds,
                                       const EdgePcConfig &cfg,
                                       StageTimer *timer = nullptr) override;

    /**
     * Real three-way stage split for the staged executor
     * (core/staged_pipeline.hpp). The key structural fact: every SA
     * level's sample set depends only on positions, which derive from
     * the previous level's sample indices — so the whole sampling
     * chain (and the FP up-sample plans, which read only positions /
     * structurizations) runs in the sample stage, all neighbor
     * searches in the neighbor stage, and the gather + GEMM + pool +
     * FP-apply + head in the feature stage. The feature stage uses
     * the same stateless free-function route as inferBatch (never the
     * gather/pool/interp layer members), so per-frame logits match
     * sequential infer() and concurrent frames never share state.
     */
    bool supportsStagedInfer() const override { return true; }
    std::unique_ptr<StagedFrame> makeStagedFrame() override;
    void stagedSample(StagedFrame &frame, const PointCloud &cloud,
                      const EdgePcConfig &config,
                      StageTimer *timer) override;
    void stagedNeighbor(StagedFrame &frame, const EdgePcConfig &config,
                        StageTimer *timer) override;
    nn::Matrix stagedFeature(StagedFrame &frame,
                             const EdgePcConfig &config,
                             StageTimer *timer) override;

    /**
     * Forward pass keeping intermediates when @p train is true.
     * Returns per-point logits (N x classes) for segmentation or a
     * single-row logit matrix for classification.
     */
    nn::Matrix forward(const PointCloud &cloud, const EdgePcConfig &cfg,
                       StageTimer *timer, bool train);

    /**
     * Backward pass from dLoss/dLogits; accumulates parameter
     * gradients. Must follow a forward(..., train=true).
     */
    void backward(const nn::Matrix &grad_logits);

    std::string name() const override { return "pointnet++"; }
    std::size_t numClasses() const override { return cfg.numClasses; }
    void collectParameters(std::vector<nn::Parameter *> &out) override;
    void collectBuffers(std::vector<std::vector<float> *> &out) override;

    const PointNetPPConfig &config() const { return cfg; }

    /** True when the network is a classifier (no FP modules). */
    bool isClassifier() const { return cfg.fp.empty(); }

  private:
    struct SaBlock
    {
        SaConfig conf;
        nn::Sequential mlp;
        nn::GroupingLayer gather;
        std::unique_ptr<nn::MaxPoolNeighbors> pool;
        /** Route taken by the last training forward (backward follows
            the same route over the same parameters). */
        bool delayedActive = false;
        nn::DelayedSaCache delayedCache;
    };

    struct FpBlock
    {
        FpConfig conf;
        nn::Sequential mlp;
        nn::InterpolateLayer interp;
    };

    /** Per-level activations saved across a forward pass. */
    struct LevelState
    {
        std::vector<Vec3> positions;
        nn::Matrix saFeatures; ///< Features after SA (level 0: input).
        std::vector<std::uint32_t> sampleIndices;
        Structurization structur;
        bool mortonSampled = false;
        std::size_t groupedFeatureDim = 0; ///< C_i fed to SA grouping.
    };

    void runSaModule(std::size_t module, const EdgePcConfig &cfg,
                     StageTimer *timer, bool train);
    void runFpModule(std::size_t module, const EdgePcConfig &cfg,
                     StageTimer *timer, bool train);

    /** Per-frame context of the staged split (defined in the .cpp). */
    struct StagedState;

    /** SA sample stage on @p cur: structurize + sample (or FPS),
        filling cur.sampleIndices / structur / mortonSampled. */
    void saSampleStage(std::size_t module, const EdgePcConfig &cfg,
                       StageTimer *timer, LevelState &cur) const;

    /** SA neighbor-search stage on @p cur (builds a structurization
        itself when the sampler didn't leave one to reuse). */
    NeighborLists saNeighborStage(std::size_t module,
                                  const EdgePcConfig &cfg,
                                  StageTimer *timer,
                                  LevelState &cur) const;

    /** SA sample + neighbor-search stages on @p cur (shared by the
        single-cloud and batched paths; @p cur need not be a member
        LevelState). */
    NeighborLists saSampleAndSearch(std::size_t module,
                                    const EdgePcConfig &cfg,
                                    StageTimer *timer, LevelState &cur);

    /** FP up-sampling plan for propagating level @p fine_index + 1
        down to @p fine_index (shared by both paths). */
    InterpolationPlan fpUpsamplePlan(std::size_t fine_index,
                                     const EdgePcConfig &cfg,
                                     StageTimer *timer,
                                     const LevelState &fine_level,
                                     const LevelState &coarse_level) const;

    PointNetPPConfig cfg;
    std::vector<SaBlock> saBlocks;
    std::vector<FpBlock> fpBlocks;
    nn::Sequential head;
    nn::GlobalMaxPool globalPool;

    // Forward state.
    std::vector<LevelState> levels;
    std::vector<nn::Matrix> fpFeatures; ///< G_l per level.
    bool trainMode = false;
};

} // namespace edgepc

#endif // EDGEPC_MODELS_POINTNETPP_HPP
