/**
 * @file
 * Common interface for point-cloud CNN models (PointNet++ and DGCNN
 * families). A model runs a full inference pipeline — sample, neighbor
 * search, grouping, feature compute — honoring an EdgePcConfig that
 * selects baseline or approximate kernels, and reports per-stage
 * latency through a StageTimer.
 */

#ifndef EDGEPC_MODELS_MODEL_HPP
#define EDGEPC_MODELS_MODEL_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/config.hpp"
#include "nn/tensor.hpp"
#include "pointcloud/point_cloud.hpp"

namespace edgepc {

/**
 * Opaque per-frame context carried between the staged-inference
 * stages (DESIGN.md §14). A model stores whatever its sample stage
 * produces (structurizations, sample indices, interpolation plans)
 * so the neighbor and feature stages can pick the frame up on a
 * different worker thread. Frames are recycled by the staged
 * executor, so implementations should clear contents in reset()
 * while keeping heap capacity.
 */
class StagedFrame
{
  public:
    virtual ~StagedFrame() = default;

    /** Drop per-frame payloads so a pooled frame can be reused. */
    virtual void reset() { fallbackCloud = PointCloud(); }

    /** Frame copy used by the default whole-frame-infer fallback
        (models with a real stage split ignore it). */
    PointCloud fallbackCloud;
};

/** Abstract point-cloud CNN. */
class PointCloudModel
{
  public:
    virtual ~PointCloudModel() = default;

    /**
     * Run inference on one cloud.
     *
     * @param cloud Input frame.
     * @param cfg Pipeline configuration (baseline / S+N / S+N+F).
     * @param timer Optional per-stage latency sink.
     * @return Logits: per-point rows for segmentation models, one row
     *         for classification models.
     */
    virtual nn::Matrix infer(const PointCloud &cloud,
                             const EdgePcConfig &cfg,
                             StageTimer *timer = nullptr) = 0;

    /**
     * Run inference on a batch of independent clouds under one
     * configuration, returning one logits matrix per cloud (in input
     * order). The default implementation loops infer(); models may
     * override with a lockstep batched path that stacks the
     * feature-compute stage across clouds so the GEMM runs at large M
     * (the serving engine's cross-stream micro-batching hook). An
     * override must match per-cloud infer() numerics up to GEMM-path
     * float reassociation.
     */
    virtual std::vector<nn::Matrix>
    inferBatch(std::span<const PointCloud> clouds, const EdgePcConfig &cfg,
               StageTimer *timer = nullptr)
    {
        std::vector<nn::Matrix> out;
        out.reserve(clouds.size());
        for (const PointCloud &cloud : clouds) {
            out.push_back(infer(cloud, cfg, timer));
        }
        return out;
    }

    /**
     * True when the model implements a real three-way stage split for
     * the staged executor (core/staged_pipeline.hpp). The default
     * staged* implementations below fall back to whole-frame infer()
     * inside the feature stage, which is always correct (the staged
     * executor calls the feature stage from a single thread at a
     * time) but overlaps nothing.
     */
    virtual bool supportsStagedInfer() const { return false; }

    /** Allocate a reusable per-frame context for staged inference. */
    virtual std::unique_ptr<StagedFrame> makeStagedFrame()
    {
        return std::make_unique<StagedFrame>();
    }

    /**
     * Staged inference, stage 1 of 3 — structurize + sample (the
     * kStageSample seam): consume @p cloud into @p frame. Must touch
     * only @p frame and stateless kernels; distinct frames may be in
     * different stages concurrently, and a later frame runs this
     * stage while an earlier one runs stagedNeighbor/stagedFeature.
     * The default keeps the cloud for the feature-stage fallback.
     */
    virtual void stagedSample(StagedFrame &frame, const PointCloud &cloud,
                              const EdgePcConfig &cfg, StageTimer *timer)
    {
        (void)cfg;
        (void)timer;
        frame.reset();
        frame.fallbackCloud = cloud;
    }

    /** Staged stage 2 of 3 — neighbor search (kStageNeighbor seam). */
    virtual void stagedNeighbor(StagedFrame &frame, const EdgePcConfig &cfg,
                                StageTimer *timer)
    {
        (void)frame;
        (void)cfg;
        (void)timer;
    }

    /**
     * Staged stage 3 of 3 — group + feature compute (kStageGroup /
     * kStageFeature seams); returns the frame's logits. The staged
     * executor serializes calls to this stage, so the default may run
     * the (stateful) whole-frame infer() safely.
     */
    virtual nn::Matrix stagedFeature(StagedFrame &frame,
                                     const EdgePcConfig &cfg,
                                     StageTimer *timer)
    {
        return infer(frame.fallbackCloud, cfg, timer);
    }

    /** Model name for reports. */
    virtual std::string name() const = 0;

    /** Number of output classes. */
    virtual std::size_t numClasses() const = 0;

    /** Gather all learnable parameters (for optimizers/serialization). */
    virtual void collectParameters(std::vector<nn::Parameter *> &out) = 0;

    /**
     * Gather all non-learnable state buffers (batch-norm running
     * statistics) for full-model serialization.
     */
    virtual void collectBuffers(std::vector<std::vector<float> *> &out)
    {
        (void)out;
    }
};

/**
 * A model that additionally supports training: forward with
 * intermediate retention and backward from the logit gradient.
 */
class TrainableModel : public PointCloudModel
{
  public:
    /** Forward pass, keeping intermediates when @p train is true. */
    virtual nn::Matrix forward(const PointCloud &cloud,
                               const EdgePcConfig &cfg, StageTimer *timer,
                               bool train) = 0;

    /** Backward from dLoss/dLogits (after forward(train=true)). */
    virtual void backward(const nn::Matrix &grad_logits) = 0;
};

} // namespace edgepc

#endif // EDGEPC_MODELS_MODEL_HPP
