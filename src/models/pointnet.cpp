#include "models/pointnet.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"

namespace edgepc {

PointNetConfig
PointNetConfig::classification(std::size_t num_classes)
{
    PointNetConfig cfg;
    cfg.numClasses = num_classes;
    cfg.mlp = {64, 128, 256};
    cfg.headMlp = {128};
    cfg.segmentation = false;
    return cfg;
}

PointNetConfig
PointNetConfig::segmentationConfig(std::size_t num_classes)
{
    PointNetConfig cfg;
    cfg.numClasses = num_classes;
    cfg.mlp = {64, 128, 256};
    cfg.headMlp = {128, 64};
    cfg.segmentation = true;
    return cfg;
}

PointNet::PointNet(PointNetConfig config, std::uint64_t seed)
    : cfg(std::move(config))
{
    if (cfg.mlp.empty() || cfg.numClasses == 0) {
        // NOLINTNEXTLINE(edgepc-R1): impossible configuration, not data
        fatal("PointNet: mlp widths and numClasses are required");
    }
    Rng rng(seed);

    std::size_t in_dim = 3;
    for (std::size_t wi = 0; wi < cfg.mlp.size(); ++wi) {
        const std::size_t width = cfg.mlp[wi];
        if (wi + 1 == cfg.mlp.size()) {
            // Final stage before the global max-pool: no per-cloud
            // batch norm (see the rationale in dgcnn.cpp).
            pointMlp.add(std::make_unique<nn::Linear>(in_dim, width,
                                                      rng));
            pointMlp.add(std::make_unique<nn::LeakyReLU>());
        } else {
            pointMlp.addLinearBnRelu(in_dim, width, rng);
        }
        in_dim = width;
    }

    std::size_t head_in = cfg.segmentation
                              ? cfg.mlp.back() + cfg.mlp.back()
                              : cfg.mlp.back();
    for (const std::size_t width : cfg.headMlp) {
        head.addLinearBnRelu(head_in, width, rng);
        head_in = width;
    }
    head.add(std::make_unique<nn::Linear>(head_in, cfg.numClasses, rng));
}

nn::Matrix
PointNet::forward(const PointCloud &cloud, const EdgePcConfig &config,
                  StageTimer *timer, bool train)
{
    (void)config; // PointNet has no sample/NS stage to approximate.
    if (cloud.empty()) {
        raise(ErrorCode::EmptyCloud, "PointNet::forward: empty cloud");
    }
    trainMode = train;
    const std::size_t n = cloud.size();
    savedPoints = n;

    StageTimer dummy;
    StageTimer &t = timer ? *timer : dummy;
    StageTimer::ScopedStage scope(t, kStageFeature);

    nn::Matrix coords(n, 3);
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 &p = cloud.position(i);
        coords.at(i, 0) = p.x;
        coords.at(i, 1) = p.y;
        coords.at(i, 2) = p.z;
    }

    const nn::Matrix point_features = pointMlp.forward(coords, train);
    const nn::Matrix pooled = globalPool.forward(point_features, train);

    if (!cfg.segmentation) {
        return head.forward(pooled, train);
    }
    savedPointFeatures = point_features;
    const nn::Matrix broadcast = nn::broadcastRow(pooled, n);
    const nn::Matrix head_in =
        nn::concatCols(point_features, broadcast);
    return head.forward(head_in, train);
}

nn::Matrix
PointNet::infer(const PointCloud &cloud, const EdgePcConfig &config,
                StageTimer *timer)
{
    return forward(cloud, config, timer, false);
}

void
PointNet::backward(const nn::Matrix &grad_logits)
{
    if (!trainMode) {
        // NOLINTNEXTLINE(edgepc-R1): caller protocol violation, not data
        panic("PointNet::backward without forward(train=true)");
    }
    nn::Matrix g = head.backward(grad_logits);

    nn::Matrix grad_point_features;
    nn::Matrix grad_pooled;
    if (cfg.segmentation) {
        auto [local, broadcast] =
            nn::splitCols(g, savedPointFeatures.cols());
        grad_point_features = std::move(local);
        grad_pooled = nn::Matrix(1, broadcast.cols());
        for (std::size_t r = 0; r < broadcast.rows(); ++r) {
            for (std::size_t c = 0; c < broadcast.cols(); ++c) {
                grad_pooled.at(0, c) += broadcast.at(r, c);
            }
        }
    } else {
        grad_pooled = std::move(g);
        grad_point_features =
            nn::Matrix(savedPoints, cfg.mlp.back());
    }

    grad_point_features.add(globalPool.backward(grad_pooled));
    pointMlp.backward(grad_point_features);
}

void
PointNet::collectParameters(std::vector<nn::Parameter *> &out)
{
    pointMlp.collectParameters(out);
    head.collectParameters(out);
}

void
PointNet::collectBuffers(std::vector<std::vector<float> *> &out)
{
    pointMlp.collectBuffers(out);
    head.collectBuffers(out);
}

} // namespace edgepc
