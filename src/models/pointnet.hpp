/**
 * @file
 * Vanilla PointNet (Qi et al., CVPR 2017) — the first network to
 * consume raw point sets, cited by the EdgePC paper as the root of
 * the model family.
 *
 * PointNet has no sampling and no neighbor-search stage (each point
 * is embedded independently and aggregated by one global max-pool),
 * which makes it the control workload in this repository: EdgePC's
 * optimizations target the SMP/NS stages that PointNet lacks, and the
 * pipeline measurements show its breakdown is feature-compute-bound.
 * The price PointNet pays is the loss of local structure, which is
 * exactly what the SA/EdgeConv modules of its successors (and their
 * SMP/NS bottlenecks) reintroduce.
 */

#ifndef EDGEPC_MODELS_POINTNET_HPP
#define EDGEPC_MODELS_POINTNET_HPP

#include "models/model.hpp"
#include "nn/layers.hpp"

namespace edgepc {

/** PointNet hyper-parameters. */
struct PointNetConfig
{
    /** Per-point MLP widths (the last is the global feature size). */
    std::vector<std::size_t> mlp = {64, 128, 256};

    /** Head hidden widths (classes appended internally). */
    std::vector<std::size_t> headMlp = {128};

    /** Output classes. */
    std::size_t numClasses = 0;

    /** Per-point outputs (segmentation) instead of one per cloud. */
    bool segmentation = false;

    /** Classification config sized like the original (scaled down). */
    static PointNetConfig classification(std::size_t num_classes);

    /** Segmentation config: per-point head over [local | global]. */
    static PointNetConfig segmentationConfig(std::size_t num_classes);
};

/** Vanilla PointNet. */
class PointNet : public TrainableModel
{
  public:
    PointNet(PointNetConfig config, std::uint64_t seed = 42);

    nn::Matrix infer(const PointCloud &cloud, const EdgePcConfig &cfg,
                     StageTimer *timer = nullptr) override;

    nn::Matrix forward(const PointCloud &cloud, const EdgePcConfig &cfg,
                       StageTimer *timer, bool train) override;

    void backward(const nn::Matrix &grad_logits) override;

    std::string name() const override { return "pointnet"; }
    std::size_t numClasses() const override { return cfg.numClasses; }
    void collectParameters(std::vector<nn::Parameter *> &out) override;
    void collectBuffers(std::vector<std::vector<float> *> &out) override;

    const PointNetConfig &config() const { return cfg; }

  private:
    PointNetConfig cfg;
    nn::Sequential pointMlp;
    nn::Sequential head;
    nn::GlobalMaxPool globalPool;

    // Forward state.
    nn::Matrix savedPointFeatures;
    std::size_t savedPoints = 0;
    bool trainMode = false;
};

} // namespace edgepc

#endif // EDGEPC_MODELS_POINTNET_HPP
