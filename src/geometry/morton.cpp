#include "geometry/morton.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace edgepc {

std::uint64_t
part1By2(std::uint32_t v)
{
    std::uint64_t x = v & 0x1fffffull;
    x = (x | (x << 32)) & 0x001f00000000ffffull;
    x = (x | (x << 16)) & 0x001f0000ff0000ffull;
    x = (x | (x << 8)) & 0x100f00f00f00f00full;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
    x = (x | (x << 2)) & 0x1249249249249249ull;
    return x;
}

std::uint32_t
compact1By2(std::uint64_t v)
{
    std::uint64_t x = v & 0x1249249249249249ull;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ull;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00full;
    x = (x ^ (x >> 8)) & 0x001f0000ff0000ffull;
    x = (x ^ (x >> 16)) & 0x001f00000000ffffull;
    x = (x ^ (x >> 32)) & 0x00000000001fffffull;
    return static_cast<std::uint32_t>(x);
}

std::uint64_t
part1By1(std::uint32_t v)
{
    std::uint64_t x = v;
    x = (x | (x << 16)) & 0x0000ffff0000ffffull;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
    x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
    x = (x | (x << 2)) & 0x3333333333333333ull;
    x = (x | (x << 1)) & 0x5555555555555555ull;
    return x;
}

std::uint32_t
compact1By1(std::uint64_t v)
{
    std::uint64_t x = v & 0x5555555555555555ull;
    x = (x ^ (x >> 1)) & 0x3333333333333333ull;
    x = (x ^ (x >> 2)) & 0x0f0f0f0f0f0f0f0full;
    x = (x ^ (x >> 4)) & 0x00ff00ff00ff00ffull;
    x = (x ^ (x >> 8)) & 0x0000ffff0000ffffull;
    x = (x ^ (x >> 16)) & 0x00000000ffffffffull;
    return static_cast<std::uint32_t>(x);
}

std::uint64_t
mortonEncode3(std::uint32_t x, std::uint32_t y, std::uint32_t z)
{
    return part1By2(x) | (part1By2(y) << 1) | (part1By2(z) << 2);
}

void
mortonDecode3(std::uint64_t code, std::uint32_t &x, std::uint32_t &y,
              std::uint32_t &z)
{
    x = compact1By2(code);
    y = compact1By2(code >> 1);
    z = compact1By2(code >> 2);
}

std::uint64_t
mortonEncode2(std::uint32_t x, std::uint32_t y)
{
    return part1By1(x) | (part1By1(y) << 1);
}

void
mortonDecode2(std::uint64_t code, std::uint32_t &x, std::uint32_t &y)
{
    x = compact1By1(code);
    y = compact1By1(code >> 1);
}

MortonEncoder::MortonEncoder(const Vec3 &minimum, float grid_size,
                             int bits_per_axis)
    : origin(minimum), cellSize(grid_size), axisBits(bits_per_axis)
{
    if (grid_size <= 0.0f) {
        raise(ErrorCode::DegenerateGeometry, "MortonEncoder: grid_size must be positive (got %f)",
              static_cast<double>(grid_size));
    }
    if (bits_per_axis < 1 || bits_per_axis > 21) {
        fatal("MortonEncoder: bits_per_axis must be in [1, 21] (got %d)",
              bits_per_axis);
    }
    invCellSize = 1.0f / cellSize;
    maxCell = (1u << axisBits) - 1u;
}

MortonEncoder::MortonEncoder(const Aabb &bounds, int code_bits)
    : MortonEncoder(bounds.empty() ? Vec3{} : bounds.min(),
                    [&bounds, code_bits] {
                        const int per_axis = std::max(1, code_bits / 3);
                        const float extent =
                            bounds.empty() ? 1.0f : bounds.maxExtent();
                        const float d = extent > 0.0f ? extent : 1.0f;
                        return d / static_cast<float>(1u << per_axis);
                    }(),
                    std::max(1, code_bits / 3))
{
}

void
MortonEncoder::voxelOf(const Vec3 &p, std::uint32_t &x, std::uint32_t &y,
                       std::uint32_t &z) const
{
    const auto quantize = [this](float v, float lo) -> std::uint32_t {
        const float scaled = (v - lo) * invCellSize;
        if (scaled <= 0.0f) {
            return 0u;
        }
        const auto cell = static_cast<std::uint32_t>(scaled);
        return std::min(cell, maxCell);
    };
    x = quantize(p.x, origin.x);
    y = quantize(p.y, origin.y);
    z = quantize(p.z, origin.z);
}

std::uint64_t
MortonEncoder::code(const Vec3 &p) const
{
    std::uint32_t x, y, z;
    voxelOf(p, x, y, z);
    return mortonEncode3(x, y, z);
}

Vec3
MortonEncoder::voxelCenter(std::uint64_t morton) const
{
    std::uint32_t x, y, z;
    mortonDecode3(morton, x, y, z);
    return {origin.x + (static_cast<float>(x) + 0.5f) * cellSize,
            origin.y + (static_cast<float>(y) + 0.5f) * cellSize,
            origin.z + (static_cast<float>(z) + 0.5f) * cellSize};
}

void
MortonEncoder::encodeAll(std::span<const Vec3> points,
                         std::vector<std::uint64_t> &out) const
{
    out.resize(points.size());
    // Fully parallel, one logical thread per point (Algo 1 line 3).
    parallelFor(0, points.size(), [&](std::size_t i) {
        out[i] = code(points[i]);
    });
}

std::vector<std::uint32_t>
mortonOrder(std::span<const Vec3> points, const MortonEncoder &encoder)
{
    std::vector<std::uint64_t> codes;
    encoder.encodeAll(points, codes);
    return radixSortIndices(codes);
}

std::vector<std::uint32_t>
radixSortIndices(std::span<const std::uint64_t> codes)
{
    const std::size_t n = codes.size();
    std::vector<std::uint32_t> index(n);
    for (std::size_t i = 0; i < n; ++i) {
        index[i] = static_cast<std::uint32_t>(i);
    }
    if (n <= 1) {
        return index;
    }

    // Find how many 8-bit digits are actually populated so tiny keys
    // don't pay for 8 passes.
    std::uint64_t all = 0;
    for (std::size_t i = 0; i < n; ++i) {
        all |= codes[i];
    }
    int passes = 0;
    while (all != 0) {
        ++passes;
        all >>= 8;
    }
    passes = std::max(passes, 1);

    std::vector<std::uint32_t> scratch(n);
    std::array<std::size_t, 256> histogram;

    for (int pass = 0; pass < passes; ++pass) {
        const int shift = pass * 8;
        histogram.fill(0);
        for (std::size_t i = 0; i < n; ++i) {
            ++histogram[(codes[index[i]] >> shift) & 0xff];
        }
        std::size_t offset = 0;
        for (std::size_t bucket = 0; bucket < 256; ++bucket) {
            const std::size_t count = histogram[bucket];
            histogram[bucket] = offset;
            offset += count;
        }
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t bucket = (codes[index[i]] >> shift) & 0xff;
            scratch[histogram[bucket]++] = index[i];
        }
        index.swap(scratch);
    }
    return index;
}

} // namespace edgepc
