/**
 * @file
 * Uniform voxel grid binning points by cell.
 *
 * Used for (1) the occupancy/structuredness statistics of Sec 4, and
 * (2) the grid-based neighbor-search baseline the paper cites among the
 * related non-approximate approaches (cuNSearch/FRNN style).
 */

#ifndef EDGEPC_GEOMETRY_VOXEL_GRID_HPP
#define EDGEPC_GEOMETRY_VOXEL_GRID_HPP

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "geometry/aabb.hpp"
#include "geometry/vec3.hpp"

namespace edgepc {

/**
 * Sparse uniform grid mapping voxel coordinates to the indexes of the
 * points they contain.
 */
class VoxelGrid
{
  public:
    /**
     * Bin @p points into voxels of edge @p cell_size anchored at the
     * cloud's minimum corner.
     */
    VoxelGrid(std::span<const Vec3> points, float cell_size);

    /** Voxel edge length. */
    float cellSize() const { return cell; }

    /** Number of non-empty voxels. */
    std::size_t occupiedVoxels() const { return cells.size(); }

    /** Total number of binned points. */
    std::size_t numPoints() const { return count; }

    /** Mean points per occupied voxel. */
    double meanOccupancy() const;

    /**
     * Invoke @p fn with the index of every point whose voxel intersects
     * the axis-aligned cube of half-width @p radius around @p center.
     * Candidates are a superset of the points within @p radius; the
     * caller filters by exact distance.
     */
    void forEachCandidate(const Vec3 &center, float radius,
                          const std::function<void(std::uint32_t)> &fn)
        const;

    /**
     * Like forEachCandidate(), but invokes @p fn once per non-empty
     * voxel with the whole index span, visiting cells in the same
     * deterministic order. Lets callers run batch (SIMD) kernels over
     * each cell instead of paying an indirect call per point.
     */
    template <typename Fn>
    void forEachCandidateSpan(const Vec3 &center, float radius,
                              Fn &&fn) const
    {
        std::int64_t cx, cy, cz;
        coordsOf(center, cx, cy, cz);
        const auto reach =
            static_cast<std::int64_t>(std::ceil(radius * invCell));
        for (std::int64_t dz = -reach; dz <= reach; ++dz) {
            for (std::int64_t dy = -reach; dy <= reach; ++dy) {
                for (std::int64_t dx = -reach; dx <= reach; ++dx) {
                    const auto it =
                        cells.find(keyOf(cx + dx, cy + dy, cz + dz));
                    if (it == cells.end()) {
                        continue;
                    }
                    fn(std::span<const std::uint32_t>(
                        it->second.data(), it->second.size()));
                }
            }
        }
    }

    /** Point indexes in the voxel containing @p p (empty if none). */
    std::span<const std::uint32_t> voxelPoints(const Vec3 &p) const;

  private:
    using Key = std::uint64_t;

    Key keyOf(std::int64_t ix, std::int64_t iy, std::int64_t iz) const;
    void coordsOf(const Vec3 &p, std::int64_t &ix, std::int64_t &iy,
                  std::int64_t &iz) const;

    Vec3 origin;
    float cell;
    float invCell;
    std::size_t count = 0;
    std::unordered_map<Key, std::vector<std::uint32_t>> cells;
};

} // namespace edgepc

#endif // EDGEPC_GEOMETRY_VOXEL_GRID_HPP
