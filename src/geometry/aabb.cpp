#include "geometry/aabb.hpp"

#include <algorithm>

namespace edgepc {

Aabb::Aabb()
    : lower(std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()),
      upper(std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest())
{
}

Aabb::Aabb(const Vec3 &lo, const Vec3 &hi) : lower(lo), upper(hi) {}

void
Aabb::expand(const Vec3 &p)
{
    lower.x = std::min(lower.x, p.x);
    lower.y = std::min(lower.y, p.y);
    lower.z = std::min(lower.z, p.z);
    upper.x = std::max(upper.x, p.x);
    upper.y = std::max(upper.y, p.y);
    upper.z = std::max(upper.z, p.z);
}

void
Aabb::expand(const Aabb &other)
{
    if (other.empty()) {
        return;
    }
    expand(other.lower);
    expand(other.upper);
}

bool
Aabb::empty() const
{
    return lower.x > upper.x;
}

Vec3
Aabb::extent() const
{
    if (empty()) {
        return {0.0f, 0.0f, 0.0f};
    }
    return upper - lower;
}

float
Aabb::maxExtent() const
{
    const Vec3 e = extent();
    return std::max({e.x, e.y, e.z});
}

Vec3
Aabb::center() const
{
    return (lower + upper) * 0.5f;
}

bool
Aabb::contains(const Vec3 &p) const
{
    return p.x >= lower.x && p.x <= upper.x && p.y >= lower.y &&
           p.y <= upper.y && p.z >= lower.z && p.z <= upper.z;
}

Aabb
Aabb::of(std::span<const Vec3> points)
{
    Aabb box;
    for (const Vec3 &p : points) {
        box.expand(p);
    }
    return box;
}

} // namespace edgepc
