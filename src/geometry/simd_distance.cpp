#include "geometry/simd_distance.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <immintrin.h>
#include <string_view>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace edgepc {
namespace simd {

// ------------------------------------------------------------ dispatch

bool
simdAvailable()
{
    static const bool available = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma");
    return available;
}

namespace {

DispatchPath
initialPathFromEnv()
{
    const char *env = std::getenv("EDGEPC_SIMD");
    if (env == nullptr) {
        return DispatchPath::Auto;
    }
    const std::string_view v(env);
    if (v == "scalar") {
        return DispatchPath::ForceScalar;
    }
    if (v == "simd" || v == "force" || v == "avx2") {
        if (!simdAvailable()) {
            warn("EDGEPC_SIMD=%s requested but the CPU lacks "
                    "AVX2+FMA; falling back to auto dispatch",
                    env);
            return DispatchPath::Auto;
        }
        return DispatchPath::ForceSimd;
    }
    if (v == "int8") {
        // Fixed-point request: handled by fixedModeState() below; the
        // scalar/AVX2 build choice for the fixed kernels stays Auto.
        return DispatchPath::Auto;
    }
    if (v != "auto") {
        warn("EDGEPC_SIMD=%s not understood (want scalar|simd|int8|"
                "auto); using auto",
                env);
    }
    return DispatchPath::Auto;
}

std::atomic<DispatchPath> &
pathState()
{
    static std::atomic<DispatchPath> state{initialPathFromEnv()};
    return state;
}

FixedPointMode
initialFixedModeFromEnv()
{
    const char *env = std::getenv("EDGEPC_SIMD");
    if (env == nullptr) {
        return FixedPointMode::Auto;
    }
    const std::string_view v(env);
    if (v == "int8") {
        return FixedPointMode::On;
    }
    if (v == "scalar" || v == "simd" || v == "force" || v == "avx2") {
        // An explicit fp32 path request also pins the numerics: no
        // fixed-point approximation behind the caller's back.
        return FixedPointMode::Off;
    }
    return FixedPointMode::Auto;
}

std::atomic<FixedPointMode> &
fixedModeState()
{
    static std::atomic<FixedPointMode> state{initialFixedModeFromEnv()};
    return state;
}

} // namespace

void
setDispatchPath(DispatchPath path)
{
    if (path == DispatchPath::ForceSimd && !simdAvailable()) {
        raise(ErrorCode::InvalidArgument,
              "setDispatchPath: ForceSimd requested but the CPU lacks "
              "AVX2+FMA");
    }
    pathState().store(path, std::memory_order_relaxed);
}

DispatchPath
dispatchPath()
{
    return pathState().load(std::memory_order_relaxed);
}

bool
usingSimd()
{
    switch (dispatchPath()) {
      case DispatchPath::ForceScalar:
        return false;
      case DispatchPath::ForceSimd:
        return true;
      case DispatchPath::Auto:
        break;
    }
    return simdAvailable();
}

const char *
activePathName()
{
    return usingSimd() ? "avx2-fma" : "scalar";
}

void
recordDispatch(std::uint64_t calls)
{
    static obs::Counter &fast =
        obs::MetricsRegistry::global().counter("simd.fast_calls");
    static obs::Counter &scalar =
        obs::MetricsRegistry::global().counter("simd.scalar_calls");
    (usingSimd() ? fast : scalar).add(calls);
}

void
setFixedPointMode(FixedPointMode mode)
{
    fixedModeState().store(mode, std::memory_order_relaxed);
}

FixedPointMode
fixedPointMode()
{
    return fixedModeState().load(std::memory_order_relaxed);
}

const char *
fixedPointModeName()
{
    switch (fixedPointMode()) {
      case FixedPointMode::On:
        return "int8";
      case FixedPointMode::Off:
        return "fp32";
      case FixedPointMode::Auto:
        break;
    }
    return "auto";
}

bool
fixedPointConsidered(FixedPointMode config_mode)
{
    switch (fixedPointMode()) {
      case FixedPointMode::On:
        return true;
      case FixedPointMode::Off:
        return false;
      case FixedPointMode::Auto:
        break;
    }
    return config_mode != FixedPointMode::Off;
}

bool
resolveFixedPointBall(FixedPointMode config_mode, float scale,
                      float radius)
{
    switch (fixedPointMode()) {
      case FixedPointMode::On:
        return true;
      case FixedPointMode::Off:
        return false;
      case FixedPointMode::Auto:
        break;
    }
    switch (config_mode) {
      case FixedPointMode::On:
        return true;
      case FixedPointMode::Off:
        return false;
      case FixedPointMode::Auto:
        break;
    }
    return scale > 0.0f && scale * kFixedAutoFactor <= radius;
}

bool
resolveFixedPointKnn(FixedPointMode config_mode)
{
    switch (fixedPointMode()) {
      case FixedPointMode::On:
        return true;
      case FixedPointMode::Off:
        return false;
      case FixedPointMode::Auto:
        break;
    }
    // Auto is Off for k-NN: snap error reorders near-ties, so the
    // approximation is opt-in per searcher.
    return config_mode == FixedPointMode::On;
}

void
recordFixedDispatch(std::uint64_t calls)
{
    static obs::Counter &fixed =
        obs::MetricsRegistry::global().counter("simd.fixed_calls");
    fixed.add(calls);
}

// ------------------------------------------------------- scalar builds

namespace {

void
scalarSqDist(const float *xs, const float *ys, const float *zs,
             std::size_t n, const Vec3 &q, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = squaredDistance({xs[i], ys[i], zs[i]}, q);
    }
}

void
scalarSqDistGather(const float *xs, const float *ys, const float *zs,
                   const std::uint32_t *idx, std::size_t n, const Vec3 &q,
                   float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t j = idx[i];
        out[i] = squaredDistance({xs[j], ys[j], zs[j]}, q);
    }
}

void
scalarMinUpdate(const float *xs, const float *ys, const float *zs,
                std::size_t n, const Vec3 &q, float *dist)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float d = squaredDistance({xs[i], ys[i], zs[i]}, q);
        if (d < dist[i]) {
            dist[i] = d;
        }
    }
}

void
scalarArgminUpdate(const float *dist, std::size_t n, std::uint32_t base,
                   float &best, std::uint32_t &best_idx)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (dist[i] < best) {
            best = dist[i];
            best_idx = base + static_cast<std::uint32_t>(i);
        }
    }
}

std::size_t
scalarArgmax(const float *dist, std::size_t n)
{
    std::size_t best_idx = 0;
    float best = dist[0];
    for (std::size_t i = 1; i < n; ++i) {
        if (dist[i] > best) {
            best = dist[i];
            best_idx = i;
        }
    }
    return best_idx;
}

std::size_t
scalarRadiusMask(const float *dist, std::size_t n, float r2,
                 std::uint64_t *mask)
{
    std::size_t count = 0;
    for (std::size_t w = 0; w * 64 < n; ++w) {
        const std::size_t hi = std::min(n, w * 64 + 64);
        std::uint64_t bits = 0;
        for (std::size_t i = w * 64; i < hi; ++i) {
            bits |= static_cast<std::uint64_t>(dist[i] <= r2) << (i % 64);
        }
        mask[w] = bits;
        count += static_cast<std::size_t>(std::popcount(bits));
    }
    return count;
}

void
scalarSqDistFixed(const std::int16_t *qxy, const std::int16_t *qzw,
                  std::size_t n, std::int16_t qx, std::int16_t qy,
                  std::int16_t qz, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t dx = std::int32_t{qxy[2 * i]} - qx;
        const std::int32_t dy = std::int32_t{qxy[2 * i + 1]} - qy;
        const std::int32_t dz = std::int32_t{qzw[2 * i]} - qz;
        // Exact: |d| < 2^15 per axis, so the sum stays below 2^31 and
        // the float conversion rounds identically to cvtepi32_ps.
        out[i] = static_cast<float>(dx * dx + dy * dy + dz * dz);
    }
}

std::size_t
scalarBelowMask(const float *dist, std::size_t n, float limit,
                std::uint64_t *mask)
{
    std::size_t count = 0;
    for (std::size_t w = 0; w * 64 < n; ++w) {
        const std::size_t hi = std::min(n, w * 64 + 64);
        std::uint64_t bits = 0;
        for (std::size_t i = w * 64; i < hi; ++i) {
            bits |= static_cast<std::uint64_t>(dist[i] < limit) << (i % 64);
        }
        mask[w] = bits;
        count += static_cast<std::size_t>(std::popcount(bits));
    }
    return count;
}

// --------------------------------------------------------- AVX2 builds
//
// Same arithmetic in the same order as the scalar builds (mul + add,
// never FMA; this file is compiled with -ffp-contract=off), so both
// dispatch paths produce bit-identical results.

__attribute__((target("avx2,fma"))) inline __m256
sqDist8(__m256 px, __m256 py, __m256 pz, __m256 qx, __m256 qy, __m256 qz)
{
    const __m256 dx = _mm256_sub_ps(px, qx);
    const __m256 dy = _mm256_sub_ps(py, qy);
    const __m256 dz = _mm256_sub_ps(pz, qz);
    return _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
        _mm256_mul_ps(dz, dz));
}

__attribute__((target("avx2,fma"))) void
avx2SqDist(const float *xs, const float *ys, const float *zs,
           std::size_t n, const Vec3 &q, float *out)
{
    const __m256 qx = _mm256_set1_ps(q.x);
    const __m256 qy = _mm256_set1_ps(q.y);
    const __m256 qz = _mm256_set1_ps(q.z);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256 d =
            sqDist8(_mm256_loadu_ps(xs + i), _mm256_loadu_ps(ys + i),
                    _mm256_loadu_ps(zs + i), qx, qy, qz);
        _mm256_storeu_ps(out + i, d);
    }
    scalarSqDist(xs + i, ys + i, zs + i, n - i, q, out + i);
}

__attribute__((target("avx2,fma"))) void
avx2SqDistGather(const float *xs, const float *ys, const float *zs,
                 const std::uint32_t *idx, std::size_t n, const Vec3 &q,
                 float *out)
{
    const __m256 qx = _mm256_set1_ps(q.x);
    const __m256 qy = _mm256_set1_ps(q.y);
    const __m256 qz = _mm256_set1_ps(q.z);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256i ind = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx + i));
        const __m256 d = sqDist8(_mm256_i32gather_ps(xs, ind, 4),
                                 _mm256_i32gather_ps(ys, ind, 4),
                                 _mm256_i32gather_ps(zs, ind, 4), qx, qy,
                                 qz);
        _mm256_storeu_ps(out + i, d);
    }
    scalarSqDistGather(xs, ys, zs, idx + i, n - i, q, out + i);
}

__attribute__((target("avx2,fma"))) void
avx2MinUpdate(const float *xs, const float *ys, const float *zs,
              std::size_t n, const Vec3 &q, float *dist)
{
    const __m256 qx = _mm256_set1_ps(q.x);
    const __m256 qy = _mm256_set1_ps(q.y);
    const __m256 qz = _mm256_set1_ps(q.z);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256 d =
            sqDist8(_mm256_loadu_ps(xs + i), _mm256_loadu_ps(ys + i),
                    _mm256_loadu_ps(zs + i), qx, qy, qz);
        const __m256 cur = _mm256_loadu_ps(dist + i);
        _mm256_storeu_ps(dist + i, _mm256_min_ps(d, cur));
    }
    scalarMinUpdate(xs + i, ys + i, zs + i, n - i, q, dist + i);
}

/** Horizontal max of 8 lanes. */
__attribute__((target("avx2,fma"))) inline float
hmax8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_max_ps(lo, hi);
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

/** Horizontal min of 8 lanes. */
__attribute__((target("avx2,fma"))) inline float
hmin8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_min_ps(lo, hi);
    lo = _mm_min_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_min_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

__attribute__((target("avx2,fma"))) void
avx2ArgminUpdate(const float *dist, std::size_t n, std::uint32_t base,
                 float &best, std::uint32_t &best_idx)
{
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256 v = _mm256_loadu_ps(dist + i);
        const float block_min = hmin8(v);
        if (block_min < best) {
            // First lane holding the block minimum — matches the
            // scalar scan's first-occurrence tie behavior.
            const int eq = _mm256_movemask_ps(
                _mm256_cmp_ps(v, _mm256_set1_ps(block_min), _CMP_EQ_OQ));
            best = block_min;
            best_idx = base + static_cast<std::uint32_t>(i) +
                       static_cast<std::uint32_t>(
                           std::countr_zero(static_cast<unsigned>(eq)));
        }
    }
    scalarArgminUpdate(dist + i, n - i,
                       base + static_cast<std::uint32_t>(i), best,
                       best_idx);
}

__attribute__((target("avx2,fma"))) std::size_t
avx2Argmax(const float *dist, std::size_t n)
{
    std::size_t best_idx = 0;
    float best = dist[0];
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256 v = _mm256_loadu_ps(dist + i);
        const float block_max = hmax8(v);
        if (block_max > best) {
            const int eq = _mm256_movemask_ps(
                _mm256_cmp_ps(v, _mm256_set1_ps(block_max), _CMP_EQ_OQ));
            best = block_max;
            best_idx = i + static_cast<std::size_t>(std::countr_zero(
                               static_cast<unsigned>(eq)));
        }
    }
    for (; i < n; ++i) {
        if (dist[i] > best) {
            best = dist[i];
            best_idx = i;
        }
    }
    return best_idx;
}

/**
 * Pack one 64-lane word of comparison bits; @p cmp is the AVX2
 * predicate (_CMP_LE_OQ / _CMP_LT_OQ).
 */
template <int cmp>
__attribute__((target("avx2,fma"))) inline std::uint64_t
maskWord64(const float *dist, __m256 limit)
{
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < 64 / kLanes; ++j) {
        const unsigned m =
            static_cast<unsigned>(_mm256_movemask_ps(_mm256_cmp_ps(
                _mm256_loadu_ps(dist + j * kLanes), limit, cmp)));
        bits |= static_cast<std::uint64_t>(m) << (j * kLanes);
    }
    return bits;
}

__attribute__((target("avx2,fma"))) std::size_t
avx2RadiusMask(const float *dist, std::size_t n, float r2,
               std::uint64_t *mask)
{
    const __m256 limit = _mm256_set1_ps(r2);
    std::size_t count = 0;
    std::size_t i = 0;
    std::size_t w = 0;
    for (; i + 64 <= n; i += 64, ++w) {
        const std::uint64_t bits = maskWord64<_CMP_LE_OQ>(dist + i, limit);
        mask[w] = bits;
        count += static_cast<std::size_t>(std::popcount(bits));
    }
    return count + scalarRadiusMask(dist + i, n - i, r2, mask + w);
}

__attribute__((target("avx2"))) void
avx2SqDistFixed(const std::int16_t *qxy, const std::int16_t *qzw,
                std::size_t n, std::int16_t qx, std::int16_t qy,
                std::int16_t qz, float *out)
{
    // Broadcast the query as interleaved i16 pairs matching the
    // candidate layout: [qx,qy] x8 and [qz,0] x8.
    const std::uint32_t xy_bits =
        (static_cast<std::uint32_t>(static_cast<std::uint16_t>(qy))
         << 16) |
        static_cast<std::uint16_t>(qx);
    const __m256i qv_xy =
        _mm256_set1_epi32(static_cast<std::int32_t>(xy_bits));
    const __m256i qv_zw = _mm256_set1_epi32(
        static_cast<std::int32_t>(static_cast<std::uint16_t>(qz)));
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256i pxy = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(qxy + 2 * i));
        const __m256i pzw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(qzw + 2 * i));
        // |diff| <= kFixedPadQ + kFixedMaxQueryQ < 2^15: no i16 wrap.
        const __m256i dxy = _mm256_sub_epi16(pxy, qv_xy);
        const __m256i dzw = _mm256_sub_epi16(pzw, qv_zw);
        // madd pairs up dx*dx + dy*dy (and dz*dz + 0) per i32 lane.
        const __m256i d = _mm256_add_epi32(_mm256_madd_epi16(dxy, dxy),
                                           _mm256_madd_epi16(dzw, dzw));
        _mm256_storeu_ps(out + i, _mm256_cvtepi32_ps(d));
    }
    scalarSqDistFixed(qxy + 2 * i, qzw + 2 * i, n - i, qx, qy, qz,
                      out + i);
}

__attribute__((target("avx2,fma"))) std::size_t
avx2BelowMask(const float *dist, std::size_t n, float limit,
              std::uint64_t *mask)
{
    const __m256 lim = _mm256_set1_ps(limit);
    std::size_t count = 0;
    std::size_t i = 0;
    std::size_t w = 0;
    for (; i + 64 <= n; i += 64, ++w) {
        const std::uint64_t bits = maskWord64<_CMP_LT_OQ>(dist + i, lim);
        mask[w] = bits;
        count += static_cast<std::size_t>(std::popcount(bits));
    }
    return count + scalarBelowMask(dist + i, n - i, limit, mask + w);
}

} // namespace

// ------------------------------------------------------ public entry

void
batchSqDist(const float *xs, const float *ys, const float *zs,
            std::size_t n, const Vec3 &q, float *out)
{
    if (usingSimd()) {
        avx2SqDist(xs, ys, zs, n, q, out);
    } else {
        scalarSqDist(xs, ys, zs, n, q, out);
    }
}

void
batchSqDistGather(const float *xs, const float *ys, const float *zs,
                  const std::uint32_t *idx, std::size_t n, const Vec3 &q,
                  float *out)
{
    if (usingSimd()) {
        avx2SqDistGather(xs, ys, zs, idx, n, q, out);
    } else {
        scalarSqDistGather(xs, ys, zs, idx, n, q, out);
    }
}

void
batchMinUpdate(const float *xs, const float *ys, const float *zs,
               std::size_t n, const Vec3 &q, float *dist)
{
    if (usingSimd()) {
        avx2MinUpdate(xs, ys, zs, n, q, dist);
    } else {
        scalarMinUpdate(xs, ys, zs, n, q, dist);
    }
}

void
batchArgminUpdate(const float *dist, std::size_t n, std::uint32_t base,
                  float &best, std::uint32_t &best_idx)
{
    if (usingSimd()) {
        avx2ArgminUpdate(dist, n, base, best, best_idx);
    } else {
        scalarArgminUpdate(dist, n, base, best, best_idx);
    }
}

std::size_t
batchArgmax(const float *dist, std::size_t n)
{
    if (n == 0) {
        raise(ErrorCode::InvalidArgument, "batchArgmax: empty input");
    }
    return usingSimd() ? avx2Argmax(dist, n) : scalarArgmax(dist, n);
}

std::size_t
batchRadiusMask(const float *dist, std::size_t n, float r2,
                std::uint64_t *mask)
{
    return usingSimd() ? avx2RadiusMask(dist, n, r2, mask)
                       : scalarRadiusMask(dist, n, r2, mask);
}

std::size_t
batchBelowMask(const float *dist, std::size_t n, float limit,
               std::uint64_t *mask)
{
    return usingSimd() ? avx2BelowMask(dist, n, limit, mask)
                       : scalarBelowMask(dist, n, limit, mask);
}

void
batchSqDistFixed(const std::int16_t *qxy, const std::int16_t *qzw,
                 std::size_t n, std::int16_t qx, std::int16_t qy,
                 std::int16_t qz, float *out)
{
    if (usingSimd()) {
        avx2SqDistFixed(qxy, qzw, n, qx, qy, qz, out);
    } else {
        scalarSqDistFixed(qxy, qzw, n, qx, qy, qz, out);
    }
}

} // namespace simd
} // namespace edgepc
