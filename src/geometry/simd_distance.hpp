/**
 * @file
 * Runtime-dispatched batch distance kernels over SoA point data.
 *
 * These are the 8-lane AVX2 workhorses behind FPS, brute-force k-NN,
 * ball query, grid query and the Morton window search. Dispatch
 * follows the GemmEngine pattern: a single __builtin_cpu_supports
 * check picks the AVX2+FMA build at runtime, with a scalar fallback
 * compiled for the baseline ISA. The path can be forced (setter or
 * EDGEPC_SIMD=scalar|simd|auto environment variable) so CI can A/B
 * both builds and the equivalence tests can diff them.
 *
 * Bit-exactness contract: the vector kernels evaluate squared
 * distances as fl(fl(fl(dx*dx) + fl(dy*dy)) + fl(dz*dz)) — the exact
 * operation order of the scalar squaredDistance() — and never use
 * fused multiply-add (simd_distance.cpp is built with
 * -ffp-contract=off). Both dispatch paths therefore return identical
 * bits, which is what lets test_kernel_equivalence assert identical
 * neighbor indices under forced-scalar and forced-SIMD runs.
 */

#ifndef EDGEPC_GEOMETRY_SIMD_DISTANCE_HPP
#define EDGEPC_GEOMETRY_SIMD_DISTANCE_HPP

#include <cstddef>
#include <cstdint>

#include "geometry/vec3.hpp"

namespace edgepc {
namespace simd {

/** Vector lanes per batch step (AVX2: 8 floats). */
inline constexpr std::size_t kLanes = 8;

/** @p n rounded up to a whole number of vector lanes. */
constexpr std::size_t
paddedSize(std::size_t n)
{
    return (n + kLanes - 1) / kLanes * kLanes;
}

/** Dispatch override for the batch kernels. */
enum class DispatchPath
{
    Auto,        ///< Use AVX2+FMA when the CPU supports it (default).
    ForceScalar, ///< Always take the scalar fallback.
    ForceSimd,   ///< Always take the AVX2 build (raises if unsupported).
};

/** True when the host CPU supports the AVX2+FMA build. */
bool simdAvailable();

/**
 * Override the dispatch decision (tests / A-B runs). ForceSimd on a
 * host without AVX2 raises InvalidArgument. The initial value comes
 * from EDGEPC_SIMD (scalar | simd | auto), read once at startup.
 */
void setDispatchPath(DispatchPath path);

/** Current override (Auto unless forced). */
DispatchPath dispatchPath();

/** Resolved decision: true when batch kernels run the AVX2 build. */
bool usingSimd();

/** "avx2-fma" or "scalar" — echoed into BENCH_*.json metadata. */
const char *activePathName();

/**
 * Bump the simd.fast_calls / simd.scalar_calls dispatch counters by
 * @p calls for the currently resolved path. Kernels call this once
 * per public entry point (not per batch) to keep the hot path clean.
 */
void recordDispatch(std::uint64_t calls = 1);

/**
 * out[i] = |p_i - q|^2 for i in [0, n), where p_i is read from the
 * parallel coordinate arrays. Exactly n results are written; inputs
 * need no particular alignment (32-byte-aligned SoA is fastest).
 */
void batchSqDist(const float *xs, const float *ys, const float *zs,
                 std::size_t n, const Vec3 &q, float *out);

/**
 * Gather flavor: out[i] = |p_{idx[i]} - q|^2 for i in [0, n). Used by
 * the voxel-grid searcher whose candidate lists are index vectors.
 */
void batchSqDistGather(const float *xs, const float *ys, const float *zs,
                       const std::uint32_t *idx, std::size_t n,
                       const Vec3 &q, float *out);

/**
 * dist[i] = min(dist[i], |p_i - q|^2) for i in [0, n) — the FPS
 * min-distance relaxation pass.
 */
void batchMinUpdate(const float *xs, const float *ys, const float *zs,
                    std::size_t n, const Vec3 &q, float *dist);

/**
 * Fold the strict minimum of dist[0, n) into (best, best_idx), with
 * the scalar scan's first-occurrence tie behavior. Indexes reported
 * are base + i.
 */
void batchArgminUpdate(const float *dist, std::size_t n,
                       std::uint32_t base, float &best,
                       std::uint32_t &best_idx);

/**
 * Index of the first maximum of dist[0, n) (the FPS selection scan).
 * @p n must be non-zero.
 */
std::size_t batchArgmax(const float *dist, std::size_t n);

/** Number of 64-bit words covering an @p n-lane packed mask. */
constexpr std::size_t
maskWords(std::size_t n)
{
    return (n + 63) / 64;
}

/**
 * Packed mask: bit (i % 64) of mask[i / 64] = (dist[i] <= r2) for i in
 * [0, n); returns the number of set bits. Unused tail bits of the last
 * word are zero, so callers can iterate set lanes with countr_zero in
 * O(hits) instead of scanning a byte per lane — the in-ball test of
 * ball/grid query.
 */
std::size_t batchRadiusMask(const float *dist, std::size_t n, float r2,
                            std::uint64_t *mask);

/**
 * Packed mask of (dist[i] < limit) with the same layout as
 * batchRadiusMask; returns the number of set bits. The strict k-NN
 * heap-admission prefilter.
 */
std::size_t batchBelowMask(const float *dist, std::size_t n, float limit,
                           std::uint64_t *mask);

// --------------------------------------------------------- fixed point
//
// s16 fixed-point companion kernels (DESIGN.md §15): candidate
// coordinates quantize to a per-cloud uniform grid and squared
// distances are evaluated with _mm256_madd_epi16 — exact integer
// arithmetic, so the scalar and AVX2 builds are bit-identical by
// construction. Enabling the path trades boundary-exact neighbor sets
// for roughly half the coordinate bandwidth; the FixedPointMode gate
// below keeps it off by default so default numerics stay fp32.

/** Candidate coordinates quantize to [-kFixedMaxQ, kFixedMaxQ]. */
inline constexpr std::int32_t kFixedMaxQ = 4095;

/**
 * Query coordinates clamp to the wider [-kFixedMaxQueryQ,
 * kFixedMaxQueryQ] so queries slightly outside the candidate bounding
 * box keep correct (saturated) distances instead of wrapping.
 */
inline constexpr std::int32_t kFixedMaxQueryQ = 8191;

/**
 * Quantized coordinate stored in padding lanes. Chosen so the i16
 * difference against any clamped query stays exact (kFixedPadQ +
 * kFixedMaxQueryQ < 2^15) — pad lanes never surface in results anyway
 * because the kernels write exactly n outputs, but they must not wrap.
 */
inline constexpr std::int16_t kFixedPadQ = 23168;

/**
 * Auto heuristic (ball query only): the fixed path engages when the
 * quantization step is at least this many times finer than the search
 * radius, bounding the worst-case per-axis snap error to
 * radius / kFixedAutoFactor.
 */
inline constexpr float kFixedAutoFactor = 64.0f;

/** Per-searcher fixed-point gate (mirrors nn::QuantMode). */
enum class FixedPointMode
{
    Off,  ///< Always exact fp32 kernels.
    On,   ///< Fixed-point wherever the cloud quantizes cleanly.
    Auto, ///< Defer to the per-call scale/radius heuristic.
};

/**
 * Process-wide override resolved ahead of per-searcher config. The
 * initial value comes from EDGEPC_SIMD: "int8" forces On, an explicit
 * fp32 path ("scalar" | "simd") forces Off, otherwise Auto (defer to
 * the searcher's config).
 */
void setFixedPointMode(FixedPointMode mode);

/** Current process-wide fixed-point override. */
FixedPointMode fixedPointMode();

/** "int8" | "fp32" | "auto" — echoed into BENCH_*.json metadata. */
const char *fixedPointModeName();

/**
 * True when the fixed path is even in play for @p config_mode (env On,
 * or env Auto with config not Off). Callers use this to skip the
 * quantization bounds scan when the answer is a definite no.
 */
bool fixedPointConsidered(FixedPointMode config_mode);

/**
 * Resolve the ball-query gate: env override first, then @p config_mode,
 * then the Auto heuristic (scale * kFixedAutoFactor <= radius). The
 * caller must still fall back to fp32 when the cloud fails to quantize
 * (PointsFixed::valid() is false).
 */
bool resolveFixedPointBall(FixedPointMode config_mode, float scale,
                           float radius);

/**
 * Resolve the k-NN gate: env override first, then config. Auto means
 * Off for k-NN — nearest-neighbor ordering is more sensitive to snap
 * error than in-ball membership, so the approximation is opt-in.
 */
bool resolveFixedPointKnn(FixedPointMode config_mode);

/** Bump the simd.fixed_calls counter (fixed-point entry points). */
void recordFixedDispatch(std::uint64_t calls = 1);

/**
 * Fixed-point squared distances: out[i] = dx^2 + dy^2 + dz^2 in
 * quantized units^2, converted exactly to float. @p qxy interleaves
 * [x0,y0, x1,y1, ...] and @p qzw interleaves [z0,0, z1,0, ...] (the
 * PointsFixed layout); exactly n results are written. Both dispatch
 * builds compute identical integer sums (max |coord diff| < 2^15, sum
 * < 2^31), so results are bit-identical across paths.
 */
void batchSqDistFixed(const std::int16_t *qxy, const std::int16_t *qzw,
                      std::size_t n, std::int16_t qx, std::int16_t qy,
                      std::int16_t qz, float *out);

} // namespace simd
} // namespace edgepc

#endif // EDGEPC_GEOMETRY_SIMD_DISTANCE_HPP
