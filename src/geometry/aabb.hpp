/**
 * @file
 * Axis-aligned bounding box. Supplies the {x_min, y_min, z_min} anchor
 * and the bounding-cube dimension D used by the Morton quantization of
 * Sec 4.1 / 5.1.3 of the paper.
 */

#ifndef EDGEPC_GEOMETRY_AABB_HPP
#define EDGEPC_GEOMETRY_AABB_HPP

#include <limits>
#include <span>

#include "geometry/vec3.hpp"

namespace edgepc {

/** Axis-aligned bounding box over a set of points. */
class Aabb
{
  public:
    /** Empty (inverted) box; extend with expand(). */
    Aabb();

    /** Box spanning [lo, hi] on every axis. */
    Aabb(const Vec3 &lo, const Vec3 &hi);

    /** Grow to include @p p. */
    void expand(const Vec3 &p);

    /** Grow to include another box. */
    void expand(const Aabb &other);

    /** True if no point was ever added. */
    bool empty() const;

    const Vec3 &min() const { return lower; }
    const Vec3 &max() const { return upper; }

    /** Per-axis extent (zero for empty boxes). */
    Vec3 extent() const;

    /** Largest axis extent: the bounding-cube dimension D of Sec 5.1.3. */
    float maxExtent() const;

    /** Geometric center. */
    Vec3 center() const;

    /** True if @p p lies inside or on the boundary. */
    bool contains(const Vec3 &p) const;

    /** Compute the bounding box of a point span. */
    static Aabb of(std::span<const Vec3> points);

  private:
    Vec3 lower;
    Vec3 upper;
};

} // namespace edgepc

#endif // EDGEPC_GEOMETRY_AABB_HPP
