/**
 * @file
 * Morton (Z-order) code generation, decoding and ordering.
 *
 * This is the primitive at the heart of EdgePC (Sec 4.1 of the paper):
 * a point's floating-point coordinates are quantized onto a voxel grid
 * of cell size r anchored at the cloud's minimum corner, and the three
 * integer voxel indexes are bit-interleaved into a single code. Sorting
 * points by this code "structurizes" the cloud: points adjacent in the
 * sorted order are (mostly) adjacent in space, which is what lets the
 * sampler and neighbor searcher operate on raw indexes.
 *
 * Bit convention (matching the paper's worked example, Sec 4.1):
 * (x, y, z) = (2, 3, 4) = (010, 011, 100)b encodes to 100'011'010b = 282,
 * i.e. x occupies bit 3i, y bit 3i+1 and z bit 3i+2.
 */

#ifndef EDGEPC_GEOMETRY_MORTON_HPP
#define EDGEPC_GEOMETRY_MORTON_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/aabb.hpp"
#include "geometry/vec3.hpp"

namespace edgepc {

/** Spread the low 21 bits of @p v so they occupy every third bit. */
std::uint64_t part1By2(std::uint32_t v);

/** Inverse of part1By2: gather every third bit starting at bit 0. */
std::uint32_t compact1By2(std::uint64_t v);

/** Spread the low 32 bits of @p v so they occupy every other bit. */
std::uint64_t part1By1(std::uint32_t v);

/** Inverse of part1By1. */
std::uint32_t compact1By1(std::uint64_t v);

/**
 * Interleave three integer voxel coordinates (up to 21 bits each) into
 * a 63-bit Morton code.
 */
std::uint64_t mortonEncode3(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z);

/** Recover the voxel coordinates from a 3D Morton code. */
void mortonDecode3(std::uint64_t code, std::uint32_t &x, std::uint32_t &y,
                   std::uint32_t &z);

/** Interleave two integer coordinates (up to 32 bits each). */
std::uint64_t mortonEncode2(std::uint32_t x, std::uint32_t y);

/** Recover the coordinates from a 2D Morton code. */
void mortonDecode2(std::uint64_t code, std::uint32_t &x, std::uint32_t &y);

/**
 * Quantizes floating-point points onto a voxel grid and produces Morton
 * codes for them.
 *
 * Two construction modes mirror the paper:
 *  - explicit grid size r and minimum corner (Algo 1's inputs), or
 *  - a bit budget a for the whole code (Sec 5.1.3): each axis gets
 *    floor(a/3) bits and r = D / 2^(a/3) where D is the bounding-cube
 *    dimension. The paper's default is a = 32, i.e. 10 bits per axis.
 */
class MortonEncoder
{
  public:
    /** Paper default: a = 32 total code bits (10 usable bits/axis). */
    static constexpr int kDefaultCodeBits = 32;

    /**
     * Build from an explicit grid.
     *
     * @param minimum Lower corner of the data space ({x,y,z}_min).
     * @param grid_size Voxel edge length r; must be > 0.
     * @param bits_per_axis Clamp voxel indexes to [0, 2^bits).
     */
    MortonEncoder(const Vec3 &minimum, float grid_size,
                  int bits_per_axis = 21);

    /**
     * Build from a bounding box and a total code bit budget.
     *
     * @param bounds Bounding box of the cloud.
     * @param code_bits Total bits a for the code; each axis uses
     *                  floor(a/3) bits and r = D / 2^(a/3).
     */
    MortonEncoder(const Aabb &bounds, int code_bits = kDefaultCodeBits);

    /** Voxel edge length r in use. */
    float gridSize() const { return cellSize; }

    /** Bits per axis in use. */
    int bitsPerAxis() const { return axisBits; }

    /** Lower corner of the grid. */
    const Vec3 &minimum() const { return origin; }

    /** Quantize @p p to its voxel coordinates (clamped to range). */
    void voxelOf(const Vec3 &p, std::uint32_t &x, std::uint32_t &y,
                 std::uint32_t &z) const;

    /** Morton code of @p p. */
    std::uint64_t code(const Vec3 &p) const;

    /** Center of the voxel that @p code addresses. */
    Vec3 voxelCenter(std::uint64_t code) const;

    /**
     * Generate codes for a whole cloud in parallel (Algo 1, MC_Gen).
     *
     * @param points Input points.
     * @param out Output array, resized to points.size().
     */
    void encodeAll(std::span<const Vec3> points,
                   std::vector<std::uint64_t> &out) const;

  private:
    Vec3 origin;
    float cellSize;
    float invCellSize;
    int axisBits;
    std::uint32_t maxCell;
};

/**
 * Structurize a cloud: return the permutation I' = {i_0, ..., i_{N-1}}
 * that lists point indexes in ascending Morton-code order (Sec 4.1).
 * Ties are broken by original index so the result is deterministic.
 */
std::vector<std::uint32_t> mortonOrder(std::span<const Vec3> points,
                                       const MortonEncoder &encoder);

/**
 * Sort (code, index) pairs by code with an LSD radix sort.
 *
 * This is the high-throughput path used by the Morton sampler; it is
 * O(N) in the number of pairs and parallel over histogram construction.
 * Exposed for direct testing against std::sort.
 *
 * @param codes Morton codes (not modified).
 * @return Indexes into @p codes in ascending code order (stable).
 */
std::vector<std::uint32_t>
radixSortIndices(std::span<const std::uint64_t> codes);

} // namespace edgepc

#endif // EDGEPC_GEOMETRY_MORTON_HPP
