#include "geometry/voxel_grid.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace edgepc {

VoxelGrid::VoxelGrid(std::span<const Vec3> points, float cell_size)
    : cell(cell_size)
{
    if (cell_size <= 0.0f) {
        raise(ErrorCode::DegenerateGeometry, "VoxelGrid: cell_size must be positive (got %f)",
              static_cast<double>(cell_size));
    }
    invCell = 1.0f / cell;
    const Aabb box = Aabb::of(points);
    origin = box.empty() ? Vec3{} : box.min();

    count = points.size();
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::int64_t ix, iy, iz;
        coordsOf(points[i], ix, iy, iz);
        cells[keyOf(ix, iy, iz)].push_back(
            static_cast<std::uint32_t>(i));
    }
}

double
VoxelGrid::meanOccupancy() const
{
    if (cells.empty()) {
        return 0.0;
    }
    return static_cast<double>(count) / static_cast<double>(cells.size());
}

VoxelGrid::Key
VoxelGrid::keyOf(std::int64_t ix, std::int64_t iy, std::int64_t iz) const
{
    // 21 bits per axis with a bias keeps coordinates non-negative.
    constexpr std::int64_t bias = 1 << 20;
    const std::uint64_t ux = static_cast<std::uint64_t>(ix + bias) &
                             0x1fffffull;
    const std::uint64_t uy = static_cast<std::uint64_t>(iy + bias) &
                             0x1fffffull;
    const std::uint64_t uz = static_cast<std::uint64_t>(iz + bias) &
                             0x1fffffull;
    return ux | (uy << 21) | (uz << 42);
}

void
VoxelGrid::coordsOf(const Vec3 &p, std::int64_t &ix, std::int64_t &iy,
                    std::int64_t &iz) const
{
    ix = static_cast<std::int64_t>(std::floor((p.x - origin.x) * invCell));
    iy = static_cast<std::int64_t>(std::floor((p.y - origin.y) * invCell));
    iz = static_cast<std::int64_t>(std::floor((p.z - origin.z) * invCell));
}

void
VoxelGrid::forEachCandidate(
    const Vec3 &center, float radius,
    const std::function<void(std::uint32_t)> &fn) const
{
    std::int64_t cx, cy, cz;
    coordsOf(center, cx, cy, cz);
    const auto reach =
        static_cast<std::int64_t>(std::ceil(radius * invCell));

    for (std::int64_t dz = -reach; dz <= reach; ++dz) {
        for (std::int64_t dy = -reach; dy <= reach; ++dy) {
            for (std::int64_t dx = -reach; dx <= reach; ++dx) {
                const auto it =
                    cells.find(keyOf(cx + dx, cy + dy, cz + dz));
                if (it == cells.end()) {
                    continue;
                }
                for (const std::uint32_t idx : it->second) {
                    fn(idx);
                }
            }
        }
    }
}

std::span<const std::uint32_t>
VoxelGrid::voxelPoints(const Vec3 &p) const
{
    std::int64_t ix, iy, iz;
    coordsOf(p, ix, iy, iz);
    const auto it = cells.find(keyOf(ix, iy, iz));
    if (it == cells.end()) {
        return {};
    }
    return {it->second.data(), it->second.size()};
}

} // namespace edgepc
