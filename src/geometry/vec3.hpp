/**
 * @file
 * 3-component float vector used for point coordinates throughout the
 * library. Header-only; all operations are constexpr-friendly.
 */

#ifndef EDGEPC_GEOMETRY_VEC3_HPP
#define EDGEPC_GEOMETRY_VEC3_HPP

#include <cmath>
#include <ostream>

namespace edgepc {

/** A 3D point or direction in single precision. */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }

    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    Vec3 &operator-=(const Vec3 &o)
    {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }
    Vec3 &operator*=(float s)
    {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    constexpr bool operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }
    constexpr bool operator!=(const Vec3 &o) const { return !(*this == o); }

    /** Dot product. */
    constexpr float dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    /** Cross product. */
    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    /** Squared Euclidean norm. */
    constexpr float squaredNorm() const { return dot(*this); }

    /** Euclidean norm. */
    float norm() const { return std::sqrt(squaredNorm()); }

    /** Unit-length copy (returns zero vector unchanged). */
    Vec3 normalized() const
    {
        const float n = norm();
        return n > 0.0f ? (*this) / n : *this;
    }

    /** Component access by index (0=x, 1=y, 2=z). */
    float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
    float &operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
};

/** Squared Euclidean distance between two points. */
constexpr float
squaredDistance(const Vec3 &a, const Vec3 &b)
{
    return (a - b).squaredNorm();
}

/** Euclidean distance between two points. */
inline float
distance(const Vec3 &a, const Vec3 &b)
{
    return (a - b).norm();
}

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

inline constexpr Vec3
operator*(float s, const Vec3 &v)
{
    return v * s;
}

} // namespace edgepc

#endif // EDGEPC_GEOMETRY_VEC3_HPP
