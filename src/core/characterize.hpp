/**
 * @file
 * Workload characterization and auto-configuration — the adoption
 * workflow the paper prescribes (end of Sec 6.3): "given new
 * workloads, the developer can first perform the characterization
 * (like the one in Sec 3) to identify the bottleneck layer(s) ... and
 * the parameters (e.g., search window size) can be adaptively chosen
 * to accommodate the application's requirement."
 *
 * characterize() runs the baseline pipeline on a probe frame, sweeps
 * the search-window knob against exact neighbor truth, and returns a
 * ready-to-use EdgePcConfig meeting a caller-chosen false-neighbor
 * budget.
 */

#ifndef EDGEPC_CORE_CHARACTERIZE_HPP
#define EDGEPC_CORE_CHARACTERIZE_HPP

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "models/model.hpp"

namespace edgepc {

/** One point of the window sweep. */
struct WindowTradeoff
{
    /** Window size W. */
    std::size_t window;
    /** False-neighbor ratio against exact k-NN on the probe. */
    double falseNeighborRatio;
    /** Search latency speedup over exact k-NN on the probe. */
    double searchSpeedup;
};

/** Result of characterizing one workload. */
struct CharacterizationReport
{
    /** Baseline per-stage latency on the probe frame (ms). */
    StageTimer baselineStages;

    /** Fraction of baseline E2E spent in sample + neighbor search. */
    double sampleNeighborShare = 0.0;

    /**
     * True if the SMP+NS share is large enough for the approximation
     * to pay off (the paper's bottleneck criterion).
     */
    bool worthwhile = false;

    /** Measured window-size tradeoff curve. */
    std::vector<WindowTradeoff> windowSweep;

    /** Recommended configuration (S+N with the chosen window). */
    EdgePcConfig recommended;

    /** Human-readable report. */
    std::string summary() const;
};

/**
 * Characterize @p model on @p probe and recommend a configuration.
 *
 * @param model Model to profile (driven with the baseline config).
 * @param probe A representative input frame.
 * @param target_fnr Largest acceptable false-neighbor ratio; the
 *        smallest window meeting it is recommended (accuracy-
 *        sensitive applications pass a small value, latency-sensitive
 *        ones a large value — the "flexibility" of Sec 6.2).
 * @param k Neighbors per query used for the window sweep.
 * @param share_threshold SMP+NS share of E2E above which the
 *        approximation is deemed worthwhile.
 */
CharacterizationReport characterize(PointCloudModel &model,
                                    const PointCloud &probe,
                                    double target_fnr = 0.35,
                                    std::size_t k = 16,
                                    double share_threshold = 0.15);

} // namespace edgepc

#endif // EDGEPC_CORE_CHARACTERIZE_HPP
