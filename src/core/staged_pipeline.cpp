#include "core/staged_pipeline.hpp"

#include <cstdlib>
#include <string_view>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

namespace {

PipelineMode
initialModeFromEnv()
{
    const char *env = std::getenv("EDGEPC_PIPELINE");
    if (env == nullptr) {
        return PipelineMode::Auto;
    }
    const std::string_view v(env);
    if (v == "on") {
        return PipelineMode::On;
    }
    if (v == "off") {
        return PipelineMode::Off;
    }
    if (v != "auto") {
        warn("EDGEPC_PIPELINE=%s not understood (want on|off|auto); "
             "using auto",
             env);
    }
    return PipelineMode::Auto;
}

std::atomic<PipelineMode> &
modeState()
{
    static std::atomic<PipelineMode> state{initialModeFromEnv()};
    return state;
}

} // namespace

PipelineMode
pipelineMode()
{
    return modeState().load(std::memory_order_relaxed);
}

void
setPipelineMode(PipelineMode mode)
{
    modeState().store(mode, std::memory_order_relaxed);
}

const char *
pipelineModeName(PipelineMode mode)
{
    switch (mode) {
    case PipelineMode::On:
        return "on";
    case PipelineMode::Off:
        return "off";
    case PipelineMode::Auto:
        return "auto";
    }
    return "auto";
}

const char *
pipelineModeName()
{
    return pipelineModeName(pipelineMode());
}

bool
resolvePipeline(const PointCloudModel &model, std::size_t frames)
{
    switch (pipelineMode()) {
    case PipelineMode::Off:
        return false;
    case PipelineMode::On:
        return frames >= 2;
    case PipelineMode::Auto:
        return frames >= 2 && model.supportsStagedInfer() &&
               ThreadPool::globalPool().concurrency() >= 4;
    }
    return false;
}

namespace {

/** Process-global staged-executor gauges/counters. Function-local
    statics so registration order can't race static init. */
struct StagedMetrics
{
    obs::Gauge &inFlight;
    obs::Gauge &sampleDepth;
    obs::Gauge &neighborDepth;
    obs::Gauge &featureDepth;
    obs::Counter &framesTotal;
    obs::Counter &framesFailed;

    static StagedMetrics &get()
    {
        static StagedMetrics m{
            obs::MetricsRegistry::global().gauge(
                "pipeline.frames_in_flight"),
            obs::MetricsRegistry::global().gauge(
                "pipeline.queue_depth.sample"),
            obs::MetricsRegistry::global().gauge(
                "pipeline.queue_depth.neighbor"),
            obs::MetricsRegistry::global().gauge(
                "pipeline.queue_depth.feature"),
            obs::MetricsRegistry::global().counter(
                "pipeline.staged_frames"),
            obs::MetricsRegistry::global().counter(
                "pipeline.staged_frames_failed"),
        };
        return m;
    }
};

} // namespace

StagedPipeline::StagedPipeline(PointCloudModel &model_, std::size_t depth_)
    : model(model_), freeQ(depth_ == 0 ? 1 : depth_),
      sampleQ(depth_ == 0 ? 1 : depth_), neighborQ(depth_ == 0 ? 1 : depth_),
      featureQ(depth_ == 0 ? 1 : depth_), doneQ(depth_ == 0 ? 1 : depth_)
{
    const std::size_t n = depth_ == 0 ? 1 : depth_;
    slots.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        slots.push_back(std::make_unique<Slot>());
        const bool ok = freeQ.tryPush(slots.back().get());
        (void)ok; // Capacity == slot count; cannot fail.
    }
    sampleThread = std::thread([this] { sampleWorker(); });
    neighborThread = std::thread([this] { neighborWorker(); });
    featureThread = std::thread([this] { featureWorker(); });
}

StagedPipeline::~StagedPipeline()
{
    // Contract: the caller collected everything it submitted, so the
    // stage queues drain trivially; close() wakes each worker's pop.
    sampleQ.close();
    sampleThread.join();
    neighborThread.join();
    featureThread.join();
}

bool
StagedPipeline::trySubmit(const PointCloud &cloud, const EdgePcConfig &cfg)
{
    callerRole.assertHeld();
    Slot *slot = nullptr;
    if (!freeQ.tryPop(slot)) {
        return false; // Every slot in flight: collect() first.
    }
    slot->id = nextId++;
    slot->cloud = cloud;
    slot->cfg = cfg;
    slot->stages = StageTimer{};
    slot->submitTime = std::chrono::steady_clock::now();
    slot->logits = nn::Matrix{};
    slot->failed = false;
    if (slot->state == nullptr) {
        slot->state = model.makeStagedFrame();
    }
    StagedMetrics &m = StagedMetrics::get();
    m.framesTotal.add(1);
    m.inFlight.set(static_cast<std::int64_t>(
        inFlightCount.fetch_add(1, std::memory_order_relaxed) + 1));
    const bool pushed = sampleQ.push(slot);
    (void)pushed; // Queues close only in ~StagedPipeline.
    m.sampleDepth.set(static_cast<std::int64_t>(sampleQ.depth()));
    return true;
}

StagedFrameResult
StagedPipeline::collect()
{
    callerRole.assertHeld();
    Slot *slot = nullptr;
    const bool got = doneQ.pop(slot);
    if (!got) {
        // Only reachable by calling collect() during/after teardown.
        raise(ErrorCode::InvalidArgument,
              "StagedPipeline::collect: executor shut down");
    }
    StagedFrameResult result;
    result.id = slot->id;
    result.logits = std::move(slot->logits);
    result.stages = slot->stages;
    result.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - slot->submitTime)
            .count();
    result.failed = slot->failed;
    result.error = slot->error;
    StagedMetrics &m = StagedMetrics::get();
    if (slot->failed) {
        m.framesFailed.add(1);
    }
    m.inFlight.set(static_cast<std::int64_t>(
        inFlightCount.fetch_sub(1, std::memory_order_relaxed) - 1));
    const bool recycled = freeQ.tryPush(std::move(slot));
    (void)recycled; // freeQ capacity == slot count; cannot fail.
    return result;
}

void
StagedPipeline::sampleWorker()
{
    obs::Tracer::global().nameCurrentThread("pipe.sample");
    StagedMetrics &m = StagedMetrics::get();
    Slot *slot = nullptr;
    while (sampleQ.pop(slot)) {
        m.sampleDepth.set(static_cast<std::int64_t>(sampleQ.depth()));
        {
            EDGEPC_TRACE_SCOPE("staged.sample", "pipeline");
            try {
                model.stagedSample(*slot->state, slot->cloud, slot->cfg,
                                   &slot->stages);
            } catch (const EdgePcException &e) {
                slot->failed = true;
                slot->error = e.error();
            }
        }
        const bool pushed = neighborQ.push(slot);
        (void)pushed;
        m.neighborDepth.set(
            static_cast<std::int64_t>(neighborQ.depth()));
    }
    neighborQ.close();
}

void
StagedPipeline::neighborWorker()
{
    obs::Tracer::global().nameCurrentThread("pipe.neighbor");
    StagedMetrics &m = StagedMetrics::get();
    Slot *slot = nullptr;
    while (neighborQ.pop(slot)) {
        m.neighborDepth.set(
            static_cast<std::int64_t>(neighborQ.depth()));
        if (!slot->failed) {
            EDGEPC_TRACE_SCOPE("staged.neighbor", "pipeline");
            try {
                model.stagedNeighbor(*slot->state, slot->cfg,
                                     &slot->stages);
            } catch (const EdgePcException &e) {
                slot->failed = true;
                slot->error = e.error();
            }
        }
        const bool pushed = featureQ.push(slot);
        (void)pushed;
        m.featureDepth.set(static_cast<std::int64_t>(featureQ.depth()));
    }
    featureQ.close();
}

void
StagedPipeline::featureWorker()
{
    obs::Tracer::global().nameCurrentThread("pipe.feature");
    StagedMetrics &m = StagedMetrics::get();
    Slot *slot = nullptr;
    while (featureQ.pop(slot)) {
        m.featureDepth.set(static_cast<std::int64_t>(featureQ.depth()));
        if (!slot->failed) {
            EDGEPC_TRACE_SCOPE("staged.feature", "pipeline");
            // Only this worker runs GEMMs in staged mode, so the
            // per-frame config decides the engine mode here (the
            // sequential path does the same in InferencePipeline).
            nn::GemmEngine::globalEngine().setMode(
                slot->cfg.useTensorCores() ? nn::GemmMode::Auto
                                           : nn::GemmMode::Scalar);
            try {
                slot->logits = model.stagedFeature(*slot->state,
                                                   slot->cfg,
                                                   &slot->stages);
            } catch (const EdgePcException &e) {
                slot->failed = true;
                slot->error = e.error();
            }
        }
        const bool pushed = doneQ.push(slot);
        (void)pushed;
    }
    doneQ.close();
}

} // namespace edgepc
