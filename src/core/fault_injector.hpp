/**
 * @file
 * Deterministic fault injector for robustness testing.
 *
 * Reproduces the failure modes of a real LiDAR front end — NaN/Inf
 * sprays (failed range returns), truncated frames (interrupted
 * transfers), duplicated points (multi-echo artifacts) — plus
 * synthetic per-stage latency spikes, all driven by a seeded Rng so a
 * chaos run is exactly repeatable. Wired into
 * bench/bench_fault_tolerance.cpp and the lidar_stream --chaos demo.
 */

#ifndef EDGEPC_CORE_FAULT_INJECTOR_HPP
#define EDGEPC_CORE_FAULT_INJECTOR_HPP

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "pointcloud/point_cloud.hpp"

namespace edgepc {

/** Probabilities and magnitudes of the injected faults. */
struct FaultInjectorConfig
{
    /** Probability a frame gets NaN/Inf coordinates sprayed into it. */
    double nanRate = 0.15;

    /** Fraction of points hit in a sprayed frame. */
    double nanFraction = 0.05;

    /** Probability a frame arrives truncated. */
    double truncateRate = 0.1;

    /** Fraction of points that survive a truncation. */
    double truncateKeep = 0.05;

    /** Probability a frame contains duplicated echo points. */
    double duplicateRate = 0.1;

    /** Fraction of points duplicated in an affected frame. */
    double duplicateFraction = 0.5;

    /** Probability of an injected latency spike on a frame. */
    double latencySpikeRate = 0.1;

    /** Spike duration (busy-wait inside the inference window), ms. */
    double latencySpikeMs = 25.0;

    /** Seed of the deterministic fault stream. */
    std::uint64_t seed = 0xfa017;
};

/** Which faults hit one frame. */
struct InjectionReport
{
    bool nanSpray = false;
    bool truncated = false;
    bool duplicated = false;
    bool latencySpike = false;

    bool any() const
    {
        return nanSpray || truncated || duplicated || latencySpike;
    }
};

/** Seeded frame-corruption and latency-spike source. */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultInjectorConfig cfg = {});

    /**
     * Corrupt @p frame in place according to the configured rates.
     * Consumes the deterministic random stream one frame at a time, so
     * calling this once per streamed frame reproduces the same fault
     * schedule for a given seed.
     */
    InjectionReport corrupt(PointCloud &frame);

    /**
     * Latency-spike hook for RobustPipelineOptions::inferenceProlog:
     * busy-waits latencySpikeMs inside the watchdog's deadline window
     * whenever the last corrupt() call drew a spike.
     */
    std::function<void()> latencyHook();

    /** Faults injected since construction. */
    std::size_t framesCorrupted() const { return corrupted; }

    const FaultInjectorConfig &config() const { return cfg; }

  private:
    void sprayNan(PointCloud &frame);
    void truncate(PointCloud &frame);
    void duplicate(PointCloud &frame);

    FaultInjectorConfig cfg;
    Rng rng;
    bool spikeArmed = false;
    std::size_t corrupted = 0;
};

} // namespace edgepc

#endif // EDGEPC_CORE_FAULT_INJECTOR_HPP
