/**
 * @file
 * Fault-tolerant streaming wrapper around InferencePipeline.
 *
 * An edge deployment must survive what a benchmark never sees: frames
 * with NaN returns, truncated transfers, degenerate geometry, and
 * occasional latency spikes that blow the per-frame deadline. The
 * RobustPipeline wraps the InferencePipeline with
 *
 *  - input sanitization (pointcloud/sanitizer.hpp),
 *  - a soft per-frame deadline watchdog (the frame runs on a dedicated
 *    ThreadPool worker while the caller waits with a timeout),
 *  - a degradation ladder: full configuration -> EdgePC approximate
 *    kernels -> reduced point budget -> frame skip, with automatic
 *    recovery after a streak of healthy frames, and
 *  - per-stream health telemetry (frames ok / repaired / degraded /
 *    dropped, deadline misses, error counters by taxonomy code).
 *
 * One malformed frame costs one frame, never the stream.
 */

#ifndef EDGEPC_CORE_ROBUST_PIPELINE_HPP
#define EDGEPC_CORE_ROBUST_PIPELINE_HPP

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "pointcloud/sanitizer.hpp"

namespace edgepc {

/** How one frame fared in the robust pipeline. */
enum class FrameStatus
{
    /** Clean frame, full configuration, on deadline. */
    Ok,
    /** Sanitizer repaired the frame; inference then succeeded. */
    Repaired,
    /** Frame ran under a degraded configuration (ladder level > 0). */
    Degraded,
    /** Frame was skipped; no logits were produced. */
    Dropped,
};

/** Name of a status for reports ("ok", "repaired", …). */
const char *frameStatusName(FrameStatus status);

/** Options of the fault-tolerance layer. */
struct RobustPipelineOptions
{
    /** Soft per-frame deadline in ms; 0 disables the watchdog. */
    double deadlineMs = 0.0;

    /** Input sanitization policy. */
    SanitizerConfig sanitizer;

    /** Point budget of the deepest degraded level (stride subsample). */
    std::size_t degradedPointBudget = 512;

    /** Consecutive healthy frames before climbing one ladder level
        back toward the full configuration. */
    int recoveryStreak = 3;

    /**
     * Whether a sanitizer-Repaired frame advances the healthy streak.
     * Default false: a repaired frame succeeded but is not clean
     * evidence that the stream can climb the ladder, so it leaves the
     * streak unchanged. True restores the legacy behavior (Repaired
     * counts the same as Ok).
     */
    bool recoveryCountsRepaired = false;

    /**
     * Test/chaos hook executed inside the deadline window immediately
     * before inference (on the watchdog worker when the watchdog is
     * active). FaultInjector::latencyHook() plugs in here.
     */
    std::function<void()> inferenceProlog;
};

/** Outcome of one frame through the robust pipeline. */
struct RobustFrameResult
{
    FrameStatus status = FrameStatus::Dropped;

    /** Ladder level the frame completed at (0 = full config). */
    int ladderLevel = 0;

    /** True when the frame finished after its soft deadline. */
    bool deadlineMissed = false;

    /** Wall-clock time spent on the frame (sanitize + all attempts). */
    double frameMs = 0.0;

    /** Inference result (valid unless status == Dropped). */
    PipelineResult result;

    /** What the sanitizer found/did. */
    SanitizeReport sanitize;

    /** The cloud that was actually inferred (post repair/degrade);
        labels survive, so degraded-mode accuracy can be scored. */
    PointCloud processed;

    /** Why the frame was dropped (valid when status == Dropped). */
    EdgePcError error;

    bool hasLogits() const { return status != FrameStatus::Dropped; }
};

/**
 * Aggregated per-stream health telemetry.
 *
 * This is a plain value snapshot: RobustPipeline keeps the live
 * counters in atomics and health() materializes one of these, so a
 * monitor thread can poll while the stream thread keeps processing.
 */
struct StreamHealth
{
    std::size_t frames = 0;
    std::size_t ok = 0;
    std::size_t repaired = 0;
    std::size_t degraded = 0;
    std::size_t dropped = 0;
    std::size_t deadlineMisses = 0;
    /** Failed inference attempts that were retried down the ladder. */
    std::size_t retries = 0;

    /** Error occurrences by taxonomy code. */
    std::array<std::size_t, kErrorCodeCount> errorCounts{};

    /** Fraction of frames that produced logits. */
    double recoveryRate() const;

    /** Record an error occurrence. */
    void countError(const EdgePcError &error);

    /** Render the telemetry as an aligned table. */
    void printTable(std::ostream &os) const;
};

/**
 * Live counters behind StreamHealth: atomics so a monitor thread can
 * poll while the stream thread keeps processing (relaxed order —
 * these are statistics, not synchronization). Shared vocabulary
 * between RobustPipeline and the serving layer so every frame,
 * including ones shed before reaching inference, lands in the same
 * per-stream health snapshot.
 */
struct StreamHealthCounters
{
    std::atomic<std::size_t> frames{0};
    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> repaired{0};
    std::atomic<std::size_t> degraded{0};
    std::atomic<std::size_t> dropped{0};
    std::atomic<std::size_t> deadlineMisses{0};
    std::atomic<std::size_t> retries{0};
    std::array<std::atomic<std::size_t>, kErrorCodeCount> errorCounts{};

    void bump(std::atomic<std::size_t> &counter)
    {
        counter.fetch_add(1, std::memory_order_relaxed);
    }

    void countError(const EdgePcError &error)
    {
        bump(errorCounts[static_cast<std::size_t>(error.code)]);
    }

    StreamHealth snapshot() const;
};

/** Fault-tolerant streaming front end over InferencePipeline. */
class RobustPipeline
{
  public:
    /** Ladder levels: 0 = full config, 1 = EdgePC approximate
        kernels, 2 = approximate + reduced point budget. A frame that
        fails at the last level is dropped. */
    static constexpr int kLadderLevels = 3;

    /**
     * @param model Model to serve (not owned; must outlive this).
     * @param cfg The full (level-0) configuration.
     * @param opts Fault-tolerance options.
     */
    RobustPipeline(PointCloudModel &model, EdgePcConfig cfg,
                   RobustPipelineOptions opts = {});

    /**
     * Process one frame end to end: sanitize, run at the current
     * ladder level, retry down the ladder on recoverable errors,
     * account the outcome. Never throws on malformed input and never
     * terminates the process; the worst outcome is a Dropped frame.
     *
     * One stream, one caller: process() must not be invoked
     * concurrently. health() and ladderLevel() ARE safe to call from
     * other threads while a frame is in flight.
     */
    [[nodiscard]] RobustFrameResult process(const PointCloud &frame);

    /** Receives each stream frame's outcome exactly once.
        @p frame_index is the frame's position in the input span. */
    using StreamSink =
        std::function<void(std::size_t frame_index, RobustFrameResult &&)>;

    /**
     * Process a stream of frames with the same fault-tolerance
     * guarantees as per-frame process(), overlapping stages across
     * frames on the staged executor when resolvePipeline() allows
     * (EDGEPC_PIPELINE; single frames and Off mode fall back to
     * process()). Every frame — accepted, repaired, degraded, or
     * dropped — resolves through @p sink exactly once; the call
     * returns only after the executor has fully drained, so no frame
     * is ever left in flight.
     *
     * Semantics under overlap:
     *  - Sanitize, the chaos/latency prolog, and the ladder-level
     *    configuration are applied on the caller thread at submit.
     *  - The deadline watchdog covers in-flight frames by measuring
     *    each frame's submit-to-completion wall time at collect; a
     *    miss escalates the ladder exactly like process() (frames
     *    cannot be cancelled mid-kernel in either mode).
     *  - A frame that fails on the executor is retried down the
     *    ladder serially after the drain (the sequential model path
     *    may share state with the staged workers, so retries never
     *    overlap them); its sink call is deferred until the retry
     *    resolves.
     *  - Sink order is completion order: sanitize-dropped frames
     *    resolve at submit, retried frames resolve last. Use
     *    @p frame_index to re-associate.
     *
     * Same single-caller contract as process().
     *
     * @return Number of frames that produced logits.
     */
    std::size_t processStream(std::span<const PointCloud> frames,
                              const StreamSink &sink);

    /**
     * Snapshot of the health telemetry accumulated since
     * construction. Thread-safe against a running process(): each
     * counter is read atomically (the snapshot is not a cross-counter
     * transaction — a monitor polling mid-frame may observe `frames`
     * already bumped while the frame's outcome counter is not).
     */
    [[nodiscard]] StreamHealth health() const { return stats.snapshot(); }

    /** Current degradation ladder level (sticky across frames: the
        last configuration that met the deadline is retried first),
        clamped up to the external ladder floor. Thread-safe against a
        running process(). */
    [[nodiscard]] int ladderLevel() const
    {
        return std::max(level.load(std::memory_order_relaxed),
                        floorLevel.load(std::memory_order_relaxed));
    }

    /**
     * Externally imposed minimum ladder level, clamped to
     * [0, kLadderLevels - 1]. An admission controller raises the floor
     * across every stream under overload so all streams step down
     * together before any single stream starts dropping frames; the
     * stream's own sticky level still escalates/recovers underneath
     * and takes over again once the floor is lowered. Thread-safe.
     */
    void setLadderFloor(int floor_level)
    {
        floorLevel.store(
            std::clamp(floor_level, 0, kLadderLevels - 1),
            std::memory_order_relaxed);
    }

    /** Current external ladder floor. Thread-safe. */
    [[nodiscard]] int ladderFloor() const
    {
        return floorLevel.load(std::memory_order_relaxed);
    }

    /**
     * Account a frame that was served outside process() — the serving
     * engine's cross-stream batched path — so health telemetry and the
     * ladder streak stay unified with single-frame processing. Same
     * single-caller contract as process(): must not race process() or
     * itself (health() stays safe to poll concurrently).
     *
     * @param status Outcome of the frame (Dropped allowed).
     * @param lvl Ladder level the frame ran at (escalation target on a
     *        deadline miss).
     * @param deadline_missed True when the frame blew its deadline.
     * @param repaired True when the sanitizer repaired the frame.
     * @param error Error to count (typically with status Dropped).
     */
    void recordExternalFrame(FrameStatus status, int lvl,
                             bool deadline_missed, bool repaired,
                             const EdgePcError *error = nullptr);

    /**
     * Account a frame shed before inference (backpressure eviction,
     * expired deadline, quarantine flush, shutdown). Only touches
     * atomic counters, so unlike recordExternalFrame this IS safe to
     * call concurrently with process() from any thread.
     */
    void recordShedFrame(const EdgePcError &error);

    /** Configuration the pipeline would use at @p level. */
    EdgePcConfig configForLevel(int level) const;

    const RobustPipelineOptions &options() const { return opts; }

  private:
    [[nodiscard]] Result<PipelineResult>
    runAttempt(const PointCloud &cloud, const EdgePcConfig &cfg,
               bool &deadline_missed);

    /** Healthy-streak bookkeeping shared by process() and
        recordExternalFrame() (single-caller state). */
    void noteHealthyFrame(bool repaired) EDGEPC_REQUIRES(streamRole);

    /**
     * The degradation-ladder loop shared by process() and the
     * stream retry path: runs @p out.processed (already sanitized)
     * from the current ladder level down, filling status/result/
     * error and the outcome counters. Callers own frameMs.
     */
    void runLadder(RobustFrameResult &out) EDGEPC_REQUIRES(streamRole);

    PointCloudModel &model;
    EdgePcConfig baseCfg;
    RobustPipelineOptions opts;
    InferencePipeline pipeline;
    /** Staged inter-frame executor for processStream() (lazy: only
        built once a stream actually resolves to the pipelined path). */
    std::unique_ptr<StagedPipeline> stagedExec;
    /** Models per-frame energy for staged frames (process() gets this
        from InferencePipeline's own accounting). */
    EnergyModel energyModel;
    /** Dedicated single worker so a watchdogged frame cannot starve
        the global kernel pool. */
    ThreadPool watchdog{1};
    StreamHealthCounters stats;
    std::atomic<int> level{0};
    std::atomic<int> floorLevel{0};
    /** Virtual capability encoding the single-caller contract of
        process()/recordExternalFrame(): not a lock — the entry points
        assert it (statically) and the analysis then rejects any new
        code path touching the streak without declaring itself part of
        the contract. */
    ThreadRole streamRole;
    int cleanStreak EDGEPC_GUARDED_BY(streamRole) = 0;
};

} // namespace edgepc

#endif // EDGEPC_CORE_ROBUST_PIPELINE_HPP
