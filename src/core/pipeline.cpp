#include "core/pipeline.hpp"

#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

InferencePipeline::InferencePipeline(PointCloudModel &model_,
                                     EdgePcConfig cfg_, EnergyModel energy)
    : model(model_), cfg(cfg_), energyModel(energy)
{
}

void
InferencePipeline::applyGemmMode() const
{
    nn::GemmEngine::globalEngine().setMode(cfg.useTensorCores()
                                               ? nn::GemmMode::Auto
                                               : nn::GemmMode::Scalar);
}

PipelineResult
InferencePipeline::run(const PointCloud &cloud)
{
    return runBatch({&cloud, 1});
}

Result<PipelineResult>
InferencePipeline::tryRun(const PointCloud &cloud)
{
    try {
        return runBatch({&cloud, 1});
    } catch (const EdgePcException &e) {
        return e.error();
    }
}

PipelineResult
InferencePipeline::runBatch(std::span<const PointCloud> clouds)
{
    EDGEPC_TRACE_SCOPE("pipeline", "pipeline");
    static obs::Counter &frames =
        obs::MetricsRegistry::global().counter("pipeline.frames");
    frames.add(clouds.size());

    applyGemmMode();

    PipelineResult result;
    for (const PointCloud &cloud : clouds) {
        EDGEPC_TRACE_SCOPE("frame", "pipeline");
        result.logits = model.infer(cloud, cfg, &result.stages);
    }
    result.endToEndMs = result.stages.grandTotal();
    result.sampleNeighborMs = result.stages.total(kStageSample) +
                              result.stages.total(kStageNeighbor);
    result.energyMj =
        energyModel.inferenceEnergyMj(result.stages, cfg);
    return result;
}

} // namespace edgepc
