#include "core/pipeline.hpp"

#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {

InferencePipeline::InferencePipeline(PointCloudModel &model_,
                                     EdgePcConfig cfg_, EnergyModel energy)
    : model(model_), cfg(cfg_), energyModel(energy)
{
}

void
InferencePipeline::applyGemmMode() const
{
    nn::GemmEngine::globalEngine().setMode(cfg.useTensorCores()
                                               ? nn::GemmMode::Auto
                                               : nn::GemmMode::Scalar);
}

PipelineResult
InferencePipeline::run(const PointCloud &cloud)
{
    return runBatch({&cloud, 1});
}

Result<PipelineResult>
InferencePipeline::tryRun(const PointCloud &cloud)
{
    try {
        return runBatch({&cloud, 1});
    } catch (const EdgePcException &e) {
        return e.error();
    }
}

PipelineResult
InferencePipeline::runBatch(std::span<const PointCloud> clouds)
{
    EDGEPC_TRACE_SCOPE("pipeline", "pipeline");
    static obs::Counter &frames =
        obs::MetricsRegistry::global().counter("pipeline.frames");
    frames.add(clouds.size());

    if (resolvePipeline(model, clouds.size())) {
        return runStaged(clouds);
    }
    return runSequential(clouds);
}

PipelineResult
InferencePipeline::runSequential(std::span<const PointCloud> clouds)
{
    applyGemmMode();

    Timer wall;
    PipelineResult result;
    for (const PointCloud &cloud : clouds) {
        EDGEPC_TRACE_SCOPE("frame", "pipeline");
        result.logits = model.infer(cloud, cfg, &result.stages);
    }
    result.busyMs = result.stages.grandTotal();
    result.wallMs = wall.elapsedMs();
    // Legacy semantics: sequential end-to-end is the summed stage
    // busy time (excludes harness overhead between frames).
    result.endToEndMs = result.busyMs;
    result.sampleNeighborMs = result.stages.total(kStageSample) +
                              result.stages.total(kStageNeighbor);
    result.energyMj =
        energyModel.inferenceEnergyMj(result.stages, cfg);
    return result;
}

PipelineResult
InferencePipeline::runStaged(std::span<const PointCloud> clouds)
{
    if (staged == nullptr) {
        staged = std::make_unique<StagedPipeline>(model);
    }

    Timer wall;
    PipelineResult result;
    result.pipelined = true;
    bool have_error = false;
    EdgePcError first_error;

    // Windowed submit/collect: keep the executor full until the input
    // runs out, then drain. Results come back in submission order.
    std::size_t next = 0;
    auto take = [&](StagedFrameResult &&r) {
        result.stages.merge(r.stages);
        if (r.failed) {
            if (!have_error) {
                have_error = true;
                first_error = r.error;
            }
        } else {
            result.logits = std::move(r.logits);
        }
    };
    while (next < clouds.size()) {
        if (staged->trySubmit(clouds[next], cfg)) {
            ++next;
            continue;
        }
        take(staged->collect());
    }
    while (staged->inFlight() > 0) {
        take(staged->collect());
    }

    result.busyMs = result.stages.grandTotal();
    result.wallMs = wall.elapsedMs();
    // Pipelined end-to-end is honest wall time: stages overlap, so
    // summed busy time no longer bounds the stream latency.
    result.endToEndMs = result.wallMs;
    result.sampleNeighborMs = result.stages.total(kStageSample) +
                              result.stages.total(kStageNeighbor);
    result.energyMj =
        energyModel.inferenceEnergyMj(result.stages, cfg);
    if (have_error) {
        // Match the sequential contract: recoverable data errors
        // surface as EdgePcException (after the drain above, so no
        // frame is left in flight).
        throw EdgePcException(first_error);
    }
    return result;
}

} // namespace edgepc
