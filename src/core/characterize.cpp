#include "core/characterize.hpp"

#include <sstream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "neighbor/brute_force.hpp"
#include "neighbor/metrics.hpp"
#include "neighbor/morton_window.hpp"
#include "sampling/morton_sampler.hpp"

namespace edgepc {

std::string
CharacterizationReport::summary() const
{
    std::ostringstream os;
    os << "=== EdgePC workload characterization ===\n";
    os << "baseline stage breakdown (ms):\n";
    for (const auto &[stage, ms] : baselineStages.entries()) {
        os << "  " << stage << ": " << ms << "\n";
    }
    os << "sample+neighbor share: "
       << formatPercent(sampleNeighborShare) << "\n";
    os << "approximation worthwhile: " << (worthwhile ? "yes" : "no")
       << "\n\nwindow sweep:\n";
    Table table({"window", "FNR", "search speedup"});
    for (const WindowTradeoff &point : windowSweep) {
        table.row()
            .cell(static_cast<long long>(point.window))
            .cell(formatPercent(point.falseNeighborRatio))
            .cell(formatSpeedup(point.searchSpeedup));
    }
    table.print(os);
    os << "\nrecommended: " << variantName(recommended.variant)
       << ", searchWindow=" << recommended.searchWindow
       << ", codeBits=" << recommended.codeBits << "\n";
    return os.str();
}

CharacterizationReport
characterize(PointCloudModel &model, const PointCloud &probe,
             double target_fnr, std::size_t k, double share_threshold)
{
    CharacterizationReport report;

    // 1. Baseline breakdown (the Sec 3 characterization).
    InferencePipeline pipeline(model, EdgePcConfig::baseline());
    const PipelineResult baseline = pipeline.run(probe);
    report.baselineStages = baseline.stages;
    report.sampleNeighborShare =
        baseline.endToEndMs > 0.0
            ? baseline.sampleNeighborMs / baseline.endToEndMs
            : 0.0;
    report.worthwhile = report.sampleNeighborShare >= share_threshold;

    // 2. Window sweep against exact truth on the probe cloud.
    const auto &pts = probe.positions();
    k = std::min(k, pts.size());
    BruteForceKnn exact;
    Timer exact_timer;
    const NeighborLists truth = exact.search(pts, pts, k);
    const double exact_ms = std::max(exact_timer.elapsedMs(), 1e-6);

    const MortonSampler sampler(EdgePcConfig{}.codeBits);
    const Structurization s = sampler.structurize(pts);

    std::size_t chosen = 16 * k;
    bool met_target = false;
    for (const std::size_t mult : {1u, 2u, 4u, 8u, 16u}) {
        const std::size_t window = mult * k;
        const MortonWindowSearch searcher(window);
        Timer timer;
        const NeighborLists approx = searcher.searchAll(pts, s, k);
        const double ms = std::max(timer.elapsedMs(), 1e-6);
        const double fnr = falseNeighborRatio(approx, truth);
        report.windowSweep.push_back({window, fnr, exact_ms / ms});
        if (!met_target && fnr <= target_fnr) {
            chosen = window;
            met_target = true;
        }
    }

    report.recommended = EdgePcConfig::sn();
    report.recommended.searchWindow = chosen;
    return report;
}

} // namespace edgepc
