/**
 * @file
 * The W1-W6 workload registry (Table 1 of the paper) with factories
 * for the corresponding models and representative input frames.
 *
 * Real datasets are replaced by the synthetic generators (DESIGN.md);
 * the model architectures, point counts per batch, batch sizes and
 * tasks match Table 1.
 */

#ifndef EDGEPC_CORE_WORKLOADS_HPP
#define EDGEPC_CORE_WORKLOADS_HPP

#include <memory>
#include <string>
#include <vector>

#include "datasets/dataset.hpp"
#include "models/model.hpp"

namespace edgepc {

/** Which model family a workload uses. */
enum class WorkloadModel
{
    PointNetPPSeg,
    DgcnnCls,
    DgcnnPart,
    DgcnnSeg,
};

/** One Table-1 row. */
struct WorkloadSpec
{
    std::string id;          ///< "W1".."W6".
    WorkloadModel model;     ///< Model family.
    std::string modelName;   ///< "PointNet++(s)" etc.
    std::string datasetName; ///< "S3DIS*" etc. (*synthetic stand-in).
    std::size_t points;      ///< Points per batch element.
    std::size_t batchSize;   ///< Frames per batch (W2 uses the mean).
    std::string task;        ///< Task description.
    std::size_t numClasses;  ///< Output classes of the stand-in task.
};

/** All six workloads of Table 1. */
const std::vector<WorkloadSpec> &workloadTable();

/** Lookup by id ("W1".."W6"); fatal on unknown id. */
const WorkloadSpec &workload(const std::string &id);

/**
 * Instantiate the workload's model.
 *
 * @param spec Workload row.
 * @param point_scale Divide the per-frame point count by this factor
 *        (the benches use > 1 to keep CPU runtimes manageable; the
 *        relative stage shares are preserved).
 * @param seed Weight seed.
 */
std::unique_ptr<PointCloudModel>
makeWorkloadModel(const WorkloadSpec &spec, std::size_t point_scale = 1,
                  std::uint64_t seed = 42);

/**
 * Generate one representative input frame for the workload (same
 * scaling rule as makeWorkloadModel).
 */
PointCloud makeWorkloadCloud(const WorkloadSpec &spec,
                             std::size_t point_scale = 1,
                             std::uint64_t seed = 7);

/** Scaled per-frame point count. */
std::size_t workloadPoints(const WorkloadSpec &spec,
                           std::size_t point_scale);

} // namespace edgepc

#endif // EDGEPC_CORE_WORKLOADS_HPP
