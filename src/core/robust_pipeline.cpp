#include "core/robust_pipeline.hpp"

#include <chrono>
#include <deque>
#include <ostream>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "sampling/uniform_index_sampler.hpp"

namespace edgepc {

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Repaired:
        return "repaired";
      case FrameStatus::Degraded:
        return "degraded";
      case FrameStatus::Dropped:
        return "dropped";
    }
    return "?";
}

double
StreamHealth::recoveryRate() const
{
    if (frames == 0) {
        return 1.0;
    }
    return static_cast<double>(frames - dropped) /
           static_cast<double>(frames);
}

void
StreamHealth::countError(const EdgePcError &error)
{
    errorCounts[static_cast<std::size_t>(error.code)]++;
}

StreamHealth
StreamHealthCounters::snapshot() const
{
    StreamHealth out;
    out.frames = frames.load(std::memory_order_relaxed);
    out.ok = ok.load(std::memory_order_relaxed);
    out.repaired = repaired.load(std::memory_order_relaxed);
    out.degraded = degraded.load(std::memory_order_relaxed);
    out.dropped = dropped.load(std::memory_order_relaxed);
    out.deadlineMisses = deadlineMisses.load(std::memory_order_relaxed);
    out.retries = retries.load(std::memory_order_relaxed);
    for (std::size_t c = 0; c < out.errorCounts.size(); ++c) {
        out.errorCounts[c] = errorCounts[c].load(
            std::memory_order_relaxed);
    }
    return out;
}

void
StreamHealth::printTable(std::ostream &os) const
{
    Table table({"counter", "value"});
    table.row().cell("frames").cell(static_cast<long long>(frames));
    table.row().cell("ok").cell(static_cast<long long>(ok));
    table.row().cell("repaired").cell(static_cast<long long>(repaired));
    table.row().cell("degraded").cell(static_cast<long long>(degraded));
    table.row().cell("dropped").cell(static_cast<long long>(dropped));
    table.row()
        .cell("deadline misses")
        .cell(static_cast<long long>(deadlineMisses));
    table.row().cell("retries").cell(static_cast<long long>(retries));
    table.row().cell("recovery rate").cell(formatPercent(recoveryRate()));
    for (std::size_t c = 0; c < errorCounts.size(); ++c) {
        if (errorCounts[c] == 0) {
            continue;
        }
        table.row()
            .cell(std::string("error: ") +
                  errorCodeName(static_cast<ErrorCode>(c)))
            .cell(static_cast<long long>(errorCounts[c]));
    }
    table.print(os);
}

RobustPipeline::RobustPipeline(PointCloudModel &model_, EdgePcConfig cfg,
                               RobustPipelineOptions opts_)
    : model(model_), baseCfg(cfg), opts(std::move(opts_)),
      pipeline(model_, cfg)
{
}

EdgePcConfig
RobustPipeline::configForLevel(int lvl) const
{
    if (lvl <= 0) {
        return baseCfg;
    }
    // Levels >= 1 run the EdgePC approximate kernels: this is the
    // paper's own accuracy/latency trade already validated by
    // retraining, so it is the natural first rung down.
    if (baseCfg.approximate()) {
        return baseCfg;
    }
    return EdgePcConfig::sn();
}

Result<PipelineResult>
RobustPipeline::runAttempt(const PointCloud &cloud,
                           const EdgePcConfig &cfg, bool &deadline_missed)
{
    pipeline.setConfig(cfg);
    deadline_missed = false;

    if (opts.deadlineMs <= 0.0) {
        if (opts.inferenceProlog) {
            opts.inferenceProlog();
        }
        return pipeline.tryRun(cloud);
    }

    // Soft watchdog: the frame runs on the dedicated worker while we
    // wait with a timeout. A frame cannot be cancelled mid-kernel, so
    // an overrun still completes — but it is accounted as a deadline
    // miss and escalates the degradation ladder for the next frame.
    Result<PipelineResult> outcome = makeError(
        ErrorCode::Internal, "runAttempt: watchdog task never ran");
    std::future<void> done = watchdog.submit([&] {
        if (opts.inferenceProlog) {
            opts.inferenceProlog();
        }
        outcome = pipeline.tryRun(cloud);
    });
    const auto deadline = std::chrono::duration<double, std::milli>(
        opts.deadlineMs);
    if (done.wait_for(deadline) == std::future_status::timeout) {
        deadline_missed = true;
    }
    done.get();
    return outcome;
}

RobustFrameResult
RobustPipeline::process(const PointCloud &frame)
{
    EDGEPC_TRACE_SCOPE("robust.process", "pipeline");
    // Single-caller contract: this thread acts as the stream's one
    // processing role (no runtime cost; makes streak state checkable).
    streamRole.assertHeld();
    Timer wall;
    RobustFrameResult out;
    stats.bump(stats.frames);

    // --- Sanitize ---------------------------------------------------
    out.processed = frame;
    Result<SanitizeReport> sanitized = [&] {
        EDGEPC_TRACE_SCOPE("robust.sanitize", "pipeline");
        return sanitizeCloud(out.processed, opts.sanitizer);
    }();
    if (!sanitized.ok()) {
        out.status = FrameStatus::Dropped;
        out.error = sanitized.error();
        out.frameMs = wall.elapsedMs();
        stats.countError(out.error);
        stats.bump(stats.dropped);
        cleanStreak = 0;
        return out;
    }
    out.sanitize = sanitized.value();

    runLadder(out);
    out.frameMs = wall.elapsedMs();
    return out;
}

void
RobustPipeline::runLadder(RobustFrameResult &out)
{
    // --- Run, retrying down the degradation ladder ------------------
    // `level` is sticky across frames: after a failure or deadline
    // miss the stream keeps serving at the degraded level (the last
    // good configuration) and only climbs back after recoveryStreak
    // healthy frames.
    for (int lvl = ladderLevel(); lvl < kLadderLevels; ++lvl) {
        PointCloud attempt_cloud = out.processed;
        if (lvl >= 2 && attempt_cloud.size() > opts.degradedPointBudget) {
            attempt_cloud = attempt_cloud.select(
                UniformIndexSampler::stridePositions(
                    attempt_cloud.size(), opts.degradedPointBudget));
        }

        bool missed = false;
        Result<PipelineResult> run = [&] {
            EDGEPC_TRACE_SCOPE("robust.attempt", "pipeline");
            return runAttempt(attempt_cloud, configForLevel(lvl),
                              missed);
        }();
        if (!run.ok()) {
            stats.countError(run.error());
            stats.bump(stats.retries);
            out.error = run.error();
            cleanStreak = 0;
            level.store(std::min(lvl + 1, kLadderLevels - 1),
                        std::memory_order_relaxed);
            continue;
        }

        out.result = run.take();
        out.ladderLevel = lvl;
        out.deadlineMissed = missed;
        out.processed = std::move(attempt_cloud);

        if (missed) {
            stats.bump(stats.deadlineMisses);
            cleanStreak = 0;
            level.store(std::min(lvl + 1, kLadderLevels - 1),
                        std::memory_order_relaxed);
        } else {
            noteHealthyFrame(out.sanitize.repaired());
        }

        if (lvl > 0) {
            out.status = FrameStatus::Degraded;
            stats.bump(stats.degraded);
        } else if (out.sanitize.repaired()) {
            out.status = FrameStatus::Repaired;
            stats.bump(stats.repaired);
        } else {
            out.status = FrameStatus::Ok;
            stats.bump(stats.ok);
        }
        return;
    }

    // Every ladder level failed: skip the frame.
    out.status = FrameStatus::Dropped;
    if (out.error.message.empty()) {
        out.error = makeError(ErrorCode::FrameRejected,
                              "runLadder: all ladder levels failed");
    }
    stats.bump(stats.dropped);
    cleanStreak = 0;
}

std::size_t
RobustPipeline::processStream(std::span<const PointCloud> frames,
                              const StreamSink &sink)
{
    EDGEPC_TRACE_SCOPE("robust.stream", "pipeline");
    streamRole.assertHeld();

    if (!resolvePipeline(model, frames.size())) {
        std::size_t served = 0;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            RobustFrameResult out = process(frames[i]);
            served += out.hasLogits() ? 1 : 0;
            sink(i, std::move(out));
        }
        return served;
    }

    if (stagedExec == nullptr) {
        stagedExec = std::make_unique<StagedPipeline>(model);
    }

    // Sanitize-accepted frames waiting on the executor, in submission
    // order (the executor completes FIFO, so front() is always the
    // next collect()).
    struct Pending
    {
        std::size_t index = 0;
        int lvl = 0;
        PointCloud processed;
        SanitizeReport sanitize;
        double sanitizeMs = 0.0;
    };
    std::deque<Pending> pending;
    // Frames that failed on the executor; retried down the ladder
    // only after the drain (the sequential model path may share
    // per-layer state with the staged workers).
    struct Retry
    {
        std::size_t index = 0;
        RobustFrameResult out;
    };
    std::vector<Retry> retries;
    std::size_t served = 0;

    auto collectOne = [&]() EDGEPC_REQUIRES(streamRole) {
        StagedFrameResult r = stagedExec->collect();
        Pending p = std::move(pending.front());
        pending.pop_front();

        RobustFrameResult out;
        out.sanitize = p.sanitize;
        out.processed = std::move(p.processed);
        out.frameMs = p.sanitizeMs + r.wallMs;
        if (r.failed) {
            // One failed attempt, same bookkeeping as the in-process
            // ladder; the serial retry continues from the escalated
            // level after the drain.
            stats.countError(r.error);
            stats.bump(stats.retries);
            out.error = r.error;
            cleanStreak = 0;
            level.store(std::min(p.lvl + 1, kLadderLevels - 1),
                        std::memory_order_relaxed);
            retries.push_back({p.index, std::move(out)});
            return;
        }

        out.result.stages = std::move(r.stages);
        out.result.logits = std::move(r.logits);
        out.result.busyMs = out.result.stages.grandTotal();
        out.result.wallMs = r.wallMs;
        out.result.endToEndMs = r.wallMs;
        out.result.sampleNeighborMs =
            out.result.stages.total(kStageSample) +
            out.result.stages.total(kStageNeighbor);
        out.result.pipelined = true;
        out.result.energyMj = energyModel.inferenceEnergyMj(
            out.result.stages, configForLevel(p.lvl));
        out.ladderLevel = p.lvl;

        // Watchdog over in-flight frames: submit-to-completion wall
        // time (queue wait included) against the soft deadline.
        out.deadlineMissed =
            opts.deadlineMs > 0.0 && out.frameMs > opts.deadlineMs;
        if (out.deadlineMissed) {
            stats.bump(stats.deadlineMisses);
            cleanStreak = 0;
            level.store(std::min(p.lvl + 1, kLadderLevels - 1),
                        std::memory_order_relaxed);
        } else {
            noteHealthyFrame(out.sanitize.repaired());
        }

        if (p.lvl > 0) {
            out.status = FrameStatus::Degraded;
            stats.bump(stats.degraded);
        } else if (out.sanitize.repaired()) {
            out.status = FrameStatus::Repaired;
            stats.bump(stats.repaired);
        } else {
            out.status = FrameStatus::Ok;
            stats.bump(stats.ok);
        }
        ++served;
        sink(p.index, std::move(out));
    };

    for (std::size_t i = 0; i < frames.size(); ++i) {
        Timer sanitize_wall;
        stats.bump(stats.frames);

        Pending p;
        p.index = i;
        p.processed = frames[i];
        Result<SanitizeReport> sanitized = [&] {
            EDGEPC_TRACE_SCOPE("robust.sanitize", "pipeline");
            return sanitizeCloud(p.processed, opts.sanitizer);
        }();
        if (!sanitized.ok()) {
            RobustFrameResult out;
            out.status = FrameStatus::Dropped;
            out.error = sanitized.error();
            out.processed = std::move(p.processed);
            out.frameMs = sanitize_wall.elapsedMs();
            stats.countError(out.error);
            stats.bump(stats.dropped);
            cleanStreak = 0;
            sink(i, std::move(out));
            continue;
        }
        p.sanitize = sanitized.value();
        p.lvl = ladderLevel();

        PointCloud submit_cloud = p.processed;
        if (p.lvl >= 2 &&
            submit_cloud.size() > opts.degradedPointBudget) {
            submit_cloud = submit_cloud.select(
                UniformIndexSampler::stridePositions(
                    submit_cloud.size(), opts.degradedPointBudget));
            p.processed = submit_cloud;
        }
        // Chaos/latency prolog fires on the caller thread inside the
        // frame's deadline window, as in runAttempt().
        if (opts.inferenceProlog) {
            opts.inferenceProlog();
        }
        p.sanitizeMs = sanitize_wall.elapsedMs();

        const EdgePcConfig lvl_cfg = configForLevel(p.lvl);
        while (!stagedExec->trySubmit(submit_cloud, lvl_cfg)) {
            collectOne();
        }
        pending.push_back(std::move(p));
    }

    // Drain: every accepted frame resolves before we return.
    while (stagedExec->inFlight() > 0) {
        collectOne();
    }

    // Serial ladder retries for executor-failed frames (the executor
    // is idle now, so the stateful sequential path is safe).
    for (Retry &retry : retries) {
        Timer retry_wall;
        runLadder(retry.out);
        retry.out.frameMs += retry_wall.elapsedMs();
        served += retry.out.hasLogits() ? 1 : 0;
        sink(retry.index, std::move(retry.out));
    }
    return served;
}

void
RobustPipeline::noteHealthyFrame(bool repaired)
{
    // A repaired frame succeeded but is not clean evidence that the
    // stream can climb the ladder, so by default it leaves the streak
    // unchanged (recoveryCountsRepaired restores the legacy policy).
    if (repaired && !opts.recoveryCountsRepaired) {
        return;
    }
    ++cleanStreak;
    if (cleanStreak >= opts.recoveryStreak &&
        level.load(std::memory_order_relaxed) > 0) {
        level.fetch_sub(1, std::memory_order_relaxed);
        cleanStreak = 0;
    }
}

void
RobustPipeline::recordExternalFrame(FrameStatus status, int lvl,
                                    bool deadline_missed, bool repaired,
                                    const EdgePcError *error)
{
    // Same single-caller contract as process() (see header).
    streamRole.assertHeld();
    stats.bump(stats.frames);
    if (error != nullptr) {
        stats.countError(*error);
    }
    switch (status) {
      case FrameStatus::Ok:
        stats.bump(stats.ok);
        break;
      case FrameStatus::Repaired:
        stats.bump(stats.repaired);
        break;
      case FrameStatus::Degraded:
        stats.bump(stats.degraded);
        break;
      case FrameStatus::Dropped:
        stats.bump(stats.dropped);
        cleanStreak = 0;
        return;
    }
    if (deadline_missed) {
        stats.bump(stats.deadlineMisses);
        cleanStreak = 0;
        level.store(std::min(lvl + 1, kLadderLevels - 1),
                    std::memory_order_relaxed);
        return;
    }
    noteHealthyFrame(repaired);
}

void
RobustPipeline::recordShedFrame(const EdgePcError &error)
{
    stats.bump(stats.frames);
    stats.bump(stats.dropped);
    stats.countError(error);
}

} // namespace edgepc
