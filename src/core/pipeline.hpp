/**
 * @file
 * The EdgePC inference pipeline: runs a model under a configuration,
 * measures per-stage latency, and reports energy via the EnergyModel.
 * This is the top-level public API — see examples/quickstart.cpp.
 */

#ifndef EDGEPC_CORE_PIPELINE_HPP
#define EDGEPC_CORE_PIPELINE_HPP

#include <memory>
#include <span>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/config.hpp"
#include "core/staged_pipeline.hpp"
#include "energy/energy_model.hpp"
#include "models/model.hpp"

namespace edgepc {

/** Result of one pipeline run. */
struct PipelineResult
{
    /** Per-stage latency totals (ms) across the processed frames.
        These are per-stage BUSY times: under the staged executor the
        stages overlap across frames, so their sum legitimately
        exceeds endToEndMs. */
    StageTimer stages;

    /** End-to-end latency in ms. Sequential runs: the summed stage
        busy time (legacy semantics). Pipelined runs: measured wall
        time of the whole stream — the number frames/sec divides. */
    double endToEndMs = 0.0;

    /** Summed per-stage busy time in ms (== stages.grandTotal()). */
    double busyMs = 0.0;

    /** Measured wall time of the whole run in ms (sequential runs
        measure it too, so the two accountings are comparable). */
    double wallMs = 0.0;

    /** Sample + neighbor-search BUSY time in ms (the paper's SMP+NS).
        Not a wall-time share once stages overlap — compare against
        busyMs, not endToEndMs, in pipelined runs. */
    double sampleNeighborMs = 0.0;

    /** Modeled energy in millijoules. */
    double energyMj = 0.0;

    /** True when the frames ran on the staged executor. */
    bool pipelined = false;

    /** Logits of the last processed frame. */
    nn::Matrix logits;
};

/** Runs a model under an EdgePcConfig with full instrumentation. */
class InferencePipeline
{
  public:
    /**
     * @param model Model to drive (not owned; must outlive the
     *        pipeline).
     * @param cfg Pipeline configuration.
     * @param energy Energy model (defaults to the Jetson profile).
     */
    InferencePipeline(PointCloudModel &model, EdgePcConfig cfg,
                      EnergyModel energy = EnergyModel());

    /** Process one frame. Recoverable data errors propagate as
        EdgePcException (see common/error.hpp). */
    PipelineResult run(const PointCloud &cloud);

    /**
     * Process one frame, returning recoverable failures (empty frame,
     * degenerate geometry, shape mismatch, …) as an error value
     * instead of an exception. The fault-tolerant serving layer
     * (RobustPipeline) is built on this entry point.
     */
    [[nodiscard]] Result<PipelineResult> tryRun(const PointCloud &cloud);

    /**
     * Process a batch of frames (totals accumulate). Multi-frame
     * batches route through the staged executor when
     * resolvePipeline() says so (EDGEPC_PIPELINE); single frames are
     * always sequential.
     */
    PipelineResult runBatch(std::span<const PointCloud> clouds);

    const EdgePcConfig &config() const { return cfg; }

    /** Swap the configuration between runs. */
    void setConfig(const EdgePcConfig &config) { cfg = config; }

  private:
    void applyGemmMode() const;
    PipelineResult runSequential(std::span<const PointCloud> clouds);
    PipelineResult runStaged(std::span<const PointCloud> clouds);

    PointCloudModel &model;
    EdgePcConfig cfg;
    EnergyModel energyModel;
    /** Lazily created staged executor (kept across runs so its stage
        workers and frame slots are reused). */
    std::unique_ptr<StagedPipeline> staged;
};

} // namespace edgepc

#endif // EDGEPC_CORE_PIPELINE_HPP
