/**
 * @file
 * The EdgePC inference pipeline: runs a model under a configuration,
 * measures per-stage latency, and reports energy via the EnergyModel.
 * This is the top-level public API — see examples/quickstart.cpp.
 */

#ifndef EDGEPC_CORE_PIPELINE_HPP
#define EDGEPC_CORE_PIPELINE_HPP

#include <span>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/config.hpp"
#include "energy/energy_model.hpp"
#include "models/model.hpp"

namespace edgepc {

/** Result of one pipeline run. */
struct PipelineResult
{
    /** Per-stage latency totals (ms) across the processed frames. */
    StageTimer stages;

    /** End-to-end latency in ms. */
    double endToEndMs = 0.0;

    /** Sample + neighbor-search latency in ms (the paper's SMP+NS). */
    double sampleNeighborMs = 0.0;

    /** Modeled energy in millijoules. */
    double energyMj = 0.0;

    /** Logits of the last processed frame. */
    nn::Matrix logits;
};

/** Runs a model under an EdgePcConfig with full instrumentation. */
class InferencePipeline
{
  public:
    /**
     * @param model Model to drive (not owned; must outlive the
     *        pipeline).
     * @param cfg Pipeline configuration.
     * @param energy Energy model (defaults to the Jetson profile).
     */
    InferencePipeline(PointCloudModel &model, EdgePcConfig cfg,
                      EnergyModel energy = EnergyModel());

    /** Process one frame. Recoverable data errors propagate as
        EdgePcException (see common/error.hpp). */
    PipelineResult run(const PointCloud &cloud);

    /**
     * Process one frame, returning recoverable failures (empty frame,
     * degenerate geometry, shape mismatch, …) as an error value
     * instead of an exception. The fault-tolerant serving layer
     * (RobustPipeline) is built on this entry point.
     */
    [[nodiscard]] Result<PipelineResult> tryRun(const PointCloud &cloud);

    /** Process a batch of frames (totals accumulate). */
    PipelineResult runBatch(std::span<const PointCloud> clouds);

    const EdgePcConfig &config() const { return cfg; }

    /** Swap the configuration between runs. */
    void setConfig(const EdgePcConfig &config) { cfg = config; }

  private:
    void applyGemmMode() const;

    PointCloudModel &model;
    EdgePcConfig cfg;
    EnergyModel energyModel;
};

} // namespace edgepc

#endif // EDGEPC_CORE_PIPELINE_HPP
