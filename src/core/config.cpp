#include "core/config.hpp"

namespace edgepc {

std::string
variantName(PipelineVariant variant)
{
    switch (variant) {
      case PipelineVariant::Baseline:
        return "baseline";
      case PipelineVariant::SN:
        return "S+N";
      case PipelineVariant::SNF:
        return "S+N+F";
    }
    return "?";
}

EdgePcConfig
EdgePcConfig::baseline()
{
    return EdgePcConfig{};
}

EdgePcConfig
EdgePcConfig::sn()
{
    EdgePcConfig cfg;
    cfg.variant = PipelineVariant::SN;
    return cfg;
}

EdgePcConfig
EdgePcConfig::snf()
{
    EdgePcConfig cfg;
    cfg.variant = PipelineVariant::SNF;
    return cfg;
}

} // namespace edgepc
