#include "core/workloads.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "datasets/scenes.hpp"
#include "datasets/parts.hpp"
#include "datasets/shapes.hpp"
#include "models/dgcnn.hpp"
#include "models/pointnetpp.hpp"

namespace edgepc {

const std::vector<WorkloadSpec> &
workloadTable()
{
    static const std::vector<WorkloadSpec> table = {
        {"W1", WorkloadModel::PointNetPPSeg, "PointNet++(s)", "S3DIS*",
         8192, 32, "semantic segmentation", 5},
        {"W2", WorkloadModel::PointNetPPSeg, "PointNet++(s)", "ScanNet*",
         8192, 14, "semantic segmentation", 5},
        {"W3", WorkloadModel::DgcnnCls, "DGCNN(c)", "ModelNet40*", 1024,
         32, "classification", 8},
        {"W4", WorkloadModel::DgcnnPart, "DGCNN(p)", "ShapeNet*", 2048,
         32, "part segmentation", 8},
        {"W5", WorkloadModel::DgcnnSeg, "DGCNN(s)", "S3DIS*", 4096, 32,
         "semantic segmentation", 5},
        {"W6", WorkloadModel::DgcnnSeg, "DGCNN(s)", "ScanNet*", 8192, 32,
         "semantic segmentation", 5},
    };
    return table;
}

const WorkloadSpec &
workload(const std::string &id)
{
    for (const WorkloadSpec &spec : workloadTable()) {
        if (spec.id == id) {
            return spec;
        }
    }
    fatal("workload: unknown id '%s'", id.c_str());
}

std::size_t
workloadPoints(const WorkloadSpec &spec, std::size_t point_scale)
{
    return std::max<std::size_t>(64, spec.points /
                                         std::max<std::size_t>(
                                             1, point_scale));
}

std::unique_ptr<PointCloudModel>
makeWorkloadModel(const WorkloadSpec &spec, std::size_t point_scale,
                  std::uint64_t seed)
{
    const std::size_t points = workloadPoints(spec, point_scale);
    switch (spec.model) {
      case WorkloadModel::PointNetPPSeg:
        return std::make_unique<PointNetPP>(
            PointNetPPConfig::semanticSegmentation(points,
                                                   spec.numClasses),
            seed);
      case WorkloadModel::DgcnnCls:
        return std::make_unique<Dgcnn>(
            DgcnnConfig::classification(spec.numClasses), seed);
      case WorkloadModel::DgcnnPart:
        return std::make_unique<Dgcnn>(
            DgcnnConfig::partSegmentation(spec.numClasses), seed);
      case WorkloadModel::DgcnnSeg:
        return std::make_unique<Dgcnn>(
            DgcnnConfig::semanticSegmentation(spec.numClasses), seed);
    }
    fatal("makeWorkloadModel: invalid model enum");
}

PointCloud
makeWorkloadCloud(const WorkloadSpec &spec, std::size_t point_scale,
                  std::uint64_t seed)
{
    const std::size_t points = workloadPoints(spec, point_scale);
    Rng rng(seed);
    switch (spec.model) {
      case WorkloadModel::PointNetPPSeg:
      case WorkloadModel::DgcnnSeg: {
        SceneOptions options;
        options.points = points;
        return makeScene(options, rng);
      }
      case WorkloadModel::DgcnnCls: {
        ShapeOptions options;
        options.points = points;
        return makeShape(ShapeClass::Torus, options, rng);
      }
      case WorkloadModel::DgcnnPart: {
        PartOptions options;
        options.points = points;
        return makePartObject(PartCategory::Rocket, options, rng);
      }
    }
    fatal("makeWorkloadCloud: invalid model enum");
}

} // namespace edgepc
