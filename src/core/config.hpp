/**
 * @file
 * EdgePC pipeline configuration: which of the paper's three evaluated
 * setups runs (Sec 6.1.3) and every approximation knob of Sec 5.
 */

#ifndef EDGEPC_CORE_CONFIG_HPP
#define EDGEPC_CORE_CONFIG_HPP

#include <cstddef>
#include <string>

#include "geometry/morton.hpp"

namespace edgepc {

/** Canonical stage names used by the StageTimer instrumentation. */
inline constexpr const char *kStageSample = "sample";
inline constexpr const char *kStageNeighbor = "neighbor";
inline constexpr const char *kStageGroup = "group";
inline constexpr const char *kStageFeature = "feature";

/** The three evaluated pipeline variants (Sec 6.1.3). */
enum class PipelineVariant
{
    /** SOTA FPS + ball query / k-NN, scalar feature compute. */
    Baseline,
    /** Morton-approximate sample and neighbor search. */
    SN,
    /** S+N plus the Tensor-core feature-compute path. */
    SNF,
};

/** Name of a variant for reports ("baseline", "S+N", "S+N+F"). */
std::string variantName(PipelineVariant variant);

/**
 * Full configuration of an EdgePC pipeline.
 *
 * Defaults mirror the paper's chosen design point: 32-bit Morton
 * codes, approximation applied to the first sampling layer / last
 * up-sampling layer / first neighbor-search layer only, and reuse
 * distance 1 for the feature-space search layers of DGCNN.
 */
struct EdgePcConfig
{
    /** Which pipeline variant runs. */
    PipelineVariant variant = PipelineVariant::Baseline;

    /** Total Morton code bits a (Sec 5.1.3; 32 in the paper). */
    int codeBits = MortonEncoder::kDefaultCodeBits;

    /**
     * Neighbor search window W (Sec 5.2.2). 0 means W = k (pure index
     * selection); larger windows trade compute for a lower
     * false-neighbor ratio (Fig 15a).
     */
    std::size_t searchWindow = 0;

    /**
     * Number of leading SA down-sampling layers (and matching trailing
     * FP up-sampling layers) replaced by the Morton sampler (Fig 9 /
     * Fig 15b sweeps this).
     */
    int optimizedSampleLayers = 1;

    /** Number of leading neighbor-search layers replaced (Fig 11). */
    int optimizedNeighborLayers = 1;

    /**
     * Neighbor-index reuse distance for feature-space search layers
     * (DGCNN modules >= 2, Sec 5.2.3). 0 disables reuse.
     */
    int reuseDistance = 1;

    /** True for the variants that run the approximations. */
    bool approximate() const { return variant != PipelineVariant::Baseline; }

    /** True when feature compute should use the fast GEMM path. */
    bool useTensorCores() const { return variant == PipelineVariant::SNF; }

    /** Factory: the SOTA baseline configuration. */
    static EdgePcConfig baseline();

    /** Factory: the paper's S+N configuration. */
    static EdgePcConfig sn();

    /** Factory: the paper's S+N+F configuration. */
    static EdgePcConfig snf();
};

} // namespace edgepc

#endif // EDGEPC_CORE_CONFIG_HPP
