/**
 * @file
 * Inter-frame staged-dataflow executor (DESIGN.md §14).
 *
 * Frame processing splits at the existing stage seams — kStageSample
 * (structurize + sample), kStageNeighbor (window/ball search),
 * kStageGroup + kStageFeature (gather + GEMM) — and each stage gets a
 * dedicated worker thread. Bounded queues (common/bounded_queue.hpp)
 * hand a recycled per-frame context from stage to stage, so frame
 * t+1's structurization overlaps frame t's neighbor search and GEMM:
 * the HgPCN heterogeneous pipeline mapped onto CPU thread groups. The
 * win is end-to-end frames/sec, not per-stage latency — a single
 * frame still crosses every stage serially.
 *
 * Dispatch mirrors EDGEPC_SIMD / EDGEPC_GEMM: EDGEPC_PIPELINE=on|off|
 * auto (default auto = staged when the model has a real stage split
 * and the host has cores to overlap on), echoed as config.pipeline in
 * the BENCH json. InferencePipeline::runBatch, RobustPipeline::
 * processStream and the ServingEngine dispatch path all route through
 * resolvePipeline().
 */

#ifndef EDGEPC_CORE_STAGED_PIPELINE_HPP
#define EDGEPC_CORE_STAGED_PIPELINE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "common/timer.hpp"
#include "core/config.hpp"
#include "models/model.hpp"

namespace edgepc {

/** EDGEPC_PIPELINE dispatch mode. */
enum class PipelineMode
{
    Off,
    On,
    Auto,
};

/** Current mode (EDGEPC_PIPELINE at startup unless overridden). */
PipelineMode pipelineMode();

/** Override the process-wide mode (tests / benches). */
void setPipelineMode(PipelineMode mode);

/** "on" / "off" / "auto" — echoed as config.pipeline in BENCH json. */
const char *pipelineModeName();

/** Name an explicit mode value (banner/report printing). */
const char *pipelineModeName(PipelineMode mode);

/**
 * Should a @p frames -frame run of @p model take the staged executor?
 * Off: never. On: whenever there is anything to overlap (>= 2
 * frames). Auto: additionally requires a model with a real stage
 * split and >= 4 hardware threads (3 stage workers + kernel
 * parallelism) — on smaller hosts the stage hops cost more than the
 * overlap returns.
 */
bool resolvePipeline(const PointCloudModel &model, std::size_t frames);

/** One completed frame out of the staged executor. */
struct StagedFrameResult
{
    /** Submission ordinal (results arrive in submission order). */
    std::uint64_t id = 0;

    nn::Matrix logits;

    /** Per-stage busy time of this frame (ms). */
    StageTimer stages;

    /** Submit-to-completion wall time (ms) — includes queue waits. */
    double wallMs = 0.0;

    /** True when a stage raised; error holds the cause and logits are
        empty. Failed frames still flow through the remaining queues so
        ordering and exactly-once accounting hold. */
    bool failed = false;
    EdgePcError error;
};

/**
 * The staged executor: three dedicated stage workers connected by
 * bounded queues over a fixed pool of recycled frame slots.
 *
 * Threading contract: trySubmit() and collect() must be called by one
 * logical caller (callerRole); the stage workers are internal. The
 * model is driven concurrently ONLY through its staged* entry points,
 * which by contract touch frame-local state — the feature stage,
 * where models may fall back to whole-frame infer(), runs on exactly
 * one worker. Destroying the executor drains in-flight frames.
 */
class StagedPipeline
{
  public:
    /** Default frames-in-flight bound (= frame-slot pool size). */
    static constexpr std::size_t kDefaultDepth = 3;

    StagedPipeline(PointCloudModel &model,
                   std::size_t depth = kDefaultDepth);
    ~StagedPipeline();

    StagedPipeline(const StagedPipeline &) = delete;
    StagedPipeline &operator=(const StagedPipeline &) = delete;

    /**
     * Submit one frame under @p cfg. Returns false when every slot is
     * in flight — collect() a result first (this is the backpressure
     * that bounds memory with slow consumers).
     */
    [[nodiscard]] bool trySubmit(const PointCloud &cloud,
                                 const EdgePcConfig &cfg);

    /**
     * Block for the next completed frame, in submission order. Must
     * not be called with nothing in flight (caller owns both ends, so
     * it would deadlock); inFlight() tells.
     */
    StagedFrameResult collect();

    /** Frames submitted and not yet collected. */
    std::size_t inFlight() const
    {
        return inFlightCount.load(std::memory_order_relaxed);
    }

    /** Frames-in-flight bound. */
    std::size_t depth() const { return slots.size(); }

    /** Single-caller contract for trySubmit()/collect(). */
    ThreadRole callerRole;

  private:
    struct Slot
    {
        std::uint64_t id = 0;
        PointCloud cloud;
        EdgePcConfig cfg;
        std::unique_ptr<StagedFrame> state;
        StageTimer stages;
        std::chrono::steady_clock::time_point submitTime;
        nn::Matrix logits;
        bool failed = false;
        EdgePcError error;
    };

    void sampleWorker();
    void neighborWorker();
    void featureWorker();

    PointCloudModel &model;
    std::vector<std::unique_ptr<Slot>> slots;

    // Stage graph: free -> sample -> neighbor -> feature -> done ->
    // (recycled to free). Every queue holds bare slot pointers; the
    // queue mutex hand-off is the happens-before edge between stage
    // workers, so slots carry no atomics.
    BoundedQueue<Slot *> freeQ;
    BoundedQueue<Slot *> sampleQ;
    BoundedQueue<Slot *> neighborQ;
    BoundedQueue<Slot *> featureQ;
    BoundedQueue<Slot *> doneQ;

    std::atomic<std::size_t> inFlightCount{0};
    std::uint64_t nextId EDGEPC_GUARDED_BY(callerRole) = 0;

    std::thread sampleThread;
    std::thread neighborThread;
    std::thread featureThread;
};

} // namespace edgepc

#endif // EDGEPC_CORE_STAGED_PIPELINE_HPP
