#include "core/fault_injector.hpp"

#include <algorithm>
#include <limits>

#include "common/timer.hpp"

namespace edgepc {

FaultInjector::FaultInjector(FaultInjectorConfig cfg_)
    : cfg(cfg_), rng(cfg_.seed)
{
}

void
FaultInjector::sprayNan(PointCloud &frame)
{
    const std::size_t hits = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.nanFraction *
                                    static_cast<double>(frame.size())));
    for (std::size_t h = 0; h < hits; ++h) {
        const std::size_t i = rng.nextBelow(frame.size());
        Vec3 &p = frame.positions()[i];
        // Alternate between quiet NaN and +/-Inf returns.
        switch (rng.nextBelow(3)) {
          case 0:
            p.x = std::numeric_limits<float>::quiet_NaN();
            break;
          case 1:
            p.y = std::numeric_limits<float>::infinity();
            break;
          default:
            p.z = -std::numeric_limits<float>::infinity();
            break;
        }
    }
}

void
FaultInjector::truncate(PointCloud &frame)
{
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.truncateKeep *
                                    static_cast<double>(frame.size())));
    if (keep >= frame.size()) {
        return;
    }
    std::vector<std::uint32_t> prefix(keep);
    for (std::size_t i = 0; i < keep; ++i) {
        prefix[i] = static_cast<std::uint32_t>(i);
    }
    frame = frame.select(prefix);
}

void
FaultInjector::duplicate(PointCloud &frame)
{
    const std::size_t n = frame.size();
    const std::size_t extra = static_cast<std::size_t>(
        cfg.duplicateFraction * static_cast<double>(n));
    std::vector<std::uint32_t> indices(n + extra);
    for (std::size_t i = 0; i < n; ++i) {
        indices[i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 0; i < extra; ++i) {
        indices[n + i] = static_cast<std::uint32_t>(rng.nextBelow(n));
    }
    frame = frame.select(indices);
}

InjectionReport
FaultInjector::corrupt(PointCloud &frame)
{
    InjectionReport report;
    // Draw every coin even for empty frames so the fault schedule for
    // frame f depends only on the seed and f, not on frame contents.
    const bool want_nan = rng.nextDouble() < cfg.nanRate;
    const bool want_trunc = rng.nextDouble() < cfg.truncateRate;
    const bool want_dup = rng.nextDouble() < cfg.duplicateRate;
    spikeArmed = rng.nextDouble() < cfg.latencySpikeRate;
    report.latencySpike = spikeArmed;

    if (!frame.empty()) {
        if (want_trunc) {
            truncate(frame);
            report.truncated = true;
        }
        if (want_dup) {
            duplicate(frame);
            report.duplicated = true;
        }
        if (want_nan) {
            sprayNan(frame);
            report.nanSpray = true;
        }
    }
    if (report.any()) {
        ++corrupted;
    }
    return report;
}

std::function<void()>
FaultInjector::latencyHook()
{
    return [this] {
        if (!spikeArmed) {
            return;
        }
        // Busy-wait: a sleeping thread would also work, but spinning
        // models a compute spike (e.g. a pathological kd-tree build)
        // more faithfully for the energy model.
        Timer t;
        while (t.elapsedMs() < cfg.latencySpikeMs) {
        }
    };
}

} // namespace edgepc
