/**
 * @file
 * The PointCloud container: structure-of-arrays storage for point
 * positions, optional per-point feature channels and optional integer
 * labels (class / part / semantic ids).
 */

#ifndef EDGEPC_POINTCLOUD_POINT_CLOUD_HPP
#define EDGEPC_POINTCLOUD_POINT_CLOUD_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/aabb.hpp"
#include "geometry/vec3.hpp"

namespace edgepc {

/**
 * A point cloud frame.
 *
 * Positions are always present; features are a row-major N x C float
 * array (C may be 0); labels are optional per-point int32 ids. All
 * mutating operations keep the three arrays consistent.
 */
class PointCloud
{
  public:
    PointCloud() = default;

    /** Cloud with positions only. */
    explicit PointCloud(std::vector<Vec3> positions);

    /** Cloud with positions and a per-point feature matrix. */
    PointCloud(std::vector<Vec3> positions, std::vector<float> features,
               std::size_t feature_dim);

    /** Number of points N. */
    std::size_t size() const { return pts.size(); }

    /** True if the cloud holds no points. */
    bool empty() const { return pts.empty(); }

    /** Feature dimensionality C (0 when no features are attached). */
    std::size_t featureDim() const { return featDim; }

    /** True if per-point labels are attached. */
    bool hasLabels() const { return lbls.size() == pts.size(); }

    const std::vector<Vec3> &positions() const { return pts; }
    std::vector<Vec3> &positions() { return pts; }

    const std::vector<float> &features() const { return feats; }
    std::vector<float> &features() { return feats; }

    const std::vector<std::int32_t> &labels() const { return lbls; }
    std::vector<std::int32_t> &labels() { return lbls; }

    /** Position of point @p i. */
    const Vec3 &position(std::size_t i) const { return pts[i]; }

    /** Feature row of point @p i (span of featureDim() floats). */
    std::span<const float> feature(std::size_t i) const;

    /** Append a point (feature row must match featureDim()). */
    void addPoint(const Vec3 &p, std::span<const float> feature = {},
                  std::int32_t label = -1);

    /** Attach a feature matrix; size must be N * feature_dim. */
    void setFeatures(std::vector<float> features, std::size_t feature_dim);

    /** Attach labels; size must equal N. */
    void setLabels(std::vector<std::int32_t> labels);

    /** Bounding box of the positions. */
    Aabb bounds() const;

    /**
     * Return a new cloud containing the points selected by @p indices,
     * in that order (features and labels follow). This is both the
     * "gather sampled points" and the "reorder by Morton" primitive.
     */
    PointCloud select(std::span<const std::uint32_t> indices) const;

    /** Reorder in place by @p permutation (must be a permutation). */
    void permute(std::span<const std::uint32_t> permutation);

    /**
     * Translate/scale positions so the cloud is centered at the origin
     * with maximum norm 1 (the conventional PC CNN normalization).
     */
    void normalizeToUnitSphere();

    /** Scale/translate positions into the unit cube [0,1]^3. */
    void normalizeToUnitCube();

  private:
    std::vector<Vec3> pts;
    std::vector<float> feats;
    std::vector<std::int32_t> lbls;
    std::size_t featDim = 0;
};

} // namespace edgepc

#endif // EDGEPC_POINTCLOUD_POINT_CLOUD_HPP
