#include "pointcloud/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "geometry/voxel_grid.hpp"

namespace edgepc {

double
orderingLocality(std::span<const Vec3> points,
                 std::span<const std::uint32_t> order)
{
    if (order.size() < 2) {
        return 0.0;
    }
    double sum = 0.0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        sum += distance(points[order[i - 1]], points[order[i]]);
    }
    return sum / static_cast<double>(order.size() - 1);
}

double
structuredness(std::span<const Vec3> points,
               std::span<const std::uint32_t> order, std::uint64_t seed)
{
    if (points.size() < 2) {
        return 1.0;
    }
    // Estimate the expected distance between two random points by
    // sampling pairs; this is the locality of a random ordering.
    Rng rng(seed);
    const std::size_t trials =
        std::min<std::size_t>(4096, points.size() * 4);
    double random_expectation = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
        const auto a = rng.nextBelow(points.size());
        const auto b = rng.nextBelow(points.size());
        random_expectation += distance(points[a], points[b]);
    }
    random_expectation /= static_cast<double>(trials);
    if (random_expectation <= 0.0) {
        return 1.0;
    }
    const double score =
        1.0 - orderingLocality(points, order) / random_expectation;
    return std::max(0.0, score);
}

namespace {

/** Per-point nearest-sample distances (parallel over points). */
std::vector<double>
nearestSampleDistances(std::span<const Vec3> points,
                       std::span<const Vec3> samples)
{
    std::vector<double> dist(points.size(),
                             std::numeric_limits<double>::infinity());
    if (samples.empty()) {
        return dist;
    }
    parallelFor(0, points.size(), [&](std::size_t i) {
        float best = std::numeric_limits<float>::max();
        for (const Vec3 &s : samples) {
            best = std::min(best, squaredDistance(points[i], s));
        }
        dist[i] = std::sqrt(static_cast<double>(best));
    });
    return dist;
}

} // namespace

double
coverageRadius(std::span<const Vec3> points, std::span<const Vec3> samples)
{
    const auto dist = nearestSampleDistances(points, samples);
    double worst = 0.0;
    for (const double d : dist) {
        worst = std::max(worst, d);
    }
    return worst;
}

double
meanCoverageDistance(std::span<const Vec3> points,
                     std::span<const Vec3> samples)
{
    if (points.empty()) {
        return 0.0;
    }
    const auto dist = nearestSampleDistances(points, samples);
    double sum = 0.0;
    for (const double d : dist) {
        sum += d;
    }
    return sum / static_cast<double>(points.size());
}

double
voxelCoverage(std::span<const Vec3> points, std::span<const Vec3> samples,
              float cell)
{
    if (points.empty()) {
        return 0.0;
    }
    const VoxelGrid cloud_grid(points, cell);
    if (cloud_grid.occupiedVoxels() == 0) {
        return 0.0;
    }
    // Count occupied voxels of the cloud that contain >= 1 sample by
    // probing the cloud grid with each sample and marking hits.
    std::vector<bool> covered(points.size(), false);
    std::size_t covered_voxels = 0;
    for (const Vec3 &s : samples) {
        const auto members = cloud_grid.voxelPoints(s);
        if (members.empty()) {
            continue;
        }
        // Use the first member point as the voxel's marker.
        if (!covered[members[0]]) {
            covered[members[0]] = true;
            ++covered_voxels;
        }
    }
    return static_cast<double>(covered_voxels) /
           static_cast<double>(cloud_grid.occupiedVoxels());
}

} // namespace edgepc
