/**
 * @file
 * Structure-of-arrays view of point positions for the SIMD batch
 * kernels (geometry/simd_distance.hpp).
 *
 * The AoS std::vector<Vec3> layout the library passes around is what
 * the models and IO want, but the hot kernels stream x, y and z
 * independently: a PointsSoA is built once per cloud (or once per
 * Morton structurization, using the gathered constructor) and then
 * every FPS relaxation / neighbor scan reads full 8-lane vectors
 * instead of strided Vec3 members. Arrays are 32-byte aligned and
 * padded to a whole number of lanes; padding coordinates are filled
 * with a huge sentinel so a kernel that deliberately runs over the
 * padded range can never pick a padding lane as a nearest neighbor.
 *
 * Storage is either owned (aligned heap block) or borrowed from a
 * ScratchArena — the arena flavor is what the per-call hot paths use
 * so steady-state queries stay allocation-free.
 */

#ifndef EDGEPC_POINTCLOUD_POINTS_SOA_HPP
#define EDGEPC_POINTCLOUD_POINTS_SOA_HPP

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/scratch_arena.hpp"
#include "geometry/vec3.hpp"

namespace edgepc {

/** SoA (x[], y[], z[]) view of a point set. */
class PointsSoA
{
  public:
    /** Sentinel coordinate stored in padding lanes. */
    static constexpr float kPadCoord = 1e30f;

    PointsSoA() = default;
    ~PointsSoA();

    PointsSoA(const PointsSoA &) = delete;
    PointsSoA &operator=(const PointsSoA &) = delete;
    PointsSoA(PointsSoA &&other) noexcept;
    PointsSoA &operator=(PointsSoA &&other) noexcept;

    /** Owned storage, identity order: lane i holds points[i]. */
    explicit PointsSoA(std::span<const Vec3> points);

    /** Owned storage, gathered: lane i holds points[order[i]]. */
    PointsSoA(std::span<const Vec3> points,
              std::span<const std::uint32_t> order);

    /**
     * Arena-backed storage (no heap allocation): valid only while the
     * caller's ScratchArena frame is open.
     */
    PointsSoA(std::span<const Vec3> points, ScratchArena &arena);

    /** Arena-backed, gathered by @p order. */
    PointsSoA(std::span<const Vec3> points,
              std::span<const std::uint32_t> order, ScratchArena &arena);

    /** Number of real points N. */
    std::size_t size() const { return n; }

    /** N rounded up to a whole number of SIMD lanes. */
    std::size_t paddedSize() const { return padded; }

    const float *xs() const { return x; }
    const float *ys() const { return y; }
    const float *zs() const { return z; }

    /** Point at lane @p i (i < size()). */
    Vec3 at(std::size_t i) const { return {x[i], y[i], z[i]}; }

  private:
    static void checkOrder(std::span<const Vec3> points,
                           std::span<const std::uint32_t> order);
    void fill(std::span<const Vec3> points,
              std::span<const std::uint32_t> order);
    void bind(float *base);

    float *x = nullptr;
    float *y = nullptr;
    float *z = nullptr;
    float *owned = nullptr; ///< Aligned heap block when not arena-backed.
    std::size_t n = 0;
    std::size_t padded = 0;
};

/**
 * s16 fixed-point companion view of a PointsSoA (DESIGN.md §15).
 *
 * Coordinates snap to a per-cloud uniform grid — scale() world units
 * per step, centered on the bounding box, spanning ±simd::kFixedMaxQ —
 * stored in the interleaved [x,y] / [z,0] lane layout that
 * simd::batchSqDistFixed consumes with _mm256_madd_epi16. Arena-backed
 * only (built per search call, no ownership, freely copyable); valid()
 * is false when the cloud cannot quantize (empty cloud or non-finite
 * bounds), in which case callers must keep the exact fp32 kernels.
 */
class PointsFixed
{
  public:
    PointsFixed() = default;

    /** Quantized view of @p soa on @p arena (one bounds scan). */
    PointsFixed(const PointsSoA &soa, ScratchArena &arena);

    /** False when the cloud cannot be quantized (fp32 fallback). */
    bool valid() const { return ok; }

    /** World units per quantization step (0 when !valid()). */
    float scale() const { return s; }

    /** Interleaved candidate lanes [x0,y0, x1,y1, ...]. */
    const std::int16_t *xy() const { return qxy; }

    /** Interleaved candidate lanes [z0,0, z1,0, ...]. */
    const std::int16_t *zw() const { return qzw; }

    /** Number of real points N. */
    std::size_t size() const { return n; }

    /** Quantize a query point (clamped to ±simd::kFixedMaxQueryQ). */
    void quantizeQuery(const Vec3 &q, std::int16_t &qx, std::int16_t &qy,
                       std::int16_t &qz) const;

    /**
     * World-space radius -> squared in-ball threshold in quantized
     * units (compared against the exact integer distances the fixed
     * kernels emit as floats).
     */
    float radiusSqQ(float r) const
    {
        const float rq = r * inv;
        return rq * rq;
    }

  private:
    std::int16_t *qxy = nullptr;
    std::int16_t *qzw = nullptr;
    Vec3 c{};
    float s = 0.0f;
    float inv = 0.0f;
    std::size_t n = 0;
    bool ok = false;
};

} // namespace edgepc

#endif // EDGEPC_POINTCLOUD_POINTS_SOA_HPP
