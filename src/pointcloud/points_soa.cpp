#include "pointcloud/points_soa.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <utility>

#include "common/error.hpp"
#include "geometry/simd_distance.hpp"

namespace edgepc {

namespace {

std::size_t
paddedCount(std::size_t n)
{
    return simd::paddedSize(n);
}

} // namespace

PointsSoA::~PointsSoA()
{
    ::operator delete[](owned, std::align_val_t{ScratchArena::kAlignment});
}

PointsSoA::PointsSoA(PointsSoA &&other) noexcept
    : x(other.x), y(other.y), z(other.z), owned(other.owned), n(other.n),
      padded(other.padded)
{
    other.x = other.y = other.z = other.owned = nullptr;
    other.n = other.padded = 0;
}

PointsSoA &
PointsSoA::operator=(PointsSoA &&other) noexcept
{
    if (this != &other) {
        ::operator delete[](owned,
                            std::align_val_t{ScratchArena::kAlignment});
        x = other.x;
        y = other.y;
        z = other.z;
        owned = other.owned;
        n = other.n;
        padded = other.padded;
        other.x = other.y = other.z = other.owned = nullptr;
        other.n = other.padded = 0;
    }
    return *this;
}

PointsSoA::PointsSoA(std::span<const Vec3> points)
    : PointsSoA(points, std::span<const std::uint32_t>{})
{
}

PointsSoA::PointsSoA(std::span<const Vec3> points,
                     std::span<const std::uint32_t> order)
{
    checkOrder(points, order);
    n = points.size();
    padded = paddedCount(n);
    if (padded == 0) {
        return;
    }
    owned = static_cast<float *>(::operator new[](
        3 * padded * sizeof(float),
        std::align_val_t{ScratchArena::kAlignment}));
    bind(owned);
    fill(points, order);
}

PointsSoA::PointsSoA(std::span<const Vec3> points, ScratchArena &arena)
    : PointsSoA(points, std::span<const std::uint32_t>{}, arena)
{
}

PointsSoA::PointsSoA(std::span<const Vec3> points,
                     std::span<const std::uint32_t> order,
                     ScratchArena &arena)
{
    checkOrder(points, order);
    n = points.size();
    padded = paddedCount(n);
    if (padded == 0) {
        return;
    }
    bind(arena.alloc<float>(3 * padded).data());
    fill(points, order);
}

void
PointsSoA::checkOrder(std::span<const Vec3> points,
                      std::span<const std::uint32_t> order)
{
    if (!order.empty() && order.size() != points.size()) {
        raise(ErrorCode::InvalidArgument,
              "PointsSoA: order size %zu != point count %zu",
              order.size(), points.size());
    }
}

void
PointsSoA::bind(float *base)
{
    x = base;
    y = base + padded;
    z = base + 2 * padded;
}

void
PointsSoA::fill(std::span<const Vec3> points,
                std::span<const std::uint32_t> order)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 &p = order.empty() ? points[i] : points[order[i]];
        x[i] = p.x;
        y[i] = p.y;
        z[i] = p.z;
    }
    for (std::size_t i = n; i < padded; ++i) {
        x[i] = kPadCoord;
        y[i] = kPadCoord;
        z[i] = kPadCoord;
    }
}

namespace {

/** Snap one world coordinate to a quantized lane, clamped to ±limit. */
std::int16_t
snapCoord(float v, float center, float inv_scale, std::int32_t limit)
{
    const long q = std::lrintf((v - center) * inv_scale);
    return static_cast<std::int16_t>(
        std::clamp<long>(q, -limit, limit));
}

} // namespace

PointsFixed::PointsFixed(const PointsSoA &soa, ScratchArena &arena)
{
    n = soa.size();
    if (n == 0) {
        return;
    }
    float lo_x = soa.xs()[0], hi_x = lo_x;
    float lo_y = soa.ys()[0], hi_y = lo_y;
    float lo_z = soa.zs()[0], hi_z = lo_z;
    for (std::size_t i = 1; i < n; ++i) {
        lo_x = std::min(lo_x, soa.xs()[i]);
        hi_x = std::max(hi_x, soa.xs()[i]);
        lo_y = std::min(lo_y, soa.ys()[i]);
        hi_y = std::max(hi_y, soa.ys()[i]);
        lo_z = std::min(lo_z, soa.zs()[i]);
        hi_z = std::max(hi_z, soa.zs()[i]);
    }
    const float half = std::max({(hi_x - lo_x) * 0.5f,
                                 (hi_y - lo_y) * 0.5f,
                                 (hi_z - lo_z) * 0.5f});
    if (!std::isfinite(half) || !(half > 0.0f)) {
        // Degenerate (single point / coincident cloud) or non-finite
        // bounds: the grid has no resolution, keep fp32.
        return;
    }
    c = {(lo_x + hi_x) * 0.5f, (lo_y + hi_y) * 0.5f,
         (lo_z + hi_z) * 0.5f};
    s = half / static_cast<float>(simd::kFixedMaxQ);
    inv = 1.0f / s;
    if (!std::isfinite(inv)) {
        s = 0.0f;
        return;
    }

    const std::size_t padded = soa.paddedSize();
    auto block = arena.alloc<std::int16_t>(4 * padded);
    qxy = block.data();
    qzw = block.data() + 2 * padded;
    for (std::size_t i = 0; i < n; ++i) {
        qxy[2 * i] = snapCoord(soa.xs()[i], c.x, inv, simd::kFixedMaxQ);
        qxy[2 * i + 1] =
            snapCoord(soa.ys()[i], c.y, inv, simd::kFixedMaxQ);
        qzw[2 * i] = snapCoord(soa.zs()[i], c.z, inv, simd::kFixedMaxQ);
        qzw[2 * i + 1] = 0;
    }
    for (std::size_t i = n; i < padded; ++i) {
        qxy[2 * i] = simd::kFixedPadQ;
        qxy[2 * i + 1] = 0;
        qzw[2 * i] = 0;
        qzw[2 * i + 1] = 0;
    }
    ok = true;
}

void
PointsFixed::quantizeQuery(const Vec3 &q, std::int16_t &qx,
                           std::int16_t &qy, std::int16_t &qz) const
{
    qx = snapCoord(q.x, c.x, inv, simd::kFixedMaxQueryQ);
    qy = snapCoord(q.y, c.y, inv, simd::kFixedMaxQueryQ);
    qz = snapCoord(q.z, c.z, inv, simd::kFixedMaxQueryQ);
}

} // namespace edgepc
