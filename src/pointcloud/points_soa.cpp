#include "pointcloud/points_soa.hpp"

#include <new>
#include <utility>

#include "common/error.hpp"
#include "geometry/simd_distance.hpp"

namespace edgepc {

namespace {

std::size_t
paddedCount(std::size_t n)
{
    return simd::paddedSize(n);
}

} // namespace

PointsSoA::~PointsSoA()
{
    ::operator delete[](owned, std::align_val_t{ScratchArena::kAlignment});
}

PointsSoA::PointsSoA(PointsSoA &&other) noexcept
    : x(other.x), y(other.y), z(other.z), owned(other.owned), n(other.n),
      padded(other.padded)
{
    other.x = other.y = other.z = other.owned = nullptr;
    other.n = other.padded = 0;
}

PointsSoA &
PointsSoA::operator=(PointsSoA &&other) noexcept
{
    if (this != &other) {
        ::operator delete[](owned,
                            std::align_val_t{ScratchArena::kAlignment});
        x = other.x;
        y = other.y;
        z = other.z;
        owned = other.owned;
        n = other.n;
        padded = other.padded;
        other.x = other.y = other.z = other.owned = nullptr;
        other.n = other.padded = 0;
    }
    return *this;
}

PointsSoA::PointsSoA(std::span<const Vec3> points)
    : PointsSoA(points, std::span<const std::uint32_t>{})
{
}

PointsSoA::PointsSoA(std::span<const Vec3> points,
                     std::span<const std::uint32_t> order)
{
    checkOrder(points, order);
    n = points.size();
    padded = paddedCount(n);
    if (padded == 0) {
        return;
    }
    owned = static_cast<float *>(::operator new[](
        3 * padded * sizeof(float),
        std::align_val_t{ScratchArena::kAlignment}));
    bind(owned);
    fill(points, order);
}

PointsSoA::PointsSoA(std::span<const Vec3> points, ScratchArena &arena)
    : PointsSoA(points, std::span<const std::uint32_t>{}, arena)
{
}

PointsSoA::PointsSoA(std::span<const Vec3> points,
                     std::span<const std::uint32_t> order,
                     ScratchArena &arena)
{
    checkOrder(points, order);
    n = points.size();
    padded = paddedCount(n);
    if (padded == 0) {
        return;
    }
    bind(arena.alloc<float>(3 * padded).data());
    fill(points, order);
}

void
PointsSoA::checkOrder(std::span<const Vec3> points,
                      std::span<const std::uint32_t> order)
{
    if (!order.empty() && order.size() != points.size()) {
        raise(ErrorCode::InvalidArgument,
              "PointsSoA: order size %zu != point count %zu",
              order.size(), points.size());
    }
}

void
PointsSoA::bind(float *base)
{
    x = base;
    y = base + padded;
    z = base + 2 * padded;
}

void
PointsSoA::fill(std::span<const Vec3> points,
                std::span<const std::uint32_t> order)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 &p = order.empty() ? points[i] : points[order[i]];
        x[i] = p.x;
        y[i] = p.y;
        z[i] = p.z;
    }
    for (std::size_t i = n; i < padded; ++i) {
        x[i] = kPadCoord;
        y[i] = kPadCoord;
        z[i] = kPadCoord;
    }
}

} // namespace edgepc
