/**
 * @file
 * Quality metrics over point clouds and orderings.
 *
 * These quantify the two qualitative claims of Sec 4 of the paper:
 *  - Morton ordering "structurizes" the cloud (consecutive indexes are
 *    spatially adjacent), and
 *  - uniform sampling on the structurized cloud covers the object as
 *    well as farthest point sampling does (Fig 5).
 */

#ifndef EDGEPC_POINTCLOUD_METRICS_HPP
#define EDGEPC_POINTCLOUD_METRICS_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec3.hpp"

namespace edgepc {

/**
 * Mean Euclidean distance between consecutive points of an ordering.
 * Small values mean the ordering walks the cloud locally — the
 * quantitative "structuredness" measure.
 */
double orderingLocality(std::span<const Vec3> points,
                        std::span<const std::uint32_t> order);

/**
 * Structuredness score in (0, 1]: 1 - locality(order) / locality(random
 * expectation), clamped at 0. A perfectly local walk scores near 1; a
 * random order scores near 0.
 *
 * @param points Cloud positions.
 * @param order  Ordering to evaluate (must be a permutation of 0..N-1).
 * @param seed   Seed for the random-expectation estimate.
 */
double structuredness(std::span<const Vec3> points,
                      std::span<const std::uint32_t> order,
                      std::uint64_t seed = 7);

/**
 * Coverage radius of a sample set: for every input point, the distance
 * to its nearest sampled point; returns the maximum (a one-sided
 * Hausdorff distance). Lower is better coverage. O(N * n).
 */
double coverageRadius(std::span<const Vec3> points,
                      std::span<const Vec3> samples);

/** Mean (instead of max) distance to the nearest sample. */
double meanCoverageDistance(std::span<const Vec3> points,
                            std::span<const Vec3> samples);

/**
 * Voxel-coverage fraction: bin the cloud into voxels of size @p cell
 * and report the fraction of occupied voxels that contain at least one
 * sampled point. FPS and Morton-uniform sampling score high; raw-order
 * uniform sampling scores low on surface scans (Fig 5).
 */
double voxelCoverage(std::span<const Vec3> points,
                     std::span<const Vec3> samples, float cell);

} // namespace edgepc

#endif // EDGEPC_POINTCLOUD_METRICS_HPP
