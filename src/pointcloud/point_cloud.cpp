#include "pointcloud/point_cloud.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace edgepc {

PointCloud::PointCloud(std::vector<Vec3> positions) : pts(std::move(positions))
{
}

PointCloud::PointCloud(std::vector<Vec3> positions,
                       std::vector<float> features, std::size_t feature_dim)
    : pts(std::move(positions)), feats(std::move(features)),
      featDim(feature_dim)
{
    if (feats.size() != pts.size() * featDim) {
        fatal("PointCloud: feature array size %zu != N(%zu) * C(%zu)",
              feats.size(), pts.size(), featDim);
    }
}

std::span<const float>
PointCloud::feature(std::size_t i) const
{
    if (featDim == 0) {
        return {};
    }
    return {feats.data() + i * featDim, featDim};
}

void
PointCloud::addPoint(const Vec3 &p, std::span<const float> feature,
                     std::int32_t label)
{
    if (!pts.empty() && feature.size() != featDim) {
        fatal("PointCloud::addPoint: feature dim %zu != cloud dim %zu",
              feature.size(), featDim);
    }
    if (pts.empty()) {
        featDim = feature.size();
    }
    pts.push_back(p);
    feats.insert(feats.end(), feature.begin(), feature.end());
    if (!lbls.empty() || label != -1) {
        // Backfill missing labels with -1 to keep arrays aligned.
        while (lbls.size() + 1 < pts.size()) {
            lbls.push_back(-1);
        }
        lbls.push_back(label);
    }
}

void
PointCloud::setFeatures(std::vector<float> features, std::size_t feature_dim)
{
    if (features.size() != pts.size() * feature_dim) {
        fatal("PointCloud::setFeatures: size %zu != N(%zu) * C(%zu)",
              features.size(), pts.size(), feature_dim);
    }
    feats = std::move(features);
    featDim = feature_dim;
}

void
PointCloud::setLabels(std::vector<std::int32_t> labels)
{
    if (labels.size() != pts.size()) {
        fatal("PointCloud::setLabels: size %zu != N(%zu)", labels.size(),
              pts.size());
    }
    lbls = std::move(labels);
}

Aabb
PointCloud::bounds() const
{
    return Aabb::of(pts);
}

PointCloud
PointCloud::select(std::span<const std::uint32_t> indices) const
{
    PointCloud out;
    out.featDim = featDim;
    out.pts.reserve(indices.size());
    out.feats.reserve(indices.size() * featDim);
    const bool labeled = hasLabels();
    if (labeled) {
        out.lbls.reserve(indices.size());
    }
    for (const std::uint32_t idx : indices) {
        out.pts.push_back(pts[idx]);
        if (featDim > 0) {
            const float *row = feats.data() + std::size_t(idx) * featDim;
            out.feats.insert(out.feats.end(), row, row + featDim);
        }
        if (labeled) {
            out.lbls.push_back(lbls[idx]);
        }
    }
    return out;
}

void
PointCloud::permute(std::span<const std::uint32_t> permutation)
{
    if (permutation.size() != pts.size()) {
        fatal("PointCloud::permute: permutation size %zu != N(%zu)",
              permutation.size(), pts.size());
    }
    *this = select(permutation);
}

void
PointCloud::normalizeToUnitSphere()
{
    if (pts.empty()) {
        return;
    }
    Vec3 centroid{};
    for (const Vec3 &p : pts) {
        centroid += p;
    }
    centroid *= 1.0f / static_cast<float>(pts.size());

    float max_norm = 0.0f;
    for (Vec3 &p : pts) {
        p -= centroid;
        max_norm = std::max(max_norm, p.norm());
    }
    if (max_norm > 0.0f) {
        const float inv = 1.0f / max_norm;
        for (Vec3 &p : pts) {
            p *= inv;
        }
    }
}

void
PointCloud::normalizeToUnitCube()
{
    if (pts.empty()) {
        return;
    }
    const Aabb box = bounds();
    const float extent = box.maxExtent();
    const float inv = extent > 0.0f ? 1.0f / extent : 1.0f;
    const Vec3 lo = box.min();
    for (Vec3 &p : pts) {
        p = (p - lo) * inv;
    }
}

} // namespace edgepc
