/**
 * @file
 * Frame sanitizer: validates and repairs incoming point-cloud frames
 * before they reach the inference pipeline.
 *
 * Real sensor streams contain NaN/Inf returns (failed range
 * measurements), duplicated echoes, absurd out-of-range coordinates
 * and occasional near-empty frames. The sanitizer detects all of these
 * and repairs the frame under a configurable policy so a serving layer
 * (core/robust_pipeline.hpp) can keep streaming instead of crashing.
 */

#ifndef EDGEPC_POINTCLOUD_SANITIZER_HPP
#define EDGEPC_POINTCLOUD_SANITIZER_HPP

#include <cstdint>

#include "common/error.hpp"
#include "pointcloud/point_cloud.hpp"

namespace edgepc {

/** What to do with frames that contain invalid points. */
enum class SanitizePolicy
{
    /** Remove invalid points; accept whatever remains. */
    DropPoint,
    /** Remove invalid points, then pad undersized frames back up to
        minPoints by jittered duplication of surviving points. */
    Pad,
    /** Reject any frame that contains an invalid point or is
        undersized (strict mode for offline evaluation). */
    Reject,
};

/** Name of a policy for reports ("drop-point", "pad", "reject"). */
const char *sanitizePolicyName(SanitizePolicy policy);

/** Sanitizer configuration. */
struct SanitizerConfig
{
    SanitizePolicy policy = SanitizePolicy::DropPoint;

    /** Frames smaller than this are undersized (Pad pads up to it). */
    std::size_t minPoints = 32;

    /** Coordinates with |v| above this are treated as corrupt. */
    float maxAbsCoordinate = 1.0e6f;

    /** Collapse exact-duplicate positions (duplicated sensor echoes). */
    bool removeDuplicates = true;

    /** Jitter radius for Pad-policy duplicated points (meters). */
    float padJitter = 1.0e-3f;

    /** Seed of the deterministic jitter stream. */
    std::uint64_t padSeed = 0x5eed5a71;
};

/** What the sanitizer found and did to one frame. */
struct SanitizeReport
{
    std::size_t inputPoints = 0;
    std::size_t outputPoints = 0;

    /** Points removed because a coordinate or feature was NaN/Inf. */
    std::size_t nonFiniteDropped = 0;

    /** Points removed because a coordinate exceeded maxAbsCoordinate. */
    std::size_t outOfRangeDropped = 0;

    /** Exact-duplicate positions collapsed. */
    std::size_t duplicatesDropped = 0;

    /** Points synthesized to reach minPoints (Pad policy). */
    std::size_t padded = 0;

    /** True when the frame left the sanitizer below minPoints. */
    bool undersized = false;

    /** True when the sanitizer changed the frame in any way. */
    bool repaired() const
    {
        return nonFiniteDropped + outOfRangeDropped + duplicatesDropped +
                   padded >
               0;
    }
};

/**
 * Validate and repair @p cloud in place under @p cfg.
 *
 * @return The repair report, or an error: EmptyCloud when nothing
 *         survives cleaning, FrameRejected when the Reject policy
 *         refuses the frame.
 */
[[nodiscard]] Result<SanitizeReport>
sanitizeCloud(PointCloud &cloud, const SanitizerConfig &cfg = {});

} // namespace edgepc

#endif // EDGEPC_POINTCLOUD_SANITIZER_HPP
