#include "pointcloud/sanitizer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace edgepc {

namespace {

bool
finitePoint(const Vec3 &p)
{
    return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z);
}

bool
inRange(const Vec3 &p, float max_abs)
{
    return std::fabs(p.x) <= max_abs && std::fabs(p.y) <= max_abs &&
           std::fabs(p.z) <= max_abs;
}

/** Exact-bit-pattern position key for duplicate collapse. */
std::uint64_t
positionKey(const Vec3 &p)
{
    const auto x = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(p.x));
    const auto y = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(p.y));
    const auto z = static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(p.z));
    // splitmix-style mix of the three 32-bit patterns.
    std::uint64_t h = x * 0x9e3779b97f4a7c15ull;
    h ^= (y + 0xbf58476d1ce4e5b9ull) + (h << 6) + (h >> 2);
    h ^= (z + 0x94d049bb133111ebull) + (h << 6) + (h >> 2);
    return h;
}

} // namespace

const char *
sanitizePolicyName(SanitizePolicy policy)
{
    switch (policy) {
      case SanitizePolicy::DropPoint:
        return "drop-point";
      case SanitizePolicy::Pad:
        return "pad";
      case SanitizePolicy::Reject:
        return "reject";
    }
    return "?";
}

Result<SanitizeReport>
sanitizeCloud(PointCloud &cloud, const SanitizerConfig &cfg)
{
    SanitizeReport report;
    report.inputPoints = cloud.size();

    const std::size_t n = cloud.size();
    const std::size_t dim = cloud.featureDim();
    const std::vector<float> &feats = cloud.features();

    std::vector<std::uint32_t> keep;
    keep.reserve(n);
    std::unordered_set<std::uint64_t> seen;
    if (cfg.removeDuplicates) {
        seen.reserve(n);
    }

    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 &p = cloud.position(i);
        bool finite = finitePoint(p);
        if (finite && dim > 0) {
            for (std::size_t c = 0; c < dim && finite; ++c) {
                finite = std::isfinite(feats[i * dim + c]);
            }
        }
        if (!finite) {
            ++report.nonFiniteDropped;
            continue;
        }
        if (!inRange(p, cfg.maxAbsCoordinate)) {
            ++report.outOfRangeDropped;
            continue;
        }
        if (cfg.removeDuplicates && !seen.insert(positionKey(p)).second) {
            ++report.duplicatesDropped;
            continue;
        }
        keep.push_back(static_cast<std::uint32_t>(i));
    }

    if (cfg.policy == SanitizePolicy::Reject) {
        if (report.repaired() || keep.size() < cfg.minPoints) {
            return makeError(
                ErrorCode::FrameRejected,
                "sanitizeCloud: frame rejected (%zu/%zu invalid, "
                "%zu clean < %zu min)",
                n - keep.size(), n, keep.size(), cfg.minPoints);
        }
        report.outputPoints = n;
        return report;
    }

    if (keep.empty()) {
        return makeError(ErrorCode::EmptyCloud,
                         "sanitizeCloud: no valid points survive "
                         "(%zu input points)",
                         n);
    }

    if (keep.size() < n) {
        cloud = cloud.select(keep);
    }

    if (cloud.size() < cfg.minPoints) {
        if (cfg.policy == SanitizePolicy::Pad) {
            // Duplicate surviving points with a deterministic jitter
            // until the frame meets the minimum budget. Labels and
            // features of the source point are copied verbatim.
            Rng rng(cfg.padSeed ^ cloud.size());
            const bool labeled = cloud.hasLabels();
            std::vector<float> feature_row(dim);
            while (cloud.size() < cfg.minPoints) {
                const std::size_t src = rng.nextBelow(cloud.size());
                Vec3 p = cloud.position(src);
                p.x += rng.uniform(-cfg.padJitter, cfg.padJitter);
                p.y += rng.uniform(-cfg.padJitter, cfg.padJitter);
                p.z += rng.uniform(-cfg.padJitter, cfg.padJitter);
                // Copy the row out: addPoint grows the feature vector
                // and would invalidate a span into it.
                const std::span<const float> row = cloud.feature(src);
                std::copy(row.begin(), row.end(), feature_row.begin());
                cloud.addPoint(p, {feature_row.data(), dim},
                               labeled ? cloud.labels()[src] : -1);
                ++report.padded;
            }
        } else {
            report.undersized = true;
        }
    }

    report.outputPoints = cloud.size();
    return report;
}

} // namespace edgepc
