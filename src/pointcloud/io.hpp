/**
 * @file
 * Point-cloud file I/O: ASCII PLY and simple XYZ text formats.
 *
 * Lets the examples save their outputs for external visualization and
 * lets users feed their own scans into the pipeline.
 */

#ifndef EDGEPC_POINTCLOUD_IO_HPP
#define EDGEPC_POINTCLOUD_IO_HPP

#include <iosfwd>
#include <string>

#include "common/error.hpp"
#include "pointcloud/point_cloud.hpp"

namespace edgepc {

/**
 * Write an ASCII PLY file with x/y/z properties (plus a "label" int
 * property when labels are attached).
 *
 * @return true on success.
 */
bool writePly(const PointCloud &cloud, const std::string &path);

/** Write PLY to a stream (exposed for testing). */
void writePly(const PointCloud &cloud, std::ostream &os);

/**
 * Read an ASCII PLY written by writePly (or any ASCII PLY whose first
 * three vertex properties are x, y, z; a "label" property is picked up
 * when present; other properties are ignored).
 *
 * @param path File to read.
 * @param cloud Output cloud (replaced).
 * @return true on success.
 */
[[nodiscard]] bool readPly(const std::string &path, PointCloud &cloud);

/** Read PLY from a stream (exposed for testing). */
[[nodiscard]] bool readPly(std::istream &is, PointCloud &cloud);

/** Write one "x y z [label]" line per point. */
bool writeXyz(const PointCloud &cloud, const std::string &path);

/** Read an XYZ text file ("x y z" or "x y z label" per line).
    Lenient: malformed lines are skipped. */
[[nodiscard]] bool readXyz(const std::string &path, PointCloud &cloud);

/**
 * Strict PLY loader with the full error taxonomy: IoError (cannot
 * open), MalformedFile (bad header, implausible vertex count, garbage
 * vertex row), TruncatedFile (file ends before the declared vertices).
 * Prefer this over readPly() in serving paths, where the distinction
 * decides whether a retry can help.
 */
[[nodiscard]] Result<PointCloud> loadPly(const std::string &path);

/** Strict stream-based PLY loader (exposed for testing). */
[[nodiscard]] Result<PointCloud> loadPly(std::istream &is);

/**
 * Strict XYZ loader: a malformed non-comment line is MalformedFile
 * (readXyz silently skips it), an empty file is EmptyCloud, an
 * unopenable one IoError.
 */
[[nodiscard]] Result<PointCloud> loadXyz(const std::string &path);

/** Strict stream-based XYZ loader (exposed for testing). */
[[nodiscard]] Result<PointCloud> loadXyz(std::istream &is);

} // namespace edgepc

#endif // EDGEPC_POINTCLOUD_IO_HPP
