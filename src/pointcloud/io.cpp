#include "pointcloud/io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace edgepc {

void
writePly(const PointCloud &cloud, std::ostream &os)
{
    const bool labeled = cloud.hasLabels();
    os << "ply\nformat ascii 1.0\n";
    os << "element vertex " << cloud.size() << "\n";
    os << "property float x\nproperty float y\nproperty float z\n";
    if (labeled) {
        os << "property int label\n";
    }
    os << "end_header\n";
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3 &p = cloud.position(i);
        os << p.x << ' ' << p.y << ' ' << p.z;
        if (labeled) {
            os << ' ' << cloud.labels()[i];
        }
        os << '\n';
    }
}

bool
writePly(const PointCloud &cloud, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        warn("writePly: cannot open '%s' for writing", path.c_str());
        return false;
    }
    writePly(cloud, os);
    return static_cast<bool>(os);
}

namespace {

/** Vertex counts above this are treated as header corruption (a
    negative count read into a size_t wraps to something enormous). */
constexpr std::size_t kMaxPlyVertices = 200u * 1000 * 1000;

} // namespace

Result<PointCloud>
loadPly(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line.rfind("ply", 0) != 0) {
        return makeError(ErrorCode::MalformedFile,
                         "loadPly: missing 'ply' magic");
    }

    std::size_t vertex_count = 0;
    std::vector<std::string> properties;
    bool in_vertex_element = false;
    bool saw_end_header = false;

    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string token;
        ls >> token;
        if (token == "end_header") {
            saw_end_header = true;
            break;
        } else if (token == "element") {
            std::string name;
            ls >> name >> vertex_count;
            if (!ls && name == "vertex") {
                return makeError(ErrorCode::MalformedFile,
                                 "loadPly: unparsable vertex count");
            }
            in_vertex_element = (name == "vertex");
        } else if (token == "property" && in_vertex_element) {
            std::string type, name;
            ls >> type >> name;
            properties.push_back(name);
        } else if (token == "format") {
            std::string fmt;
            ls >> fmt;
            if (fmt != "ascii") {
                return makeError(ErrorCode::MalformedFile,
                                 "loadPly: only ascii PLY is supported "
                                 "(got '%s')",
                                 fmt.c_str());
            }
        }
    }
    if (!saw_end_header) {
        return makeError(ErrorCode::TruncatedFile,
                         "loadPly: header ends before end_header");
    }
    if (vertex_count > kMaxPlyVertices) {
        return makeError(ErrorCode::MalformedFile,
                         "loadPly: implausible vertex count %zu",
                         vertex_count);
    }

    int ix = -1, iy = -1, iz = -1, ilabel = -1;
    for (std::size_t i = 0; i < properties.size(); ++i) {
        if (properties[i] == "x") {
            ix = static_cast<int>(i);
        } else if (properties[i] == "y") {
            iy = static_cast<int>(i);
        } else if (properties[i] == "z") {
            iz = static_cast<int>(i);
        } else if (properties[i] == "label") {
            ilabel = static_cast<int>(i);
        }
    }
    if (ix < 0 || iy < 0 || iz < 0) {
        return makeError(ErrorCode::MalformedFile,
                         "loadPly: vertex element lacks x/y/z "
                         "properties");
    }

    std::vector<Vec3> positions;
    std::vector<std::int32_t> labels;
    positions.reserve(vertex_count);
    std::vector<double> values(properties.size());
    for (std::size_t v = 0; v < vertex_count; ++v) {
        if (!std::getline(is, line)) {
            return makeError(ErrorCode::TruncatedFile,
                             "loadPly: file ends at vertex %zu of %zu",
                             v, vertex_count);
        }
        std::istringstream ls(line);
        for (auto &value : values) {
            if (!(ls >> value)) {
                return makeError(ErrorCode::MalformedFile,
                                 "loadPly: garbage vertex row %zu "
                                 "('%s')",
                                 v, line.c_str());
            }
        }
        positions.push_back({static_cast<float>(values[ix]),
                             static_cast<float>(values[iy]),
                             static_cast<float>(values[iz])});
        if (ilabel >= 0) {
            labels.push_back(static_cast<std::int32_t>(values[ilabel]));
        }
    }

    PointCloud cloud(std::move(positions));
    if (ilabel >= 0) {
        cloud.setLabels(std::move(labels));
    }
    return cloud;
}

Result<PointCloud>
loadPly(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        return makeError(ErrorCode::IoError,
                         "loadPly: cannot open '%s'", path.c_str());
    }
    return loadPly(is);
}

bool
readPly(std::istream &is, PointCloud &cloud)
{
    Result<PointCloud> loaded = loadPly(is);
    if (!loaded.ok()) {
        warn("readPly: %s", loaded.error().toString().c_str());
        return false;
    }
    cloud = loaded.take();
    return true;
}

bool
readPly(const std::string &path, PointCloud &cloud)
{
    std::ifstream is(path);
    if (!is) {
        warn("readPly: cannot open '%s'", path.c_str());
        return false;
    }
    return readPly(is, cloud);
}

bool
writeXyz(const PointCloud &cloud, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        warn("writeXyz: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const bool labeled = cloud.hasLabels();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3 &p = cloud.position(i);
        os << p.x << ' ' << p.y << ' ' << p.z;
        if (labeled) {
            os << ' ' << cloud.labels()[i];
        }
        os << '\n';
    }
    return static_cast<bool>(os);
}

Result<PointCloud>
loadXyz(std::istream &is)
{
    std::vector<Vec3> positions;
    std::vector<std::int32_t> labels;
    bool any_label = false;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream ls(line);
        Vec3 p;
        if (!(ls >> p.x >> p.y >> p.z)) {
            return makeError(ErrorCode::MalformedFile,
                             "loadXyz: garbage at line %zu ('%s')",
                             lineno, line.c_str());
        }
        std::int32_t label = -1;
        if (ls >> label) {
            any_label = true;
        }
        positions.push_back(p);
        labels.push_back(label);
    }
    if (positions.empty()) {
        return makeError(ErrorCode::EmptyCloud,
                         "loadXyz: no points in file");
    }
    PointCloud cloud(std::move(positions));
    if (any_label) {
        cloud.setLabels(std::move(labels));
    }
    return cloud;
}

Result<PointCloud>
loadXyz(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        return makeError(ErrorCode::IoError,
                         "loadXyz: cannot open '%s'", path.c_str());
    }
    return loadXyz(is);
}

bool
readXyz(const std::string &path, PointCloud &cloud)
{
    std::ifstream is(path);
    if (!is) {
        warn("readXyz: cannot open '%s'", path.c_str());
        return false;
    }
    std::vector<Vec3> positions;
    std::vector<std::int32_t> labels;
    bool any_label = false;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream ls(line);
        Vec3 p;
        if (!(ls >> p.x >> p.y >> p.z)) {
            continue;
        }
        std::int32_t label = -1;
        if (ls >> label) {
            any_label = true;
        }
        positions.push_back(p);
        labels.push_back(label);
    }
    cloud = PointCloud(std::move(positions));
    if (any_label) {
        cloud.setLabels(std::move(labels));
    }
    return true;
}

} // namespace edgepc
