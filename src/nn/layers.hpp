/**
 * @file
 * Neural-network layers with forward and backward passes.
 *
 * The engine is deliberately small: point-cloud CNNs are built from
 * shared MLPs (1x1 convolutions == row-wise Linear layers), batch
 * normalization, ReLU and max-pooling over neighbors. All layers
 * support full manual backprop so models can be (re)trained with the
 * EdgePC approximations in the loop (Sec 5.3 of the paper).
 */

#ifndef EDGEPC_NN_LAYERS_HPP
#define EDGEPC_NN_LAYERS_HPP

#include <memory>
#include <span>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Forward pass.
     *
     * @param input Input activations (rows x in features).
     * @param train Keep intermediates for backward() when true.
     */
    virtual Matrix forward(const Matrix &input, bool train) = 0;

    /**
     * Backward pass: given dLoss/dOutput return dLoss/dInput and
     * accumulate parameter gradients. Only valid after a
     * forward(..., true).
     */
    virtual Matrix backward(const Matrix &grad_output) = 0;

    /**
     * True when inference-mode forward() treats every row
     * independently (row-wise Linear / activation layers).
     * Sequential::forwardSegmented runs such layers once over a whole
     * row-stacked batch of clouds (large-M GEMM), while layers with
     * cross-row statistics (BatchNorm's per-cloud instance stats)
     * fall back to per-segment execution.
     */
    virtual bool rowIndependentInference() const { return false; }

    /** Append this layer's parameters to @p out. */
    virtual void collectParameters(std::vector<Parameter *> &out)
    {
        (void)out;
    }

    /**
     * Append this layer's non-learnable state buffers (e.g. batch-norm
     * running statistics) to @p out, for serialization.
     */
    virtual void collectBuffers(std::vector<std::vector<float> *> &out)
    {
        (void)out;
    }

    /**
     * Inference-only forward applied in place over a row-stacked batch
     * of independent segments. Shape-preserving layers whose inference
     * depends on per-segment statistics (BatchNorm) override this so
     * Sequential::forwardSegmented can skip the slice/forward/copy-back
     * round trip per segment. Returns false when the layer has no
     * in-place segmented path and the caller must fall back.
     */
    virtual bool inferSegmentsInPlace(
        Matrix &x, std::span<const std::size_t> segment_rows)
    {
        (void)x;
        (void)segment_rows;
        return false;
    }

    /**
     * Per-layer int8-inference config (DESIGN.md §15). Linear layers
     * store it and consult resolveQuantGemm per inference forward;
     * Sequential recurses; everything else ignores it. Training and
     * backward always run fp32 regardless of this setting.
     */
    virtual void setQuantMode(QuantMode mode) { (void)mode; }
};

/**
 * Fully connected layer applied row-wise: the shared-MLP / 1x1-conv
 * building block of PointNet-family networks.
 */
class Linear : public Layer
{
  public:
    /**
     * @param in Input feature dimension.
     * @param out Output feature dimension.
     * @param rng Weight initialization stream (He init).
     * @param engine GEMM engine (defaults to the global engine, whose
     *        mode selects the CUDA-core vs Tensor-core path).
     */
    Linear(std::size_t in, std::size_t out, Rng &rng,
           GemmEngine *engine = nullptr);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;
    void collectParameters(std::vector<Parameter *> &out) override;
    bool rowIndependentInference() const override { return true; }
    void setQuantMode(QuantMode mode) override { quantConfig = mode; }

    std::size_t inDim() const { return weight.value.rows(); }
    std::size_t outDim() const { return weight.value.cols(); }

    Parameter &weights() { return weight; }
    Parameter &biases() { return bias; }

    /** Quantized-panel rebuilds performed (cache observability). */
    std::uint64_t quantRebuilds() const { return quantCache.rebuilds(); }

  private:
    GemmEngine &gemm();

    Parameter weight; ///< in x out.
    Parameter bias;   ///< 1 x out.
    Matrix savedInput;
    GemmEngine *engineOverride;
    QuantMode quantConfig = QuantMode::Off;
    QuantPanelCache quantCache;
};

/**
 * Linear + ReLU fused into a single GEMM pass: the bias add and the
 * rectification run in the epilogue while each output tile is still
 * in registers (GemmEpilogue::BiasRelu), so the activation costs no
 * extra sweep over the output. Parameter layout matches a separate
 * Linear + ReLU pair (weight, bias; ReLU holds no parameters), so
 * serialized checkpoints are interchangeable.
 */
class LinearRelu : public Layer
{
  public:
    LinearRelu(std::size_t in, std::size_t out, Rng &rng,
               GemmEngine *engine = nullptr);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;
    void collectParameters(std::vector<Parameter *> &out) override;
    bool rowIndependentInference() const override { return true; }
    void setQuantMode(QuantMode mode) override { quantConfig = mode; }

    std::size_t inDim() const { return weight.value.rows(); }
    std::size_t outDim() const { return weight.value.cols(); }

    Parameter &weights() { return weight; }
    Parameter &biases() { return bias; }

    /** Quantized-panel rebuilds performed (cache observability). */
    std::uint64_t quantRebuilds() const { return quantCache.rebuilds(); }

  private:
    GemmEngine &gemm();

    Parameter weight; ///< in x out.
    Parameter bias;   ///< 1 x out.
    Matrix savedInput;
    /** ReLU mask from the last train forward (out > 0 iff pre > 0). */
    std::vector<std::uint8_t> mask;
    GemmEngine *engineOverride;
    QuantMode quantConfig = QuantMode::Off;
    QuantPanelCache quantCache;
};

/**
 * Batch normalization over rows (per-feature statistics).
 *
 * The engine processes one cloud per forward pass, so multi-row
 * batch statistics are per-cloud (instance) statistics and are used
 * at inference as well as in training; running averages back only
 * the single-row case (after global pooling). See the rationale in
 * layers.cpp.
 */
class BatchNorm : public Layer
{
  public:
    explicit BatchNorm(std::size_t features, float momentum = 0.1f,
                       float epsilon = 1e-5f);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;
    void collectParameters(std::vector<Parameter *> &out) override;
    void collectBuffers(std::vector<std::vector<float> *> &out) override;
    bool inferSegmentsInPlace(
        Matrix &x, std::span<const std::size_t> segment_rows) override;

  private:
    Parameter gamma; ///< 1 x features (scale).
    Parameter beta;  ///< 1 x features (shift).
    std::vector<float> runningMean;
    std::vector<float> runningVar;
    float mom;
    float eps;

    // Saved for backward.
    Matrix savedNormalized;
    std::vector<float> savedInvStd;
    /**
     * Whether the last train-mode forward normalized with batch
     * statistics. Single-row batches fall back to the running stats
     * (their batch variance is degenerate), which decouples the
     * normalization from the inputs and changes the backward formula.
     */
    bool usedBatchStats = false;
};

/** Rectified linear unit. */
class ReLU : public Layer
{
  public:
    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;
    bool rowIndependentInference() const override { return true; }

  private:
    std::vector<std::uint8_t> mask;
};

/**
 * Leaky rectified linear unit (DGCNN uses slope 0.2 throughout; the
 * nonzero negative slope prevents units from dying, which matters for
 * the features feeding the global max-pool).
 */
class LeakyReLU : public Layer
{
  public:
    explicit LeakyReLU(float negative_slope = 0.2f);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;
    bool rowIndependentInference() const override { return true; }

  private:
    float slope;
    std::vector<std::uint8_t> mask;
};

/** A stack of layers executed in order. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer (takes ownership). */
    void add(std::unique_ptr<Layer> layer);

    /** Convenience: Linear -> BatchNorm -> ReLU block. */
    void addLinearBnRelu(std::size_t in, std::size_t out, Rng &rng,
                         GemmEngine *engine = nullptr);

    /** Convenience: epilogue-fused Linear + ReLU block (no BN). */
    void addLinearRelu(std::size_t in, std::size_t out, Rng &rng,
                       GemmEngine *engine = nullptr);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;
    void collectParameters(std::vector<Parameter *> &out) override;
    void collectBuffers(std::vector<std::vector<float> *> &out) override;
    void setQuantMode(QuantMode mode) override;

    /** True when every child layer is row-independent at inference. */
    bool rowIndependentInference() const override;

    /**
     * Inference-only forward over a row-stacked batch of independent
     * clouds: @p input holds the clouds' rows back to back and
     * @p segment_rows gives each cloud's row count (must sum to
     * input.rows()). Row-independent layers run once at full batch
     * height — this is where the packed GEMM gets its large-M shape —
     * while layers with per-cloud statistics (BatchNorm) run per
     * segment, so the result matches per-cloud forward() exactly up
     * to GEMM-path float reassociation.
     *
     * @param first_layer Skip layers [0, first_layer): the delayed
     *        aggregation route runs the first Linear itself (over the
     *        unique rows, pre-gather) and feeds the combined
     *        pre-activations to the remaining tail.
     */
    Matrix forwardSegmented(const Matrix &input,
                            std::span<const std::size_t> segment_rows,
                            std::size_t first_layer = 0);

    /** Child layer @p i (0-based, owned; bounds-checked). */
    Layer *layerAt(std::size_t i) { return layers.at(i).get(); }

    /**
     * forward() starting at layer @p first: runs layers
     * [first, size()) on @p input — the delayed-aggregation tail pass.
     */
    Matrix forwardFrom(std::size_t first, const Matrix &input, bool train);

    /**
     * backward() stopping before layer @p first: runs the layers in
     * reverse down to and including layer @p first and returns the
     * gradient w.r.t. that layer's input. Pairs with forwardFrom.
     */
    Matrix backwardFrom(std::size_t first, const Matrix &grad_output);

    std::size_t size() const { return layers.size(); }

  private:
    std::vector<std::unique_ptr<Layer>> layers;
};

/**
 * Max-pool over fixed-size groups of consecutive rows: reduces a
 * (points * k) x C matrix to points x C, taking the max across each
 * point's k neighbor rows (the aggregation step of SA / EdgeConv).
 */
class MaxPoolNeighbors : public Layer
{
  public:
    /** @param group_size Rows pooled per output row (k). */
    explicit MaxPoolNeighbors(std::size_t group_size);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    std::size_t k;
    std::vector<std::uint32_t> argmax;
    std::size_t savedRows = 0;
};

/** Max-pool all rows into a single row (global feature). */
class GlobalMaxPool : public Layer
{
  public:
    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    std::vector<std::uint32_t> argmax;
    std::size_t savedRows = 0;
};

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_LAYERS_HPP
