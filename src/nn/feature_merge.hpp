/**
 * @file
 * Merged feature compute — the Sec 5.4.1 extension of the paper.
 *
 * Thin channel dimensions keep the tensor cores idle. The paper's
 * proposed fix: merge the features of t consecutive points (which,
 * after the Morton reordering, are spatial neighbors) so the
 * reduction dimension grows from C to C*t, run the convolution once
 * per group, and split the result back to the t points. With the
 * merged weight built as t stacked copies of W scaled by 1/t, the
 * group result equals W applied to the group's mean feature — an
 * approximation that is accurate exactly when Morton-adjacent points
 * have similar features, which is the locality the reordering
 * provides.
 */

#ifndef EDGEPC_NN_FEATURE_MERGE_HPP
#define EDGEPC_NN_FEATURE_MERGE_HPP

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

/**
 * Exact row-wise linear transform: out = input * weight + bias.
 * Reference for the merged approximation below.
 *
 * @param input N x C activations.
 * @param weight C x C' matrix.
 * @param bias 1 x C' row (may be empty for no bias).
 * @param engine GEMM engine (dispatch policy decides the path).
 */
Matrix exactLinear(const Matrix &input, const Matrix &weight,
                   const Matrix &bias, GemmEngine &engine);

/**
 * Merged approximate linear transform (Sec 5.4.1).
 *
 * Rows are processed in groups of @p merge consecutive rows; each
 * group computes one output row (its mean feature through the
 * weight) that is replicated to the group's members. The GEMM runs
 * with reduction dimension C * merge on N / merge rows — identical
 * MAC count, but a channel dimension that clears the tensor-core
 * dispatch threshold.
 *
 * @param input N x C activations, Morton-ordered rows.
 * @param weight C x C' matrix.
 * @param bias 1 x C' row (may be empty).
 * @param merge Group size t (1 = exact; clamped to N).
 * @param engine GEMM engine.
 */
Matrix mergedLinear(const Matrix &input, const Matrix &weight,
                    const Matrix &bias, std::size_t merge,
                    GemmEngine &engine);

/**
 * Mean absolute relative error between two equally-shaped matrices
 * (quality metric for the merge approximation).
 */
double meanRelativeError(const Matrix &approx, const Matrix &exact);

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_FEATURE_MERGE_HPP
