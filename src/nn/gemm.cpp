#include "nn/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <immintrin.h>
#include <string_view>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "nn/quant.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {
namespace nn {

GemmEngine::GemmEngine(GemmMode mode, std::size_t channel_threshold)
    : policy(mode), channelThreshold(channel_threshold)
{
}

namespace {

/// Microkernel rows: 6 broadcast lanes keep 12 of 16 ymm registers as
/// accumulators with room for two B loads and the A broadcast.
constexpr std::size_t kMR = 6;

/// Microkernel columns: one packed B panel is two ymm vectors wide, so
/// a panel row (64 bytes) is exactly one cache line.
constexpr std::size_t kNR = 16;

/// Rows per tile-grid block: 8 microkernel blocks, sized so the packed
/// A block plus one B panel stay cache resident while C streams.
constexpr std::size_t kMC = 8 * kMR;

/// Column-register blocking of the small-M (GEMV-like) fast kernel.
constexpr std::size_t kSmallMJB = 64;

bool
fmaAvailable()
{
    static const bool available = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma");
    return available;
}

bool
int8Available()
{
    // maddubs/madd are AVX2; the int8 kernel needs no FMA.
    static const bool available = __builtin_cpu_supports("avx2");
    return available;
}

GemmDispatchPath
initialPathFromEnv()
{
    const char *env = std::getenv("EDGEPC_GEMM");
    if (env == nullptr) {
        return GemmDispatchPath::Auto;
    }
    const std::string_view v(env);
    if (v == "scalar") {
        return GemmDispatchPath::ForceScalar;
    }
    if (v == "fast" || v == "force" || v == "avx2") {
        if (!fmaAvailable()) {
            warn("EDGEPC_GEMM=%s requested but the CPU lacks AVX2+FMA; "
                 "falling back to auto dispatch",
                 env);
            return GemmDispatchPath::Auto;
        }
        return GemmDispatchPath::ForceFast;
    }
    if (v == "int8") {
        // Quantized-inference override (nn/quant.hpp reads the same
        // variable); the fp32 microkernel dispatch itself stays Auto.
        return GemmDispatchPath::Auto;
    }
    if (v != "auto") {
        warn("EDGEPC_GEMM=%s not understood (want scalar|fast|int8|auto); "
             "using auto",
             env);
    }
    return GemmDispatchPath::Auto;
}

std::atomic<GemmDispatchPath> &
pathState()
{
    static std::atomic<GemmDispatchPath> state{initialPathFromEnv()};
    return state;
}

bool
initialFusedFromEnv()
{
    const char *env = std::getenv("EDGEPC_GEMM_EPILOGUE");
    if (env == nullptr) {
        return true;
    }
    const std::string_view v(env);
    if (v == "split") {
        return false;
    }
    if (v != "fused") {
        warn("EDGEPC_GEMM_EPILOGUE=%s not understood (want fused|split); "
             "using fused",
             env);
    }
    return true;
}

std::atomic<bool> &
fusedState()
{
    static std::atomic<bool> state{initialFusedFromEnv()};
    return state;
}

/**
 * Pack one B column panel (kNR columns starting at panel * kNR) into
 * panel-major layout: dst[kk * kNR + jj], zero-padded to kNR columns so
 * the microkernel never branches on N remainders. The transposed
 * flavour reads B stored as N x K (operand of A * B^T) straight from
 * its rows — no materialized transpose.
 */
inline void
packBPanel(const float *__restrict b, bool b_transposed, std::size_t k,
           std::size_t n, std::size_t ldb, std::size_t panel,
           float *__restrict dst)
{
    const std::size_t j0 = panel * kNR;
    const std::size_t cols = std::min(kNR, n - j0);
    if (!b_transposed) {
        // EDGEPC_HOT: panel pack, contiguous row copies.
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *src = b + kk * ldb + j0;
            float *d = dst + kk * kNR;
            for (std::size_t jj = 0; jj < cols; ++jj) {
                d[jj] = src[jj];
            }
            for (std::size_t jj = cols; jj < kNR; ++jj) {
                d[jj] = 0.0f;
            }
        }
        return;
    }
    // EDGEPC_HOT: transposed panel pack, contiguous reads of B's rows.
    for (std::size_t jj = 0; jj < cols; ++jj) {
        const float *src = b + (j0 + jj) * ldb;
        for (std::size_t kk = 0; kk < k; ++kk) {
            dst[kk * kNR + jj] = src[kk];
        }
    }
    for (std::size_t jj = cols; jj < kNR; ++jj) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            dst[kk * kNR + jj] = 0.0f;
        }
    }
}

/**
 * Pack one A row block (kMR rows starting at i0) into k-major layout:
 * dst[kk * kMR + ii], zero-padded to kMR rows. The transposed flavour
 * reads A stored as K x M (operand of A^T * B) straight from its rows.
 */
inline void
packABlock(const float *__restrict a, bool a_transposed, std::size_t k,
           std::size_t lda, std::size_t i0, std::size_t rows,
           float *__restrict dst)
{
    if (!a_transposed) {
        if (rows == kMR) {
            // EDGEPC_HOT: full-height pack, six streaming read
            // cursors and contiguous writes (one kMR group per kk).
            const float *r0 = a + (i0 + 0) * lda;
            const float *r1 = a + (i0 + 1) * lda;
            const float *r2 = a + (i0 + 2) * lda;
            const float *r3 = a + (i0 + 3) * lda;
            const float *r4 = a + (i0 + 4) * lda;
            const float *r5 = a + (i0 + 5) * lda;
            for (std::size_t kk = 0; kk < k; ++kk) {
                float *d = dst + kk * kMR;
                d[0] = r0[kk];
                d[1] = r1[kk];
                d[2] = r2[kk];
                d[3] = r3[kk];
                d[4] = r4[kk];
                d[5] = r5[kk];
            }
            return;
        }
        // EDGEPC_HOT: remainder row-block pack.
        for (std::size_t kk = 0; kk < k; ++kk) {
            float *d = dst + kk * kMR;
            for (std::size_t ii = 0; ii < rows; ++ii) {
                d[ii] = a[(i0 + ii) * lda + kk];
            }
        }
    } else {
        // EDGEPC_HOT: transposed row-block pack, contiguous per kk.
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *src = a + kk * lda + i0;
            float *d = dst + kk * kMR;
            for (std::size_t ii = 0; ii < rows; ++ii) {
                d[ii] = src[ii];
            }
        }
    }
    for (std::size_t ii = rows; ii < kMR; ++ii) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            dst[kk * kMR + ii] = 0.0f;
        }
    }
}

/**
 * Structured scalar microkernel (the CUDA-core stand-in): one
 * accumulator per C element, k strictly ascending, so with FP
 * contraction off it is bit-exact with the classic in-order loop nest.
 */
inline void
microKernelScalar(const float *__restrict apack,
                  const float *__restrict bpanel, std::size_t k,
                  float *__restrict acc)
{
    for (std::size_t i = 0; i < kMR * kNR; ++i) {
        acc[i] = 0.0f;
    }
    // EDGEPC_HOT: full-K register-tile accumulation. Two rows at a
    // time: 2 x kNR accumulators fit the baseline vector register
    // file, so they stay in registers across the whole K loop and
    // each packed B row is loaded once per pair.
    for (std::size_t ii = 0; ii < kMR; ii += 2) {
        float *acc0 = acc + ii * kNR;
        float *acc1 = acc + (ii + 1) * kNR;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av0 = apack[kk * kMR + ii];
            const float av1 = apack[kk * kMR + ii + 1];
            const float *brow = bpanel + kk * kNR;
            for (std::size_t jj = 0; jj < kNR; ++jj) {
                acc0[jj] += av0 * brow[jj];
                acc1[jj] += av1 * brow[jj];
            }
        }
    }
}

/**
 * 6x16 AVX2+FMA microkernel (the Tensor-core stand-in): 12 ymm
 * accumulators, two B vector loads and one A broadcast per k step; the
 * full K reduction stays in registers.
 */
__attribute__((target("avx2,fma"))) void
microKernelFma(const float *__restrict apack,
               const float *__restrict bpanel, std::size_t k,
               float *__restrict acc)
{
    __m256 c0a = _mm256_setzero_ps();
    __m256 c0b = _mm256_setzero_ps();
    __m256 c1a = _mm256_setzero_ps();
    __m256 c1b = _mm256_setzero_ps();
    __m256 c2a = _mm256_setzero_ps();
    __m256 c2b = _mm256_setzero_ps();
    __m256 c3a = _mm256_setzero_ps();
    __m256 c3b = _mm256_setzero_ps();
    __m256 c4a = _mm256_setzero_ps();
    __m256 c4b = _mm256_setzero_ps();
    __m256 c5a = _mm256_setzero_ps();
    __m256 c5b = _mm256_setzero_ps();
    // EDGEPC_HOT: full-K register-tile accumulation.
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float *arow = apack + kk * kMR;
        const __m256 b0 = _mm256_load_ps(bpanel + kk * kNR);
        const __m256 b1 = _mm256_load_ps(bpanel + kk * kNR + 8);
        __m256 av = _mm256_broadcast_ss(arow + 0);
        c0a = _mm256_fmadd_ps(av, b0, c0a);
        c0b = _mm256_fmadd_ps(av, b1, c0b);
        av = _mm256_broadcast_ss(arow + 1);
        c1a = _mm256_fmadd_ps(av, b0, c1a);
        c1b = _mm256_fmadd_ps(av, b1, c1b);
        av = _mm256_broadcast_ss(arow + 2);
        c2a = _mm256_fmadd_ps(av, b0, c2a);
        c2b = _mm256_fmadd_ps(av, b1, c2b);
        av = _mm256_broadcast_ss(arow + 3);
        c3a = _mm256_fmadd_ps(av, b0, c3a);
        c3b = _mm256_fmadd_ps(av, b1, c3b);
        av = _mm256_broadcast_ss(arow + 4);
        c4a = _mm256_fmadd_ps(av, b0, c4a);
        c4b = _mm256_fmadd_ps(av, b1, c4b);
        av = _mm256_broadcast_ss(arow + 5);
        c5a = _mm256_fmadd_ps(av, b0, c5a);
        c5b = _mm256_fmadd_ps(av, b1, c5b);
    }
    _mm256_store_ps(acc + 0 * kNR, c0a);
    _mm256_store_ps(acc + 0 * kNR + 8, c0b);
    _mm256_store_ps(acc + 1 * kNR, c1a);
    _mm256_store_ps(acc + 1 * kNR + 8, c1b);
    _mm256_store_ps(acc + 2 * kNR, c2a);
    _mm256_store_ps(acc + 2 * kNR + 8, c2b);
    _mm256_store_ps(acc + 3 * kNR, c3a);
    _mm256_store_ps(acc + 3 * kNR + 8, c3b);
    _mm256_store_ps(acc + 4 * kNR, c4a);
    _mm256_store_ps(acc + 4 * kNR + 8, c4b);
    _mm256_store_ps(acc + 5 * kNR, c5a);
    _mm256_store_ps(acc + 5 * kNR + 8, c5b);
}

/**
 * Full-tile FMA microkernel: same 6x16 register tile, but the
 * epilogue is applied and the result stored straight from the
 * accumulator registers — no scratch round trip. Used whenever the
 * tile has no M or N remainder (the overwhelmingly common case).
 */
__attribute__((target("avx2,fma"))) void
microKernelFmaFull(const float *__restrict apack,
                   const float *__restrict bpanel, std::size_t k,
                   float *__restrict c, std::size_t ldc,
                   const float *__restrict bias, GemmEpilogue epilogue,
                   bool accumulate)
{
    __m256 c0a = _mm256_setzero_ps();
    __m256 c0b = _mm256_setzero_ps();
    __m256 c1a = _mm256_setzero_ps();
    __m256 c1b = _mm256_setzero_ps();
    __m256 c2a = _mm256_setzero_ps();
    __m256 c2b = _mm256_setzero_ps();
    __m256 c3a = _mm256_setzero_ps();
    __m256 c3b = _mm256_setzero_ps();
    __m256 c4a = _mm256_setzero_ps();
    __m256 c4b = _mm256_setzero_ps();
    __m256 c5a = _mm256_setzero_ps();
    __m256 c5b = _mm256_setzero_ps();
    // EDGEPC_HOT: full-K register-tile accumulation.
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float *arow = apack + kk * kMR;
        const __m256 b0 = _mm256_load_ps(bpanel + kk * kNR);
        const __m256 b1 = _mm256_load_ps(bpanel + kk * kNR + 8);
        __m256 av = _mm256_broadcast_ss(arow + 0);
        c0a = _mm256_fmadd_ps(av, b0, c0a);
        c0b = _mm256_fmadd_ps(av, b1, c0b);
        av = _mm256_broadcast_ss(arow + 1);
        c1a = _mm256_fmadd_ps(av, b0, c1a);
        c1b = _mm256_fmadd_ps(av, b1, c1b);
        av = _mm256_broadcast_ss(arow + 2);
        c2a = _mm256_fmadd_ps(av, b0, c2a);
        c2b = _mm256_fmadd_ps(av, b1, c2b);
        av = _mm256_broadcast_ss(arow + 3);
        c3a = _mm256_fmadd_ps(av, b0, c3a);
        c3b = _mm256_fmadd_ps(av, b1, c3b);
        av = _mm256_broadcast_ss(arow + 4);
        c4a = _mm256_fmadd_ps(av, b0, c4a);
        c4b = _mm256_fmadd_ps(av, b1, c4b);
        av = _mm256_broadcast_ss(arow + 5);
        c5a = _mm256_fmadd_ps(av, b0, c5a);
        c5b = _mm256_fmadd_ps(av, b1, c5b);
    }
    const __m256 zero = _mm256_setzero_ps();
    __m256 bias0 = zero;
    __m256 bias1 = zero;
    if (epilogue != GemmEpilogue::None) {
        bias0 = _mm256_loadu_ps(bias);
        bias1 = _mm256_loadu_ps(bias + 8);
    }
    float *crow = c;
    __m256 va = c0a;
    __m256 vb = c0b;
    // EDGEPC_HOT: register-direct tile store + fused epilogue.
    for (std::size_t ii = 0; ii < kMR; ++ii) {
        switch (ii) {
          case 0:
            va = c0a;
            vb = c0b;
            break;
          case 1:
            va = c1a;
            vb = c1b;
            break;
          case 2:
            va = c2a;
            vb = c2b;
            break;
          case 3:
            va = c3a;
            vb = c3b;
            break;
          case 4:
            va = c4a;
            vb = c4b;
            break;
          default:
            va = c5a;
            vb = c5b;
            break;
        }
        if (accumulate) {
            va = _mm256_add_ps(va, _mm256_loadu_ps(crow));
            vb = _mm256_add_ps(vb, _mm256_loadu_ps(crow + 8));
        }
        if (epilogue != GemmEpilogue::None) {
            va = _mm256_add_ps(va, bias0);
            vb = _mm256_add_ps(vb, bias1);
            if (epilogue == GemmEpilogue::BiasRelu) {
                va = _mm256_max_ps(va, zero);
                vb = _mm256_max_ps(vb, zero);
            }
        }
        _mm256_storeu_ps(crow, va);
        _mm256_storeu_ps(crow + 8, vb);
        crow += ldc;
    }
}

/**
 * Store one accumulated tile into C with the fused epilogue applied
 * while the tile is still hot. Baseline-ISA build, also the remainder
 * path of the vectorized store below. The bias add is a single plain
 * add per element — identical arithmetic to a separate bias pass.
 */
inline void
storeTileScalar(const float *__restrict acc, float *__restrict c,
                std::size_t n, std::size_t i0, std::size_t j0,
                std::size_t rows, std::size_t cols,
                const float *__restrict bias, GemmEpilogue epilogue,
                bool accumulate)
{
    // EDGEPC_HOT: tile store + fused epilogue.
    for (std::size_t ii = 0; ii < rows; ++ii) {
        float *crow = c + (i0 + ii) * n + j0;
        const float *accrow = acc + ii * kNR;
        for (std::size_t jj = 0; jj < cols; ++jj) {
            float v = accrow[jj];
            if (accumulate) {
                v += crow[jj];
            }
            if (epilogue != GemmEpilogue::None) {
                v += bias[jj];
                if (epilogue == GemmEpilogue::BiasRelu) {
                    v = v > 0.0f ? v : 0.0f;
                }
            }
            crow[jj] = v;
        }
    }
}

/** Vectorized tile store for the FMA path (full-width panels). */
__attribute__((target("avx2,fma"))) void
storeTileFma(const float *__restrict acc, float *__restrict c,
             std::size_t n, std::size_t i0, std::size_t j0,
             std::size_t rows, std::size_t cols,
             const float *__restrict bias, GemmEpilogue epilogue,
             bool accumulate)
{
    if (cols != kNR) {
        storeTileScalar(acc, c, n, i0, j0, rows, cols, bias, epilogue,
                        accumulate);
        return;
    }
    const __m256 zero = _mm256_setzero_ps();
    __m256 bias0 = zero;
    __m256 bias1 = zero;
    if (epilogue != GemmEpilogue::None) {
        bias0 = _mm256_loadu_ps(bias);
        bias1 = _mm256_loadu_ps(bias + 8);
    }
    // EDGEPC_HOT: tile store + fused epilogue.
    for (std::size_t ii = 0; ii < rows; ++ii) {
        float *crow = c + (i0 + ii) * n + j0;
        __m256 v0 = _mm256_load_ps(acc + ii * kNR);
        __m256 v1 = _mm256_load_ps(acc + ii * kNR + 8);
        if (accumulate) {
            v0 = _mm256_add_ps(v0, _mm256_loadu_ps(crow));
            v1 = _mm256_add_ps(v1, _mm256_loadu_ps(crow + 8));
        }
        if (epilogue != GemmEpilogue::None) {
            v0 = _mm256_add_ps(v0, bias0);
            v1 = _mm256_add_ps(v1, bias1);
            if (epilogue == GemmEpilogue::BiasRelu) {
                v0 = _mm256_max_ps(v0, zero);
                v1 = _mm256_max_ps(v1, zero);
            }
        }
        _mm256_storeu_ps(crow, v0);
        _mm256_storeu_ps(crow + 8, v1);
    }
}

/** Everything one tile-grid worker needs; captured as one reference so
 *  the parallelFor closure stays inside std::function's inline buffer
 *  (no heap allocation per call). */
struct PackedGemmCtx
{
    const float *a;
    bool aTransposed;
    std::size_t lda;
    const float *bpack;
    float *c;
    std::size_t m;
    std::size_t k;
    std::size_t n;
    std::size_t panels;
    std::size_t groups;
    std::size_t panelsPerGroup;
    GemmEpilogue epilogue;
    const float *bias;
    bool accumulate;
    bool useFma;
};

/** One chunk of the 2-D (row-block x column-panel-group) tile grid. */
void
runTileChunk(const PackedGemmCtx &ctx, std::size_t lo, std::size_t hi)
{
    ScratchArena &arena = ScratchArena::local();
    ScratchArena::Frame frame(arena);
    float *apack = arena.alloc<float>(kMR * ctx.k).data();
    alignas(32) float acc[kMR * kNR];
    std::size_t packedBlock = ctx.m; // row block currently in apack
    for (std::size_t t = lo; t < hi; ++t) {
        const std::size_t ib = t / ctx.groups;
        const std::size_t g = t % ctx.groups;
        const std::size_t row_lo = ib * kMC;
        const std::size_t row_hi = std::min(ctx.m, row_lo + kMC);
        const std::size_t p_lo = g * ctx.panelsPerGroup;
        const std::size_t p_hi =
            std::min(ctx.panels, p_lo + ctx.panelsPerGroup);
        if (p_lo >= p_hi) {
            continue;
        }
        for (std::size_t i0 = row_lo; i0 < row_hi; i0 += kMR) {
            const std::size_t rows = std::min(kMR, row_hi - i0);
            if (packedBlock != i0) {
                packABlock(ctx.a, ctx.aTransposed, ctx.k, ctx.lda, i0,
                           rows, apack);
                packedBlock = i0;
            }
            for (std::size_t p = p_lo; p < p_hi; ++p) {
                const float *bpanel = ctx.bpack + p * ctx.k * kNR;
                const std::size_t j0 = p * kNR;
                const std::size_t cols = std::min(kNR, ctx.n - j0);
                const float *bias =
                    ctx.bias != nullptr ? ctx.bias + j0 : nullptr;
                if (ctx.useFma) {
                    if (rows == kMR && cols == kNR) {
                        microKernelFmaFull(apack, bpanel, ctx.k,
                                           ctx.c + i0 * ctx.n + j0,
                                           ctx.n, bias, ctx.epilogue,
                                           ctx.accumulate);
                        continue;
                    }
                    microKernelFma(apack, bpanel, ctx.k, acc);
                    storeTileFma(acc, ctx.c, ctx.n, i0, j0, rows, cols,
                                 bias, ctx.epilogue, ctx.accumulate);
                } else {
                    microKernelScalar(apack, bpanel, ctx.k, acc);
                    storeTileScalar(acc, ctx.c, ctx.n, i0, j0, rows, cols,
                                    bias, ctx.epilogue, ctx.accumulate);
                }
            }
        }
    }
}

/**
 * Streaming small-M kernel, scalar build: for M below the microkernel
 * height, packing B would touch every element of B for almost no
 * reuse, so stream the operands instead. Accumulation order per C
 * element is k-ascending with one accumulator — bit-exact with the
 * classic nest.
 */
void
smallMScalar(const float *__restrict a, bool a_transposed,
             std::size_t lda, const float *__restrict b,
             bool b_transposed, std::size_t ldb, float *__restrict c,
             std::size_t m, std::size_t k, std::size_t n,
             GemmEpilogue epilogue, const float *__restrict bias,
             bool accumulate)
{
    if (!b_transposed) {
        // The classic cache-tiled nest, accumulating straight into C:
        // the k tiling keeps B access confined to a 64-row band at a
        // time (prefetcher-friendly), and per C element the k order
        // is strictly ascending, so the result is bit-exact with the
        // packed scalar microkernel.
        constexpr std::size_t tile_k = 64;
        constexpr std::size_t tile_n = 64;
        if (!accumulate) {
            for (std::size_t i = 0; i < m; ++i) {
                std::memset(c + i * n, 0, n * sizeof(float));
            }
        }
        // EDGEPC_HOT: cache-tiled streaming accumulation.
        for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
            const std::size_t kend = std::min(k, k0 + tile_k);
            for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
                const std::size_t jend = std::min(n, j0 + tile_n);
                for (std::size_t i = 0; i < m; ++i) {
                    float *crow = c + i * n;
                    for (std::size_t kk = k0; kk < kend; ++kk) {
                        const float av = a_transposed ? a[kk * lda + i]
                                                      : a[i * lda + kk];
                        const float *brow = b + kk * ldb;
                        for (std::size_t j = j0; j < jend; ++j) {
                            crow[j] += av * brow[j];
                        }
                    }
                }
            }
        }
    } else {
        // B stored N x K: contiguous dot products per column.
        // EDGEPC_HOT: streaming dot-product accumulation.
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                const float *brow = b + j * ldb;
                float s = 0.0f;
                for (std::size_t kk = 0; kk < k; ++kk) {
                    const float av =
                        a_transposed ? a[kk * lda + i] : a[i * lda + kk];
                    s += av * brow[kk];
                }
                crow[j] = accumulate ? crow[j] + s : s;
            }
        }
    }
    if (epilogue != GemmEpilogue::None) {
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                float v = crow[j] + bias[j];
                if (epilogue == GemmEpilogue::BiasRelu) {
                    v = v > 0.0f ? v : 0.0f;
                }
                crow[j] = v;
            }
        }
    }
}

/**
 * Streaming small-M kernel, FMA build (B not transposed): register-
 * blocks 64 output columns in 8 ymm accumulators per row, so B is
 * streamed once per row with no intermediate C traffic — the M = 1
 * classifier head runs at load-port speed instead of store speed.
 */
__attribute__((target("avx2,fma"))) void
smallMFma(const float *__restrict a, bool a_transposed, std::size_t lda,
          const float *__restrict b, float *__restrict c, std::size_t m,
          std::size_t k, std::size_t n, GemmEpilogue epilogue,
          const float *__restrict bias, bool accumulate)
{
    const __m256 zero = _mm256_setzero_ps();
    for (std::size_t i = 0; i < m; ++i) {
        float *crow = c + i * n;
        const float *acol = a_transposed ? a + i : a + i * lda;
        const std::size_t astride = a_transposed ? lda : 1;
        std::size_t j0 = 0;
        // EDGEPC_HOT: column-register-blocked streaming accumulation.
        for (; j0 + kSmallMJB <= n; j0 += kSmallMJB) {
            __m256 s0 = zero;
            __m256 s1 = zero;
            __m256 s2 = zero;
            __m256 s3 = zero;
            __m256 s4 = zero;
            __m256 s5 = zero;
            __m256 s6 = zero;
            __m256 s7 = zero;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const __m256 av = _mm256_broadcast_ss(acol + kk * astride);
                const float *brow = b + kk * n + j0;
                s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), s0);
                s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), s1);
                s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), s2);
                s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), s3);
                s4 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 32), s4);
                s5 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 40), s5);
                s6 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 48), s6);
                s7 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 56), s7);
            }
            alignas(32) float tile[kSmallMJB];
            _mm256_store_ps(tile, s0);
            _mm256_store_ps(tile + 8, s1);
            _mm256_store_ps(tile + 16, s2);
            _mm256_store_ps(tile + 24, s3);
            _mm256_store_ps(tile + 32, s4);
            _mm256_store_ps(tile + 40, s5);
            _mm256_store_ps(tile + 48, s6);
            _mm256_store_ps(tile + 56, s7);
            for (std::size_t jj = 0; jj < kSmallMJB; ++jj) {
                float v = tile[jj];
                if (accumulate) {
                    v += crow[j0 + jj];
                }
                if (epilogue != GemmEpilogue::None) {
                    v += bias[j0 + jj];
                    if (epilogue == GemmEpilogue::BiasRelu) {
                        v = v > 0.0f ? v : 0.0f;
                    }
                }
                crow[j0 + jj] = v;
            }
        }
        for (; j0 < n; ++j0) {
            float s = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) {
                s += acol[kk * astride] * b[kk * n + j0];
            }
            if (accumulate) {
                s += crow[j0];
            }
            if (epilogue != GemmEpilogue::None) {
                s += bias[j0];
                if (epilogue == GemmEpilogue::BiasRelu) {
                    s = s > 0.0f ? s : 0.0f;
                }
            }
            crow[j0] = s;
        }
    }
}

/**
 * The packed GEMM driver: pack B once into cache-resident column
 * panels (thread-local arena, reused across all row blocks), then walk
 * a 2-D (row-block x column-panel-group) tile grid in parallel. Column
 * groups only split off when there are too few row blocks to feed the
 * pool, so results never depend on the thread count (each C tile has
 * exactly one writer).
 */
void
gemmPacked(const float *a, bool a_transposed, const float *b,
           bool b_transposed, float *c, std::size_t m, std::size_t k,
           std::size_t n, GemmEpilogue epilogue, const float *bias,
           bool accumulate, bool use_fma)
{
    const std::size_t lda = a_transposed ? m : k;
    const std::size_t ldb = b_transposed ? k : n;
    if (m < kMR) {
        // Packing B would touch all of B for < kMR rows of reuse.
        if (use_fma && !b_transposed) {
            smallMFma(a, a_transposed, lda, b, c, m, k, n, epilogue, bias,
                      accumulate);
        } else {
            smallMScalar(a, a_transposed, lda, b, b_transposed, ldb, c, m,
                         k, n, epilogue, bias, accumulate);
        }
        return;
    }

    ScratchArena &arena = ScratchArena::local();
    ScratchArena::Frame frame(arena);
    const std::size_t panels = (n + kNR - 1) / kNR;
    float *bpack = arena.alloc<float>(panels * k * kNR).data();
    for (std::size_t p = 0; p < panels; ++p) {
        packBPanel(b, b_transposed, k, n, ldb, p, bpack + p * k * kNR);
    }

    const std::size_t mblocks = (m + kMC - 1) / kMC;
    const std::size_t conc = ThreadPool::globalPool().concurrency();
    std::size_t groups = 1;
    if (mblocks < conc * 2) {
        groups = std::min(panels, (conc * 2 + mblocks - 1) / mblocks);
    }
    const std::size_t panelsPerGroup = (panels + groups - 1) / groups;

    const PackedGemmCtx ctx{a,      a_transposed, lda,
                            bpack,  c,            m,
                            k,      n,            panels,
                            groups, panelsPerGroup, epilogue,
                            bias,   accumulate,   use_fma};
    ThreadPool::globalPool().parallelForChunked(
        0, mblocks * groups,
        [&ctx](std::size_t lo, std::size_t hi) {
            runTileChunk(ctx, lo, hi);
        },
        0);
}

// ---- int8 quantized inference route (layout in nn/quant.hpp) ----

/**
 * Quantize the activation matrix straight into the packed quad-major
 * block layout the microkernel reads: row block b (kMR rows) starts at
 * dst + b * k_padded * kMR; within a block, reduction quad q occupies
 * kMR * kQuantKQ bytes with row ii's four consecutive k bytes at
 * dst[q * 24 + ii * 4]. One pass over A replaces the former
 * quantize-buffer-then-pack-per-tile double pass, which gated the
 * whole quantized call on large M. Rows past m and ks past the real
 * reduction are zero: zero activations against zero-padded weights
 * contribute exactly zero, and colSum covers real k only, so padding
 * cancels out of the zero-point correction too. Baseline-ISA build.
 */
inline void
quantizePackAScalar(const float *__restrict a, std::size_t m,
                    std::size_t k, std::size_t k_padded,
                    const ActQuant &q, std::uint8_t *__restrict dst)
{
    const std::size_t quads = k_padded / kQuantKQ;
    const std::size_t blocks = (m + kMR - 1) / kMR;
    const std::size_t row_stride = kMR * kQuantKQ;
    // EDGEPC_HOT: streaming activation quantization + pack.
    for (std::size_t i = 0; i < blocks * kMR; ++i) {
        std::uint8_t *drow =
            dst + (i / kMR) * (k_padded * kMR) + (i % kMR) * kQuantKQ;
        if (i >= m) {
            for (std::size_t qq = 0; qq < quads; ++qq) {
                std::memset(drow + qq * row_stride, 0, kQuantKQ);
            }
            continue;
        }
        const float *src = a + i * k;
        for (std::size_t qq = 0; qq < quads; ++qq) {
            std::uint8_t *dq = drow + qq * row_stride;
            const std::size_t k0 = qq * kQuantKQ;
            for (std::size_t t = 0; t < kQuantKQ; ++t) {
                dq[t] = k0 + t < k ? quantizeAct(src[k0 + t], q) : 0;
            }
        }
    }
}

/**
 * AVX2 build of quantizePackAScalar: the same multiply, nearest-even
 * round (cvtps_epi32 matches lrintf in the default rounding mode) and
 * clamp as quantizeAct, 32 values (8 quads) per iteration. The
 * i32 -> u8 narrowing packs interleave lanes; the permute restores
 * source order before the quads scatter into the block layout.
 */
__attribute__((target("avx2"))) void
quantizePackAAvx2(const float *__restrict a, std::size_t m,
                  std::size_t k, std::size_t k_padded, const ActQuant &q,
                  std::uint8_t *__restrict dst)
{
    const __m256 inv = _mm256_set1_ps(q.invScale);
    const __m256i zp = _mm256_set1_epi32(q.zeroPoint);
    const __m256i lowq = _mm256_setzero_si256();
    const __m256i highq = _mm256_set1_epi32(kQuantActMax);
    const __m256i lanefix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    const std::size_t quads = k_padded / kQuantKQ;
    const std::size_t blocks = (m + kMR - 1) / kMR;
    const std::size_t row_stride = kMR * kQuantKQ;
    alignas(32) std::uint8_t tmp[32];
    for (std::size_t i = 0; i < blocks * kMR; ++i) {
        std::uint8_t *drow =
            dst + (i / kMR) * (k_padded * kMR) + (i % kMR) * kQuantKQ;
        if (i >= m) {
            for (std::size_t qq = 0; qq < quads; ++qq) {
                std::memset(drow + qq * row_stride, 0, kQuantKQ);
            }
            continue;
        }
        const float *src = a + i * k;
        std::size_t kk = 0;
        // EDGEPC_HOT: vector activation quantization + quad scatter.
        for (; kk + 32 <= k; kk += 32) {
            __m256i r0 = _mm256_cvtps_epi32(
                _mm256_mul_ps(_mm256_loadu_ps(src + kk), inv));
            __m256i r1 = _mm256_cvtps_epi32(
                _mm256_mul_ps(_mm256_loadu_ps(src + kk + 8), inv));
            __m256i r2 = _mm256_cvtps_epi32(
                _mm256_mul_ps(_mm256_loadu_ps(src + kk + 16), inv));
            __m256i r3 = _mm256_cvtps_epi32(
                _mm256_mul_ps(_mm256_loadu_ps(src + kk + 24), inv));
            r0 = _mm256_max_epi32(
                lowq, _mm256_min_epi32(highq, _mm256_add_epi32(r0, zp)));
            r1 = _mm256_max_epi32(
                lowq, _mm256_min_epi32(highq, _mm256_add_epi32(r1, zp)));
            r2 = _mm256_max_epi32(
                lowq, _mm256_min_epi32(highq, _mm256_add_epi32(r2, zp)));
            r3 = _mm256_max_epi32(
                lowq, _mm256_min_epi32(highq, _mm256_add_epi32(r3, zp)));
            const __m256i ab = _mm256_packs_epi32(r0, r1);
            const __m256i cd = _mm256_packs_epi32(r2, r3);
            __m256i bytes = _mm256_packus_epi16(ab, cd);
            bytes = _mm256_permutevar8x32_epi32(bytes, lanefix);
            _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), bytes);
            std::uint8_t *dq = drow + (kk / kQuantKQ) * row_stride;
            for (std::size_t t = 0; t < 8; ++t) {
                std::memcpy(dq + t * row_stride, tmp + t * kQuantKQ,
                            kQuantKQ);
            }
        }
        for (std::size_t qq = kk / kQuantKQ; qq < quads; ++qq) {
            std::uint8_t *dq = drow + qq * row_stride;
            const std::size_t k0 = qq * kQuantKQ;
            for (std::size_t t = 0; t < kQuantKQ; ++t) {
                dq[t] = k0 + t < k ? quantizeAct(src[k0 + t], q) : 0;
            }
        }
    }
}

/**
 * AVX2 activation range scan. Min/max is exact and order-independent,
 * so this matches the scalar computeActQuant bit for bit on finite
 * inputs (the only ones the route sees — NaN activations already
 * misbehave on the fp32 path). Four accumulator pairs hide the
 * min/max latency; the serial scan otherwise gates the whole
 * quantized call on large M.
 */
__attribute__((target("avx2"))) ActQuant
computeActQuantAvx2(const float *__restrict a, std::size_t count)
{
    if (count < 32) {
        return computeActQuant(a, count);
    }
    const __m256 seed = _mm256_set1_ps(a[0]);
    __m256 lo0 = seed;
    __m256 lo1 = seed;
    __m256 lo2 = seed;
    __m256 lo3 = seed;
    __m256 hi0 = seed;
    __m256 hi1 = seed;
    __m256 hi2 = seed;
    __m256 hi3 = seed;
    std::size_t i = 0;
    // EDGEPC_HOT: vector min/max range scan.
    for (; i + 32 <= count; i += 32) {
        const __m256 v0 = _mm256_loadu_ps(a + i);
        const __m256 v1 = _mm256_loadu_ps(a + i + 8);
        const __m256 v2 = _mm256_loadu_ps(a + i + 16);
        const __m256 v3 = _mm256_loadu_ps(a + i + 24);
        lo0 = _mm256_min_ps(lo0, v0);
        hi0 = _mm256_max_ps(hi0, v0);
        lo1 = _mm256_min_ps(lo1, v1);
        hi1 = _mm256_max_ps(hi1, v1);
        lo2 = _mm256_min_ps(lo2, v2);
        hi2 = _mm256_max_ps(hi2, v2);
        lo3 = _mm256_min_ps(lo3, v3);
        hi3 = _mm256_max_ps(hi3, v3);
    }
    lo0 = _mm256_min_ps(_mm256_min_ps(lo0, lo1),
                        _mm256_min_ps(lo2, lo3));
    hi0 = _mm256_max_ps(_mm256_max_ps(hi0, hi1),
                        _mm256_max_ps(hi2, hi3));
    alignas(32) float lo8[8];
    alignas(32) float hi8[8];
    _mm256_store_ps(lo8, lo0);
    _mm256_store_ps(hi8, hi0);
    float lo = lo8[0];
    float hi = hi8[0];
    for (int t = 1; t < 8; ++t) {
        lo = lo8[t] < lo ? lo8[t] : lo;
        hi = hi8[t] > hi ? hi8[t] : hi;
    }
    for (; i < count; ++i) {
        const float v = a[i];
        lo = v < lo ? v : lo;
        hi = v > hi ? v : hi;
    }
    return actQuantFromRange(lo, hi);
}

/**
 * 6x16 AVX2 int8 microkernel: per reduction quad, two 32-byte panel
 * loads feed maddubs (u8*s8 adjacent pairs -> i16) then madd against
 * ones (i16 pairs -> i32), accumulated into 12 ymm int32 registers.
 * The 7-bit activation range guarantees the intermediate i16 sums
 * never saturate (127 * 127 * 2 <= 32767, see nn/quant.hpp), so the
 * accumulators hold the exact integer dot products.
 */
__attribute__((target("avx2"))) void
microKernelInt8Avx2(const std::uint8_t *__restrict apack,
                    const std::int8_t *__restrict bpanel,
                    std::size_t quads, std::int32_t *__restrict acc)
{
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i c0a = _mm256_setzero_si256();
    __m256i c0b = _mm256_setzero_si256();
    __m256i c1a = _mm256_setzero_si256();
    __m256i c1b = _mm256_setzero_si256();
    __m256i c2a = _mm256_setzero_si256();
    __m256i c2b = _mm256_setzero_si256();
    __m256i c3a = _mm256_setzero_si256();
    __m256i c3b = _mm256_setzero_si256();
    __m256i c4a = _mm256_setzero_si256();
    __m256i c4b = _mm256_setzero_si256();
    __m256i c5a = _mm256_setzero_si256();
    __m256i c5b = _mm256_setzero_si256();
    // EDGEPC_HOT: full-K quad accumulation in integer registers.
    for (std::size_t q = 0; q < quads; ++q) {
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bpanel + q * 64));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bpanel + q * 64 + 32));
        const std::uint8_t *arow = apack + q * (kMR * kQuantKQ);
        std::int32_t aw;
        std::memcpy(&aw, arow, 4);
        __m256i av = _mm256_set1_epi32(aw);
        c0a = _mm256_add_epi32(
            c0a, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        c0b = _mm256_add_epi32(
            c0b, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
        std::memcpy(&aw, arow + 4, 4);
        av = _mm256_set1_epi32(aw);
        c1a = _mm256_add_epi32(
            c1a, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        c1b = _mm256_add_epi32(
            c1b, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
        std::memcpy(&aw, arow + 8, 4);
        av = _mm256_set1_epi32(aw);
        c2a = _mm256_add_epi32(
            c2a, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        c2b = _mm256_add_epi32(
            c2b, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
        std::memcpy(&aw, arow + 12, 4);
        av = _mm256_set1_epi32(aw);
        c3a = _mm256_add_epi32(
            c3a, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        c3b = _mm256_add_epi32(
            c3b, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
        std::memcpy(&aw, arow + 16, 4);
        av = _mm256_set1_epi32(aw);
        c4a = _mm256_add_epi32(
            c4a, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        c4b = _mm256_add_epi32(
            c4b, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
        std::memcpy(&aw, arow + 20, 4);
        av = _mm256_set1_epi32(aw);
        c5a = _mm256_add_epi32(
            c5a, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        c5b = _mm256_add_epi32(
            c5b, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 0 * kNR), c0a);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 0 * kNR + 8),
                       c0b);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 1 * kNR), c1a);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 1 * kNR + 8),
                       c1b);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 2 * kNR), c2a);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 2 * kNR + 8),
                       c2b);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 3 * kNR), c3a);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 3 * kNR + 8),
                       c3b);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 4 * kNR), c4a);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 4 * kNR + 8),
                       c4b);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 5 * kNR), c5a);
    _mm256_store_si256(reinterpret_cast<__m256i *>(acc + 5 * kNR + 8),
                       c5b);
}

/**
 * Scalar-int build of the same microkernel: integer arithmetic is
 * order-independent, so this is bit-exact with the AVX2 build (and
 * with quantizedGemmRef) by construction.
 */
inline void
microKernelInt8Scalar(const std::uint8_t *__restrict apack,
                      const std::int8_t *__restrict bpanel,
                      std::size_t quads, std::int32_t *__restrict acc)
{
    for (std::size_t i = 0; i < kMR * kNR; ++i) {
        acc[i] = 0;
    }
    // EDGEPC_HOT: integer quad accumulation.
    for (std::size_t q = 0; q < quads; ++q) {
        const std::int8_t *quad = bpanel + q * kQuantNR * kQuantKQ;
        const std::uint8_t *arow = apack + q * (kMR * kQuantKQ);
        for (std::size_t ii = 0; ii < kMR; ++ii) {
            const std::uint8_t *av = arow + ii * kQuantKQ;
            std::int32_t *accrow = acc + ii * kNR;
            for (std::size_t jj = 0; jj < kQuantNR; ++jj) {
                const std::int8_t *wb =
                    quad + (jj < 8 ? jj * kQuantKQ
                                   : 32 + (jj - 8) * kQuantKQ);
                std::int32_t s = 0;
                for (std::size_t t = 0; t < kQuantKQ; ++t) {
                    s += static_cast<std::int32_t>(av[t]) *
                         static_cast<std::int32_t>(wb[t]);
                }
                accrow[jj] += s;
            }
        }
    }
}

/**
 * Dequant tile store: v = combined[j] * float(acc - corr[j]), then
 * bias and ReLU. The float operation order matches quantizedGemmRef
 * and the AVX2 store exactly; this file is built with
 * -ffp-contract=off so no step fuses.
 */
inline void
storeTileInt8Scalar(const std::int32_t *__restrict acc,
                    float *__restrict c, std::size_t n, std::size_t i0,
                    std::size_t j0, std::size_t rows, std::size_t cols,
                    const float *__restrict combined,
                    const std::int32_t *__restrict corr,
                    const float *__restrict bias, GemmEpilogue epilogue)
{
    // EDGEPC_HOT: dequant tile store + fused epilogue.
    for (std::size_t ii = 0; ii < rows; ++ii) {
        float *crow = c + (i0 + ii) * n + j0;
        const std::int32_t *accrow = acc + ii * kNR;
        for (std::size_t jj = 0; jj < cols; ++jj) {
            float v = combined[jj] *
                      static_cast<float>(accrow[jj] - corr[jj]);
            if (epilogue != GemmEpilogue::None) {
                v = v + bias[jj];
                if (epilogue == GemmEpilogue::BiasRelu) {
                    v = v > 0.0f ? v : 0.0f;
                }
            }
            crow[jj] = v;
        }
    }
}

/** Vectorized dequant tile store (full-width panels); cvtepi32_ps and
    static_cast<float> both round nearest-even, so the builds agree
    bit for bit even for accumulators beyond 2^24. */
__attribute__((target("avx2"))) void
storeTileInt8Avx2(const std::int32_t *__restrict acc,
                  float *__restrict c, std::size_t n, std::size_t i0,
                  std::size_t j0, std::size_t rows, std::size_t cols,
                  const float *__restrict combined,
                  const std::int32_t *__restrict corr,
                  const float *__restrict bias, GemmEpilogue epilogue)
{
    if (cols != kNR) {
        storeTileInt8Scalar(acc, c, n, i0, j0, rows, cols, combined,
                            corr, bias, epilogue);
        return;
    }
    const __m256 zero = _mm256_setzero_ps();
    const __m256 comb0 = _mm256_loadu_ps(combined);
    const __m256 comb1 = _mm256_loadu_ps(combined + 8);
    const __m256i corr0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(corr));
    const __m256i corr1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(corr + 8));
    __m256 bias0 = zero;
    __m256 bias1 = zero;
    if (epilogue != GemmEpilogue::None) {
        bias0 = _mm256_loadu_ps(bias);
        bias1 = _mm256_loadu_ps(bias + 8);
    }
    // EDGEPC_HOT: dequant tile store + fused epilogue.
    for (std::size_t ii = 0; ii < rows; ++ii) {
        float *crow = c + (i0 + ii) * n + j0;
        const __m256i a0 = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(acc + ii * kNR));
        const __m256i a1 = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(acc + ii * kNR + 8));
        __m256 v0 = _mm256_cvtepi32_ps(_mm256_sub_epi32(a0, corr0));
        __m256 v1 = _mm256_cvtepi32_ps(_mm256_sub_epi32(a1, corr1));
        v0 = _mm256_mul_ps(comb0, v0);
        v1 = _mm256_mul_ps(comb1, v1);
        if (epilogue != GemmEpilogue::None) {
            v0 = _mm256_add_ps(v0, bias0);
            v1 = _mm256_add_ps(v1, bias1);
            if (epilogue == GemmEpilogue::BiasRelu) {
                v0 = _mm256_max_ps(v0, zero);
                v1 = _mm256_max_ps(v1, zero);
            }
        }
        _mm256_storeu_ps(crow, v0);
        _mm256_storeu_ps(crow + 8, v1);
    }
}

/** Worker context of the quantized tile grid (same shape as
 *  PackedGemmCtx; B panels come from the layer cache instead of a
 *  per-call pack). */
struct QuantGemmCtx
{
    const std::uint8_t *apacked; ///< Quantized A in block layout.
    std::size_t m;
    std::size_t k;
    const QuantizedWeights *wq;
    float *c;
    std::size_t n;
    const float *combined;    ///< s_a * s_w[j], padded width.
    const std::int32_t *corr; ///< z_a * colSum[j], padded width.
    const float *bias;
    GemmEpilogue epilogue;
    std::size_t groups;
    std::size_t panelsPerGroup;
    bool useAvx2;
};

/** One chunk of the quantized 2-D tile grid. */
void
runTileChunkInt8(const QuantGemmCtx &ctx, std::size_t lo, std::size_t hi)
{
    const std::size_t kp = ctx.wq->kPadded;
    const std::size_t quads = kp / kQuantKQ;
    alignas(32) std::int32_t acc[kMR * kNR];
    for (std::size_t t = lo; t < hi; ++t) {
        const std::size_t ib = t / ctx.groups;
        const std::size_t g = t % ctx.groups;
        const std::size_t row_lo = ib * kMC;
        const std::size_t row_hi = std::min(ctx.m, row_lo + kMC);
        const std::size_t p_lo = g * ctx.panelsPerGroup;
        const std::size_t p_hi =
            std::min(ctx.wq->panels, p_lo + ctx.panelsPerGroup);
        if (p_lo >= p_hi) {
            continue;
        }
        for (std::size_t i0 = row_lo; i0 < row_hi; i0 += kMR) {
            const std::size_t rows = std::min(kMR, row_hi - i0);
            // A was quantize-packed once up front; kMC is a multiple
            // of kMR, so i0 always lands on a block boundary.
            const std::uint8_t *apack =
                ctx.apacked + (i0 / kMR) * (kp * kMR);
            for (std::size_t p = p_lo; p < p_hi; ++p) {
                const std::int8_t *bpanel =
                    ctx.wq->panelData.data() + ctx.wq->panelOffset(p);
                const std::size_t j0 = p * kNR;
                const std::size_t cols = std::min(kNR, ctx.n - j0);
                const float *bias =
                    ctx.bias != nullptr ? ctx.bias + j0 : nullptr;
                if (ctx.useAvx2) {
                    microKernelInt8Avx2(apack, bpanel, quads, acc);
                    storeTileInt8Avx2(acc, ctx.c, ctx.n, i0, j0, rows,
                                      cols, ctx.combined + j0,
                                      ctx.corr + j0, bias, ctx.epilogue);
                } else {
                    microKernelInt8Scalar(apack, bpanel, quads, acc);
                    storeTileInt8Scalar(acc, ctx.c, ctx.n, i0, j0, rows,
                                        cols, ctx.combined + j0,
                                        ctx.corr + j0, bias,
                                        ctx.epilogue);
                }
            }
        }
    }
}

/**
 * Quantized-GEMM driver: quantize A once into the arena (the AVX2 and
 * scalar passes round identically), fold the activation scale into
 * per-column combined dequant scales and the zero point into int32
 * correction terms, then walk the same 2-D tile grid as the fp32
 * path. B needs no per-call packing — the quantized panels come from
 * the layer cache — so even small M runs the tile path.
 */
void
gemmQuantizedPacked(const float *a, std::size_t m,
                    const QuantizedWeights &wq, float *c,
                    GemmEpilogue epilogue, const float *bias,
                    bool use_avx2)
{
    ScratchArena &arena = ScratchArena::local();
    ScratchArena::Frame frame(arena);
    const std::size_t k = wq.k;
    const std::size_t n = wq.n;
    const ActQuant aq = use_avx2 ? computeActQuantAvx2(a, m * k)
                                 : computeActQuant(a, m * k);
    const std::size_t kp = wq.kPadded;
    const std::size_t mblocks6 = (m + kMR - 1) / kMR;
    std::uint8_t *apacked =
        arena.alloc<std::uint8_t>(mblocks6 * kp * kMR).data();
    if (use_avx2) {
        quantizePackAAvx2(a, m, k, kp, aq, apacked);
    } else {
        quantizePackAScalar(a, m, k, kp, aq, apacked);
    }
    const std::size_t padded_n = wq.panels * kQuantNR;
    float *combined = arena.alloc<float>(padded_n).data();
    std::int32_t *corr = arena.alloc<std::int32_t>(padded_n).data();
    for (std::size_t j = 0; j < padded_n; ++j) {
        combined[j] = aq.scale * wq.colScale[j];
        corr[j] = aq.zeroPoint * wq.colSum[j];
    }

    const std::size_t mblocks = (m + kMC - 1) / kMC;
    const std::size_t conc = ThreadPool::globalPool().concurrency();
    std::size_t groups = 1;
    if (mblocks < conc * 2) {
        groups =
            std::min(wq.panels, (conc * 2 + mblocks - 1) / mblocks);
    }
    const std::size_t panelsPerGroup =
        (wq.panels + groups - 1) / groups;

    const QuantGemmCtx ctx{apacked,  m,
                           k,        &wq,
                           c,        n,
                           combined, corr,
                           bias,     epilogue,
                           groups,   panelsPerGroup,
                           use_avx2};
    ThreadPool::globalPool().parallelForChunked(
        0, mblocks * groups,
        [&ctx](std::size_t lo, std::size_t hi) {
            runTileChunkInt8(ctx, lo, hi);
        },
        0);
}

} // namespace

void
GemmEngine::run(const float *a, bool a_transposed, const float *b,
                bool b_transposed, float *c, std::size_t m, std::size_t k,
                std::size_t n, GemmEpilogue epilogue, const float *bias,
                bool accumulate)
{
    if (m == 0 || n == 0 || k == 0) {
        return;
    }
    EDGEPC_TRACE_SCOPE("gemm", "nn");
    // References cached once: metric objects live for the process.
    static obs::Counter &flops =
        obs::MetricsRegistry::global().counter("gemm.flops");
    static obs::Counter &fastPath =
        obs::MetricsRegistry::global().counter("gemm.fast_path_calls");
    static obs::Counter &scalarPath =
        obs::MetricsRegistry::global().counter("gemm.scalar_path_calls");
    static obs::Counter &fusedCalls =
        obs::MetricsRegistry::global().counter("gemm.fused_epilogue_calls");
    flops.add(2ull * m * k * n);
    if (epilogue != GemmEpilogue::None) {
        fusedCalls.add(1);
    }
    bool fast = false;
    switch (policy) {
      case GemmMode::Scalar:
        fast = false;
        break;
      case GemmMode::Fast:
        fast = true;
        break;
      case GemmMode::Auto:
        // Thin channel dimensions never reach the tensor cores.
        fast = k >= channelThreshold;
        break;
    }
    // The counters track the policy decision (the device model); the
    // process-wide dispatch override only swaps the executed build.
    if (fast) {
        ++fastCalls;
        fastPath.add(1);
    } else {
        ++scalarCalls;
        scalarPath.add(1);
    }
    bool use_fma = false;
    switch (dispatchPath()) {
      case GemmDispatchPath::ForceScalar:
        use_fma = false;
        break;
      case GemmDispatchPath::ForceFast:
        use_fma = fmaAvailable();
        break;
      case GemmDispatchPath::Auto:
        use_fma = fast && fmaAvailable();
        break;
    }
    gemmPacked(a, a_transposed, b, b_transposed, c, m, k, n, epilogue,
               bias, accumulate, use_fma);
}

void
GemmEngine::gemm(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k, std::size_t n)
{
    run(a, false, b, false, c, m, k, n, GemmEpilogue::None, nullptr,
        false);
}

void
GemmEngine::gemm(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k, std::size_t n, GemmEpilogue epilogue,
                 const float *bias)
{
    if (epilogue != GemmEpilogue::None && bias == nullptr) {
        raise(ErrorCode::InvalidArgument,
              "GemmEngine::gemm: bias epilogue requested without a bias "
              "vector");
    }
    run(a, false, b, false, c, m, k, n, epilogue, bias, false);
}

Matrix
GemmEngine::multiply(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.rows()) {
        fatal("GemmEngine::multiply: %zux%zu times %zux%zu", a.rows(),
              a.cols(), b.rows(), b.cols());
    }
    Matrix c(a.rows(), b.cols());
    run(a.data(), false, b.data(), false, c.data(), a.rows(), a.cols(),
        b.cols(), GemmEpilogue::None, nullptr, false);
    return c;
}

Matrix
GemmEngine::multiply(const Matrix &a, const Matrix &b,
                     GemmEpilogue epilogue, const Matrix &bias)
{
    if (a.cols() != b.rows()) {
        fatal("GemmEngine::multiply: %zux%zu times %zux%zu", a.rows(),
              a.cols(), b.rows(), b.cols());
    }
    if (epilogue != GemmEpilogue::None &&
        (bias.rows() != 1 || bias.cols() != b.cols())) {
        fatal("GemmEngine::multiply: bias %zux%zu does not match output "
              "width %zu",
              bias.rows(), bias.cols(), b.cols());
    }
    Matrix c(a.rows(), b.cols());
    run(a.data(), false, b.data(), false, c.data(), a.rows(), a.cols(),
        b.cols(), epilogue,
        epilogue != GemmEpilogue::None ? bias.data() : nullptr, false);
    return c;
}

Matrix
GemmEngine::multiplyTransposed(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.cols()) {
        fatal("GemmEngine::multiplyTransposed: %zux%zu times (%zux%zu)^T",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    // C = A * B^T: the packing step reads B's rows directly, so no
    // transposed copy is ever materialized.
    Matrix c(a.rows(), b.rows());
    run(a.data(), false, b.data(), true, c.data(), a.rows(), a.cols(),
        b.rows(), GemmEpilogue::None, nullptr, false);
    return c;
}

Matrix
GemmEngine::multiplyLeftTransposed(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows()) {
        fatal("GemmEngine::multiplyLeftTransposed: (%zux%zu)^T times "
              "%zux%zu",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    // C = A^T * B: the packing step reads A's columns directly.
    Matrix c(a.cols(), b.cols());
    run(a.data(), true, b.data(), false, c.data(), a.cols(), a.rows(),
        b.cols(), GemmEpilogue::None, nullptr, false);
    return c;
}

void
GemmEngine::multiplyLeftTransposedAdd(const Matrix &a, const Matrix &b,
                                      Matrix &out)
{
    if (a.rows() != b.rows()) {
        fatal("GemmEngine::multiplyLeftTransposedAdd: (%zux%zu)^T times "
              "%zux%zu",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    if (out.rows() != a.cols() || out.cols() != b.cols()) {
        fatal("GemmEngine::multiplyLeftTransposedAdd: output %zux%zu, "
              "want %zux%zu",
              out.rows(), out.cols(), a.cols(), b.cols());
    }
    run(a.data(), true, b.data(), false, out.data(), a.cols(), a.rows(),
        b.cols(), GemmEpilogue::None, nullptr, true);
}

void
GemmEngine::gemmQuantized(const float *a, std::size_t m,
                          const QuantizedWeights &wq, float *c,
                          GemmEpilogue epilogue, const float *bias)
{
    if (m == 0 || wq.n == 0 || wq.k == 0) {
        return;
    }
    if (epilogue != GemmEpilogue::None && bias == nullptr) {
        raise(ErrorCode::InvalidArgument,
              "GemmEngine::gemmQuantized: bias epilogue requested "
              "without a bias vector");
    }
    EDGEPC_TRACE_SCOPE("gemm-int8", "nn");
    static obs::Counter &flops =
        obs::MetricsRegistry::global().counter("gemm.flops");
    static obs::Counter &int8Calls =
        obs::MetricsRegistry::global().counter("gemm.int8_path_calls");
    static obs::Counter &fusedCalls =
        obs::MetricsRegistry::global().counter("gemm.fused_epilogue_calls");
    flops.add(2ull * m * wq.k * wq.n);
    int8Calls.add(1);
    if (epilogue != GemmEpilogue::None) {
        fusedCalls.add(1);
    }
    // The int8 route models the tensor cores' int8 mode: it does not
    // disturb the fp32 fast/scalar policy counters. The process-wide
    // dispatch override still picks which build executes.
    bool use_avx2 = false;
    switch (dispatchPath()) {
      case GemmDispatchPath::ForceScalar:
        use_avx2 = false;
        break;
      case GemmDispatchPath::ForceFast:
      case GemmDispatchPath::Auto:
        use_avx2 = int8Available();
        break;
    }
    gemmQuantizedPacked(a, m, wq, c, epilogue, bias, use_avx2);
}

Matrix
GemmEngine::multiplyQuantized(const Matrix &a, const QuantizedWeights &wq,
                              GemmEpilogue epilogue, const Matrix &bias)
{
    if (a.cols() != wq.k) {
        fatal("GemmEngine::multiplyQuantized: %zux%zu times quantized "
              "%zux%zu",
              a.rows(), a.cols(), wq.k, wq.n);
    }
    if (epilogue != GemmEpilogue::None &&
        (bias.rows() != 1 || bias.cols() != wq.n)) {
        fatal("GemmEngine::multiplyQuantized: bias %zux%zu does not "
              "match output width %zu",
              bias.rows(), bias.cols(), wq.n);
    }
    Matrix c(a.rows(), wq.n);
    gemmQuantized(a.data(), a.rows(), wq, c.data(), epilogue,
                  epilogue != GemmEpilogue::None ? bias.data() : nullptr);
    return c;
}

double
GemmEngine::fastPathUtilization() const
{
    const std::uint64_t total = fastCalls + scalarCalls;
    if (total == 0) {
        return 0.0;
    }
    return static_cast<double>(fastCalls) / static_cast<double>(total);
}

void
GemmEngine::resetStats()
{
    fastCalls = 0;
    scalarCalls = 0;
}

GemmEngine &
GemmEngine::globalEngine()
{
    static GemmEngine engine(GemmMode::Scalar);
    return engine;
}

bool
GemmEngine::fastKernelAvailable()
{
    return fmaAvailable();
}

void
GemmEngine::setDispatchPath(GemmDispatchPath path)
{
    if (path == GemmDispatchPath::ForceFast && !fmaAvailable()) {
        raise(ErrorCode::InvalidArgument,
              "GemmEngine::setDispatchPath: ForceFast requested but the "
              "CPU lacks AVX2+FMA");
    }
    pathState().store(path, std::memory_order_relaxed);
}

GemmDispatchPath
GemmEngine::dispatchPath()
{
    return pathState().load(std::memory_order_relaxed);
}

const char *
GemmEngine::activeKernelName()
{
    switch (dispatchPath()) {
      case GemmDispatchPath::ForceScalar:
        return "scalar";
      case GemmDispatchPath::ForceFast:
        return "avx2-fma";
      case GemmDispatchPath::Auto:
        break;
    }
    return fmaAvailable() ? "avx2-fma" : "scalar";
}

bool
GemmEngine::int8KernelAvailable()
{
    return int8Available();
}

const char *
GemmEngine::int8KernelName()
{
    if (dispatchPath() == GemmDispatchPath::ForceScalar) {
        return "scalar-int8";
    }
    return int8Available() ? "avx2-int8" : "scalar-int8";
}

bool
GemmEngine::fusedEpilogues()
{
    return fusedState().load(std::memory_order_relaxed);
}

void
GemmEngine::setFusedEpilogues(bool fused)
{
    fusedState().store(fused, std::memory_order_relaxed);
}

const char *
GemmEngine::epilogueModeName()
{
    return fusedEpilogues() ? "fused" : "split";
}

} // namespace nn
} // namespace edgepc
