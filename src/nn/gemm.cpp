#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {
namespace nn {

GemmEngine::GemmEngine(GemmMode mode, std::size_t channel_threshold)
    : policy(mode), channelThreshold(channel_threshold)
{
}

namespace {

/**
 * Cache-tiled kernel body for one row block, compiled with the
 * baseline ISA. Shared by the two dispatch paths below: the CUDA-core
 * model runs this generic build, the Tensor-core model runs the
 * AVX2+FMA specialization (a genuinely wider-MAC build of the same
 * loop nest — mirroring the board's wide-MAC tensor units).
 */
template <int kUnused>
inline void
tiledRowBlock(const float *a, const float *b, float *c, std::size_t k,
              std::size_t n, std::size_t row_lo, std::size_t row_hi)
{
    constexpr std::size_t tile_k = 64;
    constexpr std::size_t tile_n = 64;
    for (std::size_t i = row_lo; i < row_hi; ++i) {
        std::memset(c + i * n, 0, n * sizeof(float));
    }
    for (std::size_t kk = 0; kk < k; kk += tile_k) {
        const std::size_t kend = std::min(k, kk + tile_k);
        for (std::size_t jj = 0; jj < n; jj += tile_n) {
            const std::size_t jend = std::min(n, jj + tile_n);
            for (std::size_t i = row_lo; i < row_hi; ++i) {
                const float *arow = a + i * k;
                float *crow = c + i * n;
                for (std::size_t p = kk; p < kend; ++p) {
                    const float av = arow[p];
                    const float *brow = b + p * n;
                    std::size_t j = jj;
                    for (; j + 4 <= jend; j += 4) {
                        crow[j] += av * brow[j];
                        crow[j + 1] += av * brow[j + 1];
                        crow[j + 2] += av * brow[j + 2];
                        crow[j + 3] += av * brow[j + 3];
                    }
                    for (; j < jend; ++j) {
                        crow[j] += av * brow[j];
                    }
                }
            }
        }
    }
}

/** Generic-ISA build (the CUDA-core stand-in). */
void
rowBlockGeneric(const float *a, const float *b, float *c, std::size_t k,
                std::size_t n, std::size_t row_lo, std::size_t row_hi)
{
    tiledRowBlock<0>(a, b, c, k, n, row_lo, row_hi);
}

/**
 * AVX2+FMA build of the same loop nest (the Tensor-core stand-in):
 * identical arithmetic, executed on the wide-MAC units.
 */
__attribute__((target("avx2,fma"))) void
rowBlockWide(const float *a, const float *b, float *c, std::size_t k,
             std::size_t n, std::size_t row_lo, std::size_t row_hi)
{
    tiledRowBlock<1>(a, b, c, k, n, row_lo, row_hi);
}

bool
wideMacAvailable()
{
    static const bool available = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma");
    return available;
}

} // namespace

void
GemmEngine::gemmScalar(const float *a, const float *b, float *c,
                       std::size_t m, std::size_t k, std::size_t n)
{
    ThreadPool::globalPool().parallelForChunked(
        0, m,
        [&](std::size_t lo, std::size_t hi) {
            rowBlockGeneric(a, b, c, k, n, lo, hi);
        },
        0);
}

void
GemmEngine::gemmFast(const float *a, const float *b, float *c,
                     std::size_t m, std::size_t k, std::size_t n)
{
    if (!wideMacAvailable()) {
        gemmScalar(a, b, c, m, k, n);
        return;
    }
    ThreadPool::globalPool().parallelForChunked(
        0, m,
        [&](std::size_t lo, std::size_t hi) {
            rowBlockWide(a, b, c, k, n, lo, hi);
        },
        0);
}

void
GemmEngine::gemm(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k, std::size_t n)
{
    if (m == 0 || n == 0 || k == 0) {
        return;
    }
    EDGEPC_TRACE_SCOPE("gemm", "nn");
    // References cached once: metric objects live for the process.
    static obs::Counter &flops =
        obs::MetricsRegistry::global().counter("gemm.flops");
    static obs::Counter &fastPath =
        obs::MetricsRegistry::global().counter("gemm.fast_path_calls");
    static obs::Counter &scalarPath =
        obs::MetricsRegistry::global().counter("gemm.scalar_path_calls");
    flops.add(2ull * m * k * n);
    bool fast = false;
    switch (policy) {
      case GemmMode::Scalar:
        fast = false;
        break;
      case GemmMode::Fast:
        fast = true;
        break;
      case GemmMode::Auto:
        // Thin channel dimensions never reach the tensor cores.
        fast = k >= channelThreshold;
        break;
    }
    if (fast) {
        ++fastCalls;
        fastPath.add(1);
        gemmFast(a, b, c, m, k, n);
    } else {
        ++scalarCalls;
        scalarPath.add(1);
        gemmScalar(a, b, c, m, k, n);
    }
}

Matrix
GemmEngine::multiply(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.rows()) {
        fatal("GemmEngine::multiply: %zux%zu times %zux%zu", a.rows(),
              a.cols(), b.rows(), b.cols());
    }
    Matrix c(a.rows(), b.cols());
    gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
    return c;
}

Matrix
GemmEngine::multiplyTransposed(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.cols()) {
        fatal("GemmEngine::multiplyTransposed: %zux%zu times (%zux%zu)^T",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    // C = A * B^T; materialize B^T once and reuse the main kernel.
    Matrix bt(b.cols(), b.rows());
    for (std::size_t i = 0; i < b.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            bt.at(j, i) = b.at(i, j);
        }
    }
    return multiply(a, bt);
}

Matrix
GemmEngine::multiplyLeftTransposed(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows()) {
        fatal("GemmEngine::multiplyLeftTransposed: (%zux%zu)^T times "
              "%zux%zu",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    Matrix at(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            at.at(j, i) = a.at(i, j);
        }
    }
    return multiply(at, b);
}

double
GemmEngine::fastPathUtilization() const
{
    const std::uint64_t total = fastCalls + scalarCalls;
    if (total == 0) {
        return 0.0;
    }
    return static_cast<double>(fastCalls) / static_cast<double>(total);
}

void
GemmEngine::resetStats()
{
    fastCalls = 0;
    scalarCalls = 0;
}

GemmEngine &
GemmEngine::globalEngine()
{
    static GemmEngine engine(GemmMode::Scalar);
    return engine;
}

} // namespace nn
} // namespace edgepc
