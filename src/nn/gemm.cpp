#include "nn/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <immintrin.h>
#include <string_view>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {
namespace nn {

GemmEngine::GemmEngine(GemmMode mode, std::size_t channel_threshold)
    : policy(mode), channelThreshold(channel_threshold)
{
}

namespace {

/// Microkernel rows: 6 broadcast lanes keep 12 of 16 ymm registers as
/// accumulators with room for two B loads and the A broadcast.
constexpr std::size_t kMR = 6;

/// Microkernel columns: one packed B panel is two ymm vectors wide, so
/// a panel row (64 bytes) is exactly one cache line.
constexpr std::size_t kNR = 16;

/// Rows per tile-grid block: 8 microkernel blocks, sized so the packed
/// A block plus one B panel stay cache resident while C streams.
constexpr std::size_t kMC = 8 * kMR;

/// Column-register blocking of the small-M (GEMV-like) fast kernel.
constexpr std::size_t kSmallMJB = 64;

bool
fmaAvailable()
{
    static const bool available = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma");
    return available;
}

GemmDispatchPath
initialPathFromEnv()
{
    const char *env = std::getenv("EDGEPC_GEMM");
    if (env == nullptr) {
        return GemmDispatchPath::Auto;
    }
    const std::string_view v(env);
    if (v == "scalar") {
        return GemmDispatchPath::ForceScalar;
    }
    if (v == "fast" || v == "force" || v == "avx2") {
        if (!fmaAvailable()) {
            warn("EDGEPC_GEMM=%s requested but the CPU lacks AVX2+FMA; "
                 "falling back to auto dispatch",
                 env);
            return GemmDispatchPath::Auto;
        }
        return GemmDispatchPath::ForceFast;
    }
    if (v != "auto") {
        warn("EDGEPC_GEMM=%s not understood (want scalar|fast|auto); "
             "using auto",
             env);
    }
    return GemmDispatchPath::Auto;
}

std::atomic<GemmDispatchPath> &
pathState()
{
    static std::atomic<GemmDispatchPath> state{initialPathFromEnv()};
    return state;
}

bool
initialFusedFromEnv()
{
    const char *env = std::getenv("EDGEPC_GEMM_EPILOGUE");
    if (env == nullptr) {
        return true;
    }
    const std::string_view v(env);
    if (v == "split") {
        return false;
    }
    if (v != "fused") {
        warn("EDGEPC_GEMM_EPILOGUE=%s not understood (want fused|split); "
             "using fused",
             env);
    }
    return true;
}

std::atomic<bool> &
fusedState()
{
    static std::atomic<bool> state{initialFusedFromEnv()};
    return state;
}

/**
 * Pack one B column panel (kNR columns starting at panel * kNR) into
 * panel-major layout: dst[kk * kNR + jj], zero-padded to kNR columns so
 * the microkernel never branches on N remainders. The transposed
 * flavour reads B stored as N x K (operand of A * B^T) straight from
 * its rows — no materialized transpose.
 */
inline void
packBPanel(const float *__restrict b, bool b_transposed, std::size_t k,
           std::size_t n, std::size_t ldb, std::size_t panel,
           float *__restrict dst)
{
    const std::size_t j0 = panel * kNR;
    const std::size_t cols = std::min(kNR, n - j0);
    if (!b_transposed) {
        // EDGEPC_HOT: panel pack, contiguous row copies.
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *src = b + kk * ldb + j0;
            float *d = dst + kk * kNR;
            for (std::size_t jj = 0; jj < cols; ++jj) {
                d[jj] = src[jj];
            }
            for (std::size_t jj = cols; jj < kNR; ++jj) {
                d[jj] = 0.0f;
            }
        }
        return;
    }
    // EDGEPC_HOT: transposed panel pack, contiguous reads of B's rows.
    for (std::size_t jj = 0; jj < cols; ++jj) {
        const float *src = b + (j0 + jj) * ldb;
        for (std::size_t kk = 0; kk < k; ++kk) {
            dst[kk * kNR + jj] = src[kk];
        }
    }
    for (std::size_t jj = cols; jj < kNR; ++jj) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            dst[kk * kNR + jj] = 0.0f;
        }
    }
}

/**
 * Pack one A row block (kMR rows starting at i0) into k-major layout:
 * dst[kk * kMR + ii], zero-padded to kMR rows. The transposed flavour
 * reads A stored as K x M (operand of A^T * B) straight from its rows.
 */
inline void
packABlock(const float *__restrict a, bool a_transposed, std::size_t k,
           std::size_t lda, std::size_t i0, std::size_t rows,
           float *__restrict dst)
{
    if (!a_transposed) {
        if (rows == kMR) {
            // EDGEPC_HOT: full-height pack, six streaming read
            // cursors and contiguous writes (one kMR group per kk).
            const float *r0 = a + (i0 + 0) * lda;
            const float *r1 = a + (i0 + 1) * lda;
            const float *r2 = a + (i0 + 2) * lda;
            const float *r3 = a + (i0 + 3) * lda;
            const float *r4 = a + (i0 + 4) * lda;
            const float *r5 = a + (i0 + 5) * lda;
            for (std::size_t kk = 0; kk < k; ++kk) {
                float *d = dst + kk * kMR;
                d[0] = r0[kk];
                d[1] = r1[kk];
                d[2] = r2[kk];
                d[3] = r3[kk];
                d[4] = r4[kk];
                d[5] = r5[kk];
            }
            return;
        }
        // EDGEPC_HOT: remainder row-block pack.
        for (std::size_t kk = 0; kk < k; ++kk) {
            float *d = dst + kk * kMR;
            for (std::size_t ii = 0; ii < rows; ++ii) {
                d[ii] = a[(i0 + ii) * lda + kk];
            }
        }
    } else {
        // EDGEPC_HOT: transposed row-block pack, contiguous per kk.
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *src = a + kk * lda + i0;
            float *d = dst + kk * kMR;
            for (std::size_t ii = 0; ii < rows; ++ii) {
                d[ii] = src[ii];
            }
        }
    }
    for (std::size_t ii = rows; ii < kMR; ++ii) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            dst[kk * kMR + ii] = 0.0f;
        }
    }
}

/**
 * Structured scalar microkernel (the CUDA-core stand-in): one
 * accumulator per C element, k strictly ascending, so with FP
 * contraction off it is bit-exact with the classic in-order loop nest.
 */
inline void
microKernelScalar(const float *__restrict apack,
                  const float *__restrict bpanel, std::size_t k,
                  float *__restrict acc)
{
    for (std::size_t i = 0; i < kMR * kNR; ++i) {
        acc[i] = 0.0f;
    }
    // EDGEPC_HOT: full-K register-tile accumulation. Two rows at a
    // time: 2 x kNR accumulators fit the baseline vector register
    // file, so they stay in registers across the whole K loop and
    // each packed B row is loaded once per pair.
    for (std::size_t ii = 0; ii < kMR; ii += 2) {
        float *acc0 = acc + ii * kNR;
        float *acc1 = acc + (ii + 1) * kNR;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av0 = apack[kk * kMR + ii];
            const float av1 = apack[kk * kMR + ii + 1];
            const float *brow = bpanel + kk * kNR;
            for (std::size_t jj = 0; jj < kNR; ++jj) {
                acc0[jj] += av0 * brow[jj];
                acc1[jj] += av1 * brow[jj];
            }
        }
    }
}

/**
 * 6x16 AVX2+FMA microkernel (the Tensor-core stand-in): 12 ymm
 * accumulators, two B vector loads and one A broadcast per k step; the
 * full K reduction stays in registers.
 */
__attribute__((target("avx2,fma"))) void
microKernelFma(const float *__restrict apack,
               const float *__restrict bpanel, std::size_t k,
               float *__restrict acc)
{
    __m256 c0a = _mm256_setzero_ps();
    __m256 c0b = _mm256_setzero_ps();
    __m256 c1a = _mm256_setzero_ps();
    __m256 c1b = _mm256_setzero_ps();
    __m256 c2a = _mm256_setzero_ps();
    __m256 c2b = _mm256_setzero_ps();
    __m256 c3a = _mm256_setzero_ps();
    __m256 c3b = _mm256_setzero_ps();
    __m256 c4a = _mm256_setzero_ps();
    __m256 c4b = _mm256_setzero_ps();
    __m256 c5a = _mm256_setzero_ps();
    __m256 c5b = _mm256_setzero_ps();
    // EDGEPC_HOT: full-K register-tile accumulation.
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float *arow = apack + kk * kMR;
        const __m256 b0 = _mm256_load_ps(bpanel + kk * kNR);
        const __m256 b1 = _mm256_load_ps(bpanel + kk * kNR + 8);
        __m256 av = _mm256_broadcast_ss(arow + 0);
        c0a = _mm256_fmadd_ps(av, b0, c0a);
        c0b = _mm256_fmadd_ps(av, b1, c0b);
        av = _mm256_broadcast_ss(arow + 1);
        c1a = _mm256_fmadd_ps(av, b0, c1a);
        c1b = _mm256_fmadd_ps(av, b1, c1b);
        av = _mm256_broadcast_ss(arow + 2);
        c2a = _mm256_fmadd_ps(av, b0, c2a);
        c2b = _mm256_fmadd_ps(av, b1, c2b);
        av = _mm256_broadcast_ss(arow + 3);
        c3a = _mm256_fmadd_ps(av, b0, c3a);
        c3b = _mm256_fmadd_ps(av, b1, c3b);
        av = _mm256_broadcast_ss(arow + 4);
        c4a = _mm256_fmadd_ps(av, b0, c4a);
        c4b = _mm256_fmadd_ps(av, b1, c4b);
        av = _mm256_broadcast_ss(arow + 5);
        c5a = _mm256_fmadd_ps(av, b0, c5a);
        c5b = _mm256_fmadd_ps(av, b1, c5b);
    }
    _mm256_store_ps(acc + 0 * kNR, c0a);
    _mm256_store_ps(acc + 0 * kNR + 8, c0b);
    _mm256_store_ps(acc + 1 * kNR, c1a);
    _mm256_store_ps(acc + 1 * kNR + 8, c1b);
    _mm256_store_ps(acc + 2 * kNR, c2a);
    _mm256_store_ps(acc + 2 * kNR + 8, c2b);
    _mm256_store_ps(acc + 3 * kNR, c3a);
    _mm256_store_ps(acc + 3 * kNR + 8, c3b);
    _mm256_store_ps(acc + 4 * kNR, c4a);
    _mm256_store_ps(acc + 4 * kNR + 8, c4b);
    _mm256_store_ps(acc + 5 * kNR, c5a);
    _mm256_store_ps(acc + 5 * kNR + 8, c5b);
}

/**
 * Full-tile FMA microkernel: same 6x16 register tile, but the
 * epilogue is applied and the result stored straight from the
 * accumulator registers — no scratch round trip. Used whenever the
 * tile has no M or N remainder (the overwhelmingly common case).
 */
__attribute__((target("avx2,fma"))) void
microKernelFmaFull(const float *__restrict apack,
                   const float *__restrict bpanel, std::size_t k,
                   float *__restrict c, std::size_t ldc,
                   const float *__restrict bias, GemmEpilogue epilogue,
                   bool accumulate)
{
    __m256 c0a = _mm256_setzero_ps();
    __m256 c0b = _mm256_setzero_ps();
    __m256 c1a = _mm256_setzero_ps();
    __m256 c1b = _mm256_setzero_ps();
    __m256 c2a = _mm256_setzero_ps();
    __m256 c2b = _mm256_setzero_ps();
    __m256 c3a = _mm256_setzero_ps();
    __m256 c3b = _mm256_setzero_ps();
    __m256 c4a = _mm256_setzero_ps();
    __m256 c4b = _mm256_setzero_ps();
    __m256 c5a = _mm256_setzero_ps();
    __m256 c5b = _mm256_setzero_ps();
    // EDGEPC_HOT: full-K register-tile accumulation.
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float *arow = apack + kk * kMR;
        const __m256 b0 = _mm256_load_ps(bpanel + kk * kNR);
        const __m256 b1 = _mm256_load_ps(bpanel + kk * kNR + 8);
        __m256 av = _mm256_broadcast_ss(arow + 0);
        c0a = _mm256_fmadd_ps(av, b0, c0a);
        c0b = _mm256_fmadd_ps(av, b1, c0b);
        av = _mm256_broadcast_ss(arow + 1);
        c1a = _mm256_fmadd_ps(av, b0, c1a);
        c1b = _mm256_fmadd_ps(av, b1, c1b);
        av = _mm256_broadcast_ss(arow + 2);
        c2a = _mm256_fmadd_ps(av, b0, c2a);
        c2b = _mm256_fmadd_ps(av, b1, c2b);
        av = _mm256_broadcast_ss(arow + 3);
        c3a = _mm256_fmadd_ps(av, b0, c3a);
        c3b = _mm256_fmadd_ps(av, b1, c3b);
        av = _mm256_broadcast_ss(arow + 4);
        c4a = _mm256_fmadd_ps(av, b0, c4a);
        c4b = _mm256_fmadd_ps(av, b1, c4b);
        av = _mm256_broadcast_ss(arow + 5);
        c5a = _mm256_fmadd_ps(av, b0, c5a);
        c5b = _mm256_fmadd_ps(av, b1, c5b);
    }
    const __m256 zero = _mm256_setzero_ps();
    __m256 bias0 = zero;
    __m256 bias1 = zero;
    if (epilogue != GemmEpilogue::None) {
        bias0 = _mm256_loadu_ps(bias);
        bias1 = _mm256_loadu_ps(bias + 8);
    }
    float *crow = c;
    __m256 va = c0a;
    __m256 vb = c0b;
    // EDGEPC_HOT: register-direct tile store + fused epilogue.
    for (std::size_t ii = 0; ii < kMR; ++ii) {
        switch (ii) {
          case 0:
            va = c0a;
            vb = c0b;
            break;
          case 1:
            va = c1a;
            vb = c1b;
            break;
          case 2:
            va = c2a;
            vb = c2b;
            break;
          case 3:
            va = c3a;
            vb = c3b;
            break;
          case 4:
            va = c4a;
            vb = c4b;
            break;
          default:
            va = c5a;
            vb = c5b;
            break;
        }
        if (accumulate) {
            va = _mm256_add_ps(va, _mm256_loadu_ps(crow));
            vb = _mm256_add_ps(vb, _mm256_loadu_ps(crow + 8));
        }
        if (epilogue != GemmEpilogue::None) {
            va = _mm256_add_ps(va, bias0);
            vb = _mm256_add_ps(vb, bias1);
            if (epilogue == GemmEpilogue::BiasRelu) {
                va = _mm256_max_ps(va, zero);
                vb = _mm256_max_ps(vb, zero);
            }
        }
        _mm256_storeu_ps(crow, va);
        _mm256_storeu_ps(crow + 8, vb);
        crow += ldc;
    }
}

/**
 * Store one accumulated tile into C with the fused epilogue applied
 * while the tile is still hot. Baseline-ISA build, also the remainder
 * path of the vectorized store below. The bias add is a single plain
 * add per element — identical arithmetic to a separate bias pass.
 */
inline void
storeTileScalar(const float *__restrict acc, float *__restrict c,
                std::size_t n, std::size_t i0, std::size_t j0,
                std::size_t rows, std::size_t cols,
                const float *__restrict bias, GemmEpilogue epilogue,
                bool accumulate)
{
    // EDGEPC_HOT: tile store + fused epilogue.
    for (std::size_t ii = 0; ii < rows; ++ii) {
        float *crow = c + (i0 + ii) * n + j0;
        const float *accrow = acc + ii * kNR;
        for (std::size_t jj = 0; jj < cols; ++jj) {
            float v = accrow[jj];
            if (accumulate) {
                v += crow[jj];
            }
            if (epilogue != GemmEpilogue::None) {
                v += bias[jj];
                if (epilogue == GemmEpilogue::BiasRelu) {
                    v = v > 0.0f ? v : 0.0f;
                }
            }
            crow[jj] = v;
        }
    }
}

/** Vectorized tile store for the FMA path (full-width panels). */
__attribute__((target("avx2,fma"))) void
storeTileFma(const float *__restrict acc, float *__restrict c,
             std::size_t n, std::size_t i0, std::size_t j0,
             std::size_t rows, std::size_t cols,
             const float *__restrict bias, GemmEpilogue epilogue,
             bool accumulate)
{
    if (cols != kNR) {
        storeTileScalar(acc, c, n, i0, j0, rows, cols, bias, epilogue,
                        accumulate);
        return;
    }
    const __m256 zero = _mm256_setzero_ps();
    __m256 bias0 = zero;
    __m256 bias1 = zero;
    if (epilogue != GemmEpilogue::None) {
        bias0 = _mm256_loadu_ps(bias);
        bias1 = _mm256_loadu_ps(bias + 8);
    }
    // EDGEPC_HOT: tile store + fused epilogue.
    for (std::size_t ii = 0; ii < rows; ++ii) {
        float *crow = c + (i0 + ii) * n + j0;
        __m256 v0 = _mm256_load_ps(acc + ii * kNR);
        __m256 v1 = _mm256_load_ps(acc + ii * kNR + 8);
        if (accumulate) {
            v0 = _mm256_add_ps(v0, _mm256_loadu_ps(crow));
            v1 = _mm256_add_ps(v1, _mm256_loadu_ps(crow + 8));
        }
        if (epilogue != GemmEpilogue::None) {
            v0 = _mm256_add_ps(v0, bias0);
            v1 = _mm256_add_ps(v1, bias1);
            if (epilogue == GemmEpilogue::BiasRelu) {
                v0 = _mm256_max_ps(v0, zero);
                v1 = _mm256_max_ps(v1, zero);
            }
        }
        _mm256_storeu_ps(crow, v0);
        _mm256_storeu_ps(crow + 8, v1);
    }
}

/** Everything one tile-grid worker needs; captured as one reference so
 *  the parallelFor closure stays inside std::function's inline buffer
 *  (no heap allocation per call). */
struct PackedGemmCtx
{
    const float *a;
    bool aTransposed;
    std::size_t lda;
    const float *bpack;
    float *c;
    std::size_t m;
    std::size_t k;
    std::size_t n;
    std::size_t panels;
    std::size_t groups;
    std::size_t panelsPerGroup;
    GemmEpilogue epilogue;
    const float *bias;
    bool accumulate;
    bool useFma;
};

/** One chunk of the 2-D (row-block x column-panel-group) tile grid. */
void
runTileChunk(const PackedGemmCtx &ctx, std::size_t lo, std::size_t hi)
{
    ScratchArena &arena = ScratchArena::local();
    ScratchArena::Frame frame(arena);
    float *apack = arena.alloc<float>(kMR * ctx.k).data();
    alignas(32) float acc[kMR * kNR];
    std::size_t packedBlock = ctx.m; // row block currently in apack
    for (std::size_t t = lo; t < hi; ++t) {
        const std::size_t ib = t / ctx.groups;
        const std::size_t g = t % ctx.groups;
        const std::size_t row_lo = ib * kMC;
        const std::size_t row_hi = std::min(ctx.m, row_lo + kMC);
        const std::size_t p_lo = g * ctx.panelsPerGroup;
        const std::size_t p_hi =
            std::min(ctx.panels, p_lo + ctx.panelsPerGroup);
        if (p_lo >= p_hi) {
            continue;
        }
        for (std::size_t i0 = row_lo; i0 < row_hi; i0 += kMR) {
            const std::size_t rows = std::min(kMR, row_hi - i0);
            if (packedBlock != i0) {
                packABlock(ctx.a, ctx.aTransposed, ctx.k, ctx.lda, i0,
                           rows, apack);
                packedBlock = i0;
            }
            for (std::size_t p = p_lo; p < p_hi; ++p) {
                const float *bpanel = ctx.bpack + p * ctx.k * kNR;
                const std::size_t j0 = p * kNR;
                const std::size_t cols = std::min(kNR, ctx.n - j0);
                const float *bias =
                    ctx.bias != nullptr ? ctx.bias + j0 : nullptr;
                if (ctx.useFma) {
                    if (rows == kMR && cols == kNR) {
                        microKernelFmaFull(apack, bpanel, ctx.k,
                                           ctx.c + i0 * ctx.n + j0,
                                           ctx.n, bias, ctx.epilogue,
                                           ctx.accumulate);
                        continue;
                    }
                    microKernelFma(apack, bpanel, ctx.k, acc);
                    storeTileFma(acc, ctx.c, ctx.n, i0, j0, rows, cols,
                                 bias, ctx.epilogue, ctx.accumulate);
                } else {
                    microKernelScalar(apack, bpanel, ctx.k, acc);
                    storeTileScalar(acc, ctx.c, ctx.n, i0, j0, rows, cols,
                                    bias, ctx.epilogue, ctx.accumulate);
                }
            }
        }
    }
}

/**
 * Streaming small-M kernel, scalar build: for M below the microkernel
 * height, packing B would touch every element of B for almost no
 * reuse, so stream the operands instead. Accumulation order per C
 * element is k-ascending with one accumulator — bit-exact with the
 * classic nest.
 */
void
smallMScalar(const float *__restrict a, bool a_transposed,
             std::size_t lda, const float *__restrict b,
             bool b_transposed, std::size_t ldb, float *__restrict c,
             std::size_t m, std::size_t k, std::size_t n,
             GemmEpilogue epilogue, const float *__restrict bias,
             bool accumulate)
{
    if (!b_transposed) {
        // The classic cache-tiled nest, accumulating straight into C:
        // the k tiling keeps B access confined to a 64-row band at a
        // time (prefetcher-friendly), and per C element the k order
        // is strictly ascending, so the result is bit-exact with the
        // packed scalar microkernel.
        constexpr std::size_t tile_k = 64;
        constexpr std::size_t tile_n = 64;
        if (!accumulate) {
            for (std::size_t i = 0; i < m; ++i) {
                std::memset(c + i * n, 0, n * sizeof(float));
            }
        }
        // EDGEPC_HOT: cache-tiled streaming accumulation.
        for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
            const std::size_t kend = std::min(k, k0 + tile_k);
            for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
                const std::size_t jend = std::min(n, j0 + tile_n);
                for (std::size_t i = 0; i < m; ++i) {
                    float *crow = c + i * n;
                    for (std::size_t kk = k0; kk < kend; ++kk) {
                        const float av = a_transposed ? a[kk * lda + i]
                                                      : a[i * lda + kk];
                        const float *brow = b + kk * ldb;
                        for (std::size_t j = j0; j < jend; ++j) {
                            crow[j] += av * brow[j];
                        }
                    }
                }
            }
        }
    } else {
        // B stored N x K: contiguous dot products per column.
        // EDGEPC_HOT: streaming dot-product accumulation.
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                const float *brow = b + j * ldb;
                float s = 0.0f;
                for (std::size_t kk = 0; kk < k; ++kk) {
                    const float av =
                        a_transposed ? a[kk * lda + i] : a[i * lda + kk];
                    s += av * brow[kk];
                }
                crow[j] = accumulate ? crow[j] + s : s;
            }
        }
    }
    if (epilogue != GemmEpilogue::None) {
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                float v = crow[j] + bias[j];
                if (epilogue == GemmEpilogue::BiasRelu) {
                    v = v > 0.0f ? v : 0.0f;
                }
                crow[j] = v;
            }
        }
    }
}

/**
 * Streaming small-M kernel, FMA build (B not transposed): register-
 * blocks 64 output columns in 8 ymm accumulators per row, so B is
 * streamed once per row with no intermediate C traffic — the M = 1
 * classifier head runs at load-port speed instead of store speed.
 */
__attribute__((target("avx2,fma"))) void
smallMFma(const float *__restrict a, bool a_transposed, std::size_t lda,
          const float *__restrict b, float *__restrict c, std::size_t m,
          std::size_t k, std::size_t n, GemmEpilogue epilogue,
          const float *__restrict bias, bool accumulate)
{
    const __m256 zero = _mm256_setzero_ps();
    for (std::size_t i = 0; i < m; ++i) {
        float *crow = c + i * n;
        const float *acol = a_transposed ? a + i : a + i * lda;
        const std::size_t astride = a_transposed ? lda : 1;
        std::size_t j0 = 0;
        // EDGEPC_HOT: column-register-blocked streaming accumulation.
        for (; j0 + kSmallMJB <= n; j0 += kSmallMJB) {
            __m256 s0 = zero;
            __m256 s1 = zero;
            __m256 s2 = zero;
            __m256 s3 = zero;
            __m256 s4 = zero;
            __m256 s5 = zero;
            __m256 s6 = zero;
            __m256 s7 = zero;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const __m256 av = _mm256_broadcast_ss(acol + kk * astride);
                const float *brow = b + kk * n + j0;
                s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), s0);
                s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), s1);
                s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), s2);
                s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), s3);
                s4 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 32), s4);
                s5 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 40), s5);
                s6 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 48), s6);
                s7 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 56), s7);
            }
            alignas(32) float tile[kSmallMJB];
            _mm256_store_ps(tile, s0);
            _mm256_store_ps(tile + 8, s1);
            _mm256_store_ps(tile + 16, s2);
            _mm256_store_ps(tile + 24, s3);
            _mm256_store_ps(tile + 32, s4);
            _mm256_store_ps(tile + 40, s5);
            _mm256_store_ps(tile + 48, s6);
            _mm256_store_ps(tile + 56, s7);
            for (std::size_t jj = 0; jj < kSmallMJB; ++jj) {
                float v = tile[jj];
                if (accumulate) {
                    v += crow[j0 + jj];
                }
                if (epilogue != GemmEpilogue::None) {
                    v += bias[j0 + jj];
                    if (epilogue == GemmEpilogue::BiasRelu) {
                        v = v > 0.0f ? v : 0.0f;
                    }
                }
                crow[j0 + jj] = v;
            }
        }
        for (; j0 < n; ++j0) {
            float s = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) {
                s += acol[kk * astride] * b[kk * n + j0];
            }
            if (accumulate) {
                s += crow[j0];
            }
            if (epilogue != GemmEpilogue::None) {
                s += bias[j0];
                if (epilogue == GemmEpilogue::BiasRelu) {
                    s = s > 0.0f ? s : 0.0f;
                }
            }
            crow[j0] = s;
        }
    }
}

/**
 * The packed GEMM driver: pack B once into cache-resident column
 * panels (thread-local arena, reused across all row blocks), then walk
 * a 2-D (row-block x column-panel-group) tile grid in parallel. Column
 * groups only split off when there are too few row blocks to feed the
 * pool, so results never depend on the thread count (each C tile has
 * exactly one writer).
 */
void
gemmPacked(const float *a, bool a_transposed, const float *b,
           bool b_transposed, float *c, std::size_t m, std::size_t k,
           std::size_t n, GemmEpilogue epilogue, const float *bias,
           bool accumulate, bool use_fma)
{
    const std::size_t lda = a_transposed ? m : k;
    const std::size_t ldb = b_transposed ? k : n;
    if (m < kMR) {
        // Packing B would touch all of B for < kMR rows of reuse.
        if (use_fma && !b_transposed) {
            smallMFma(a, a_transposed, lda, b, c, m, k, n, epilogue, bias,
                      accumulate);
        } else {
            smallMScalar(a, a_transposed, lda, b, b_transposed, ldb, c, m,
                         k, n, epilogue, bias, accumulate);
        }
        return;
    }

    ScratchArena &arena = ScratchArena::local();
    ScratchArena::Frame frame(arena);
    const std::size_t panels = (n + kNR - 1) / kNR;
    float *bpack = arena.alloc<float>(panels * k * kNR).data();
    for (std::size_t p = 0; p < panels; ++p) {
        packBPanel(b, b_transposed, k, n, ldb, p, bpack + p * k * kNR);
    }

    const std::size_t mblocks = (m + kMC - 1) / kMC;
    const std::size_t conc = ThreadPool::globalPool().concurrency();
    std::size_t groups = 1;
    if (mblocks < conc * 2) {
        groups = std::min(panels, (conc * 2 + mblocks - 1) / mblocks);
    }
    const std::size_t panelsPerGroup = (panels + groups - 1) / groups;

    const PackedGemmCtx ctx{a,      a_transposed, lda,
                            bpack,  c,            m,
                            k,      n,            panels,
                            groups, panelsPerGroup, epilogue,
                            bias,   accumulate,   use_fma};
    ThreadPool::globalPool().parallelForChunked(
        0, mblocks * groups,
        [&ctx](std::size_t lo, std::size_t hi) {
            runTileChunk(ctx, lo, hi);
        },
        0);
}

} // namespace

void
GemmEngine::run(const float *a, bool a_transposed, const float *b,
                bool b_transposed, float *c, std::size_t m, std::size_t k,
                std::size_t n, GemmEpilogue epilogue, const float *bias,
                bool accumulate)
{
    if (m == 0 || n == 0 || k == 0) {
        return;
    }
    EDGEPC_TRACE_SCOPE("gemm", "nn");
    // References cached once: metric objects live for the process.
    static obs::Counter &flops =
        obs::MetricsRegistry::global().counter("gemm.flops");
    static obs::Counter &fastPath =
        obs::MetricsRegistry::global().counter("gemm.fast_path_calls");
    static obs::Counter &scalarPath =
        obs::MetricsRegistry::global().counter("gemm.scalar_path_calls");
    static obs::Counter &fusedCalls =
        obs::MetricsRegistry::global().counter("gemm.fused_epilogue_calls");
    flops.add(2ull * m * k * n);
    if (epilogue != GemmEpilogue::None) {
        fusedCalls.add(1);
    }
    bool fast = false;
    switch (policy) {
      case GemmMode::Scalar:
        fast = false;
        break;
      case GemmMode::Fast:
        fast = true;
        break;
      case GemmMode::Auto:
        // Thin channel dimensions never reach the tensor cores.
        fast = k >= channelThreshold;
        break;
    }
    // The counters track the policy decision (the device model); the
    // process-wide dispatch override only swaps the executed build.
    if (fast) {
        ++fastCalls;
        fastPath.add(1);
    } else {
        ++scalarCalls;
        scalarPath.add(1);
    }
    bool use_fma = false;
    switch (dispatchPath()) {
      case GemmDispatchPath::ForceScalar:
        use_fma = false;
        break;
      case GemmDispatchPath::ForceFast:
        use_fma = fmaAvailable();
        break;
      case GemmDispatchPath::Auto:
        use_fma = fast && fmaAvailable();
        break;
    }
    gemmPacked(a, a_transposed, b, b_transposed, c, m, k, n, epilogue,
               bias, accumulate, use_fma);
}

void
GemmEngine::gemm(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k, std::size_t n)
{
    run(a, false, b, false, c, m, k, n, GemmEpilogue::None, nullptr,
        false);
}

void
GemmEngine::gemm(const float *a, const float *b, float *c, std::size_t m,
                 std::size_t k, std::size_t n, GemmEpilogue epilogue,
                 const float *bias)
{
    if (epilogue != GemmEpilogue::None && bias == nullptr) {
        raise(ErrorCode::InvalidArgument,
              "GemmEngine::gemm: bias epilogue requested without a bias "
              "vector");
    }
    run(a, false, b, false, c, m, k, n, epilogue, bias, false);
}

Matrix
GemmEngine::multiply(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.rows()) {
        fatal("GemmEngine::multiply: %zux%zu times %zux%zu", a.rows(),
              a.cols(), b.rows(), b.cols());
    }
    Matrix c(a.rows(), b.cols());
    run(a.data(), false, b.data(), false, c.data(), a.rows(), a.cols(),
        b.cols(), GemmEpilogue::None, nullptr, false);
    return c;
}

Matrix
GemmEngine::multiply(const Matrix &a, const Matrix &b,
                     GemmEpilogue epilogue, const Matrix &bias)
{
    if (a.cols() != b.rows()) {
        fatal("GemmEngine::multiply: %zux%zu times %zux%zu", a.rows(),
              a.cols(), b.rows(), b.cols());
    }
    if (epilogue != GemmEpilogue::None &&
        (bias.rows() != 1 || bias.cols() != b.cols())) {
        fatal("GemmEngine::multiply: bias %zux%zu does not match output "
              "width %zu",
              bias.rows(), bias.cols(), b.cols());
    }
    Matrix c(a.rows(), b.cols());
    run(a.data(), false, b.data(), false, c.data(), a.rows(), a.cols(),
        b.cols(), epilogue,
        epilogue != GemmEpilogue::None ? bias.data() : nullptr, false);
    return c;
}

Matrix
GemmEngine::multiplyTransposed(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.cols()) {
        fatal("GemmEngine::multiplyTransposed: %zux%zu times (%zux%zu)^T",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    // C = A * B^T: the packing step reads B's rows directly, so no
    // transposed copy is ever materialized.
    Matrix c(a.rows(), b.rows());
    run(a.data(), false, b.data(), true, c.data(), a.rows(), a.cols(),
        b.rows(), GemmEpilogue::None, nullptr, false);
    return c;
}

Matrix
GemmEngine::multiplyLeftTransposed(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows()) {
        fatal("GemmEngine::multiplyLeftTransposed: (%zux%zu)^T times "
              "%zux%zu",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    // C = A^T * B: the packing step reads A's columns directly.
    Matrix c(a.cols(), b.cols());
    run(a.data(), true, b.data(), false, c.data(), a.cols(), a.rows(),
        b.cols(), GemmEpilogue::None, nullptr, false);
    return c;
}

void
GemmEngine::multiplyLeftTransposedAdd(const Matrix &a, const Matrix &b,
                                      Matrix &out)
{
    if (a.rows() != b.rows()) {
        fatal("GemmEngine::multiplyLeftTransposedAdd: (%zux%zu)^T times "
              "%zux%zu",
              a.rows(), a.cols(), b.rows(), b.cols());
    }
    if (out.rows() != a.cols() || out.cols() != b.cols()) {
        fatal("GemmEngine::multiplyLeftTransposedAdd: output %zux%zu, "
              "want %zux%zu",
              out.rows(), out.cols(), a.cols(), b.cols());
    }
    run(a.data(), true, b.data(), false, out.data(), a.cols(), a.rows(),
        b.cols(), GemmEpilogue::None, nullptr, true);
}

double
GemmEngine::fastPathUtilization() const
{
    const std::uint64_t total = fastCalls + scalarCalls;
    if (total == 0) {
        return 0.0;
    }
    return static_cast<double>(fastCalls) / static_cast<double>(total);
}

void
GemmEngine::resetStats()
{
    fastCalls = 0;
    scalarCalls = 0;
}

GemmEngine &
GemmEngine::globalEngine()
{
    static GemmEngine engine(GemmMode::Scalar);
    return engine;
}

bool
GemmEngine::fastKernelAvailable()
{
    return fmaAvailable();
}

void
GemmEngine::setDispatchPath(GemmDispatchPath path)
{
    if (path == GemmDispatchPath::ForceFast && !fmaAvailable()) {
        raise(ErrorCode::InvalidArgument,
              "GemmEngine::setDispatchPath: ForceFast requested but the "
              "CPU lacks AVX2+FMA");
    }
    pathState().store(path, std::memory_order_relaxed);
}

GemmDispatchPath
GemmEngine::dispatchPath()
{
    return pathState().load(std::memory_order_relaxed);
}

const char *
GemmEngine::activeKernelName()
{
    switch (dispatchPath()) {
      case GemmDispatchPath::ForceScalar:
        return "scalar";
      case GemmDispatchPath::ForceFast:
        return "avx2-fma";
      case GemmDispatchPath::Auto:
        break;
    }
    return fmaAvailable() ? "avx2-fma" : "scalar";
}

bool
GemmEngine::fusedEpilogues()
{
    return fusedState().load(std::memory_order_relaxed);
}

void
GemmEngine::setFusedEpilogues(bool fused)
{
    fusedState().store(fused, std::memory_order_relaxed);
}

const char *
GemmEngine::epilogueModeName()
{
    return fusedEpilogues() ? "fused" : "split";
}

} // namespace nn
} // namespace edgepc
