#include "nn/optimizer.hpp"

namespace edgepc {
namespace nn {

SgdOptimizer::SgdOptimizer(std::vector<Parameter *> params,
                           float learning_rate, float momentum,
                           float weight_decay)
    : parameters(std::move(params)), lr(learning_rate), mom(momentum),
      decay(weight_decay)
{
    velocity.reserve(parameters.size());
    for (const Parameter *p : parameters) {
        velocity.emplace_back(p->value.numel(), 0.0f);
    }
}

void
SgdOptimizer::step()
{
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        Parameter &p = *parameters[i];
        std::vector<float> &vel = velocity[i];
        float *value = p.value.data();
        const float *grad = p.grad.data();
        for (std::size_t j = 0; j < p.value.numel(); ++j) {
            const float g = grad[j] + decay * value[j];
            vel[j] = mom * vel[j] + g;
            value[j] -= lr * vel[j];
        }
    }
}

void
SgdOptimizer::zeroGrad()
{
    for (Parameter *p : parameters) {
        p->zeroGrad();
    }
}

} // namespace nn
} // namespace edgepc
