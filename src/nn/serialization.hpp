/**
 * @file
 * Weight serialization: save and restore the parameters of a model
 * (as collected by collectParameters) in a small binary format, so
 * retrained EdgePC models can be shipped and reloaded.
 *
 * Format: magic "EPCW", a format version, the parameter count, then
 * for each parameter its rows, cols and row-major float32 data.
 * Loading validates every shape against the target model.
 */

#ifndef EDGEPC_NN_SERIALIZATION_HPP
#define EDGEPC_NN_SERIALIZATION_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

/** Write all parameter values to @p path. @return true on success. */
bool saveParameters(const std::vector<Parameter *> &params,
                    const std::string &path);

/** Stream variant (exposed for testing). */
bool saveParameters(const std::vector<Parameter *> &params,
                    std::ostream &os);

/**
 * Read parameter values from @p path into @p params. Fails (returning
 * false, leaving parameters untouched where possible) on magic,
 * version, count or shape mismatch.
 */
bool loadParameters(const std::vector<Parameter *> &params,
                    const std::string &path);

/** Stream variant (exposed for testing). */
bool loadParameters(const std::vector<Parameter *> &params,
                    std::istream &is);

/**
 * Write parameters plus non-learnable state buffers (batch-norm
 * running statistics, collected via Layer::collectBuffers) — the
 * complete state needed to reproduce a trained model's inference.
 */
bool saveModelState(const std::vector<Parameter *> &params,
                    const std::vector<std::vector<float> *> &buffers,
                    const std::string &path);

/** Stream variant (exposed for testing). */
bool saveModelState(const std::vector<Parameter *> &params,
                    const std::vector<std::vector<float> *> &buffers,
                    std::ostream &os);

/** Inverse of saveModelState; validates all shapes. */
bool loadModelState(const std::vector<Parameter *> &params,
                    const std::vector<std::vector<float> *> &buffers,
                    const std::string &path);

/** Stream variant (exposed for testing). */
bool loadModelState(const std::vector<Parameter *> &params,
                    const std::vector<std::vector<float> *> &buffers,
                    std::istream &is);

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_SERIALIZATION_HPP
