/**
 * @file
 * GEMM engine with two execution paths, modelling the CUDA-core vs
 * Tensor-core split of the Jetson board (Sec 5.4.1 / the S+N+F
 * configuration of the paper).
 *
 * Both paths run the same cache-tiled loop nest; the "scalar" path is
 * built for the generic ISA (the CUDA-core stand-in) while the "fast"
 * path is an AVX2+FMA build executing on genuinely wider MAC units
 * (the Tensor-core stand-in, falling back to the generic build when
 * the CPU lacks AVX2). Auto dispatch engages the fast path only when
 * the reduction (channel) dimension K reaches a threshold,
 * reproducing the paper's observation that thin channel dimensions
 * leave the tensor cores idle; utilization counters expose which path
 * ran.
 */

#ifndef EDGEPC_NN_GEMM_HPP
#define EDGEPC_NN_GEMM_HPP

#include <cstddef>
#include <cstdint>

#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

/** GEMM dispatch policy. */
enum class GemmMode
{
    Scalar, ///< Always the generic-ISA path (CUDA-core model).
    Fast,   ///< Always the wide-MAC path (forced Tensor-core model).
    Auto,   ///< Fast path only when K >= the channel threshold.
};

/** Two-path GEMM with dispatch statistics. */
class GemmEngine
{
  public:
    /**
     * Minimum reduction dimension for the fast path in Auto mode. On
     * the Jetson the tensor cores stay idle for thin channel dims; 16
     * (one tensor-core tile) models the observed cutoff.
     */
    static constexpr std::size_t kDefaultChannelThreshold = 16;

    explicit GemmEngine(GemmMode mode = GemmMode::Scalar,
                        std::size_t channel_threshold =
                            kDefaultChannelThreshold);

    /**
     * C = A * B with A: M x K, B: K x N, C: M x N (C overwritten).
     * Parallel over row blocks of A.
     */
    void gemm(const float *a, const float *b, float *c, std::size_t m,
              std::size_t k, std::size_t n);

    /** C = A * B over Matrix operands; shapes validated. */
    Matrix multiply(const Matrix &a, const Matrix &b);

    /** C = A * B^T with A: M x K, B: N x K (used by backward passes). */
    Matrix multiplyTransposed(const Matrix &a, const Matrix &b);

    /** C = A^T * B with A: K x M, B: K x N (weight gradients). */
    Matrix multiplyLeftTransposed(const Matrix &a, const Matrix &b);

    GemmMode mode() const { return policy; }
    void setMode(GemmMode mode) { policy = mode; }

    /** Calls dispatched to the fast (tensor-core) path. */
    std::uint64_t fastPathCalls() const { return fastCalls; }

    /** Calls dispatched to the scalar (CUDA-core) path. */
    std::uint64_t scalarPathCalls() const { return scalarCalls; }

    /** Fraction of calls that used the fast path (utilization proxy). */
    double fastPathUtilization() const;

    /** Reset the dispatch counters. */
    void resetStats();

    /** Process-wide engine used by the layers by default. */
    static GemmEngine &globalEngine();

  private:
    void gemmScalar(const float *a, const float *b, float *c,
                    std::size_t m, std::size_t k, std::size_t n);
    void gemmFast(const float *a, const float *b, float *c, std::size_t m,
                  std::size_t k, std::size_t n);

    GemmMode policy;
    std::size_t channelThreshold;
    std::uint64_t fastCalls = 0;
    std::uint64_t scalarCalls = 0;
};

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_GEMM_HPP
