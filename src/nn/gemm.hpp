/**
 * @file
 * Packed, register-blocked GEMM engine with fused epilogues,
 * modelling the CUDA-core vs Tensor-core split of the Jetson board
 * (Sec 5.4.1 / the S+N+F configuration of the paper).
 *
 * Both execution paths run the same packed algorithm: B is packed
 * once per call into cache-resident column panels (NR = 16 floats
 * wide, allocated from the thread-local ScratchArena so steady state
 * is zero-allocation), A is packed per 6-row block, and a 6x16
 * register-blocked microkernel accumulates the full K reduction in
 * registers before storing each tile exactly once. The "scalar" path
 * (the CUDA-core stand-in) runs a structured scalar microkernel that
 * is bit-exact with the classic in-order loop nest; the "fast" path
 * (the Tensor-core stand-in) runs the AVX2+FMA build of the same
 * tiling. Auto dispatch engages the fast path only when the reduction
 * (channel) dimension K reaches a threshold, reproducing the paper's
 * observation that thin channel dimensions leave the tensor cores
 * idle; utilization counters expose which path ran.
 *
 * Transpose-free variants (A*B^T and A^T*B) pack straight from the
 * transposed operand instead of materializing a transposed copy, so
 * the backward passes allocate nothing beyond their result. Fused
 * epilogues (bias add, bias+ReLU) are applied while each tile is
 * still in registers, collapsing Linear + activation into one pass
 * over C.
 *
 * Dispatch mirrors the geometry/simd_distance convention: the
 * EDGEPC_GEMM=scalar|fast|auto environment variable (read once at
 * startup) or GemmEngine::setDispatchPath() force either microkernel
 * build process-wide for A/B runs and bit-exactness tests, without
 * touching the per-engine CUDA/Tensor-core policy. The
 * EDGEPC_GEMM_EPILOGUE=fused|split variable (or setFusedEpilogues())
 * toggles epilogue fusion for the layers that adopt it.
 */

#ifndef EDGEPC_NN_GEMM_HPP
#define EDGEPC_NN_GEMM_HPP

#include <cstddef>
#include <cstdint>

#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

struct QuantizedWeights; // nn/quant.hpp

/** GEMM dispatch policy (the device model: which units run it). */
enum class GemmMode
{
    Scalar, ///< Always the generic-ISA path (CUDA-core model).
    Fast,   ///< Always the wide-MAC path (forced Tensor-core model).
    Auto,   ///< Fast path only when K >= the channel threshold.
};

/**
 * Process-wide microkernel override (the substrate: which build
 * executes whatever the policy picked). Mirrors simd::DispatchPath.
 */
enum class GemmDispatchPath
{
    Auto,        ///< AVX2+FMA build when the policy asks for fast.
    ForceScalar, ///< Always the structured scalar microkernel.
    ForceFast,   ///< Always the AVX2+FMA build (raises if unsupported).
};

/** Epilogue fused into the tile store of a GEMM call. */
enum class GemmEpilogue
{
    None,     ///< C = A * B.
    Bias,     ///< C = A * B + bias (bias broadcast over rows).
    BiasRelu, ///< C = max(0, A * B + bias).
};

/** Packed two-path GEMM with fused epilogues and dispatch statistics. */
class GemmEngine
{
  public:
    /**
     * Minimum reduction dimension for the fast path in Auto mode. On
     * the Jetson the tensor cores stay idle for thin channel dims; 16
     * (one tensor-core tile) models the observed cutoff.
     */
    static constexpr std::size_t kDefaultChannelThreshold = 16;

    explicit GemmEngine(GemmMode mode = GemmMode::Scalar,
                        std::size_t channel_threshold =
                            kDefaultChannelThreshold);

    /**
     * C = A * B with A: M x K, B: K x N, C: M x N (C overwritten).
     * Parallel over a 2-D (row-block x column-panel) tile grid.
     */
    void gemm(const float *a, const float *b, float *c, std::size_t m,
              std::size_t k, std::size_t n);

    /**
     * C = A * B with a fused epilogue: @p bias (length N, may be null
     * for GemmEpilogue::None) is added — and ReLU applied — while each
     * tile is still in registers, so Linear + activation is one pass
     * over C instead of three.
     */
    void gemm(const float *a, const float *b, float *c, std::size_t m,
              std::size_t k, std::size_t n, GemmEpilogue epilogue,
              const float *bias);

    /** C = A * B over Matrix operands; shapes validated. */
    Matrix multiply(const Matrix &a, const Matrix &b);

    /** C = A * B + epilogue; @p bias is 1 x N (ignored for None). */
    Matrix multiply(const Matrix &a, const Matrix &b,
                    GemmEpilogue epilogue, const Matrix &bias);

    /**
     * C = A * B^T with A: M x K, B: N x K (used by backward passes).
     * Transpose-free: packs straight from B's rows, no materialized
     * transpose.
     */
    Matrix multiplyTransposed(const Matrix &a, const Matrix &b);

    /**
     * C = A^T * B with A: K x M, B: K x N (weight gradients).
     * Transpose-free: packs straight from A's columns.
     */
    Matrix multiplyLeftTransposed(const Matrix &a, const Matrix &b);

    /**
     * out += A^T * B without any temporary: the weight-gradient
     * accumulation of Linear::backward in one pass.
     */
    void multiplyLeftTransposedAdd(const Matrix &a, const Matrix &b,
                                   Matrix &out);

    /**
     * C = dequant(quant(A) * Wq) — the int8 inference route
     * (DESIGN.md §15). A (M x Wq.k) is quantized per call with
     * dynamic 7-bit per-tensor parameters; @p wq comes from a
     * QuantPanelCache build. The dequant(+Bias/BiasRelu) epilogue is
     * always fused into the tile store (the int32 accumulators have
     * to be rescaled while hot anyway), so the output is fp32 and
     * bit-exact across the AVX2 and scalar-int builds.
     */
    Matrix multiplyQuantized(const Matrix &a, const QuantizedWeights &wq,
                             GemmEpilogue epilogue, const Matrix &bias);

    /** Raw-pointer flavour of multiplyQuantized; @p c is m x wq.n. */
    void gemmQuantized(const float *a, std::size_t m,
                       const QuantizedWeights &wq, float *c,
                       GemmEpilogue epilogue, const float *bias);

    GemmMode mode() const { return policy; }
    void setMode(GemmMode mode) { policy = mode; }

    /** Calls dispatched to the fast (tensor-core) path. */
    std::uint64_t fastPathCalls() const { return fastCalls; }

    /** Calls dispatched to the scalar (CUDA-core) path. */
    std::uint64_t scalarPathCalls() const { return scalarCalls; }

    /** Fraction of calls that used the fast path (utilization proxy). */
    double fastPathUtilization() const;

    /** Reset the dispatch counters. */
    void resetStats();

    /** Process-wide engine used by the layers by default. */
    static GemmEngine &globalEngine();

    // ---- process-wide microkernel dispatch (EDGEPC_GEMM convention)

    /** True when the host CPU supports the AVX2+FMA microkernel. */
    static bool fastKernelAvailable();

    /**
     * Override which microkernel build executes (tests / A-B runs).
     * ForceFast on a host without AVX2 raises InvalidArgument. The
     * initial value comes from EDGEPC_GEMM (scalar | fast | auto),
     * read once at startup.
     */
    static void setDispatchPath(GemmDispatchPath path);

    /** Current override (Auto unless forced). */
    static GemmDispatchPath dispatchPath();

    /**
     * "avx2-fma" or "scalar": the build the fast path resolves to —
     * echoed into BENCH_*.json metadata as config.gemm_path.
     */
    static const char *activeKernelName();

    /** True when the host CPU supports the AVX2 maddubs microkernel
        (AVX2 only — the int8 path needs no FMA). */
    static bool int8KernelAvailable();

    /**
     * "avx2-int8" or "scalar-int8": the build gemmQuantized resolves
     * to under the current dispatch path — echoed as
     * config.gemm_int8_kernel.
     */
    static const char *int8KernelName();

    // ---- process-wide epilogue fusion toggle

    /**
     * Whether layers should fuse bias/ReLU epilogues into the GEMM
     * store (default true; EDGEPC_GEMM_EPILOGUE=split disables it for
     * A/B runs). The GEMM itself always honours an explicit epilogue
     * argument — this toggle only steers the call sites.
     */
    static bool fusedEpilogues();
    static void setFusedEpilogues(bool fused);

    /** "fused" or "split" — echoed as config.gemm_epilogue. */
    static const char *epilogueModeName();

  private:
    /**
     * Shared core: policy resolution, counters, then the packed
     * kernel over (possibly transposed) operands.
     */
    void run(const float *a, bool a_transposed, const float *b,
             bool b_transposed, float *c, std::size_t m, std::size_t k,
             std::size_t n, GemmEpilogue epilogue, const float *bias,
             bool accumulate);

    GemmMode policy;
    std::size_t channelThreshold;
    std::uint64_t fastCalls = 0;
    std::uint64_t scalarCalls = 0;
};

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_GEMM_HPP
