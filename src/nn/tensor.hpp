/**
 * @file
 * Dense row-major float matrix — the tensor type of the NN engine.
 *
 * Point-cloud CNN feature maps are all 2-D after flattening batch and
 * neighbor axes (rows = points or point-neighbor pairs, cols = feature
 * channels), so a matrix suffices for the whole engine.
 */

#ifndef EDGEPC_NN_TENSOR_HPP
#define EDGEPC_NN_TENSOR_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace edgepc {
namespace nn {

/** Row-major dense float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Matrix adopting existing data (size must be rows * cols). */
    Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }
    std::size_t numel() const { return buf.size(); }
    bool empty() const { return buf.empty(); }

    float *data() { return buf.data(); }
    const float *data() const { return buf.data(); }

    /** Element accessors. */
    float &at(std::size_t r, std::size_t c) { return buf[r * nCols + c]; }
    float at(std::size_t r, std::size_t c) const
    {
        return buf[r * nCols + c];
    }

    /** Row view. */
    std::span<float> row(std::size_t r)
    {
        return {buf.data() + r * nCols, nCols};
    }
    std::span<const float> row(std::size_t r) const
    {
        return {buf.data() + r * nCols, nCols};
    }

    /** Reset every element to zero, keeping the shape. */
    void setZero();

    /** Fill with N(0, stddev) values. */
    void fillNormal(Rng &rng, float stddev);

    /**
     * Reinterpret as a different shape with the same element count
     * (cheap: no data movement).
     */
    void reshape(std::size_t rows, std::size_t cols);

    /** Elementwise in-place addition; shapes must match. */
    void add(const Matrix &other);

    /** Elementwise in-place scaling. */
    void scale(float factor);

    /** Underlying storage (for serialization). */
    std::vector<float> &storage() { return buf; }
    const std::vector<float> &storage() const { return buf; }

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<float> buf;
};

/** Column-wise concatenation: [a | b]; row counts must match. */
Matrix concatCols(const Matrix &a, const Matrix &b);

/**
 * Split @p m into its first @p left_cols columns and the rest
 * (inverse of concatCols).
 */
std::pair<Matrix, Matrix> splitCols(const Matrix &m, std::size_t left_cols);

/** Repeat the single row of @p row @p copies times. */
Matrix broadcastRow(const Matrix &row, std::size_t copies);

/**
 * Row-wise concatenation: stack the parts top to bottom; column
 * counts must match (empty parts list yields an empty matrix).
 */
Matrix concatRows(std::span<const Matrix> parts);

/** Copy of rows [begin, end) of @p m. */
Matrix sliceRows(const Matrix &m, std::size_t begin, std::size_t end);

/**
 * A learnable parameter: value plus the gradient accumulated by the
 * backward pass. Optimizers consume (value, grad) pairs.
 */
struct Parameter
{
    Matrix value;
    Matrix grad;

    /** Allocate both value and grad at the given shape. */
    void init(std::size_t rows, std::size_t cols);

    /** Zero the gradient. */
    void zeroGrad() { grad.setZero(); }
};

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_TENSOR_HPP
