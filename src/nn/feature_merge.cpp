#include "nn/feature_merge.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace edgepc {
namespace nn {

Matrix
exactLinear(const Matrix &input, const Matrix &weight, const Matrix &bias,
            GemmEngine &engine)
{
    if (input.cols() != weight.rows()) {
        fatal("exactLinear: input C %zu != weight rows %zu", input.cols(),
              weight.rows());
    }
    if (bias.numel() > 0 && GemmEngine::fusedEpilogues()) {
        return engine.multiply(input, weight, GemmEpilogue::Bias, bias);
    }
    Matrix out = engine.multiply(input, weight);
    if (bias.numel() > 0) {
        parallelFor(0, out.rows(), [&](std::size_t r) {
            float *row = out.data() + r * out.cols();
            for (std::size_t c = 0; c < out.cols(); ++c) {
                row[c] += bias.at(0, c);
            }
        });
    }
    return out;
}

Matrix
mergedLinear(const Matrix &input, const Matrix &weight, const Matrix &bias,
             std::size_t merge, GemmEngine &engine)
{
    if (input.cols() != weight.rows()) {
        fatal("mergedLinear: input C %zu != weight rows %zu",
              input.cols(), weight.rows());
    }
    const std::size_t n = input.rows();
    const std::size_t c_in = input.cols();
    const std::size_t c_out = weight.cols();
    merge = std::max<std::size_t>(1, std::min(merge, n));
    if (merge == 1) {
        return exactLinear(input, weight, bias, engine);
    }

    // Merged weight: t vertically stacked copies of W, scaled by 1/t,
    // so (merged row) * W_merged = mean(rows) * W.
    Matrix merged_weight(c_in * merge, c_out);
    const float inv = 1.0f / static_cast<float>(merge);
    for (std::size_t t = 0; t < merge; ++t) {
        for (std::size_t r = 0; r < c_in; ++r) {
            const float *src = weight.data() + r * c_out;
            float *dst =
                merged_weight.data() + (t * c_in + r) * c_out;
            for (std::size_t col = 0; col < c_out; ++col) {
                dst[col] = src[col] * inv;
            }
        }
    }

    // With epilogue fusion the bias rides along in the GEMM store (and
    // gets replicated with the group rows); otherwise a final sweep
    // adds it.
    const bool fuse_bias =
        bias.numel() > 0 && GemmEngine::fusedEpilogues();
    const GemmEpilogue ep =
        fuse_bias ? GemmEpilogue::Bias : GemmEpilogue::None;
    const float *bias_ptr = fuse_bias ? bias.data() : nullptr;

    // Full groups go through the wide GEMM (the row-major layout makes
    // the merge itself a free reinterpretation of the buffer).
    const std::size_t groups = n / merge;
    Matrix out(n, c_out);
    if (groups > 0) {
        Matrix group_out(groups, c_out);
        engine.gemm(input.data(), merged_weight.data(),
                    group_out.data(), groups, c_in * merge, c_out, ep,
                    bias_ptr);
        parallelFor(0, groups, [&](std::size_t g) {
            const float *src = group_out.data() + g * c_out;
            for (std::size_t t = 0; t < merge; ++t) {
                float *dst =
                    out.data() + (g * merge + t) * c_out;
                std::copy(src, src + c_out, dst);
            }
        });
    }

    // Remainder rows (fewer than one group): exact path.
    const std::size_t tail_start = groups * merge;
    if (tail_start < n) {
        const std::size_t tail = n - tail_start;
        Matrix tail_out(tail, c_out);
        engine.gemm(input.data() + tail_start * c_in, weight.data(),
                    tail_out.data(), tail, c_in, c_out, ep, bias_ptr);
        std::copy(tail_out.data(), tail_out.data() + tail_out.numel(),
                  out.data() + tail_start * c_out);
    }

    if (bias.numel() > 0 && !fuse_bias) {
        parallelFor(0, out.rows(), [&](std::size_t r) {
            float *row = out.data() + r * c_out;
            for (std::size_t col = 0; col < c_out; ++col) {
                row[col] += bias.at(0, col);
            }
        });
    }
    return out;
}

double
meanRelativeError(const Matrix &approx, const Matrix &exact)
{
    if (approx.numel() != exact.numel()) {
        fatal("meanRelativeError: shape mismatch (%zu vs %zu)",
              approx.numel(), exact.numel());
    }
    if (exact.numel() == 0) {
        return 0.0;
    }
    double err = 0.0;
    double norm = 0.0;
    for (std::size_t i = 0; i < exact.numel(); ++i) {
        err += std::abs(static_cast<double>(approx.data()[i]) -
                        exact.data()[i]);
        norm += std::abs(static_cast<double>(exact.data()[i]));
    }
    return norm > 0.0 ? err / norm : 0.0;
}

} // namespace nn
} // namespace edgepc
