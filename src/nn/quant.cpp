#include "nn/quant.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/logging.hpp"
#include "nn/gemm.hpp"

namespace edgepc {
namespace nn {

namespace {

QuantMode
initialModeFromEnv()
{
    // EDGEPC_GEMM multiplexes the fp32 microkernel override and the
    // int8 route: "int8" turns quantized inference on process-wide,
    // the fp32 forces ("scalar"/"fast") pin it off, anything else
    // defers to the per-layer config. Unknown values are warned about
    // by the gemm.cpp parse of the same variable.
    const char *env = std::getenv("EDGEPC_GEMM");
    if (env == nullptr) {
        return QuantMode::Auto;
    }
    const std::string_view v(env);
    if (v == "int8") {
        return QuantMode::On;
    }
    if (v == "scalar" || v == "fast" || v == "force" || v == "avx2") {
        return QuantMode::Off;
    }
    return QuantMode::Auto;
}

std::atomic<QuantMode> &
modeState()
{
    static std::atomic<QuantMode> state{initialModeFromEnv()};
    return state;
}

/** 8-byte block mixer (splitmix64 finalizer) over the weight bytes:
    ~8x faster than byte-wise FNV at identical sensitivity, which
    keeps the per-call cache-validity check negligible next to the
    GEMM it guards. */
std::uint64_t
mixBlocks(const unsigned char *bytes, std::size_t len)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ len;
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, bytes + i, 8);
        w ^= h;
        w *= 0xbf58476d1ce4e5b9ull;
        w ^= w >> 27;
        w *= 0x94d049bb133111ebull;
        h = w ^ (w >> 31);
    }
    std::uint64_t tail = 0;
    if (i < len) {
        std::memcpy(&tail, bytes + i, len - i);
        tail ^= h;
        tail *= 0xbf58476d1ce4e5b9ull;
        tail ^= tail >> 27;
        h = tail ^ (tail >> 31);
    }
    return h;
}

} // namespace

QuantMode
quantGemmMode()
{
    return modeState().load(std::memory_order_relaxed);
}

void
setQuantGemmMode(QuantMode mode)
{
    modeState().store(mode, std::memory_order_relaxed);
}

const char *
quantGemmModeName()
{
    switch (quantGemmMode()) {
      case QuantMode::Off:
        return "fp32";
      case QuantMode::On:
        return "int8";
      case QuantMode::Auto:
        return "auto";
    }
    return "auto";
}

bool
resolveQuantGemm(QuantMode config_mode, std::size_t m, std::size_t k)
{
    switch (quantGemmMode()) {
      case QuantMode::On:
        return true;
      case QuantMode::Off:
        return false;
      case QuantMode::Auto:
        break;
    }
    switch (config_mode) {
      case QuantMode::On:
        return true;
      case QuantMode::Off:
        return false;
      case QuantMode::Auto:
        break;
    }
    return m >= kQuantMinRows && k >= kQuantMinK;
}

ActQuant
computeActQuant(const float *x, std::size_t n)
{
    if (n == 0) {
        return ActQuant{};
    }
    float lo = x[0];
    float hi = x[0];
    for (std::size_t i = 1; i < n; ++i) {
        const float v = x[i];
        lo = v < lo ? v : lo;
        hi = v > hi ? v : hi;
    }
    return actQuantFromRange(lo, hi);
}

ActQuant
actQuantFromRange(float lo, float hi)
{
    ActQuant q;
    float scale =
        (hi - lo) / static_cast<float>(kQuantActMax);
    if (!(scale > 0.0f)) {
        // Constant tensor (including all-zero): any positive scale
        // whose lattice reaches the constant works; |hi|/127 puts the
        // constant exactly on a lattice point relative to zero.
        const float mag = std::fabs(hi);
        scale = (mag > 0.0f ? mag : 1.0f) /
                static_cast<float>(kQuantActMax);
    }
    q.scale = scale;
    q.invScale = 1.0f / scale;
    std::int32_t z =
        static_cast<std::int32_t>(std::lrintf(-lo * q.invScale));
    z = z < 0 ? 0 : (z > kQuantActMax ? kQuantActMax : z);
    q.zeroPoint = z;
    return q;
}

std::uint64_t
weightContentHash(const Matrix &w)
{
    return mixBlocks(
        reinterpret_cast<const unsigned char *>(w.data()),
        w.numel() * sizeof(float));
}

std::shared_ptr<const QuantizedWeights>
buildQuantizedWeights(const Matrix &w)
{
    auto out = std::make_shared<QuantizedWeights>();
    const std::size_t k = w.rows();
    const std::size_t n = w.cols();
    out->k = k;
    out->n = n;
    out->kPadded = quantPaddedK(k);
    out->panels = (n + kQuantNR - 1) / kQuantNR;
    const std::size_t padded_n = out->panels * kQuantNR;
    out->panelData.assign(out->panels * out->kPadded * kQuantNR, 0);
    out->colScale.assign(padded_n, 0.0f);
    out->colSum.assign(padded_n, 0);
    out->contentHash = weightContentHash(w);

    const float *wd = w.data();
    std::vector<float> inv_scale(n, 0.0f);
    for (std::size_t j = 0; j < n; ++j) {
        float amax = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float v = std::fabs(wd[kk * n + j]);
            amax = v > amax ? v : amax;
        }
        if (amax > 0.0f) {
            const float s = amax / 127.0f;
            out->colScale[j] = s;
            inv_scale[j] = 1.0f / s;
        }
        // amax == 0: scale 0, every quantized weight 0 — the dequant
        // product is exactly zero for the whole channel.
    }

    // Panel-major maddubs layout: quad q of panel p holds columns
    // j0..j0+7 (bytes 0..31, kQuantKQ consecutive ks per column) then
    // j0+8..j0+15 (bytes 32..63). Zero padding beyond k and n is
    // already in place from assign().
    const std::size_t quads = out->kPadded / kQuantKQ;
    for (std::size_t p = 0; p < out->panels; ++p) {
        std::int8_t *panel = out->panelData.data() + out->panelOffset(p);
        const std::size_t j0 = p * kQuantNR;
        const std::size_t cols = std::min(kQuantNR, n - j0);
        for (std::size_t q = 0; q < quads; ++q) {
            std::int8_t *quad = panel + q * kQuantNR * kQuantKQ;
            for (std::size_t c = 0; c < cols; ++c) {
                const std::size_t j = j0 + c;
                std::int8_t *dst =
                    quad + (c < 8 ? c * kQuantKQ
                                  : 32 + (c - 8) * kQuantKQ);
                for (std::size_t t = 0; t < kQuantKQ; ++t) {
                    const std::size_t kk = q * kQuantKQ + t;
                    if (kk >= k) {
                        break;
                    }
                    std::int32_t r = static_cast<std::int32_t>(
                        std::lrintf(wd[kk * n + j] * inv_scale[j]));
                    r = r < -127 ? -127 : (r > 127 ? 127 : r);
                    dst[t] = static_cast<std::int8_t>(r);
                    out->colSum[j] += r;
                }
            }
        }
    }
    return out;
}

std::shared_ptr<const QuantizedWeights>
QuantPanelCache::get(const Matrix &weight)
{
    const std::uint64_t hash = weightContentHash(weight);
    {
        MutexLock lock(mu);
        if (cached && cached->contentHash == hash &&
            cached->k == weight.rows() && cached->n == weight.cols()) {
            return cached;
        }
    }
    // Build outside the lock: concurrent first-touch builds race to
    // publish (last write wins, both results are identical) rather
    // than serializing every reader behind the quantization pass.
    auto built = buildQuantizedWeights(weight);
    MutexLock lock(mu);
    cached = built;
    ++rebuildCount;
    return built;
}

std::uint64_t
QuantPanelCache::rebuilds() const
{
    MutexLock lock(mu);
    return rebuildCount;
}

void
quantizedGemmRef(const float *a, std::size_t m, const ActQuant &aq,
                 const QuantizedWeights &wq, float *c,
                 GemmEpilogue epilogue, const float *bias)
{
    const std::size_t k = wq.k;
    const std::size_t n = wq.n;
    const bool with_bias = epilogue != GemmEpilogue::None;
    const bool relu = epilogue == GemmEpilogue::BiasRelu;
    std::vector<std::uint8_t> aqv(m * k);
    for (std::size_t i = 0; i < m * k; ++i) {
        aqv[i] = quantizeAct(a[i], aq);
    }
    // Read the quantized weights back out of the panel layout so the
    // reference exercises exactly the bytes the kernels consume.
    std::vector<std::int8_t> wqv(k * n, 0);
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t p = j / kQuantNR;
        const std::size_t col = j % kQuantNR;
        const std::int8_t *panel =
            wq.panelData.data() + wq.panelOffset(p);
        for (std::size_t kk = 0; kk < k; ++kk) {
            const std::size_t q = kk / kQuantKQ;
            const std::size_t t = kk % kQuantKQ;
            wqv[kk * n + j] =
                panel[q * kQuantNR * kQuantKQ +
                      (col < 8 ? col * kQuantKQ
                               : 32 + (col - 8) * kQuantKQ) +
                      t];
        }
    }
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<std::int32_t>(aqv[i * k + kk]) *
                       static_cast<std::int32_t>(wqv[kk * n + j]);
            }
            // The kernels' exact float op order: combined scale (one
            // mul), integer zero-point correction, convert, mul, add
            // bias, relu. quant.cpp and gemm.cpp are both built with
            // -ffp-contract=off so no step fuses.
            const float combined = aq.scale * wq.colScale[j];
            const std::int32_t corr = aq.zeroPoint * wq.colSum[j];
            float v = combined * static_cast<float>(acc - corr);
            if (with_bias) {
                v = v + bias[j];
            }
            if (relu) {
                v = v > 0.0f ? v : 0.0f;
            }
            c[i * n + j] = v;
        }
    }
}

} // namespace nn
} // namespace edgepc
