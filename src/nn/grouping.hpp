/**
 * @file
 * Feature grouping: the gather/scatter stage between neighbor search
 * and feature computation.
 *
 * Grouping gathers the feature rows of each sampled point's neighbors
 * into an (n*k) x C matrix (Sec 2.1.2). In PointNet++ the gathered
 * rows are augmented with neighbor-relative coordinates; in DGCNN they
 * become edge features [f_i, f_j - f_i]. The interpolation apply step
 * of the FP modules lives here too.
 *
 * Sec 5.4.2 of the paper observes that sorting each neighbor-index row
 * before gathering improves locality and cuts L2/DRAM traffic; the
 * cache-traffic model here reproduces that experiment without GPU
 * performance counters.
 */

#ifndef EDGEPC_NN_GROUPING_HPP
#define EDGEPC_NN_GROUPING_HPP

#include <cstdint>
#include <span>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "neighbor/neighbor_search.hpp"
#include "sampling/interpolation.hpp"

namespace edgepc {
namespace nn {

/** Gather rows of @p features at @p indices into a new matrix. */
Matrix gatherRows(const Matrix &features,
                  std::span<const std::uint32_t> indices);

/**
 * Gather rows of @p features at @p indices into @p out (row-major,
 * indices.size() x features.cols()). The caller owns the buffer —
 * typically a ScratchArena span, so gather + GEMM stages compose
 * without a heap allocation per call.
 */
void gatherRowsInto(const Matrix &features,
                    std::span<const std::uint32_t> indices,
                    std::span<float> out);

/**
 * Gather + Linear in one step: the neighbor rows are gathered into a
 * thread-local ScratchArena buffer that feeds the packed GEMM
 * directly (with the bias fused into the epilogue when enabled), so
 * the gathered activation matrix never exists as a heap allocation.
 *
 * @param features Source feature rows (N x C).
 * @param indices Row indexes to gather (M entries).
 * @param weight C x C_out weight.
 * @param bias 1 x C_out bias, or empty for none.
 * @param engine GEMM engine to run on.
 * @return M x C_out output activations.
 */
Matrix gatherLinear(const Matrix &features,
                    std::span<const std::uint32_t> indices,
                    const Matrix &weight, const Matrix &bias,
                    GemmEngine &engine);

/**
 * Fused gather + neighbor max-pool: out[i] = column-wise max over the
 * rows of @p features named by neighbor row i. Bit-exact with
 * gatherRows followed by MaxPoolNeighbors (first neighbor row copied,
 * then strictly-greater compares), but the (n*k) x C gathered matrix
 * never exists — this is the delayed-aggregation pooling step
 * (DESIGN.md §13), where @p features holds already-transformed rows.
 *
 * @param features Source rows (N x C).
 * @param neighbors Neighbor lists (n x k). k == 0 zero-fills @p out.
 * @param out Caller-owned buffer (n x C row-major, e.g. a ScratchArena
 *        span).
 */
void gatherMaxPoolInto(const Matrix &features,
                       const NeighborLists &neighbors,
                       std::span<float> out);

/** gatherMaxPoolInto returning a fresh n x C matrix. */
Matrix gatherMaxPool(const Matrix &features,
                     const NeighborLists &neighbors);

/**
 * Build the SA-module grouped input: for sampled point i with neighbor
 * j, the row [p_j - p_i | f_j]. Output is (n*k) x (3 + C); C may be 0
 * (first module, coordinates only).
 *
 * @param positions All point positions (N).
 * @param features Point features (N x C) or empty.
 * @param sample_indices The n sampled point indexes.
 * @param neighbors Neighbor lists of the sampled points (n x k, entries
 *        index into @p positions).
 */
Matrix groupWithRelativeCoords(std::span<const Vec3> positions,
                               const Matrix &features,
                               std::span<const std::uint32_t> sample_indices,
                               const NeighborLists &neighbors);

/** groupWithRelativeCoords writing into a caller-owned buffer
 * ((n*k) x (3 + C) row-major, e.g. a ScratchArena span). */
void groupWithRelativeCoordsInto(
    std::span<const Vec3> positions, const Matrix &features,
    std::span<const std::uint32_t> sample_indices,
    const NeighborLists &neighbors, std::span<float> out);

/**
 * Build DGCNN edge features: for point i with neighbor j, the row
 * [f_i | f_j - f_i]. Output is (N*k) x 2C.
 */
Matrix edgeFeatures(const Matrix &features, const NeighborLists &neighbors);

/** edgeFeatures writing into a caller-owned buffer ((N*k) x 2C
 * row-major, e.g. a ScratchArena span). */
void edgeFeaturesInto(const Matrix &features,
                      const NeighborLists &neighbors,
                      std::span<float> out);

/**
 * Apply an interpolation plan: out[t] = sum_j w[t][j] * src[idx[t][j]].
 * This is the FP-module feature propagation (up-sampling apply).
 */
Matrix applyInterpolation(const InterpolationPlan &plan,
                          const Matrix &source_features);

/**
 * applyInterpolation writing each target row into a caller-owned
 * row-major buffer whose rows are @p out_stride floats apart
 * (out_stride >= source cols). Only the first cols entries of each
 * row are written, so the upsampled features can land directly in the
 * left columns of a wider concatenated matrix.
 */
void applyInterpolationInto(const InterpolationPlan &plan,
                            const Matrix &source_features,
                            std::span<float> out,
                            std::size_t out_stride);

/**
 * Differentiable gather layer. Set the indices, then forward gathers
 * rows and backward scatter-adds gradients to the input rows.
 */
class GroupingLayer : public Layer
{
  public:
    GroupingLayer() = default;

    /** Indices to gather on the next forward (copied). */
    void setIndices(std::span<const std::uint32_t> indices);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    std::vector<std::uint32_t> idx;
    std::size_t savedRows = 0;
};

/** Differentiable interpolation-apply layer. */
class InterpolateLayer : public Layer
{
  public:
    InterpolateLayer() = default;

    /** Plan to apply on the next forward (copied). */
    void setPlan(InterpolationPlan plan);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    InterpolationPlan plan;
    std::size_t savedRows = 0;
};

/**
 * Differentiable DGCNN edge-feature layer: with neighbor lists set,
 * forward builds [f_i | f_j - f_i] rows and backward scatter-adds the
 * gradients back to both endpoints.
 */
class EdgeFeatureLayer : public Layer
{
  public:
    EdgeFeatureLayer() = default;

    /** Neighbor lists to use on the next forward (copied). */
    void setNeighbors(NeighborLists lists);

    Matrix forward(const Matrix &input, bool train) override;
    Matrix backward(const Matrix &grad_output) override;

  private:
    NeighborLists neighbors;
    std::size_t savedRows = 0;
};

/**
 * Two-level cache-traffic model for gathers (the Sec 5.4.2
 * experiment). Rows of @p row_bytes bytes are fetched at addresses
 * index * row_bytes; lines are 64 bytes and transactions are 128-byte
 * segments: back-to-back misses that fall into the same segment
 * coalesce into one transaction (the burst-combining behaviour of the
 * GPU memory system). Row-sorting the index matrix places duplicate
 * and spatially-adjacent indexes — which on a Morton-ordered cloud
 * are also address-adjacent — next to each other in time, which is
 * exactly what this coalescing rewards.
 */
struct GatherTraffic
{
    /** Transactions from L2 toward the cores (coalesced L1 misses). */
    std::uint64_t l2Lines = 0;
    /** Transactions from DRAM to L2 (coalesced L2 misses). */
    std::uint64_t dramLines = 0;
};

/**
 * Simulate the gather traffic of reading @p indices sequentially.
 *
 * @param indices Row indexes in gather order.
 * @param row_bytes Bytes per feature row.
 * @param l1_lines L1 capacity in 64-byte lines.
 * @param l2_lines L2 capacity in 64-byte lines.
 */
GatherTraffic estimateGatherTraffic(std::span<const std::uint32_t> indices,
                                    std::size_t row_bytes,
                                    std::size_t l1_lines = 1024,
                                    std::size_t l2_lines = 16384);

/**
 * Copy of @p lists with every row sorted ascending (the Sec 5.4.2
 * locality optimization applied before grouping).
 */
NeighborLists sortNeighborRows(const NeighborLists &lists);

/**
 * GPU-style warp-coalescing traffic model for the grouping gather
 * (the mechanism behind the Sec 5.4.2 measurement).
 *
 * One warp covers @p warp consecutive query rows; the gather kernel
 * iterates the neighbor slot j, and at each step the warp's threads
 * read neighbor j of their respective queries. The memory system
 * coalesces the accesses of one step into unique 128-byte segments
 * (that set is the L2 traffic); an LRU L2 in front of DRAM absorbs
 * re-reads across steps/warps.
 *
 * When each row is sorted ascending AND the queries themselves are in
 * Morton order (as in the EdgePC pipeline), the warp's step-j reads
 * land on nearby addresses and coalesce — exactly the paper's
 * "simply sorting the index matrix" saving.
 *
 * @param lists Neighbor lists (queries x k), entries indexing rows of
 *        @p row_bytes bytes.
 * @param row_bytes Bytes per feature row.
 * @param warp Threads per warp (default 32).
 * @param l2_lines L2 capacity in 64-byte lines.
 */
GatherTraffic
estimateWarpGatherTraffic(const NeighborLists &lists,
                          std::size_t row_bytes, std::size_t warp = 32,
                          std::size_t l2_lines = 16384);

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_GROUPING_HPP
