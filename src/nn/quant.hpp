/**
 * @file
 * Int8 quantization support for the inference GEMM path (DESIGN.md
 * §15): per-channel symmetric weight quantization, dynamic per-tensor
 * activation quantization, and the per-layer quantized-panel cache the
 * int8 microkernel in gemm.cpp consumes.
 *
 * Scheme. Weights are quantized per output channel to s8 with a
 * symmetric scale s_w[j] = max_k |W[k][j]| / 127; activations are
 * quantized per GEMM call to *7-bit* unsigned [0, 127] with an
 * asymmetric (scale, zero-point) pair computed from the tensor's
 * min/max. The 7-bit range is what makes the AVX2 kernel exact: the
 * `maddubs` instruction saturates its adjacent-pair i16 sums, and
 * 127 * 127 * 2 = 32258 <= 32767 guarantees no pair can saturate, so
 * the int32 accumulators hold the exact integer dot product. The
 * dequant epilogue recovers fp32 as
 *
 *   C[i][j] = s_a * s_w[j] * (acc[i][j] - z_a * colsum[j]) + bias[j]
 *
 * with colsum[j] = sum_k wq[k][j] precomputed at panel build, so
 * layer outputs (and checkpoints) stay fp32 end to end.
 *
 * Panel cache. Weight panels are quantized once and reused across
 * calls; Parameter has no mutation hook, so validity is keyed on a
 * 64-bit content hash of the weight bytes, recomputed per quantized
 * call (O(k*n), cheap next to the O(m*k*n) GEMM at the shapes that
 * take this path) — optimizer steps, deserialization and direct
 * data() writes all invalidate naturally.
 *
 * Dispatch mirrors EDGEPC_DELAYED_AGG: the EDGEPC_GEMM=int8
 * environment variable (read once at startup) or setQuantGemmMode()
 * overrides the per-layer config; EDGEPC_GEMM=scalar|fast force the
 * fp32 route. When both are Auto the heuristic quantizes shapes with
 * m >= kQuantMinRows and k >= kQuantMinK. Training forwards and every
 * backward pass always run fp32 regardless.
 */

#ifndef EDGEPC_NN_QUANT_HPP
#define EDGEPC_NN_QUANT_HPP

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

enum class GemmEpilogue; // nn/gemm.hpp

/** Quantized-inference selection (env override and layer config). */
enum class QuantMode
{
    Off,  ///< Always the fp32 GEMM route.
    On,   ///< Always the int8 route (inference only; training is fp32).
    Auto, ///< Defer (env: to the layer config; config: to the shape
          ///< heuristic).
};

/** Auto-heuristic floor: rows below this stay fp32 (the per-call
    activation-quantization pass would dominate skinny GEMMs). */
inline constexpr std::size_t kQuantMinRows = 32;

/** Auto-heuristic floor on the reduction dimension. */
inline constexpr std::size_t kQuantMinK = 64;

/**
 * Process-wide override (EDGEPC_GEMM=int8 -> On, scalar|fast -> Off,
 * auto/unset -> Auto; setter for tests and A/B runs). Auto defers to
 * the per-layer config.
 */
QuantMode quantGemmMode();
void setQuantGemmMode(QuantMode mode);

/** "int8" / "fp32" / "auto" — echoed as config.gemm_quant in BENCH json. */
const char *quantGemmModeName();

/**
 * Resolve the effective route for one inference GEMM: the env override
 * wins, then the layer config, and when both are Auto the call is
 * quantized iff the shape clears the kQuantMinRows/kQuantMinK floors.
 */
bool resolveQuantGemm(QuantMode config_mode, std::size_t m, std::size_t k);

// ---- packed-panel layout constants (shared with gemm.cpp) ----

/** Columns per quantized B panel (matches the fp32 kernel's NR). */
inline constexpr std::size_t kQuantNR = 16;

/** Reduction steps folded per maddubs quad. */
inline constexpr std::size_t kQuantKQ = 4;

/** Upper end of the 7-bit activation range. */
inline constexpr std::int32_t kQuantActMax = 127;

/** @p k rounded up to a whole number of maddubs quads. */
constexpr std::size_t
quantPaddedK(std::size_t k)
{
    return (k + kQuantKQ - 1) / kQuantKQ * kQuantKQ;
}

/**
 * Dynamic per-tensor activation quantization: a ~ (q - zeroPoint) *
 * scale with q in [0, 127]. invScale is the precomputed reciprocal
 * both the packing kernels and the scalar reference multiply by, so
 * every path rounds identically.
 */
struct ActQuant
{
    float scale = 1.0f;
    float invScale = 1.0f;
    std::int32_t zeroPoint = 0;
};

/**
 * Min/max pass over @p x[0, n) producing the 7-bit asymmetric
 * parameters. Constant tensors (max == min, including all-zero) get a
 * range wide enough to represent the constant exactly at some lattice
 * point. n == 0 returns the identity parameters.
 */
ActQuant computeActQuant(const float *x, std::size_t n);

/**
 * Derive the 7-bit parameters from an already-reduced [lo, hi] range
 * (min/max is exact and order-independent, so a vectorized reduction
 * feeding this matches computeActQuant bit for bit on finite inputs).
 */
ActQuant actQuantFromRange(float lo, float hi);

/** Quantize one activation: clamp(round(v * invScale) + z, 0, 127). */
inline std::uint8_t
quantizeAct(float v, const ActQuant &q)
{
    std::int32_t r =
        static_cast<std::int32_t>(std::lrintf(v * q.invScale)) +
        q.zeroPoint;
    r = r < 0 ? 0 : (r > kQuantActMax ? kQuantActMax : r);
    return static_cast<std::uint8_t>(r);
}

/**
 * One weight matrix quantized into the maddubs panel layout, immutable
 * after build. Panels are kQuantNR columns wide; within a panel,
 * reduction quad q occupies 64 bytes: columns j0..j0+7 each contribute
 * kQuantKQ consecutive k bytes (32 bytes, one vector load), then
 * columns j0+8..j0+15 (the second load). k is zero-padded to a whole
 * number of quads and n to a whole number of panels, so the kernel
 * never branches on remainders; padded weights are zero and padded
 * columns carry zero scale/colsum.
 */
struct QuantizedWeights
{
    std::size_t k = 0;       ///< Real reduction dimension.
    std::size_t n = 0;       ///< Real output channels.
    std::size_t kPadded = 0; ///< k rounded up to quads.
    std::size_t panels = 0;  ///< ceil(n / kQuantNR).
    /** panels * kPadded * kQuantNR bytes, 64-byte quad granules. */
    std::vector<std::int8_t> panelData;
    /** Per-channel symmetric scales, padded to panels * kQuantNR. */
    std::vector<float> colScale;
    /** Per-channel sums of quantized weights (zero-point correction). */
    std::vector<std::int32_t> colSum;
    /** Content hash of the fp32 weights this build came from. */
    std::uint64_t contentHash = 0;

    /** Byte offset of panel @p p in panelData. */
    std::size_t panelOffset(std::size_t p) const
    {
        return p * kPadded * kQuantNR;
    }
};

/** 64-bit content hash over the weight storage (8-byte block mix). */
std::uint64_t weightContentHash(const Matrix &w);

/**
 * Quantize @p w (k x n, output channels in columns) into the panel
 * layout. All-zero channels get scale 0 (every quantized weight and
 * the dequant product are exactly zero).
 */
std::shared_ptr<const QuantizedWeights>
buildQuantizedWeights(const Matrix &w);

/**
 * Per-layer cache of one QuantizedWeights build. get() rebuilds when
 * the weight content hash changes and is safe to call from concurrent
 * inference threads; the returned shared_ptr stays valid across a
 * concurrent rebuild.
 */
class QuantPanelCache
{
  public:
    /** The current panels for @p weight, (re)built as needed. */
    std::shared_ptr<const QuantizedWeights> get(const Matrix &weight)
        EDGEPC_EXCLUDES(mu);

    /** Panel builds performed (cache-invalidation observability). */
    std::uint64_t rebuilds() const EDGEPC_EXCLUDES(mu);

  private:
    // EDGEPC_LOCK_RANK(5): per-layer quantized-panel cache lock —
    // innermost leaf; taken under no other lock and holds none.
    mutable Mutex mu;
    std::shared_ptr<const QuantizedWeights> cached EDGEPC_GUARDED_BY(mu);
    std::uint64_t rebuildCount EDGEPC_GUARDED_BY(mu) = 0;
};

/**
 * Scalar integer reference for the whole quantized route: quantizes
 * @p a (m x wq.k) with @p aq, runs the plain triple loop over the
 * quantized operands and applies the dequant epilogue in the kernel's
 * float operation order. The AVX2 and tiled-scalar builds in gemm.cpp
 * are bit-exact against this on every shape; tests diff all three.
 * @p c is m x wq.n, overwritten.
 */
void quantizedGemmRef(const float *a, std::size_t m, const ActQuant &aq,
                      const QuantizedWeights &wq, float *c,
                      GemmEpilogue epilogue, const float *bias);

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_QUANT_HPP
