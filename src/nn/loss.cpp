#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace edgepc {
namespace nn {

LossResult
softmaxCrossEntropy(const Matrix &logits,
                    std::span<const std::int32_t> labels)
{
    if (labels.size() != logits.rows()) {
        fatal("softmaxCrossEntropy: %zu labels for %zu rows",
              labels.size(), logits.rows());
    }
    const std::size_t rows = logits.rows();
    const std::size_t classes = logits.cols();

    LossResult result;
    result.gradLogits = Matrix(rows, classes);
    double total = 0.0;
    std::size_t counted = 0;

    std::vector<double> probs(classes);
    for (std::size_t r = 0; r < rows; ++r) {
        if (labels[r] < 0) {
            continue;
        }
        const float *row = logits.data() + r * classes;
        const float max_logit =
            *std::max_element(row, row + classes);
        double denom = 0.0;
        for (std::size_t c = 0; c < classes; ++c) {
            probs[c] = std::exp(static_cast<double>(row[c] - max_logit));
            denom += probs[c];
        }
        const auto label = static_cast<std::size_t>(labels[r]);
        if (label >= classes) {
            fatal("softmaxCrossEntropy: label %zu >= classes %zu", label,
                  classes);
        }
        total += -std::log(std::max(probs[label] / denom, 1e-12));
        ++counted;

        float *grad = result.gradLogits.data() + r * classes;
        for (std::size_t c = 0; c < classes; ++c) {
            grad[c] = static_cast<float>(probs[c] / denom);
        }
        grad[label] -= 1.0f;
    }

    if (counted > 0) {
        result.loss = total / static_cast<double>(counted);
        result.gradLogits.scale(1.0f / static_cast<float>(counted));
    }
    return result;
}

std::vector<std::int32_t>
argmaxRows(const Matrix &logits)
{
    std::vector<std::int32_t> out(logits.rows());
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        const float *row = logits.data() + r * logits.cols();
        out[r] = static_cast<std::int32_t>(
            std::max_element(row, row + logits.cols()) - row);
    }
    return out;
}

double
accuracy(const Matrix &logits, std::span<const std::int32_t> labels)
{
    const auto predictions = argmaxRows(logits);
    std::size_t hit = 0, counted = 0;
    for (std::size_t r = 0; r < predictions.size(); ++r) {
        if (labels[r] < 0) {
            continue;
        }
        ++counted;
        if (predictions[r] == labels[r]) {
            ++hit;
        }
    }
    return counted == 0
               ? 0.0
               : static_cast<double>(hit) / static_cast<double>(counted);
}

} // namespace nn
} // namespace edgepc
