#include "nn/delayed_agg.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "nn/grouping.hpp"

namespace edgepc {
namespace nn {

namespace {

DelayedAggMode
initialModeFromEnv()
{
    const char *env = std::getenv("EDGEPC_DELAYED_AGG");
    if (env == nullptr) {
        return DelayedAggMode::Auto;
    }
    const std::string_view v(env);
    if (v == "on") {
        return DelayedAggMode::On;
    }
    if (v == "off") {
        return DelayedAggMode::Off;
    }
    if (v != "auto") {
        warn("EDGEPC_DELAYED_AGG=%s not understood (want on|off|auto); "
             "using auto",
             env);
    }
    return DelayedAggMode::Auto;
}

std::atomic<DelayedAggMode> &
modeState()
{
    static std::atomic<DelayedAggMode> state{initialModeFromEnv()};
    return state;
}

/** Broadcast-add @p bias over the rows of @p m (the split-epilogue
    bias pass; the fused path adds it in the GEMM tile store). */
void
addBiasRows(Matrix &m, const Matrix &bias)
{
    const float *b = bias.data();
    parallelFor(0, m.rows(), [&](std::size_t r) {
        float *row = m.data() + r * m.cols();
        for (std::size_t c = 0; c < m.cols(); ++c) {
            row[c] += b[c];
        }
    });
}

/** X * W (+ bias), honoring the process-wide epilogue-fusion toggle so
    the delayed route sees the same EDGEPC_GEMM_EPILOGUE matrix as the
    eager Linear::forward. */
Matrix
linearNoSave(const Matrix &x, const Matrix &weight, const Matrix &bias,
             GemmEngine &engine)
{
    if (bias.numel() > 0 && GemmEngine::fusedEpilogues()) {
        return engine.multiply(x, weight, GemmEpilogue::Bias, bias);
    }
    Matrix out = engine.multiply(x, weight);
    if (bias.numel() > 0) {
        addBiasRows(out, bias);
    }
    return out;
}

/** The N x (3+C) [p | f] matrix phi runs on. */
Matrix
buildUnifiedRows(std::span<const Vec3> positions, const Matrix &features)
{
    const std::size_t n = positions.size();
    const std::size_t feat_dim = features.empty() ? 0 : features.cols();
    Matrix unified(n, 3 + feat_dim);
    parallelFor(0, n, [&](std::size_t i) {
        float *dst = unified.data() + i * (3 + feat_dim);
        dst[0] = positions[i].x;
        dst[1] = positions[i].y;
        dst[2] = positions[i].z;
        if (feat_dim > 0) {
            const float *src = features.data() + i * feat_dim;
            std::copy(src, src + feat_dim, dst + 3);
        }
    });
    return unified;
}

/** The n x 3 sampled-center coordinate matrix psi runs on. */
Matrix
buildCenterRows(std::span<const Vec3> positions,
                std::span<const std::uint32_t> sample_indices)
{
    Matrix centers(sample_indices.size(), 3);
    for (std::size_t i = 0; i < sample_indices.size(); ++i) {
        const Vec3 p = positions[sample_indices[i]];
        centers.at(i, 0) = p.x;
        centers.at(i, 1) = p.y;
        centers.at(i, 2) = p.z;
    }
    return centers;
}

/** Copy of rows [begin, end) of @p weight (a row-slab submatrix). */
Matrix
weightRowSlab(const Matrix &weight, std::size_t begin, std::size_t end)
{
    Matrix slab(end - begin, weight.cols());
    std::copy(weight.data() + begin * weight.cols(),
              weight.data() + end * weight.cols(), slab.data());
    return slab;
}

/** Dphi[j] = sum of grad_pre rows whose gather index is j (the same
    sequential scatter-add as GroupingLayer::backward: rows collide). */
Matrix
scatterAddRows(const Matrix &grad_pre,
               std::span<const std::uint32_t> indices,
               std::size_t unique_rows)
{
    const std::size_t cols = grad_pre.cols();
    Matrix out(unique_rows, cols);
    for (std::size_t r = 0; r < indices.size(); ++r) {
        const float *src = grad_pre.data() + r * cols;
        float *dst = out.data() + std::size_t(indices[r]) * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            dst[c] += src[c];
        }
    }
    return out;
}

/** Dpsi[i] = sum of grad_pre rows of group i (k consecutive rows). */
Matrix
segmentSumRows(const Matrix &grad_pre, std::size_t k)
{
    const std::size_t groups = grad_pre.rows() / k;
    const std::size_t cols = grad_pre.cols();
    Matrix out(groups, cols);
    parallelFor(0, groups, [&](std::size_t i) {
        float *dst = out.data() + i * cols;
        for (std::size_t j = 0; j < k; ++j) {
            const float *src = grad_pre.data() + (i * k + j) * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                dst[c] += src[c];
            }
        }
    });
    return out;
}

/** db += column sums of grad_pre (identical to Linear::backward). */
void
accumulateBiasGrad(const Matrix &grad_pre, Parameter &bias)
{
    float *bg = bias.grad.data();
    for (std::size_t r = 0; r < grad_pre.rows(); ++r) {
        const float *row = grad_pre.data() + r * grad_pre.cols();
        for (std::size_t c = 0; c < grad_pre.cols(); ++c) {
            bg[c] += row[c];
        }
    }
}

} // namespace

DelayedAggMode
delayedAggMode()
{
    return modeState().load(std::memory_order_relaxed);
}

void
setDelayedAggMode(DelayedAggMode mode)
{
    modeState().store(mode, std::memory_order_relaxed);
}

const char *
delayedAggModeName()
{
    switch (delayedAggMode()) {
      case DelayedAggMode::Off:
        return "off";
      case DelayedAggMode::On:
        return "on";
      case DelayedAggMode::Auto:
        return "auto";
    }
    return "auto";
}

bool
resolveDelayedAgg(DelayedAggMode config_mode, double flop_ratio)
{
    switch (delayedAggMode()) {
      case DelayedAggMode::On:
        return true;
      case DelayedAggMode::Off:
        return false;
      case DelayedAggMode::Auto:
        break;
    }
    switch (config_mode) {
      case DelayedAggMode::On:
        return true;
      case DelayedAggMode::Off:
        return false;
      case DelayedAggMode::Auto:
        break;
    }
    return flop_ratio >= kDelayedAggFlopRatio;
}

double
saDelayedFlopRatio(std::size_t unique_points, std::size_t samples,
                   std::size_t k, std::size_t feat_dim)
{
    // Per output channel: eager multiplies n*k grouped (3+C)-wide
    // rows; delayed multiplies N unique (3+C)-wide rows plus n 3-wide
    // centers.
    const double eager = static_cast<double>(samples * k) *
                         static_cast<double>(3 + feat_dim);
    const double delayed = static_cast<double>(unique_points) *
                               static_cast<double>(3 + feat_dim) +
                           static_cast<double>(samples) * 3.0;
    return delayed > 0.0 ? eager / delayed : 1.0;
}

double
edgeDelayedFlopRatio(std::size_t k)
{
    // Eager: N*k rows x 2C. Delayed: two N-row C-wide GEMMs.
    return static_cast<double>(k);
}

Matrix
delayedSaFirstLinear(std::span<const Vec3> positions,
                     const Matrix &features,
                     std::span<const std::uint32_t> sample_indices,
                     const NeighborLists &neighbors, const Matrix &weight,
                     const Matrix &bias, GemmEngine &engine,
                     DelayedSaCache *cache)
{
    const std::size_t feat_dim = features.empty() ? 0 : features.cols();
    if (weight.rows() != 3 + feat_dim) {
        fatal("delayedSaFirstLinear: weight rows %zu != 3 + C (%zu)",
              weight.rows(), 3 + feat_dim);
    }
    const std::size_t n = sample_indices.size();
    const std::size_t k = neighbors.k;
    if (neighbors.queries() != n) {
        fatal("delayedSaFirstLinear: %zu queries != %zu samples",
              neighbors.queries(), n);
    }
    const std::size_t c_out = weight.cols();

    // phi = [p | f] W + b over the N unique points (the bias rides in
    // phi so the combine applies it exactly once per grouped row).
    const Matrix unified = buildUnifiedRows(positions, features);
    const Matrix phi = linearNoSave(unified, weight, bias, engine);

    // psi = p_center W_pos over the n sampled centers.
    const Matrix centers = buildCenterRows(positions, sample_indices);
    const Matrix w_pos = weightRowSlab(weight, 0, 3);
    const Matrix psi = engine.multiply(centers, w_pos);

    Matrix pre(n * k, c_out);
    const float *phi_base = phi.data();
    const float *psi_base = psi.data();
    float *pre_base = pre.data();
    // EDGEPC_HOT: delayed-aggregation combine, gather + subtract.
    parallelFor(0, n, [&](std::size_t i) {
        const auto row = neighbors.row(i);
        const float *psi_row = psi_base + i * c_out;
        for (std::size_t j = 0; j < k; ++j) {
            const float *phi_row =
                phi_base + std::size_t(row[j]) * c_out;
            float *dst = pre_base + (i * k + j) * c_out;
            for (std::size_t c = 0; c < c_out; ++c) {
                dst[c] = phi_row[c] - psi_row[c];
            }
        }
    });

    if (cache != nullptr) {
        cache->unified = unified;
        cache->centers = centers;
        cache->neighborIdx.assign(neighbors.indices.begin(),
                                  neighbors.indices.end());
        cache->k = k;
        cache->featDim = feat_dim;
    }
    return pre;
}

Matrix
delayedSaFirstLinearBackward(const DelayedSaCache &cache,
                             const Matrix &grad_pre, Parameter &weight,
                             Parameter &bias, GemmEngine &engine)
{
    const std::size_t c_out = grad_pre.cols();
    const std::size_t unique = cache.unified.rows();

    // pre[r] = unified[nb_r] W + b - centers[i_r] W_pos, so with
    // Dphi[j] = sum_{r: nb_r = j} dPre[r] and Dpsi[i] = sum of group
    // i's rows: dW = U^T Dphi - pad3(Pc^T Dpsi), db = column sums.
    const Matrix d_phi = scatterAddRows(grad_pre, cache.neighborIdx,
                                        unique);
    const Matrix d_psi = segmentSumRows(grad_pre, cache.k);

    engine.multiplyLeftTransposedAdd(cache.unified, d_phi, weight.grad);
    const Matrix d_w_pos =
        engine.multiplyLeftTransposed(cache.centers, d_psi);
    for (std::size_t r = 0; r < 3; ++r) {
        float *wg = weight.grad.data() + r * c_out;
        const float *src = d_w_pos.data() + r * c_out;
        for (std::size_t c = 0; c < c_out; ++c) {
            wg[c] -= src[c];
        }
    }
    accumulateBiasGrad(grad_pre, bias);

    // dF = Dphi W_f^T (the feature columns of the unified rows); the
    // coordinate part carries no learnable gradient, matching the
    // eager path's discarded rel-coordinate gradient.
    if (cache.featDim == 0) {
        return Matrix(unique, 0);
    }
    const Matrix w_feat =
        weightRowSlab(weight.value, 3, 3 + cache.featDim);
    return engine.multiplyTransposed(d_phi, w_feat);
}

Matrix
delayedSaSingleStageInfer(std::span<const Vec3> positions,
                          const Matrix &features,
                          std::span<const std::uint32_t> sample_indices,
                          const NeighborLists &neighbors,
                          const Matrix &weight, const Matrix &bias,
                          GemmEngine &engine)
{
    const std::size_t n = sample_indices.size();
    if (neighbors.queries() != n) {
        fatal("delayedSaSingleStageInfer: %zu queries != %zu samples",
              neighbors.queries(), n);
    }
    const std::size_t c_out = weight.cols();

    const Matrix unified = buildUnifiedRows(positions, features);
    const Matrix phi = linearNoSave(unified, weight, bias, engine);
    const Matrix centers = buildCenterRows(positions, sample_indices);
    const Matrix w_pos = weightRowSlab(weight, 0, 3);
    const Matrix psi = engine.multiply(centers, w_pos);

    // out = relu(max_j phi[nb] - psi): the per-group shift commutes
    // with the max and ReLU is monotone, so no (n*k)-row matrix ever
    // exists — gatherMaxPoolInto pools the transformed unique rows
    // straight into the output.
    Matrix out(n, c_out);
    gatherMaxPoolInto(phi, neighbors,
                      std::span<float>(out.data(), out.numel()));
    const float *psi_base = psi.data();
    float *out_base = out.data();
    // EDGEPC_HOT: fused shift + ReLU epilogue over the pooled rows.
    parallelFor(0, n, [&](std::size_t i) {
        const float *psi_row = psi_base + i * c_out;
        float *row = out_base + i * c_out;
        for (std::size_t c = 0; c < c_out; ++c) {
            const float v = row[c] - psi_row[c];
            row[c] = v > 0.0f ? v : 0.0f;
        }
    });
    return out;
}

Matrix
delayedEdgeFirstLinear(const Matrix &features,
                       const NeighborLists &neighbors,
                       const Matrix &weight, const Matrix &bias,
                       GemmEngine &engine, DelayedEdgeCache *cache)
{
    const std::size_t n = neighbors.queries();
    const std::size_t k = neighbors.k;
    const std::size_t c = features.cols();
    if (features.rows() != n) {
        fatal("delayedEdgeFirstLinear: %zu feature rows != %zu queries",
              features.rows(), n);
    }
    if (weight.rows() != 2 * c) {
        fatal("delayedEdgeFirstLinear: weight rows %zu != 2C (%zu)",
              weight.rows(), 2 * c);
    }
    const std::size_t c_out = weight.cols();

    // [f_i | f_j - f_i] [Ws; Wd] + b = f_i (Ws - Wd) + f_j Wd + b:
    // psi = F (Ws - Wd) + b (bias rides in the self term), phi = F Wd.
    Matrix w_self_minus_diff = weightRowSlab(weight, 0, c);
    {
        const float *wd = weight.data() + c * c_out;
        float *m = w_self_minus_diff.data();
        for (std::size_t i = 0; i < c * c_out; ++i) {
            m[i] -= wd[i];
        }
    }
    const Matrix w_diff = weightRowSlab(weight, c, 2 * c);
    const Matrix psi = linearNoSave(features, w_self_minus_diff, bias,
                                    engine);
    const Matrix phi = engine.multiply(features, w_diff);

    Matrix pre(n * k, c_out);
    const float *phi_base = phi.data();
    const float *psi_base = psi.data();
    float *pre_base = pre.data();
    // EDGEPC_HOT: delayed edge combine, gather + add.
    parallelFor(0, n, [&](std::size_t i) {
        const auto row = neighbors.row(i);
        const float *psi_row = psi_base + i * c_out;
        for (std::size_t j = 0; j < k; ++j) {
            const float *phi_row =
                phi_base + std::size_t(row[j]) * c_out;
            float *dst = pre_base + (i * k + j) * c_out;
            for (std::size_t cc = 0; cc < c_out; ++cc) {
                dst[cc] = psi_row[cc] + phi_row[cc];
            }
        }
    });

    if (cache != nullptr) {
        cache->features = features;
        cache->neighbors = neighbors;
    }
    return pre;
}

Matrix
delayedEdgeFirstLinearBackward(const DelayedEdgeCache &cache,
                               const Matrix &grad_pre, Parameter &weight,
                               Parameter &bias, GemmEngine &engine)
{
    const std::size_t n = cache.neighbors.queries();
    const std::size_t k = cache.neighbors.k;
    const std::size_t c = cache.features.cols();
    const std::size_t c_out = grad_pre.cols();

    const Matrix d_psi = segmentSumRows(grad_pre, k);
    const Matrix d_phi =
        scatterAddRows(grad_pre, cache.neighbors.indices, n);

    // pre depends on Ws only through M = Ws - Wd: dWs = F^T Dpsi,
    // dWd = F^T Dphi - F^T Dpsi.
    const Matrix d_m = engine.multiplyLeftTransposed(cache.features,
                                                     d_psi);
    const Matrix d_phi_w =
        engine.multiplyLeftTransposed(cache.features, d_phi);
    for (std::size_t r = 0; r < c; ++r) {
        float *ws = weight.grad.data() + r * c_out;
        float *wd = weight.grad.data() + (c + r) * c_out;
        const float *dm = d_m.data() + r * c_out;
        const float *dp = d_phi_w.data() + r * c_out;
        for (std::size_t cc = 0; cc < c_out; ++cc) {
            ws[cc] += dm[cc];
            wd[cc] += dp[cc] - dm[cc];
        }
    }
    accumulateBiasGrad(grad_pre, bias);

    // dF = Dpsi M^T + Dphi Wd^T.
    Matrix w_self_minus_diff = weightRowSlab(weight.value, 0, c);
    {
        const float *wd = weight.value.data() + c * c_out;
        float *m = w_self_minus_diff.data();
        for (std::size_t i = 0; i < c * c_out; ++i) {
            m[i] -= wd[i];
        }
    }
    const Matrix w_diff = weightRowSlab(weight.value, c, 2 * c);
    Matrix d_features =
        engine.multiplyTransposed(d_psi, w_self_minus_diff);
    d_features.add(engine.multiplyTransposed(d_phi, w_diff));
    return d_features;
}

} // namespace nn
} // namespace edgepc
