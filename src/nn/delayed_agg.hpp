/**
 * @file
 * Delayed aggregation (Mesorasi): run the first Linear of an
 * aggregation block over the N unique points *before* the neighborhood
 * gather, instead of pushing the (n*k)-row gathered matrix through the
 * GEMM.
 *
 * The reordering is exact in real arithmetic because the grouped input
 * rows are affine combinations of per-point rows:
 *
 *  - PointNet++ SetAbstraction groups [p_j - p_i | f_j], so
 *      [p_j - p_i | f_j] W + b  =  ([p_j | f_j] W + b) - p_i W_pos
 *    with W_pos the first three rows of W. The first term (phi) is one
 *    GEMM over the N unique points, the second (psi) one GEMM over the
 *    n sampled centers; the (n*k)-row combine is a gather + subtract.
 *
 *  - DGCNN EdgeConv groups [f_i | f_j - f_i], so with W = [Ws; Wd]
 *      [f_i | f_j - f_i] W + b  =  f_i (Ws - Wd) + f_j Wd + b
 *    — two N-row GEMMs (psi and phi) and a gather + add combine.
 *
 * GEMM FLOPs of the first layer drop by ~k (the neighbor count): the
 * eager path multiplies every neighbor row, the delayed path each
 * unique row once. Only the *first* Linear commutes: BatchNorm
 * normalizes with per-cloud statistics over its input rows, and the
 * statistics over n*k gathered rows differ from those over N unique
 * rows, so the BN-and-later tail always runs eagerly on the combined
 * rows — which is also what keeps the delayed route numerically within
 * reassociation distance of the eager one. A single-stage BN-free
 * block (the classifier's deepest Linear+ReLU before the global pool)
 * additionally commutes with the max-pool itself — max_j(x_j + c) =
 * (max_j x_j) + c and ReLU is monotone — so inference can skip the
 * (n*k)-row matrix entirely via gatherMaxPoolInto.
 *
 * The delayed variants are checkpoint-compatible by construction: they
 * are alternative execution routes over the same Linear parameters, so
 * collectParameters order, shapes and serialized streams are identical
 * to the eager Linear + gather composition.
 *
 * Dispatch mirrors EDGEPC_GEMM / EDGEPC_SIMD: the
 * EDGEPC_DELAYED_AGG=on|off|auto environment variable (read once at
 * startup) or setDelayedAggMode() overrides the per-model config;
 * when both say auto, the block is delayed iff the first-layer GEMM
 * FLOP ratio (eager / delayed) reaches kDelayedAggFlopRatio.
 */

#ifndef EDGEPC_NN_DELAYED_AGG_HPP
#define EDGEPC_NN_DELAYED_AGG_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec3.hpp"
#include "neighbor/neighbor_search.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

/** Delayed-aggregation selection (env override and model config). */
enum class DelayedAggMode
{
    Off,  ///< Always the eager gather-then-MLP composition.
    On,   ///< Always the delayed per-point-MLP-then-gather route.
    Auto, ///< Defer (env: to the model config; config: to the FLOP
          ///< ratio heuristic).
};

/** Minimum eager/delayed first-layer FLOP ratio for Auto to delay. */
inline constexpr double kDelayedAggFlopRatio = 2.0;

/**
 * Process-wide override (EDGEPC_DELAYED_AGG=on|off|auto, read once at
 * startup; setter for tests and A/B runs). Auto defers to the model
 * config.
 */
DelayedAggMode delayedAggMode();
void setDelayedAggMode(DelayedAggMode mode);

/** "on" / "off" / "auto" — echoed as config.delayed_agg in BENCH json. */
const char *delayedAggModeName();

/**
 * Resolve the effective route for one block: the env override wins,
 * then the model config, and when both are Auto the block is delayed
 * iff @p flop_ratio (eager / delayed first-layer GEMM FLOPs) >=
 * kDelayedAggFlopRatio.
 */
bool resolveDelayedAgg(DelayedAggMode config_mode, double flop_ratio);

/**
 * First-layer GEMM FLOP ratio of a PointNet++ SA block: eager runs the
 * Linear on n*k grouped (3+C)-wide rows, delayed on the N unique
 * [p | f] rows plus the n 3-wide centers.
 */
double saDelayedFlopRatio(std::size_t unique_points,
                          std::size_t samples, std::size_t k,
                          std::size_t feat_dim);

/**
 * First-layer GEMM FLOP ratio of a DGCNN EdgeConv block: eager runs
 * the Linear on N*k 2C-wide edge rows, delayed on two N-row C-wide
 * GEMMs — the ratio is exactly k.
 */
double edgeDelayedFlopRatio(std::size_t k);

/** Forward state the delayed-SA backward pass needs (train only). */
struct DelayedSaCache
{
    Matrix unified;  ///< N x (3+C): the [p | f] rows phi ran on.
    Matrix centers;  ///< n x 3: sampled center coordinates psi ran on.
    std::vector<std::uint32_t> neighborIdx; ///< n*k flattened.
    std::size_t k = 0;
    std::size_t featDim = 0;
};

/**
 * Delayed first Linear of a PointNet++ SA block: computes exactly what
 * Linear::forward would return on the groupWithRelativeCoords matrix
 * (up to float reassociation), but with GEMMs over the N unique points
 * and the n centers instead of the n*k grouped rows.
 *
 * @param positions All point positions of the level (N).
 * @param features Level features (N x C) or empty (first module).
 * @param sample_indices The n sampled centers.
 * @param neighbors Neighbor lists of the samples (n x k).
 * @param weight (3+C) x C_out first-layer weight.
 * @param bias 1 x C_out first-layer bias.
 * @param engine GEMM engine.
 * @param cache When non-null, filled for the backward pass.
 * @return (n*k) x C_out pre-activation rows (the eager layer-0 output).
 */
Matrix delayedSaFirstLinear(std::span<const Vec3> positions,
                            const Matrix &features,
                            std::span<const std::uint32_t> sample_indices,
                            const NeighborLists &neighbors,
                            const Matrix &weight, const Matrix &bias,
                            GemmEngine &engine, DelayedSaCache *cache);

/**
 * Backward of delayedSaFirstLinear: accumulates dW/db into @p weight /
 * @p bias and returns dLoss/dFeatures (N x C; zero-column matrix when
 * the block grouped coordinates only). Matches the eager
 * Linear::backward + GroupingLayer::backward composition (coordinates
 * carry no learnable gradient there either).
 */
Matrix delayedSaFirstLinearBackward(const DelayedSaCache &cache,
                                    const Matrix &grad_pre,
                                    Parameter &weight, Parameter &bias,
                                    GemmEngine &engine);

/**
 * Fully delayed inference of a single-stage BN-free SA block
 * (Linear+ReLU then neighbor max-pool): out = relu(gatherMaxPool(phi)
 * - psi), never materializing any (n*k)-row matrix. Valid because the
 * per-group term -p_i W_pos is constant across the group's k rows and
 * ReLU is monotone.
 *
 * @return n x C_out pooled activations (the MaxPoolNeighbors output).
 */
Matrix delayedSaSingleStageInfer(std::span<const Vec3> positions,
                                 const Matrix &features,
                                 std::span<const std::uint32_t> sample_indices,
                                 const NeighborLists &neighbors,
                                 const Matrix &weight, const Matrix &bias,
                                 GemmEngine &engine);

/** Forward state the delayed-EdgeConv backward pass needs. */
struct DelayedEdgeCache
{
    Matrix features; ///< N x C input rows.
    NeighborLists neighbors;
};

/**
 * Delayed first Linear of a DGCNN EdgeConv block: computes what
 * Linear::forward would return on the edgeFeatures matrix
 * [f_i | f_j - f_i] (up to float reassociation) via two N-row GEMMs
 * psi = F (Ws - Wd) + b and phi = F Wd, combined per edge as
 * psi[i] + phi[j].
 *
 * @param weight 2C x C_out first-layer weight ([Ws; Wd]).
 * @return (N*k) x C_out pre-activation rows.
 */
Matrix delayedEdgeFirstLinear(const Matrix &features,
                              const NeighborLists &neighbors,
                              const Matrix &weight, const Matrix &bias,
                              GemmEngine &engine, DelayedEdgeCache *cache);

/**
 * Backward of delayedEdgeFirstLinear: accumulates dW/db into
 * @p weight / @p bias and returns dLoss/dFeatures (N x C). Matches the
 * eager Linear::backward + EdgeFeatureLayer::backward composition.
 */
Matrix delayedEdgeFirstLinearBackward(const DelayedEdgeCache &cache,
                                      const Matrix &grad_pre,
                                      Parameter &weight, Parameter &bias,
                                      GemmEngine &engine);

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_DELAYED_AGG_HPP
