#include "nn/grouping.hpp"

#include <algorithm>
#include <list>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"

namespace edgepc {
namespace nn {

void
gatherRowsInto(const Matrix &features,
               std::span<const std::uint32_t> indices,
               std::span<float> out)
{
    const std::size_t cols = features.cols();
    if (out.size() < indices.size() * cols) {
        fatal("gatherRowsInto: buffer %zu < required %zu", out.size(),
              indices.size() * cols);
    }
    float *dst_base = out.data();
    // EDGEPC_HOT: row gather into the caller's (arena) buffer.
    parallelFor(0, indices.size(), [&](std::size_t r) {
        const float *src = features.data() + std::size_t(indices[r]) * cols;
        float *dst = dst_base + r * cols;
        std::copy(src, src + cols, dst);
    });
}

Matrix
gatherRows(const Matrix &features, std::span<const std::uint32_t> indices)
{
    Matrix out(indices.size(), features.cols());
    gatherRowsInto(features, indices,
                   std::span<float>(out.data(), out.numel()));
    return out;
}

Matrix
gatherLinear(const Matrix &features,
             std::span<const std::uint32_t> indices, const Matrix &weight,
             const Matrix &bias, GemmEngine &engine)
{
    const std::size_t c_in = features.cols();
    const std::size_t c_out = weight.cols();
    if (c_in != weight.rows()) {
        fatal("gatherLinear: feature C %zu != weight rows %zu", c_in,
              weight.rows());
    }
    const std::size_t m = indices.size();

    // The gathered activation lives only in the arena: its lifetime is
    // exactly the GEMM call, which consumes it row-block by row-block
    // while packing.
    ScratchArena &arena = ScratchArena::local();
    ScratchArena::Frame frame(arena);
    std::span<float> gathered = arena.alloc<float>(m * c_in);
    gatherRowsInto(features, indices, gathered);

    const bool fuse_bias =
        bias.numel() > 0 && GemmEngine::fusedEpilogues();
    Matrix out(m, c_out);
    engine.gemm(gathered.data(), weight.data(), out.data(), m, c_in,
                c_out, fuse_bias ? GemmEpilogue::Bias : GemmEpilogue::None,
                fuse_bias ? bias.data() : nullptr);
    if (bias.numel() > 0 && !fuse_bias) {
        parallelFor(0, m, [&](std::size_t r) {
            float *row = out.data() + r * c_out;
            for (std::size_t c = 0; c < c_out; ++c) {
                row[c] += bias.at(0, c);
            }
        });
    }
    return out;
}

void
gatherMaxPoolInto(const Matrix &features, const NeighborLists &neighbors,
                  std::span<float> out)
{
    const std::size_t cols = features.cols();
    const std::size_t n = neighbors.queries();
    if (neighbors.k == 0) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    if (out.size() < n * cols) {
        fatal("gatherMaxPoolInto: buffer %zu < required %zu", out.size(),
              n * cols);
    }
    const std::size_t k = neighbors.k;
    const float *src_base = features.data();
    float *out_base = out.data();
    // EDGEPC_HOT: fused gather + neighbor max-pool (no stacked matrix).
    parallelFor(0, n, [&](std::size_t i) {
        const auto row = neighbors.row(i);
        float *dst = out_base + i * cols;
        const float *first = src_base + std::size_t(row[0]) * cols;
        std::copy(first, first + cols, dst);
        for (std::size_t j = 1; j < k; ++j) {
            const float *src = src_base + std::size_t(row[j]) * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                if (src[c] > dst[c]) {
                    dst[c] = src[c];
                }
            }
        }
    });
}

Matrix
gatherMaxPool(const Matrix &features, const NeighborLists &neighbors)
{
    Matrix out(neighbors.queries(), features.cols());
    gatherMaxPoolInto(features, neighbors,
                      std::span<float>(out.data(), out.numel()));
    return out;
}

void
groupWithRelativeCoordsInto(std::span<const Vec3> positions,
                            const Matrix &features,
                            std::span<const std::uint32_t> sample_indices,
                            const NeighborLists &neighbors,
                            std::span<float> out)
{
    const std::size_t n = sample_indices.size();
    const std::size_t k = neighbors.k;
    if (neighbors.queries() != n) {
        fatal("groupWithRelativeCoords: %zu queries != %zu samples",
              neighbors.queries(), n);
    }
    const std::size_t feat_dim = features.empty() ? 0 : features.cols();
    const std::size_t out_dim = 3 + feat_dim;
    if (out.size() < n * k * out_dim) {
        fatal("groupWithRelativeCoordsInto: buffer %zu < required %zu",
              out.size(), n * k * out_dim);
    }

    float *out_base = out.data();
    // EDGEPC_HOT: grouped gather with relative-coordinate prefix.
    parallelFor(0, n, [&](std::size_t i) {
        const Vec3 center = positions[sample_indices[i]];
        const auto row = neighbors.row(i);
        for (std::size_t j = 0; j < k; ++j) {
            const std::uint32_t nb = row[j];
            float *dst = out_base + (i * k + j) * out_dim;
            const Vec3 rel = positions[nb] - center;
            dst[0] = rel.x;
            dst[1] = rel.y;
            dst[2] = rel.z;
            if (feat_dim > 0) {
                const float *src =
                    features.data() + std::size_t(nb) * feat_dim;
                std::copy(src, src + feat_dim, dst + 3);
            }
        }
    });
}

Matrix
groupWithRelativeCoords(std::span<const Vec3> positions,
                        const Matrix &features,
                        std::span<const std::uint32_t> sample_indices,
                        const NeighborLists &neighbors)
{
    const std::size_t feat_dim = features.empty() ? 0 : features.cols();
    Matrix out(sample_indices.size() * neighbors.k, 3 + feat_dim);
    groupWithRelativeCoordsInto(positions, features, sample_indices,
                                neighbors,
                                std::span<float>(out.data(), out.numel()));
    return out;
}

void
edgeFeaturesInto(const Matrix &features, const NeighborLists &neighbors,
                 std::span<float> out)
{
    const std::size_t n = neighbors.queries();
    const std::size_t k = neighbors.k;
    const std::size_t c = features.cols();
    if (features.rows() != n) {
        fatal("edgeFeatures: %zu feature rows != %zu queries",
              features.rows(), n);
    }
    if (out.size() < n * k * 2 * c) {
        fatal("edgeFeaturesInto: buffer %zu < required %zu", out.size(),
              n * k * 2 * c);
    }

    float *out_base = out.data();
    // EDGEPC_HOT: edge-feature gather [f_i | f_j - f_i].
    parallelFor(0, n, [&](std::size_t i) {
        const float *fi = features.data() + i * c;
        const auto row = neighbors.row(i);
        for (std::size_t j = 0; j < k; ++j) {
            const float *fj =
                features.data() + std::size_t(row[j]) * c;
            float *dst = out_base + (i * k + j) * 2 * c;
            for (std::size_t d = 0; d < c; ++d) {
                dst[d] = fi[d];
                dst[c + d] = fj[d] - fi[d];
            }
        }
    });
}

Matrix
edgeFeatures(const Matrix &features, const NeighborLists &neighbors)
{
    Matrix out(neighbors.queries() * neighbors.k, 2 * features.cols());
    edgeFeaturesInto(features, neighbors,
                     std::span<float>(out.data(), out.numel()));
    return out;
}

Matrix
applyInterpolation(const InterpolationPlan &plan,
                   const Matrix &source_features)
{
    const std::size_t targets = plan.targets();
    const std::size_t c = source_features.cols();

    Matrix out(targets, c);
    applyInterpolationInto(plan, source_features,
                           std::span<float>(out.data(), out.numel()), c);
    return out;
}

void
applyInterpolationInto(const InterpolationPlan &plan,
                       const Matrix &source_features,
                       std::span<float> out, std::size_t out_stride)
{
    const std::size_t targets = plan.targets();
    const std::size_t c = source_features.cols();
    const std::size_t k = plan.k;
    if (out_stride < c) {
        fatal("applyInterpolationInto: stride %zu < cols %zu",
              out_stride, c);
    }
    if (targets > 0 &&
        out.size() < (targets - 1) * out_stride + c) {
        fatal("applyInterpolationInto: buffer %zu too small for %zu "
              "rows of stride %zu",
              out.size(), targets, out_stride);
    }

    float *out_base = out.data();
    parallelFor(0, targets, [&](std::size_t t) {
        float *dst = out_base + t * out_stride;
        std::fill(dst, dst + c, 0.0f);
        for (std::size_t j = 0; j < k; ++j) {
            const std::uint32_t src_idx = plan.indices[t * k + j];
            const float w = plan.weights[t * k + j];
            const float *src =
                source_features.data() + std::size_t(src_idx) * c;
            for (std::size_t d = 0; d < c; ++d) {
                dst[d] += w * src[d];
            }
        }
    });
}

// ---------------------------------------------------------------------
// GroupingLayer
// ---------------------------------------------------------------------

void
GroupingLayer::setIndices(std::span<const std::uint32_t> indices)
{
    idx.assign(indices.begin(), indices.end());
}

Matrix
GroupingLayer::forward(const Matrix &input, bool train)
{
    if (train) {
        savedRows = input.rows();
    }
    return gatherRows(input, idx);
}

Matrix
GroupingLayer::backward(const Matrix &grad_output)
{
    const std::size_t cols = grad_output.cols();
    Matrix grad_in(savedRows, cols);
    // Scatter-add (sequential: rows may collide).
    for (std::size_t r = 0; r < idx.size(); ++r) {
        const float *src = grad_output.data() + r * cols;
        float *dst = grad_in.data() + std::size_t(idx[r]) * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            dst[c] += src[c];
        }
    }
    return grad_in;
}

// ---------------------------------------------------------------------
// InterpolateLayer
// ---------------------------------------------------------------------

void
InterpolateLayer::setPlan(InterpolationPlan new_plan)
{
    plan = std::move(new_plan);
}

Matrix
InterpolateLayer::forward(const Matrix &input, bool train)
{
    if (train) {
        savedRows = input.rows();
    }
    return applyInterpolation(plan, input);
}

Matrix
InterpolateLayer::backward(const Matrix &grad_output)
{
    const std::size_t cols = grad_output.cols();
    Matrix grad_in(savedRows, cols);
    const std::size_t k = plan.k;
    for (std::size_t t = 0; t < plan.targets(); ++t) {
        const float *dy = grad_output.data() + t * cols;
        for (std::size_t j = 0; j < k; ++j) {
            const std::uint32_t src_idx = plan.indices[t * k + j];
            const float w = plan.weights[t * k + j];
            float *dst = grad_in.data() + std::size_t(src_idx) * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                dst[c] += w * dy[c];
            }
        }
    }
    return grad_in;
}

// ---------------------------------------------------------------------
// EdgeFeatureLayer
// ---------------------------------------------------------------------

void
EdgeFeatureLayer::setNeighbors(NeighborLists lists)
{
    neighbors = std::move(lists);
}

Matrix
EdgeFeatureLayer::forward(const Matrix &input, bool train)
{
    if (train) {
        savedRows = input.rows();
    }
    return edgeFeatures(input, neighbors);
}

Matrix
EdgeFeatureLayer::backward(const Matrix &grad_output)
{
    const std::size_t k = neighbors.k;
    const std::size_t c = grad_output.cols() / 2;
    Matrix grad_in(savedRows, c);
    for (std::size_t i = 0; i < neighbors.queries(); ++i) {
        float *gi = grad_in.data() + i * c;
        const auto row = neighbors.row(i);
        for (std::size_t j = 0; j < k; ++j) {
            const float *dy = grad_output.data() + (i * k + j) * 2 * c;
            float *gj = grad_in.data() + std::size_t(row[j]) * c;
            for (std::size_t d = 0; d < c; ++d) {
                // d[f_i] += dy_self - dy_edge ; d[f_j] += dy_edge.
                gi[d] += dy[d] - dy[c + d];
                gj[d] += dy[c + d];
            }
        }
    }
    return grad_in;
}

// ---------------------------------------------------------------------
// Cache traffic model
// ---------------------------------------------------------------------

namespace {

/** Fully associative LRU cache over 64-byte line addresses. */
class LruCache
{
  public:
    explicit LruCache(std::size_t capacity_lines) : cap(capacity_lines) {}

    /** Access a line; returns true on hit. */
    bool access(std::uint64_t line)
    {
        const auto it = where.find(line);
        if (it != where.end()) {
            order.splice(order.begin(), order, it->second);
            return true;
        }
        order.push_front(line);
        where[line] = order.begin();
        if (order.size() > cap) {
            where.erase(order.back());
            order.pop_back();
        }
        return false;
    }

  private:
    std::size_t cap;
    std::list<std::uint64_t> order;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        where;
};

} // namespace

GatherTraffic
estimateGatherTraffic(std::span<const std::uint32_t> indices,
                      std::size_t row_bytes, std::size_t l1_lines,
                      std::size_t l2_lines)
{
    constexpr std::size_t line_bytes = 64;
    // Transactions move 128-byte segments (two lines): back-to-back
    // misses inside one segment coalesce.
    constexpr std::uint64_t lines_per_segment = 2;
    LruCache l1(l1_lines);
    LruCache l2(l2_lines);
    GatherTraffic traffic;

    std::uint64_t last_l2_segment = ~0ull;
    std::uint64_t last_dram_segment = ~0ull;

    for (const std::uint32_t idx : indices) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(idx) * row_bytes;
        const std::uint64_t first_line = base / line_bytes;
        const std::uint64_t last_line =
            (base + row_bytes - 1) / line_bytes;
        for (std::uint64_t line = first_line; line <= last_line; ++line) {
            if (l1.access(line)) {
                continue;
            }
            const std::uint64_t segment = line / lines_per_segment;
            if (segment != last_l2_segment) {
                ++traffic.l2Lines;
                last_l2_segment = segment;
            }
            if (!l2.access(line)) {
                if (segment != last_dram_segment) {
                    ++traffic.dramLines;
                    last_dram_segment = segment;
                }
            }
        }
    }
    return traffic;
}

GatherTraffic
estimateWarpGatherTraffic(const NeighborLists &lists,
                          std::size_t row_bytes, std::size_t warp,
                          std::size_t l2_lines)
{
    constexpr std::size_t segment_bytes = 128;
    LruCache l2(l2_lines);
    GatherTraffic traffic;
    const std::size_t queries = lists.queries();
    const std::size_t k = lists.k;

    std::vector<std::uint64_t> segments;
    for (std::size_t warp_lo = 0; warp_lo < queries; warp_lo += warp) {
        const std::size_t warp_hi = std::min(queries, warp_lo + warp);
        for (std::size_t j = 0; j < k; ++j) {
            // One coalesced instruction: thread t reads neighbor j of
            // query warp_lo + t.
            segments.clear();
            for (std::size_t q = warp_lo; q < warp_hi; ++q) {
                const std::uint64_t base =
                    static_cast<std::uint64_t>(
                        lists.indices[q * k + j]) *
                    row_bytes;
                const std::uint64_t first = base / segment_bytes;
                const std::uint64_t last =
                    (base + row_bytes - 1) / segment_bytes;
                for (std::uint64_t s = first; s <= last; ++s) {
                    segments.push_back(s);
                }
            }
            std::sort(segments.begin(), segments.end());
            segments.erase(
                std::unique(segments.begin(), segments.end()),
                segments.end());
            traffic.l2Lines += segments.size();
            for (const std::uint64_t s : segments) {
                if (!l2.access(s)) {
                    ++traffic.dramLines;
                }
            }
        }
    }
    return traffic;
}

NeighborLists
sortNeighborRows(const NeighborLists &lists)
{
    NeighborLists out = lists;
    for (std::size_t q = 0; q < out.queries(); ++q) {
        std::uint32_t *row = out.indices.data() + q * out.k;
        std::sort(row, row + out.k);
    }
    return out;
}

} // namespace nn
} // namespace edgepc
