#include "nn/tensor.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace edgepc {
namespace nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), buf(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : nRows(rows), nCols(cols), buf(std::move(data))
{
    if (buf.size() != rows * cols) {
        fatal("Matrix: data size %zu != %zu x %zu", buf.size(), rows, cols);
    }
}

void
Matrix::setZero()
{
    std::fill(buf.begin(), buf.end(), 0.0f);
}

void
Matrix::fillNormal(Rng &rng, float stddev)
{
    for (float &v : buf) {
        v = rng.normal(0.0f, stddev);
    }
}

void
Matrix::reshape(std::size_t rows, std::size_t cols)
{
    if (rows * cols != buf.size()) {
        fatal("Matrix::reshape: %zu x %zu != numel %zu", rows, cols,
              buf.size());
    }
    nRows = rows;
    nCols = cols;
}

void
Matrix::add(const Matrix &other)
{
    if (other.numel() != numel()) {
        fatal("Matrix::add: shape mismatch (%zu vs %zu elements)",
              other.numel(), numel());
    }
    for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] += other.buf[i];
    }
}

void
Matrix::scale(float factor)
{
    for (float &v : buf) {
        v *= factor;
    }
}

Matrix
concatCols(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows()) {
        fatal("concatCols: row mismatch (%zu vs %zu)", a.rows(), b.rows());
    }
    Matrix out(a.rows(), a.cols() + b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        float *dst = out.data() + r * out.cols();
        const float *ra = a.data() + r * a.cols();
        const float *rb = b.data() + r * b.cols();
        std::copy(ra, ra + a.cols(), dst);
        std::copy(rb, rb + b.cols(), dst + a.cols());
    }
    return out;
}

std::pair<Matrix, Matrix>
splitCols(const Matrix &m, std::size_t left_cols)
{
    if (left_cols > m.cols()) {
        fatal("splitCols: left_cols %zu > cols %zu", left_cols, m.cols());
    }
    Matrix left(m.rows(), left_cols);
    Matrix right(m.rows(), m.cols() - left_cols);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const float *src = m.data() + r * m.cols();
        std::copy(src, src + left_cols, left.data() + r * left_cols);
        std::copy(src + left_cols, src + m.cols(),
                  right.data() + r * right.cols());
    }
    return {std::move(left), std::move(right)};
}

Matrix
concatRows(std::span<const Matrix> parts)
{
    if (parts.empty()) {
        return Matrix();
    }
    const std::size_t cols = parts.front().cols();
    std::size_t rows = 0;
    for (const Matrix &part : parts) {
        if (part.cols() != cols) {
            fatal("concatRows: column mismatch (%zu vs %zu)",
                  part.cols(), cols);
        }
        rows += part.rows();
    }
    Matrix out(rows, cols);
    float *dst = out.data();
    for (const Matrix &part : parts) {
        std::copy(part.data(), part.data() + part.numel(), dst);
        dst += part.numel();
    }
    return out;
}

Matrix
sliceRows(const Matrix &m, std::size_t begin, std::size_t end)
{
    if (begin > end || end > m.rows()) {
        fatal("sliceRows: bad range [%zu, %zu) for %zu rows", begin, end,
              m.rows());
    }
    Matrix out(end - begin, m.cols());
    const float *src = m.data() + begin * m.cols();
    std::copy(src, src + out.numel(), out.data());
    return out;
}

Matrix
broadcastRow(const Matrix &row, std::size_t copies)
{
    if (row.rows() != 1) {
        fatal("broadcastRow: expected a single row, got %zu", row.rows());
    }
    Matrix out(copies, row.cols());
    for (std::size_t r = 0; r < copies; ++r) {
        std::copy(row.data(), row.data() + row.cols(),
                  out.data() + r * row.cols());
    }
    return out;
}

void
Parameter::init(std::size_t rows, std::size_t cols)
{
    value = Matrix(rows, cols);
    grad = Matrix(rows, cols);
}

} // namespace nn
} // namespace edgepc
