#include "nn/serialization.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/logging.hpp"

namespace edgepc {
namespace nn {

namespace {

constexpr char kMagic[4] = {'E', 'P', 'C', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

} // namespace

bool
saveParameters(const std::vector<Parameter *> &params, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    writePod(os, kVersion);
    writePod(os, static_cast<std::uint64_t>(params.size()));
    for (const Parameter *p : params) {
        writePod(os, static_cast<std::uint64_t>(p->value.rows()));
        writePod(os, static_cast<std::uint64_t>(p->value.cols()));
        os.write(reinterpret_cast<const char *>(p->value.data()),
                 static_cast<std::streamsize>(p->value.numel() *
                                              sizeof(float)));
    }
    return static_cast<bool>(os);
}

bool
saveParameters(const std::vector<Parameter *> &params,
               const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        warn("saveParameters: cannot open '%s' for writing",
             path.c_str());
        return false;
    }
    return saveParameters(params, os);
}

bool
loadParameters(const std::vector<Parameter *> &params, std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        warn("loadParameters: bad magic");
        return false;
    }
    std::uint32_t version = 0;
    if (!readPod(is, version) || version != kVersion) {
        warn("loadParameters: unsupported version %u", version);
        return false;
    }
    std::uint64_t count = 0;
    if (!readPod(is, count) || count != params.size()) {
        warn("loadParameters: parameter count %llu != model's %zu",
             static_cast<unsigned long long>(count), params.size());
        return false;
    }
    for (Parameter *p : params) {
        std::uint64_t rows = 0, cols = 0;
        if (!readPod(is, rows) || !readPod(is, cols)) {
            return false;
        }
        if (rows != p->value.rows() || cols != p->value.cols()) {
            warn("loadParameters: shape %llux%llu != model's %zux%zu",
                 static_cast<unsigned long long>(rows),
                 static_cast<unsigned long long>(cols),
                 p->value.rows(), p->value.cols());
            return false;
        }
        is.read(reinterpret_cast<char *>(p->value.data()),
                static_cast<std::streamsize>(p->value.numel() *
                                             sizeof(float)));
        if (!is) {
            return false;
        }
    }
    return true;
}

bool
loadParameters(const std::vector<Parameter *> &params,
               const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        warn("loadParameters: cannot open '%s'", path.c_str());
        return false;
    }
    return loadParameters(params, is);
}

bool
saveModelState(const std::vector<Parameter *> &params,
               const std::vector<std::vector<float> *> &buffers,
               std::ostream &os)
{
    if (!saveParameters(params, os)) {
        return false;
    }
    writePod(os, static_cast<std::uint64_t>(buffers.size()));
    for (const std::vector<float> *buffer : buffers) {
        writePod(os, static_cast<std::uint64_t>(buffer->size()));
        os.write(reinterpret_cast<const char *>(buffer->data()),
                 static_cast<std::streamsize>(buffer->size() *
                                              sizeof(float)));
    }
    return static_cast<bool>(os);
}

bool
saveModelState(const std::vector<Parameter *> &params,
               const std::vector<std::vector<float> *> &buffers,
               const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        warn("saveModelState: cannot open '%s' for writing",
             path.c_str());
        return false;
    }
    return saveModelState(params, buffers, os);
}

bool
loadModelState(const std::vector<Parameter *> &params,
               const std::vector<std::vector<float> *> &buffers,
               std::istream &is)
{
    if (!loadParameters(params, is)) {
        return false;
    }
    std::uint64_t count = 0;
    if (!readPod(is, count) || count != buffers.size()) {
        warn("loadModelState: buffer count %llu != model's %zu",
             static_cast<unsigned long long>(count), buffers.size());
        return false;
    }
    for (std::vector<float> *buffer : buffers) {
        std::uint64_t size = 0;
        if (!readPod(is, size) || size != buffer->size()) {
            warn("loadModelState: buffer size mismatch");
            return false;
        }
        is.read(reinterpret_cast<char *>(buffer->data()),
                static_cast<std::streamsize>(buffer->size() *
                                             sizeof(float)));
        if (!is) {
            return false;
        }
    }
    return true;
}

bool
loadModelState(const std::vector<Parameter *> &params,
               const std::vector<std::vector<float> *> &buffers,
               const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        warn("loadModelState: cannot open '%s'", path.c_str());
        return false;
    }
    return loadModelState(params, buffers, is);
}

} // namespace nn
} // namespace edgepc
