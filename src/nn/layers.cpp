#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace edgepc {
namespace nn {

// ---------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------

Linear::Linear(std::size_t in, std::size_t out, Rng &rng,
               GemmEngine *engine)
    : engineOverride(engine)
{
    weight.init(in, out);
    bias.init(1, out);
    // He initialization suits the ReLU blocks these layers live in.
    const float stddev = std::sqrt(2.0f / static_cast<float>(in));
    weight.value.fillNormal(rng, stddev);
}

GemmEngine &
Linear::gemm()
{
    return engineOverride ? *engineOverride : GemmEngine::globalEngine();
}

Matrix
Linear::forward(const Matrix &input, bool train)
{
    if (input.cols() != weight.value.rows()) {
        fatal("Linear::forward: input dim %zu != weight dim %zu",
              input.cols(), weight.value.rows());
    }
    if (!train &&
        resolveQuantGemm(quantConfig, input.rows(), input.cols())) {
        // Int8 inference route: cached quantized panels, dynamic
        // activation scales, dequant+bias fused into the tile store.
        // (The quant route always fuses its epilogue — the int32
        // accumulators must be rescaled while hot regardless of the
        // EDGEPC_GEMM_EPILOGUE toggle, which governs fp32 only.)
        auto wq = quantCache.get(weight.value);
        return gemm().multiplyQuantized(input, *wq, GemmEpilogue::Bias,
                                        bias.value);
    }
    Matrix out;
    if (GemmEngine::fusedEpilogues()) {
        // Bias is added in the GEMM epilogue: one pass over the
        // output instead of a second sweep.
        out = gemm().multiply(input, weight.value, GemmEpilogue::Bias,
                              bias.value);
    } else {
        out = gemm().multiply(input, weight.value);
        const float *b = bias.value.data();
        parallelFor(0, out.rows(), [&](std::size_t r) {
            float *row = out.data() + r * out.cols();
            for (std::size_t c = 0; c < out.cols(); ++c) {
                row[c] += b[c];
            }
        });
    }
    if (train) {
        savedInput = input;
    }
    return out;
}

Matrix
Linear::backward(const Matrix &grad_output)
{
    // dW += X^T * dY ; db += column sums of dY ; dX = dY * W^T.
    gemm().multiplyLeftTransposedAdd(savedInput, grad_output, weight.grad);

    for (std::size_t r = 0; r < grad_output.rows(); ++r) {
        const float *row = grad_output.data() + r * grad_output.cols();
        float *bg = bias.grad.data();
        for (std::size_t c = 0; c < grad_output.cols(); ++c) {
            bg[c] += row[c];
        }
    }
    return gemm().multiplyTransposed(grad_output, weight.value);
}

void
Linear::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight);
    out.push_back(&bias);
}

// ---------------------------------------------------------------------
// LinearRelu
// ---------------------------------------------------------------------

LinearRelu::LinearRelu(std::size_t in, std::size_t out, Rng &rng,
                       GemmEngine *engine)
    : engineOverride(engine)
{
    weight.init(in, out);
    bias.init(1, out);
    const float stddev = std::sqrt(2.0f / static_cast<float>(in));
    weight.value.fillNormal(rng, stddev);
}

GemmEngine &
LinearRelu::gemm()
{
    return engineOverride ? *engineOverride : GemmEngine::globalEngine();
}

Matrix
LinearRelu::forward(const Matrix &input, bool train)
{
    if (input.cols() != weight.value.rows()) {
        fatal("LinearRelu::forward: input dim %zu != weight dim %zu",
              input.cols(), weight.value.rows());
    }
    if (!train &&
        resolveQuantGemm(quantConfig, input.rows(), input.cols())) {
        // Int8 inference route (see Linear::forward); ReLU joins the
        // fused dequant epilogue. Training never reaches this branch,
        // so the saved input and ReLU mask stay fp32-derived.
        auto wq = quantCache.get(weight.value);
        return gemm().multiplyQuantized(input, *wq,
                                        GemmEpilogue::BiasRelu,
                                        bias.value);
    }
    Matrix out;
    if (GemmEngine::fusedEpilogues()) {
        out = gemm().multiply(input, weight.value, GemmEpilogue::BiasRelu,
                              bias.value);
    } else {
        out = gemm().multiply(input, weight.value);
        const float *b = bias.value.data();
        parallelFor(0, out.rows(), [&](std::size_t r) {
            float *row = out.data() + r * out.cols();
            for (std::size_t c = 0; c < out.cols(); ++c) {
                const float v = row[c] + b[c];
                row[c] = v > 0.0f ? v : 0.0f;
            }
        });
    }
    if (train) {
        savedInput = input;
        // The pre-activation is positive exactly where the output is,
        // so the ReLU mask is recoverable from the fused output.
        mask.assign(out.numel(), 0);
        const float *data = out.data();
        for (std::size_t i = 0; i < out.numel(); ++i) {
            if (data[i] > 0.0f) {
                mask[i] = 1;
            }
        }
    }
    return out;
}

Matrix
LinearRelu::backward(const Matrix &grad_output)
{
    // Gate the incoming gradient by the ReLU mask, then backprop
    // through the affine part exactly as Linear does.
    Matrix gated = grad_output;
    float *gd = gated.data();
    for (std::size_t i = 0; i < gated.numel(); ++i) {
        if (!mask[i]) {
            gd[i] = 0.0f;
        }
    }

    gemm().multiplyLeftTransposedAdd(savedInput, gated, weight.grad);

    for (std::size_t r = 0; r < gated.rows(); ++r) {
        const float *row = gated.data() + r * gated.cols();
        float *bg = bias.grad.data();
        for (std::size_t c = 0; c < gated.cols(); ++c) {
            bg[c] += row[c];
        }
    }
    return gemm().multiplyTransposed(gated, weight.value);
}

void
LinearRelu::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight);
    out.push_back(&bias);
}

// ---------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------

BatchNorm::BatchNorm(std::size_t features, float momentum, float epsilon)
    : runningMean(features, 0.0f), runningVar(features, 1.0f),
      mom(momentum), eps(epsilon)
{
    gamma.init(1, features);
    beta.init(1, features);
    for (std::size_t c = 0; c < features; ++c) {
        gamma.value.at(0, c) = 1.0f;
    }
}

Matrix
BatchNorm::forward(const Matrix &input, bool train)
{
    const std::size_t rows = input.rows();
    const std::size_t cols = input.cols();
    if (cols != runningMean.size()) {
        fatal("BatchNorm::forward: feature dim %zu != configured %zu",
              cols, runningMean.size());
    }
    Matrix out(rows, cols);

    // This engine processes one cloud per forward pass, so the batch
    // statistics are per-cloud (instance) statistics. They are used
    // at inference as well: the reference implementations train with
    // large multi-cloud batches whose statistics match their running
    // averages, but here per-cloud statistics differ strongly across
    // inputs and normalizing with the blended running average at eval
    // would put activations outside the trained regime. Running
    // statistics still back the single-row case (classifier heads
    // after global pooling), where a per-batch variance is degenerate.
    std::vector<float> mean(cols), var(cols);
    usedBatchStats = rows > 1;
    if (usedBatchStats) {
        for (std::size_t c = 0; c < cols; ++c) {
            mean[c] = 0.0f;
            var[c] = 0.0f;
        }
        for (std::size_t r = 0; r < rows; ++r) {
            const float *row = input.data() + r * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                mean[c] += row[c];
            }
        }
        const float inv_rows = 1.0f / static_cast<float>(rows);
        for (std::size_t c = 0; c < cols; ++c) {
            mean[c] *= inv_rows;
        }
        for (std::size_t r = 0; r < rows; ++r) {
            const float *row = input.data() + r * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                const float d = row[c] - mean[c];
                var[c] += d * d;
            }
        }
        for (std::size_t c = 0; c < cols; ++c) {
            var[c] *= inv_rows;
        }
        if (train) {
            for (std::size_t c = 0; c < cols; ++c) {
                runningMean[c] =
                    (1.0f - mom) * runningMean[c] + mom * mean[c];
                runningVar[c] =
                    (1.0f - mom) * runningVar[c] + mom * var[c];
            }
        }
    } else {
        mean = runningMean;
        var = runningVar;
    }

    savedInvStd.resize(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        savedInvStd[c] = 1.0f / std::sqrt(var[c] + eps);
    }

    if (train) {
        savedNormalized = Matrix(rows, cols);
    }
    const float *g = gamma.value.data();
    const float *b = beta.value.data();
    parallelFor(0, rows, [&](std::size_t r) {
        const float *in_row = input.data() + r * cols;
        float *out_row = out.data() + r * cols;
        float *norm_row =
            train ? savedNormalized.data() + r * cols : nullptr;
        for (std::size_t c = 0; c < cols; ++c) {
            const float normalized =
                (in_row[c] - mean[c]) * savedInvStd[c];
            if (norm_row) {
                norm_row[c] = normalized;
            }
            out_row[c] = g[c] * normalized + b[c];
        }
    });
    return out;
}

bool
BatchNorm::inferSegmentsInPlace(Matrix &x,
                                std::span<const std::size_t> segment_rows)
{
    const std::size_t cols = x.cols();
    if (cols != runningMean.size()) {
        fatal("BatchNorm::inferSegmentsInPlace: feature dim %zu != "
              "configured %zu",
              cols, runningMean.size());
    }

    // Same statistics policy and arithmetic as forward(): multi-row
    // segments normalize with their own instance statistics, single
    // rows fall back to the running averages. Normalizing in place on
    // the stacked batch is what saves the per-segment slice and
    // copy-back that a forward() round trip would cost.
    std::vector<float> mean(cols), var(cols), inv_std(cols);
    const float *g = gamma.value.data();
    const float *b = beta.value.data();
    std::size_t offset = 0;
    for (std::size_t rows : segment_rows) {
        if (rows > 1) {
            std::fill(mean.begin(), mean.end(), 0.0f);
            std::fill(var.begin(), var.end(), 0.0f);
            for (std::size_t r = 0; r < rows; ++r) {
                const float *row = x.data() + (offset + r) * cols;
                for (std::size_t c = 0; c < cols; ++c) {
                    mean[c] += row[c];
                }
            }
            const float inv_rows = 1.0f / static_cast<float>(rows);
            for (std::size_t c = 0; c < cols; ++c) {
                mean[c] *= inv_rows;
            }
            for (std::size_t r = 0; r < rows; ++r) {
                const float *row = x.data() + (offset + r) * cols;
                for (std::size_t c = 0; c < cols; ++c) {
                    const float d = row[c] - mean[c];
                    var[c] += d * d;
                }
            }
            for (std::size_t c = 0; c < cols; ++c) {
                var[c] *= inv_rows;
            }
        } else {
            mean = runningMean;
            var = runningVar;
        }
        for (std::size_t c = 0; c < cols; ++c) {
            inv_std[c] = 1.0f / std::sqrt(var[c] + eps);
        }
        parallelFor(0, rows, [&](std::size_t r) {
            float *row = x.data() + (offset + r) * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                const float normalized = (row[c] - mean[c]) * inv_std[c];
                row[c] = g[c] * normalized + b[c];
            }
        });
        offset += rows;
    }
    return true;
}

Matrix
BatchNorm::backward(const Matrix &grad_output)
{
    const std::size_t rows = grad_output.rows();
    const std::size_t cols = grad_output.cols();
    const auto frows = static_cast<float>(rows);

    // Per-feature reductions: sum(dY), sum(dY * xhat).
    std::vector<float> sum_dy(cols, 0.0f), sum_dy_xhat(cols, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
        const float *dy = grad_output.data() + r * cols;
        const float *xh = savedNormalized.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            sum_dy[c] += dy[c];
            sum_dy_xhat[c] += dy[c] * xh[c];
        }
    }
    for (std::size_t c = 0; c < cols; ++c) {
        gamma.grad.at(0, c) += sum_dy_xhat[c];
        beta.grad.at(0, c) += sum_dy[c];
    }

    Matrix grad_in(rows, cols);
    const float *g = gamma.value.data();
    parallelFor(0, rows, [&](std::size_t r) {
        const float *dy = grad_output.data() + r * cols;
        const float *xh = savedNormalized.data() + r * cols;
        float *dx = grad_in.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            if (usedBatchStats) {
                // Standard batch-norm input gradient.
                dx[c] = g[c] * savedInvStd[c] *
                        (dy[c] - sum_dy[c] / frows -
                         xh[c] * sum_dy_xhat[c] / frows);
            } else {
                // Running-stats normalization is an affine map of the
                // input, so the statistics terms vanish.
                dx[c] = g[c] * savedInvStd[c] * dy[c];
            }
        }
    });
    return grad_in;
}

void
BatchNorm::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&gamma);
    out.push_back(&beta);
}

void
BatchNorm::collectBuffers(std::vector<std::vector<float> *> &out)
{
    out.push_back(&runningMean);
    out.push_back(&runningVar);
}

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

Matrix
ReLU::forward(const Matrix &input, bool train)
{
    Matrix out = input;
    if (train) {
        mask.assign(input.numel(), 0);
    }
    float *data = out.data();
    for (std::size_t i = 0; i < out.numel(); ++i) {
        if (data[i] > 0.0f) {
            if (train) {
                mask[i] = 1;
            }
        } else {
            data[i] = 0.0f;
        }
    }
    return out;
}

Matrix
ReLU::backward(const Matrix &grad_output)
{
    Matrix grad_in = grad_output;
    float *data = grad_in.data();
    for (std::size_t i = 0; i < grad_in.numel(); ++i) {
        if (!mask[i]) {
            data[i] = 0.0f;
        }
    }
    return grad_in;
}

// ---------------------------------------------------------------------
// LeakyReLU
// ---------------------------------------------------------------------

LeakyReLU::LeakyReLU(float negative_slope) : slope(negative_slope) {}

Matrix
LeakyReLU::forward(const Matrix &input, bool train)
{
    Matrix out = input;
    if (train) {
        mask.assign(input.numel(), 0);
    }
    float *data = out.data();
    for (std::size_t i = 0; i < out.numel(); ++i) {
        if (data[i] > 0.0f) {
            if (train) {
                mask[i] = 1;
            }
        } else {
            data[i] *= slope;
        }
    }
    return out;
}

Matrix
LeakyReLU::backward(const Matrix &grad_output)
{
    Matrix grad_in = grad_output;
    float *data = grad_in.data();
    for (std::size_t i = 0; i < grad_in.numel(); ++i) {
        if (!mask[i]) {
            data[i] *= slope;
        }
    }
    return grad_in;
}

// ---------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------

void
Sequential::add(std::unique_ptr<Layer> layer)
{
    layers.push_back(std::move(layer));
}

void
Sequential::addLinearBnRelu(std::size_t in, std::size_t out, Rng &rng,
                            GemmEngine *engine)
{
    add(std::make_unique<Linear>(in, out, rng, engine));
    add(std::make_unique<BatchNorm>(out));
    add(std::make_unique<ReLU>());
}

void
Sequential::addLinearRelu(std::size_t in, std::size_t out, Rng &rng,
                          GemmEngine *engine)
{
    add(std::make_unique<LinearRelu>(in, out, rng, engine));
}

Matrix
Sequential::forward(const Matrix &input, bool train)
{
    return forwardFrom(0, input, train);
}

Matrix
Sequential::forwardFrom(std::size_t first, const Matrix &input, bool train)
{
    if (first > layers.size()) {
        fatal("forwardFrom: first layer %zu > size %zu", first,
              layers.size());
    }
    Matrix x = input;
    for (std::size_t i = first; i < layers.size(); ++i) {
        x = layers[i]->forward(x, train);
    }
    return x;
}

Matrix
Sequential::backwardFrom(std::size_t first, const Matrix &grad_output)
{
    if (first > layers.size()) {
        fatal("backwardFrom: first layer %zu > size %zu", first,
              layers.size());
    }
    Matrix g = grad_output;
    for (std::size_t i = layers.size(); i > first; --i) {
        g = layers[i - 1]->backward(g);
    }
    return g;
}

void
Sequential::setQuantMode(QuantMode mode)
{
    for (auto &layer : layers) {
        layer->setQuantMode(mode);
    }
}

bool
Sequential::rowIndependentInference() const
{
    for (const auto &layer : layers) {
        if (!layer->rowIndependentInference()) {
            return false;
        }
    }
    return true;
}

Matrix
Sequential::forwardSegmented(const Matrix &input,
                             std::span<const std::size_t> segment_rows,
                             std::size_t first_layer)
{
    if (first_layer > layers.size()) {
        fatal("forwardSegmented: first layer %zu > size %zu", first_layer,
              layers.size());
    }
    std::size_t total = 0;
    for (std::size_t rows : segment_rows) {
        total += rows;
    }
    if (total != input.rows()) {
        fatal("forwardSegmented: segment rows %zu != input rows %zu",
              total, input.rows());
    }

    // `x` is materialized lazily: the first layer reads `input`
    // directly (the usual Linear head makes a fresh matrix anyway), so
    // the stacked batch is not copied just to enter the loop.
    Matrix x;
    bool have_x = false;
    for (std::size_t li = first_layer; li < layers.size(); ++li) {
        auto &layer = layers[li];
        if (layer->rowIndependentInference()) {
            x = layer->forward(have_x ? x : input, false);
            have_x = true;
            continue;
        }
        if (!have_x) {
            x = input;
            have_x = true;
        }
        if (layer->inferSegmentsInPlace(x, segment_rows)) {
            continue;
        }
        Matrix out;
        std::size_t offset = 0;
        for (std::size_t s = 0; s < segment_rows.size(); ++s) {
            Matrix seg = sliceRows(x, offset, offset + segment_rows[s]);
            Matrix y = layer->forward(seg, false);
            if (y.rows() != segment_rows[s]) {
                fatal("forwardSegmented: layer changed segment rows "
                      "(%zu -> %zu)",
                      segment_rows[s], y.rows());
            }
            if (s == 0) {
                out = Matrix(x.rows(), y.cols());
            }
            std::copy(y.data(), y.data() + y.numel(),
                      out.data() + offset * y.cols());
            offset += segment_rows[s];
        }
        x = std::move(out);
    }
    return have_x ? x : input;
}

Matrix
Sequential::backward(const Matrix &grad_output)
{
    return backwardFrom(0, grad_output);
}

void
Sequential::collectParameters(std::vector<Parameter *> &out)
{
    for (auto &layer : layers) {
        layer->collectParameters(out);
    }
}

void
Sequential::collectBuffers(std::vector<std::vector<float> *> &out)
{
    for (auto &layer : layers) {
        layer->collectBuffers(out);
    }
}

// ---------------------------------------------------------------------
// MaxPoolNeighbors
// ---------------------------------------------------------------------

MaxPoolNeighbors::MaxPoolNeighbors(std::size_t group_size) : k(group_size)
{
    if (group_size == 0) {
        fatal("MaxPoolNeighbors: group size must be > 0");
    }
}

Matrix
MaxPoolNeighbors::forward(const Matrix &input, bool train)
{
    if (input.rows() % k != 0) {
        fatal("MaxPoolNeighbors: rows %zu not a multiple of k=%zu",
              input.rows(), k);
    }
    const std::size_t points = input.rows() / k;
    const std::size_t cols = input.cols();
    Matrix out(points, cols);
    if (train) {
        argmax.assign(points * cols, 0);
        savedRows = input.rows();
    }

    parallelFor(0, points, [&](std::size_t p) {
        float *out_row = out.data() + p * cols;
        const float *first = input.data() + p * k * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            out_row[c] = first[c];
        }
        std::uint32_t *amax =
            train ? argmax.data() + p * cols : nullptr;
        if (amax) {
            for (std::size_t c = 0; c < cols; ++c) {
                amax[c] = static_cast<std::uint32_t>(p * k);
            }
        }
        for (std::size_t j = 1; j < k; ++j) {
            const float *row = input.data() + (p * k + j) * cols;
            for (std::size_t c = 0; c < cols; ++c) {
                if (row[c] > out_row[c]) {
                    out_row[c] = row[c];
                    if (amax) {
                        amax[c] = static_cast<std::uint32_t>(p * k + j);
                    }
                }
            }
        }
    });
    return out;
}

Matrix
MaxPoolNeighbors::backward(const Matrix &grad_output)
{
    const std::size_t cols = grad_output.cols();
    Matrix grad_in(savedRows, cols);
    for (std::size_t p = 0; p < grad_output.rows(); ++p) {
        const float *dy = grad_output.data() + p * cols;
        const std::uint32_t *amax = argmax.data() + p * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            grad_in.at(amax[c], c) += dy[c];
        }
    }
    return grad_in;
}

// ---------------------------------------------------------------------
// GlobalMaxPool
// ---------------------------------------------------------------------

Matrix
GlobalMaxPool::forward(const Matrix &input, bool train)
{
    if (input.rows() == 0) {
        fatal("GlobalMaxPool: empty input");
    }
    const std::size_t cols = input.cols();
    Matrix out(1, cols);
    if (train) {
        argmax.assign(cols, 0);
        savedRows = input.rows();
    }
    for (std::size_t c = 0; c < cols; ++c) {
        out.at(0, c) = input.at(0, c);
    }
    for (std::size_t r = 1; r < input.rows(); ++r) {
        const float *row = input.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            if (row[c] > out.at(0, c)) {
                out.at(0, c) = row[c];
                if (train) {
                    argmax[c] = static_cast<std::uint32_t>(r);
                }
            }
        }
    }
    return out;
}

Matrix
GlobalMaxPool::backward(const Matrix &grad_output)
{
    Matrix grad_in(savedRows, grad_output.cols());
    for (std::size_t c = 0; c < grad_output.cols(); ++c) {
        grad_in.at(argmax[c], c) += grad_output.at(0, c);
    }
    return grad_in;
}

} // namespace nn
} // namespace edgepc
