/**
 * @file
 * Classification losses: softmax cross-entropy over logits, with the
 * gradient needed for training, plus accuracy helpers.
 */

#ifndef EDGEPC_NN_LOSS_HPP
#define EDGEPC_NN_LOSS_HPP

#include <cstdint>
#include <span>

#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

/** Loss value plus the gradient w.r.t. the logits. */
struct LossResult
{
    double loss = 0.0;
    Matrix gradLogits;
};

/**
 * Mean softmax cross-entropy over rows.
 *
 * @param logits rows x classes raw scores.
 * @param labels One class id per row (entries < 0 are ignored —
 *        convenient for unlabeled padding points).
 */
LossResult softmaxCrossEntropy(const Matrix &logits,
                               std::span<const std::int32_t> labels);

/** Row-wise argmax (predicted class per row). */
std::vector<std::int32_t> argmaxRows(const Matrix &logits);

/**
 * Fraction of rows whose argmax equals the label (ignored labels < 0
 * are excluded from the denominator).
 */
double accuracy(const Matrix &logits, std::span<const std::int32_t> labels);

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_LOSS_HPP
