/**
 * @file
 * SGD-with-momentum optimizer over the parameters collected from a
 * layer stack. Used by the retraining driver (Sec 5.3 / Fig 14).
 */

#ifndef EDGEPC_NN_OPTIMIZER_HPP
#define EDGEPC_NN_OPTIMIZER_HPP

#include <vector>

#include "nn/tensor.hpp"

namespace edgepc {
namespace nn {

/** Stochastic gradient descent with classical momentum. */
class SgdOptimizer
{
  public:
    /**
     * @param params Parameters to update (not owned; must outlive the
     *        optimizer).
     * @param learning_rate Step size.
     * @param momentum Momentum coefficient (0 disables).
     * @param weight_decay L2 penalty coefficient.
     */
    SgdOptimizer(std::vector<Parameter *> params,
                 float learning_rate = 0.01f, float momentum = 0.9f,
                 float weight_decay = 0.0f);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Zero every parameter's gradient. */
    void zeroGrad();

    /** Change the learning rate (schedules). */
    void setLearningRate(float learning_rate) { lr = learning_rate; }
    float learningRate() const { return lr; }

  private:
    std::vector<Parameter *> parameters;
    std::vector<std::vector<float>> velocity;
    float lr;
    float mom;
    float decay;
};

} // namespace nn
} // namespace edgepc

#endif // EDGEPC_NN_OPTIMIZER_HPP
