/**
 * @file
 * Indoor semantic segmentation, the W1/W2 scenario of the paper: train
 * a compact PointNet++ on synthetic rooms twice — once with the exact
 * baseline kernels and once with the EdgePC approximations in the
 * training loop (Sec 5.3) — then compare accuracy, mIoU and latency.
 *
 * The trained EdgePC model writes a labeled PLY of one test room so
 * the result can be inspected in any viewer.
 *
 * Usage: indoor_segmentation [num_scenes] [points] [epochs]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "datasets/scenes.hpp"
#include "example_util.hpp"
#include "models/pointnetpp.hpp"
#include "nn/loss.hpp"
#include "pointcloud/io.hpp"
#include "train/trainer.hpp"

using namespace edgepc;

int
main(int argc, char **argv)
{
    const std::string usage =
        "indoor_segmentation [scenes] [points] [epochs]";
    std::size_t scenes = 32;
    std::size_t points = 512;
    int epochs = 12;
    if ((argc > 1 &&
         !examples::parseCount(argv[1], "scenes", usage, scenes)) ||
        (argc > 2 &&
         !examples::parseCount(argv[2], "points", usage, points)) ||
        (argc > 3 &&
         !examples::parseCount(argv[3], "epochs", usage, epochs))) {
        return 2;
    }

    SceneOptions options;
    options.points = points;
    const Dataset data = makeSceneDataset(scenes, options, 3);
    auto [train_set, test_set] = data.split(0.75, 7);
    std::cout << "Dataset: " << train_set.size() << " train / "
              << test_set.size() << " test rooms, " << points
              << " pts each\n";

    TrainOptions topt;
    topt.epochs = epochs;
    topt.learningRate = 0.02f;
    topt.lrDecay = 0.93f;
    topt.verbose = true;
    Trainer trainer(topt);

    Table table({"pipeline", "test acc", "test mIoU", "E2E ms/frame"});

    auto evaluate = [&](PointNetPP &model, const EdgePcConfig &cfg,
                        const char *label) {
        const EvalResult eval =
            trainer.evaluateSegmentation(model, test_set, cfg);
        InferencePipeline pipeline(model, cfg);
        const PipelineResult r =
            pipeline.run(test_set.items.front().cloud);
        table.row()
            .cell(label)
            .cell(eval.accuracy, 3)
            .cell(eval.meanIou, 3)
            .cell(r.endToEndMs);
    };

    // Baseline-trained model, exact kernels.
    {
        std::cout << "\nTraining with baseline kernels...\n";
        PointNetPP model(
            PointNetPPConfig::liteSegmentation(points, 5), 42);
        trainer.trainSegmentation(model, train_set,
                                  EdgePcConfig::baseline());
        evaluate(model, EdgePcConfig::baseline(), "baseline");
    }

    // EdgePC-retrained model: approximations inside the loop.
    {
        std::cout << "\nRetraining with EdgePC approximations...\n";
        PointNetPP model(
            PointNetPPConfig::liteSegmentation(points, 5), 42);
        trainer.trainSegmentation(model, train_set, EdgePcConfig::sn());
        evaluate(model, EdgePcConfig::sn(), "EdgePC (S+N)");

        // Dump a labeled prediction for visual inspection.
        const PointCloud &room = test_set.items.front().cloud;
        const nn::Matrix logits = model.infer(room, EdgePcConfig::sn());
        PointCloud labeled = room;
        labeled.setLabels(nn::argmaxRows(logits));
        const char *out = "indoor_segmentation_prediction.ply";
        if (writePly(labeled, out)) {
            std::cout << "Wrote prediction to " << out << "\n";
        }
    }

    std::cout << "\n";
    table.print(std::cout);
    return 0;
}
