/**
 * @file
 * Part segmentation — the W4 scenario and the paper's Fig 14b demo:
 * label every point of an object with its part (rocket nose/body/
 * fins, table top/legs, lamp base/pole/shade).
 *
 * Trains a compact DGCNN twice — baseline kernels vs the EdgePC
 * approximations in the loop — compares accuracy/mIoU/latency, and
 * writes ground-truth and predicted PLYs of one test object so the
 * two can be compared visually, as the paper's Fig 14b does.
 *
 * Usage: part_segmentation [per_category] [points] [epochs]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "datasets/parts.hpp"
#include "example_util.hpp"
#include "models/dgcnn.hpp"
#include "nn/loss.hpp"
#include "pointcloud/io.hpp"
#include "train/trainer.hpp"

using namespace edgepc;

int
main(int argc, char **argv)
{
    const std::string usage =
        "part_segmentation [per_category] [points] [epochs]";
    std::size_t per_category = 16;
    std::size_t points = 256;
    int epochs = 20;
    if ((argc > 1 && !examples::parseCount(argv[1], "per_category",
                                           usage, per_category)) ||
        (argc > 2 &&
         !examples::parseCount(argv[2], "points", usage, points)) ||
        (argc > 3 &&
         !examples::parseCount(argv[3], "epochs", usage, epochs))) {
        return 2;
    }

    PartOptions options;
    options.points = points;
    const Dataset data = makePartDataset(per_category, options, 13);
    auto [train_set, test_set] = data.split(0.75, 17);
    std::cout << "Dataset: " << train_set.size() << " train / "
              << test_set.size() << " test objects, "
              << kNumPartLabels << " part labels\n\n";

    TrainOptions topt;
    topt.epochs = epochs;
    topt.learningRate = 0.02f;
    topt.lrDecay = 0.95f;
    topt.verbose = true;
    Trainer trainer(topt);

    Table table({"pipeline", "test acc", "test mIoU", "E2E ms/frame"});
    auto report = [&](Dgcnn &model, const EdgePcConfig &cfg,
                      const char *label) {
        const EvalResult eval =
            trainer.evaluateSegmentation(model, test_set, cfg);
        InferencePipeline pipeline(model, cfg);
        const PipelineResult r =
            pipeline.run(test_set.items.front().cloud);
        table.row()
            .cell(label)
            .cell(eval.accuracy, 3)
            .cell(eval.meanIou, 3)
            .cell(r.endToEndMs);
    };

    std::cout << "Training with baseline kernels...\n";
    Dgcnn baseline_model(
        DgcnnConfig::liteSegmentation(kNumPartLabels), 42);
    trainer.trainSegmentation(baseline_model, train_set,
                              EdgePcConfig::baseline());
    report(baseline_model, EdgePcConfig::baseline(), "baseline");

    std::cout << "\nRetraining with EdgePC approximations...\n";
    Dgcnn edgepc_model(
        DgcnnConfig::liteSegmentation(kNumPartLabels), 42);
    trainer.trainSegmentation(edgepc_model, train_set,
                              EdgePcConfig::sn());
    report(edgepc_model, EdgePcConfig::sn(), "EdgePC (S+N)");

    // The Fig 14b visual: ground truth vs prediction on one object.
    const PointCloud &object = test_set.items.front().cloud;
    writePly(object, "part_segmentation_truth.ply");
    const nn::Matrix logits =
        edgepc_model.infer(object, EdgePcConfig::sn());
    PointCloud predicted = object;
    predicted.setLabels(nn::argmaxRows(logits));
    writePly(predicted, "part_segmentation_prediction.ply");
    std::cout << "\nWrote part_segmentation_truth.ply and "
                 "part_segmentation_prediction.ply\n\n";

    table.print(std::cout);
    return 0;
}
