/**
 * @file
 * Quickstart: the smallest end-to-end EdgePC program.
 *
 * Generates an indoor scene, builds a PointNet++ semantic-segmentation
 * model, and runs the same frame through the three pipeline variants
 * of the paper (baseline, S+N, S+N+F), printing the per-stage latency
 * breakdown, speedups and modeled energy.
 *
 * Usage: quickstart [num_points]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "example_util.hpp"
#include "core/pipeline.hpp"
#include "datasets/scenes.hpp"
#include "models/pointnetpp.hpp"

using namespace edgepc;

int
main(int argc, char **argv)
{
    const std::string usage = "quickstart [num_points]";
    std::size_t points = 2048;
    if (argc > 1 &&
        !examples::parseCount(argv[1], "num_points", usage, points)) {
        return 2;
    }

    // 1. A point-cloud frame (here: a synthetic indoor scan).
    Rng rng(1);
    SceneOptions scene_options;
    scene_options.points = points;
    const PointCloud frame = makeScene(scene_options, rng);
    std::cout << "Input frame: " << frame.size() << " points, "
              << "5 semantic classes\n\n";

    // 2. A point-cloud CNN.
    PointNetPP model(
        PointNetPPConfig::liteSegmentation(points, 5), /*seed=*/42);

    // 3. Run the three pipeline variants of the paper.
    Table table({"variant", "sample ms", "neighbor ms", "group ms",
                 "feature ms", "E2E ms", "energy mJ"});
    double baseline_e2e = 0.0;
    double baseline_sn = 0.0;

    for (const EdgePcConfig &cfg :
         {EdgePcConfig::baseline(), EdgePcConfig::sn(),
          EdgePcConfig::snf()}) {
        InferencePipeline pipeline(model, cfg);
        const PipelineResult r = pipeline.run(frame);
        if (cfg.variant == PipelineVariant::Baseline) {
            baseline_e2e = r.endToEndMs;
            baseline_sn = r.sampleNeighborMs;
        }
        table.row()
            .cell(variantName(cfg.variant))
            .cell(r.stages.total(kStageSample))
            .cell(r.stages.total(kStageNeighbor))
            .cell(r.stages.total(kStageGroup))
            .cell(r.stages.total(kStageFeature))
            .cell(r.endToEndMs)
            .cell(r.energyMj);
        if (cfg.variant != PipelineVariant::Baseline) {
            std::cout << variantName(cfg.variant) << ": SMP+NS speedup "
                      << formatSpeedup(baseline_sn /
                                       r.sampleNeighborMs)
                      << ", E2E speedup "
                      << formatSpeedup(baseline_e2e / r.endToEndMs)
                      << "\n";
        }
    }
    std::cout << "\n";
    table.print(std::cout);
    return 0;
}
