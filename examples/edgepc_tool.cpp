/**
 * @file
 * edgepc_tool: command-line utility to apply the EdgePC kernels to a
 * user's own point-cloud file.
 *
 * Commands:
 *   stats <in>                     cloud statistics + structuredness
 *   structurize <in> <out>         write the Morton-reordered cloud
 *   sample <in> <out> <n> [fps|morton|random|uniform]
 *                                  down-sample with a chosen sampler
 *   neighbors <in> <k> [W]         benchmark exact vs window search
 *
 * Files may be ASCII PLY (.ply) or XYZ text (anything else).
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "example_util.hpp"
#include "neighbor/brute_force.hpp"
#include "neighbor/metrics.hpp"
#include "neighbor/morton_window.hpp"
#include "pointcloud/io.hpp"
#include "pointcloud/metrics.hpp"
#include "sampling/fps.hpp"
#include "sampling/morton_sampler.hpp"
#include "sampling/random_sampler.hpp"
#include "sampling/uniform_index_sampler.hpp"

using namespace edgepc;

namespace {

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

bool
loadCloud(const std::string &path, PointCloud &cloud)
{
    // The strict loaders report *why* a file is unusable (truncated vs
    // malformed vs unopenable) instead of a bare boolean.
    Result<PointCloud> loaded = endsWith(path, ".ply") ? loadPly(path)
                                                       : loadXyz(path);
    if (!loaded.ok()) {
        std::cerr << "error: cannot read point cloud from '" << path
                  << "': " << loaded.error().toString() << "\n";
        return false;
    }
    cloud = loaded.take();
    return true;
}

bool
saveCloud(const PointCloud &cloud, const std::string &path)
{
    const bool ok = endsWith(path, ".ply") ? writePly(cloud, path)
                                           : writeXyz(cloud, path);
    if (!ok) {
        std::cerr << "error: cannot write '" << path << "'\n";
    }
    return ok;
}

int
cmdStats(const std::string &in)
{
    PointCloud cloud;
    if (!loadCloud(in, cloud)) {
        return 1;
    }
    const Aabb box = cloud.bounds();
    std::vector<std::uint32_t> identity(cloud.size());
    for (std::size_t i = 0; i < identity.size(); ++i) {
        identity[i] = static_cast<std::uint32_t>(i);
    }
    const MortonSampler sampler(32);
    const Structurization s = sampler.structurize(cloud.positions());

    std::cout << "points:            " << cloud.size() << "\n";
    std::cout << "labels:            "
              << (cloud.hasLabels() ? "yes" : "no") << "\n";
    std::cout << "bounds min:        " << box.min() << "\n";
    std::cout << "bounds max:        " << box.max() << "\n";
    std::cout << "raw structuredness:    "
              << structuredness(cloud.positions(), identity) << "\n";
    std::cout << "morton structuredness: "
              << structuredness(cloud.positions(), s.order) << "\n";
    return 0;
}

int
cmdStructurize(const std::string &in, const std::string &out)
{
    PointCloud cloud;
    if (!loadCloud(in, cloud)) {
        return 1;
    }
    const MortonSampler sampler(32);
    Timer timer;
    const Structurization s = sampler.structurize(cloud.positions());
    cloud.permute(s.order);
    std::cout << "structurized " << cloud.size() << " points in "
              << timer.elapsedMs() << " ms\n";
    return saveCloud(cloud, out) ? 0 : 1;
}

int
cmdSample(const std::string &in, const std::string &out, std::size_t n,
          const std::string &method)
{
    PointCloud cloud;
    if (!loadCloud(in, cloud)) {
        return 1;
    }
    std::unique_ptr<Sampler> sampler;
    if (method == "fps") {
        sampler = std::make_unique<FarthestPointSampler>();
    } else if (method == "random") {
        sampler = std::make_unique<RandomSampler>();
    } else if (method == "uniform") {
        sampler = std::make_unique<UniformIndexSampler>();
    } else {
        sampler = std::make_unique<MortonSampler>();
    }

    Timer timer;
    const auto selected = sampler->sample(cloud.positions(), n);
    const double ms = timer.elapsedMs();

    std::vector<Vec3> sampled;
    for (const auto idx : selected) {
        sampled.push_back(cloud.positions()[idx]);
    }
    std::cout << sampler->name() << ": " << selected.size() << " of "
              << cloud.size() << " points in " << ms << " ms\n";
    std::cout << "mean coverage distance: "
              << meanCoverageDistance(cloud.positions(), sampled)
              << "\n";
    return saveCloud(cloud.select(selected), out) ? 0 : 1;
}

int
cmdNeighbors(const std::string &in, std::size_t k, std::size_t window)
{
    PointCloud cloud;
    if (!loadCloud(in, cloud)) {
        return 1;
    }
    const auto &pts = cloud.positions();

    BruteForceKnn exact;
    Timer t1;
    const NeighborLists truth = exact.search(pts, pts, k);
    const double exact_ms = t1.elapsedMs();

    const MortonSampler sampler(32);
    Timer t2;
    const Structurization s = sampler.structurize(pts);
    const MortonWindowSearch searcher(window);
    const NeighborLists approx = searcher.searchAll(pts, s, k);
    const double approx_ms = t2.elapsedMs();

    Table table({"searcher", "latency ms", "FNR"});
    table.row().cell("exact k-NN").cell(exact_ms).cell(
        formatPercent(0.0));
    table.row()
        .cell("morton window (W=" +
              std::to_string(window == 0 ? k : window) + ")")
        .cell(approx_ms)
        .cell(formatPercent(falseNeighborRatio(approx, truth)));
    table.print(std::cout);
    std::cout << "speedup: " << formatSpeedup(exact_ms / approx_ms)
              << "\n";
    return 0;
}

void
usage()
{
    std::cerr
        << "usage:\n"
           "  edgepc_tool stats <in>\n"
           "  edgepc_tool structurize <in> <out>\n"
           "  edgepc_tool sample <in> <out> <n> "
           "[fps|morton|random|uniform]\n"
           "  edgepc_tool neighbors <in> <k> [window]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    if (command == "stats") {
        return cmdStats(argv[2]);
    }
    if (command == "structurize" && argc >= 4) {
        return cmdStructurize(argv[2], argv[3]);
    }
    if (command == "sample" && argc >= 5) {
        std::size_t n = 0;
        if (!examples::parseCount(argv[4], "n",
                                  "edgepc_tool sample <in> <out> <n> "
                                  "[fps|morton|random|uniform]",
                                  n)) {
            return 2;
        }
        const std::string method = argc >= 6 ? argv[5] : "morton";
        return cmdSample(argv[2], argv[3], n, method);
    }
    if (command == "neighbors" && argc >= 4) {
        const std::string nb_usage =
            "edgepc_tool neighbors <in> <k> [window]";
        std::size_t k = 0;
        std::size_t window = 0;
        if (!examples::parseCount(argv[3], "k", nb_usage, k)) {
            return 2;
        }
        // window 0 means W = k, so it is allowed explicitly.
        if (argc >= 5 && std::string(argv[4]) != "0" &&
            !examples::parseCount(argv[4], "window", nb_usage, window)) {
            return 2;
        }
        return cmdNeighbors(argv[2], k, window);
    }
    usage();
    return 2;
}
