/**
 * @file
 * Multi-stream serving demo: N synthetic LiDAR streams (one producer
 * thread each) feed the ServingEngine concurrently over one shared
 * PointNet++(s) model. The engine runs EDF dispatch with cross-stream
 * micro-batching, bounded per-stream queues with drop-oldest
 * backpressure, a global admission controller that steps the
 * degradation ladder under load, and a per-stream circuit breaker.
 *
 * With --chaos every stream gets a deterministic FaultInjector: the
 * producer corrupts frames in flight (NaN spray, truncation,
 * duplication) and a second injector adds latency spikes inside the
 * engine's deadline window, so the per-stream health tables show
 * frames being repaired, degraded and shed instead of killing the
 * stream — while the clean streams keep their quality of service.
 *
 * With --trace OUT.json the serving spans (serve.frame, serve.batch,
 * pipeline stages, GEMM kernels) are written in Chrome trace_event
 * format for chrome://tracing / ui.perfetto.dev.
 *
 * The demo exits nonzero if any accepted frame goes unaccounted for
 * (the response futures, per-stream counters and stream health must
 * all reconcile).
 *
 * With --pipeline on|off|auto the engine's inter-frame staged
 * executor is forced on, off, or left to auto-resolve: when on, a
 * dispatch round with >= 2 staged-capable frames overlaps frame t+1's
 * structurization with frame t's neighbor search and GEMM, and the
 * per-stream tables report how many frames took the pipelined path.
 *
 * Usage: serve_streams [--streams N] [--frames N] [--points N]
 *                      [--chaos] [--trace OUT.json]
 *                      [--pipeline on|off|auto]
 */

#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>
#include <thread>
#include <vector>

#include "core/fault_injector.hpp"
#include "datasets/scenes.hpp"
#include "example_util.hpp"
#include "models/pointnetpp.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/serving_engine.hpp"

using namespace edgepc;
using serve::FrameResponse;
using serve::ServingEngine;
using serve::StreamId;
using serve::StreamReport;
using serve::SubmitTicket;

int
main(int argc, char **argv)
{
    const std::string usage =
        "serve_streams [--streams N] [--frames N] [--points N] "
        "[--chaos] [--trace OUT.json] [--pipeline on|off|auto]";
    std::size_t streams = 4;
    std::size_t frames = 32;
    std::size_t points = 512;
    bool chaos = false;
    std::string trace_path;
    PipelineMode pipeline_mode = PipelineMode::Auto;

    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--chaos") == 0) {
            chaos = true;
            continue;
        }
        const bool want_streams = std::strcmp(argv[a], "--streams") == 0;
        const bool want_frames = std::strcmp(argv[a], "--frames") == 0;
        const bool want_points = std::strcmp(argv[a], "--points") == 0;
        const bool want_trace = std::strcmp(argv[a], "--trace") == 0;
        const bool want_pipeline =
            std::strcmp(argv[a], "--pipeline") == 0;
        if (!want_streams && !want_frames && !want_points &&
            !want_trace && !want_pipeline) {
            std::cerr << "error: unknown argument '" << argv[a]
                      << "'\nusage: " << usage << "\n";
            return 2;
        }
        if (a + 1 >= argc) {
            std::cerr << argv[a] << " requires a value\nusage: " << usage
                      << "\n";
            return 2;
        }
        ++a;
        if (want_trace) {
            trace_path = argv[a];
            continue;
        }
        if (want_pipeline) {
            if (!examples::parsePipelineMode(argv[a], usage,
                                             pipeline_mode)) {
                return 2;
            }
            continue;
        }
        std::size_t *slot = want_streams ? &streams
                            : want_frames ? &frames
                                          : &points;
        const char *name = want_streams ? "--streams"
                           : want_frames ? "--frames"
                                         : "--points";
        if (!examples::parseCount(argv[a], name, usage, *slot)) {
            return 2;
        }
    }

    if (!trace_path.empty()) {
        obs::Tracer::global().setEnabled(true);
    }

    std::cout << "Serving " << streams << " concurrent streams of "
              << frames << " frames x " << points
              << " points over one shared model"
              << (chaos ? " (with --chaos fault injection)" : "")
              << " [pipeline=" << pipelineModeName(pipeline_mode)
              << "]...\n\n";

    PointNetPP model(PointNetPPConfig::liteSegmentation(points, 5), 42);

    serve::ServingOptions eopts;
    eopts.maxBatch = streams;
    eopts.pipeline = pipeline_mode;
    eopts.streamDefaults.queueCapacity = 8;
    eopts.streamDefaults.backpressure =
        serve::BackpressurePolicy::DropOldest;
    ServingEngine engine(model, EdgePcConfig::sn(), eopts);

    // Per-stream fault injection, two deterministic injectors each:
    // the producer-side one corrupts payloads before submit, the
    // engine-side one injects latency spikes from the dispatcher (the
    // two never share a thread, so each injector stays single-owner).
    FaultInjectorConfig fcfg;
    fcfg.nanRate = 0.20;
    fcfg.truncateRate = 0.15;
    fcfg.duplicateRate = 0.10;
    fcfg.latencySpikeRate = 0.10;
    fcfg.latencySpikeMs = 60.0;
    std::deque<FaultInjector> corrupters;
    std::deque<FaultInjector> spikers;

    std::vector<StreamId> ids;
    for (std::size_t s = 0; s < streams; ++s) {
        serve::StreamOptions sopts = eopts.streamDefaults;
        sopts.robust.sanitizer.policy = SanitizePolicy::Pad;
        sopts.robust.degradedPointBudget =
            std::max<std::size_t>(points / 4, 128);
        if (chaos) {
            FaultInjectorConfig cfg = fcfg;
            cfg.seed = 100 + s;
            corrupters.emplace_back(cfg);
            cfg.seed = 200 + s;
            spikers.emplace_back(cfg);
            sopts.robust.deadlineMs = 50.0;
            sopts.robust.inferenceProlog = spikers.back().latencyHook();
        }
        ids.push_back(engine.openStream(sopts));
    }

    // One producer thread per stream: fresh scans at a fixed sensor
    // cadence, corrupted in flight under --chaos. A producer never
    // blocks on the engine — drop-oldest backpressure sheds overflow
    // as accounted frames rather than stalling the sensor.
    constexpr std::chrono::milliseconds kSensorPeriod(5);
    std::vector<std::vector<SubmitTicket>> tickets(streams);
    std::vector<std::size_t> corrupted(streams, 0);
    std::vector<std::thread> producers;
    producers.reserve(streams);
    for (std::size_t s = 0; s < streams; ++s) {
        producers.emplace_back([&, s] {
            Rng rng(7 + s);
            SceneOptions options;
            options.points = points;
            tickets[s].reserve(frames);
            for (std::size_t f = 0; f < frames; ++f) {
                PointCloud frame = makeScene(options, rng);
                if (chaos && corrupters[s].corrupt(frame).any()) {
                    ++corrupted[s];
                }
                tickets[s].push_back(
                    engine.submit(ids[s], std::move(frame)));
                std::this_thread::sleep_for(kSensorPeriod);
            }
        });
    }
    for (std::thread &t : producers) {
        t.join();
    }
    const std::vector<StreamReport> reports = engine.drain();

    // Reconcile: every accepted ticket must have resolved to exactly
    // one response, and the per-stream counters must agree.
    bool consistent = true;
    std::size_t total_accepted = 0, total_served = 0, total_shed = 0;
    std::size_t total_pipelined = 0;
    for (std::size_t s = 0; s < streams; ++s) {
        std::size_t served = 0, shed = 0;
        for (SubmitTicket &t : tickets[s]) {
            if (!t.accepted()) {
                continue;
            }
            ++total_accepted;
            const FrameResponse r = t.response.get();
            ++(r.shed ? shed : served);
        }
        total_served += served;
        total_shed += shed;
        const StreamReport &rep = reports[s];
        total_pipelined += rep.serve.pipelinedFrames;
        consistent = consistent && rep.serve.served == served &&
                     rep.serve.shed() == shed &&
                     rep.health.frames == rep.serve.accepted;

        std::cout << "stream " << rep.id;
        if (chaos) {
            std::cout << " (" << corrupted[s] << "/" << frames
                      << " frames corrupted)";
        }
        std::cout << ":\n";
        rep.printTable(std::cout);
        std::cout << "\n";
    }
    consistent =
        consistent && total_served + total_shed == total_accepted;

    std::cout << "engine totals: " << total_accepted << " accepted = "
              << total_served << " served + " << total_shed
              << " shed, " << total_pipelined
              << " via staged pipeline (ladder floor "
              << static_cast<int>(engine.ladderFloor()) << ")\n";
    std::cout << (consistent
                      ? "every in-flight frame accounted for — no "
                        "stream could take the engine down.\n"
                      : "ACCOUNTING MISMATCH — see tables above.\n");

    if (!trace_path.empty()) {
        const Result<void> written = obs::writeChromeTraceFile(
            trace_path, obs::Tracer::global());
        if (!written.ok()) {
            std::cerr << written.error().message << "\n";
            return 1;
        }
        std::cout << "\nSpan timeline written to " << trace_path
                  << " — open chrome://tracing and load it.\n";
    }
    return consistent ? 0 : 1;
}
