/**
 * @file
 * LiDAR stream: the paper's Fig 1a motivating scenario. A sequence of
 * frames (a sensor moving through rooms) is segmented in real time;
 * the demo reports per-frame latency, sustained frame rate and energy
 * for the baseline pipeline versus EdgePC, showing what the
 * sample/neighbor-search savings buy an autonomous platform.
 *
 * The stream then runs again through the fault-tolerant RobustPipeline
 * front end; with --chaos, a deterministic FaultInjector corrupts
 * frames (NaN spray, truncation, duplication) and injects latency
 * spikes, and the demo prints the stream-health telemetry showing the
 * pipeline repairing, degrading and skipping instead of dying.
 *
 * With --trace OUT.json every pipeline/stage/kernel span of the run
 * is captured and written in Chrome trace_event format — load the
 * file into chrome://tracing or https://ui.perfetto.dev to see the
 * per-thread timeline (DESIGN.md §8).
 *
 * With --pipeline on|off|auto the EDGEPC_PIPELINE staged executor is
 * forced on, off, or left to auto-resolve; the demo always prints a
 * sequential-vs-staged stream A/B so the inter-frame overlap gain is
 * visible on multicore hosts.
 *
 * Usage: lidar_stream [frames] [points] [--chaos] [--trace OUT.json]
 *                     [--pipeline on|off|auto]
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "core/fault_injector.hpp"
#include "core/pipeline.hpp"
#include "core/robust_pipeline.hpp"
#include "datasets/scenes.hpp"
#include "example_util.hpp"
#include "models/pointnetpp.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

using namespace edgepc;

int
main(int argc, char **argv)
{
    const std::string usage =
        "lidar_stream [frames] [points] [--chaos] [--trace OUT.json] "
        "[--pipeline on|off|auto]";
    std::size_t frames = 16;
    std::size_t points = 2048;
    bool chaos = false;
    std::string trace_path;
    PipelineMode pipeline_mode = PipelineMode::Auto;

    int positional = 0;
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--chaos") == 0) {
            chaos = true;
            continue;
        }
        if (std::strcmp(argv[a], "--trace") == 0) {
            if (a + 1 >= argc) {
                std::cerr << "--trace requires a path\nusage: " << usage
                          << "\n";
                return 2;
            }
            trace_path = argv[++a];
            continue;
        }
        if (std::strcmp(argv[a], "--pipeline") == 0) {
            if (a + 1 >= argc) {
                std::cerr << "--pipeline requires a value\nusage: "
                          << usage << "\n";
                return 2;
            }
            if (!examples::parsePipelineMode(argv[++a], usage,
                                             pipeline_mode)) {
                return 2;
            }
            continue;
        }
        std::size_t *slot = positional == 0 ? &frames : &points;
        const char *name = positional == 0 ? "frames" : "points";
        if (positional > 1 ||
            !examples::parseCount(argv[a], name, usage, *slot)) {
            return 2;
        }
        ++positional;
    }

    if (!trace_path.empty()) {
        obs::Tracer::global().setEnabled(true);
    }
    setPipelineMode(pipeline_mode);

    std::cout << "Streaming " << frames << " LiDAR frames of " << points
              << " points through PointNet++(s) (pipeline="
              << pipelineModeName() << ")...\n\n";

    // A stream of scans: consecutive frames are fresh room scans (a
    // moving platform sees a changing world).
    Rng rng(99);
    SceneOptions options;
    options.points = points;
    std::vector<PointCloud> stream;
    stream.reserve(frames);
    for (std::size_t f = 0; f < frames; ++f) {
        stream.push_back(makeScene(options, rng));
    }

    PointNetPP model(PointNetPPConfig::liteSegmentation(points, 5), 42);

    Table table({"pipeline", "mean ms/frame", "frames/s",
                 "mean energy mJ/frame", "smp+ns share"});
    double baseline_fps = 0.0;
    double edgepc_fps = 0.0;
    double edgepc_mean_ms = 1.0;

    for (const EdgePcConfig &cfg :
         {EdgePcConfig::baseline(), EdgePcConfig::sn()}) {
        InferencePipeline pipeline(model, cfg);
        StageTimer stages;
        double energy = 0.0;
        Timer wall;
        for (const PointCloud &frame : stream) {
            const PipelineResult r = pipeline.run(frame);
            stages.merge(r.stages);
            energy += r.energyMj;
        }
        const double total_ms = wall.elapsedMs();
        const double fps =
            1000.0 * static_cast<double>(frames) / total_ms;
        if (cfg.variant == PipelineVariant::Baseline) {
            baseline_fps = fps;
        } else {
            edgepc_fps = fps;
            edgepc_mean_ms = total_ms / static_cast<double>(frames);
        }
        const double sn_share =
            (stages.total(kStageSample) + stages.total(kStageNeighbor)) /
            stages.grandTotal();
        table.row()
            .cell(variantName(cfg.variant))
            .cell(total_ms / static_cast<double>(frames))
            .cell(fps)
            .cell(energy / static_cast<double>(frames))
            .cell(formatPercent(sn_share));
    }

    // Inter-frame staged A/B: the same EdgePC stream sequentially vs
    // through the staged executor (respects --pipeline off).
    double staged_fps = 0.0;
    double sequential_fps = 0.0;
    {
        InferencePipeline pipeline(model, EdgePcConfig::sn());
        const PipelineMode ab_modes[] = {
            PipelineMode::Off,
            pipeline_mode == PipelineMode::Off ? PipelineMode::Off
                                               : PipelineMode::On,
        };
        const char *labels[] = {"edgepc stream (sequential)",
                                "edgepc stream (staged)"};
        for (int ab = 0; ab < 2; ++ab) {
            setPipelineMode(ab_modes[ab]);
            const PipelineResult r = pipeline.runBatch(stream);
            const double fps =
                1000.0 * static_cast<double>(frames) / r.wallMs;
            (ab == 0 ? sequential_fps : staged_fps) = fps;
            const double sn_share =
                r.sampleNeighborMs / std::max(r.busyMs, 1e-9);
            table.row()
                .cell(labels[ab])
                .cell(r.wallMs / static_cast<double>(frames))
                .cell(fps)
                .cell(r.energyMj / static_cast<double>(frames))
                .cell(formatPercent(sn_share));
        }
        setPipelineMode(pipeline_mode);
    }

    table.print(std::cout);
    std::cout << "\nSustained throughput gain: "
              << formatSpeedup(edgepc_fps / baseline_fps)
              << " — headroom a perception stack can spend on larger "
                 "frames, deeper models, or battery life.\n";
    std::cout << "Staged stream overlap: "
              << formatSpeedup(staged_fps / sequential_fps)
              << " frames/s vs the same pipeline run frame-at-a-time "
                 "(needs >= 2 frames in flight and spare cores).\n";

    // --- Fault-tolerant serving pass --------------------------------
    std::cout << "\nRobust streaming pass ("
              << (chaos ? "with --chaos fault injection" : "clean input")
              << ")...\n";

    RobustPipelineOptions ropts;
    // Soft deadline: generous multiple of the healthy EdgePC frame
    // time, so only genuine spikes trip the watchdog.
    ropts.deadlineMs = 8.0 * edgepc_mean_ms + 20.0;
    ropts.sanitizer.policy = SanitizePolicy::Pad;
    ropts.degradedPointBudget = std::max<std::size_t>(points / 4, 128);

    FaultInjectorConfig fcfg;
    fcfg.nanRate = 0.25;
    fcfg.truncateRate = 0.15;
    fcfg.duplicateRate = 0.15;
    fcfg.latencySpikeRate = 0.15;
    fcfg.latencySpikeMs = ropts.deadlineMs * 1.5;
    FaultInjector injector(fcfg);
    // Dedicated spike source: `FaultInjector::latencyHook` replays the
    // latch armed by the *last* corrupt() call, which fits the
    // corrupt-then-process-per-frame loop in bench_fault_tolerance but
    // not this demo, where the whole stream is corrupted up front and
    // then handed to processStream. Drawing per inference attempt from
    // a separately seeded Rng keeps ~latencySpikeRate of the stream
    // spiking, deterministically for a given seed.
    Rng spike_rng(fcfg.seed ^ 0x5eedu);
    if (chaos) {
        // Spikes fire inside the watchdog's deadline window.
        ropts.inferenceProlog = [&spike_rng, &fcfg] {
            if (spike_rng.nextDouble() < fcfg.latencySpikeRate) {
                Timer t;
                while (t.elapsedMs() < fcfg.latencySpikeMs) {
                }
            }
        };
    }
    RobustPipeline robust(model, EdgePcConfig::sn(), ropts);

    std::size_t faulted = 0;
    std::vector<PointCloud> working_frames;
    working_frames.reserve(frames);
    for (const PointCloud &frame : stream) {
        PointCloud working = frame;
        if (chaos && injector.corrupt(working).any()) {
            ++faulted;
        }
        working_frames.push_back(std::move(working));
    }
    // The whole stream goes through processStream so the staged
    // executor (when resolved on) overlaps consecutive frames; the
    // per-frame outcomes are deliberately unused — the demo reports
    // the aggregated StreamHealth table below.
    (void)robust.processStream(
        working_frames,
        [](std::size_t, RobustFrameResult &&) {});

    if (chaos) {
        std::cout << faulted << "/" << frames
                  << " frames corrupted by the injector\n";
    }
    std::cout << "\nStream health:\n";
    robust.health().printTable(std::cout);
    std::cout << "\nEvery frame was answered or accounted for — no "
                 "frame can kill the stream.\n";

    if (!trace_path.empty()) {
        const Result<void> written = obs::writeChromeTraceFile(
            trace_path, obs::Tracer::global());
        if (!written.ok()) {
            std::cerr << written.error().message << "\n";
            return 1;
        }
        std::cout << "\nSpan timeline written to " << trace_path
                  << " — open chrome://tracing and load it.\n";
    }
    return 0;
}
