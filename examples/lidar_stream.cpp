/**
 * @file
 * LiDAR stream: the paper's Fig 1a motivating scenario. A sequence of
 * frames (a sensor moving through rooms) is segmented in real time;
 * the demo reports per-frame latency, sustained frame rate and energy
 * for the baseline pipeline versus EdgePC, showing what the
 * sample/neighbor-search savings buy an autonomous platform.
 *
 * Usage: lidar_stream [frames] [points]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "datasets/scenes.hpp"
#include "models/pointnetpp.hpp"

using namespace edgepc;

int
main(int argc, char **argv)
{
    const std::size_t frames =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 16;
    const std::size_t points =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2048;

    std::cout << "Streaming " << frames << " LiDAR frames of " << points
              << " points through PointNet++(s)...\n\n";

    // A stream of scans: consecutive frames are fresh room scans (a
    // moving platform sees a changing world).
    Rng rng(99);
    SceneOptions options;
    options.points = points;
    std::vector<PointCloud> stream;
    stream.reserve(frames);
    for (std::size_t f = 0; f < frames; ++f) {
        stream.push_back(makeScene(options, rng));
    }

    PointNetPP model(PointNetPPConfig::liteSegmentation(points, 5), 42);

    Table table({"pipeline", "mean ms/frame", "frames/s",
                 "mean energy mJ/frame", "smp+ns share"});
    double baseline_fps = 0.0;
    double edgepc_fps = 0.0;

    for (const EdgePcConfig &cfg :
         {EdgePcConfig::baseline(), EdgePcConfig::sn()}) {
        InferencePipeline pipeline(model, cfg);
        StageTimer stages;
        double energy = 0.0;
        Timer wall;
        for (const PointCloud &frame : stream) {
            const PipelineResult r = pipeline.run(frame);
            stages.merge(r.stages);
            energy += r.energyMj;
        }
        const double total_ms = wall.elapsedMs();
        const double fps =
            1000.0 * static_cast<double>(frames) / total_ms;
        if (cfg.variant == PipelineVariant::Baseline) {
            baseline_fps = fps;
        } else {
            edgepc_fps = fps;
        }
        const double sn_share =
            (stages.total(kStageSample) + stages.total(kStageNeighbor)) /
            stages.grandTotal();
        table.row()
            .cell(variantName(cfg.variant))
            .cell(total_ms / static_cast<double>(frames))
            .cell(fps)
            .cell(energy / static_cast<double>(frames))
            .cell(formatPercent(sn_share));
    }

    table.print(std::cout);
    std::cout << "\nSustained throughput gain: "
              << formatSpeedup(edgepc_fps / baseline_fps)
              << " — headroom a perception stack can spend on larger "
                 "frames, deeper models, or battery life.\n";
    return 0;
}
