/**
 * @file
 * Shared CLI parsing for the example binaries.
 *
 * The examples used to funnel argv through std::atoll, which silently
 * wraps negative or garbage input to an enormous size_t and then
 * allocates accordingly. These helpers validate instead: on bad input
 * they print what was wrong plus the usage line and the caller exits
 * with status 2.
 */

#ifndef EDGEPC_EXAMPLES_EXAMPLE_UTIL_HPP
#define EDGEPC_EXAMPLES_EXAMPLE_UTIL_HPP

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>

#include "core/staged_pipeline.hpp"

namespace edgepc {
namespace examples {

/**
 * Parse a strictly positive count argument.
 *
 * @param arg Raw argv value.
 * @param name Argument name for diagnostics ("frames", "points", …).
 * @param usage One-line usage string printed on failure.
 * @param out Parsed value (untouched on failure).
 * @return true on success; false after printing a diagnostic.
 */
inline bool
parseCount(const char *arg, const char *name, const std::string &usage,
           std::size_t &out)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(arg, &end, 10);
    if (errno != 0 || end == arg || *end != '\0' || value <= 0) {
        std::cerr << "error: " << name << " must be a positive integer "
                  << "(got '" << arg << "')\nusage: " << usage << "\n";
        return false;
    }
    out = static_cast<std::size_t>(value);
    return true;
}

/** Parse a strictly positive int argument (epoch counts etc.). */
inline bool
parseCount(const char *arg, const char *name, const std::string &usage,
           int &out)
{
    std::size_t wide = 0;
    if (!parseCount(arg, name, usage, wide) ||
        wide > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
        if (wide > 0) {
            std::cerr << "error: " << name << " is out of range ('"
                      << arg << "')\nusage: " << usage << "\n";
        }
        return false;
    }
    out = static_cast<int>(wide);
    return true;
}

/**
 * Parse a --pipeline on|off|auto value (the EDGEPC_PIPELINE staged
 * executor dispatch). Same contract as parseCount: on bad input a
 * diagnostic plus the usage line is printed and the caller exits 2.
 */
inline bool
parsePipelineMode(const char *arg, const std::string &usage,
                  PipelineMode &out)
{
    if (std::strcmp(arg, "on") == 0) {
        out = PipelineMode::On;
        return true;
    }
    if (std::strcmp(arg, "off") == 0) {
        out = PipelineMode::Off;
        return true;
    }
    if (std::strcmp(arg, "auto") == 0) {
        out = PipelineMode::Auto;
        return true;
    }
    std::cerr << "error: --pipeline must be on, off or auto (got '"
              << arg << "')\nusage: " << usage << "\n";
    return false;
}

} // namespace examples
} // namespace edgepc

#endif // EDGEPC_EXAMPLES_EXAMPLE_UTIL_HPP
