/**
 * @file
 * Sampling playground: reproduces the Fig 5 experience interactively.
 *
 * Generates the bunny-like scan, down-samples it with FPS, raw-order
 * uniform sampling and Morton-structurized uniform sampling, reports
 * coverage quality and latency for each, and writes the three sampled
 * clouds (plus the input) as PLY files for visual comparison.
 *
 * Usage: sampling_playground [num_points] [num_samples]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "datasets/bunny.hpp"
#include "pointcloud/io.hpp"
#include "example_util.hpp"
#include "pointcloud/metrics.hpp"
#include "sampling/fps.hpp"
#include "sampling/morton_sampler.hpp"
#include "sampling/uniform_index_sampler.hpp"

using namespace edgepc;

int
main(int argc, char **argv)
{
    const std::string usage = "sampling_playground [points] [samples]";
    std::size_t points = 40256;
    std::size_t samples = 1024;
    if ((argc > 1 &&
         !examples::parseCount(argv[1], "points", usage, points)) ||
        (argc > 2 &&
         !examples::parseCount(argv[2], "samples", usage, samples))) {
        return 2;
    }

    const PointCloud bunny = bunnyLike(points, 5);
    const auto &pts = bunny.positions();
    std::cout << "Model: " << pts.size() << " points -> sampling "
              << samples << "\n\n";
    writePly(bunny, "bunny_input.ply");

    FarthestPointSampler fps;
    UniformIndexSampler raw;
    MortonSampler morton(32);

    Table table({"sampler", "latency ms", "mean coverage",
                 "max coverage", "voxel coverage"});

    auto report = [&](const char *name, Sampler &sampler,
                      const char *file) {
        Timer timer;
        const auto sel = sampler.sample(pts, samples);
        const double ms = timer.elapsedMs();

        std::vector<Vec3> sampled;
        for (const auto idx : sel) {
            sampled.push_back(pts[idx]);
        }
        table.row()
            .cell(name)
            .cell(ms)
            .cell(meanCoverageDistance(pts, sampled), 4)
            .cell(coverageRadius(pts, sampled), 4)
            .cell(voxelCoverage(pts, sampled, 0.15f), 3);

        std::vector<std::uint32_t> indices(sel.begin(), sel.end());
        writePly(bunny.select(indices), file);
        return ms;
    };

    const double fps_ms = report("FPS (exact)", fps, "bunny_fps.ply");
    const double raw_ms =
        report("uniform on raw order", raw, "bunny_uniform_raw.ply");
    const double mc_ms = report("uniform on Morton order", morton,
                                "bunny_uniform_morton.ply");

    table.print(std::cout);
    std::cout << "\nMorton sampler speedup over FPS: "
              << formatSpeedup(fps_ms / mc_ms)
              << " (raw uniform: " << formatSpeedup(fps_ms / raw_ms)
              << ", but with poor coverage)\n";
    std::cout << "Wrote bunny_input.ply, bunny_fps.ply, "
                 "bunny_uniform_raw.ply, bunny_uniform_morton.ply\n";
    return 0;
}
