/**
 * @file
 * 3D shape classification, the W3 scenario of the paper: DGCNN on a
 * synthetic ModelNet-style dataset. Trains a compact DGCNN with the
 * EdgePC approximations in the loop and reports per-class accuracy
 * plus the latency split between baseline and approximate neighbor
 * search (DGCNN has no sampling stage — the neighbor stage is where
 * EdgePC bites, including the cross-layer reuse of Sec 5.2.3).
 *
 * Usage: shape_classification [per_class] [points] [epochs]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "datasets/shapes.hpp"
#include "example_util.hpp"
#include "models/dgcnn.hpp"
#include "train/trainer.hpp"

using namespace edgepc;

int
main(int argc, char **argv)
{
    const std::string usage =
        "shape_classification [per_class] [points] [epochs]";
    std::size_t per_class = 12;
    std::size_t points = 256;
    int epochs = 20;
    if ((argc > 1 && !examples::parseCount(argv[1], "per_class", usage,
                                           per_class)) ||
        (argc > 2 &&
         !examples::parseCount(argv[2], "points", usage, points)) ||
        (argc > 3 &&
         !examples::parseCount(argv[3], "epochs", usage, epochs))) {
        return 2;
    }

    ShapeOptions options;
    options.points = points;
    const Dataset data = makeShapeDataset(per_class, options, 5);
    auto [train_set, test_set] = data.split(0.75, 11);
    std::cout << "Dataset: " << train_set.size() << " train / "
              << test_set.size() << " test shapes ("
              << data.numClasses << " classes)\n\n";

    TrainOptions topt;
    topt.epochs = epochs;
    topt.learningRate = 0.005f;
    topt.lrDecay = 0.93f;
    topt.verbose = true;
    Trainer trainer(topt);

    const EdgePcConfig cfg = EdgePcConfig::sn();
    Dgcnn model(DgcnnConfig::liteClassification(data.numClasses), 42);
    std::cout << "Training DGCNN with EdgePC approximations...\n";
    trainer.trainClassifier(model, train_set, cfg);

    const EvalResult eval =
        trainer.evaluateClassifier(model, test_set, cfg);
    std::cout << "\nTest accuracy: " << eval.accuracy << "\n";

    // Latency: baseline exact kNN vs the Morton window + reuse.
    const PointCloud &probe = test_set.items.front().cloud;
    StageTimer base_t, sn_t;
    model.infer(probe, EdgePcConfig::baseline(), &base_t);
    model.infer(probe, cfg, &sn_t);

    Table table({"pipeline", "neighbor ms", "feature ms", "total ms"});
    table.row()
        .cell("baseline")
        .cell(base_t.total(kStageNeighbor))
        .cell(base_t.total(kStageFeature))
        .cell(base_t.grandTotal());
    table.row()
        .cell("EdgePC (S+N)")
        .cell(sn_t.total(kStageNeighbor))
        .cell(sn_t.total(kStageFeature))
        .cell(sn_t.grandTotal());
    table.print(std::cout);
    std::cout << "Neighbor-search speedup: "
              << formatSpeedup(base_t.total(kStageNeighbor) /
                               sn_t.total(kStageNeighbor))
              << "\n";
    return 0;
}
