/** @file Integration tests for the InferencePipeline. */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/workloads.hpp"
#include "datasets/scenes.hpp"
#include "models/pointnetpp.hpp"
#include "nn/gemm.hpp"

namespace edgepc {
namespace {

PointCloud
sceneCloud(std::size_t points, std::uint64_t seed)
{
    Rng rng(seed);
    SceneOptions options;
    options.points = points;
    return makeScene(options, rng);
}

TEST(Pipeline, ProducesConsistentResult)
{
    PointNetPP model(PointNetPPConfig::liteSegmentation(512, 5), 7);
    InferencePipeline pipeline(model, EdgePcConfig::baseline());
    const PointCloud cloud = sceneCloud(512, 1);
    const PipelineResult result = pipeline.run(cloud);

    EXPECT_EQ(result.logits.rows(), cloud.size());
    EXPECT_GT(result.endToEndMs, 0.0);
    EXPECT_GT(result.sampleNeighborMs, 0.0);
    EXPECT_LT(result.sampleNeighborMs, result.endToEndMs);
    EXPECT_GT(result.energyMj, 0.0);
}

TEST(Pipeline, SnVariantSpeedsUpSampleNeighbor)
{
    PointNetPP model(PointNetPPConfig::liteSegmentation(4096, 5), 7);
    InferencePipeline base(model, EdgePcConfig::baseline());
    InferencePipeline sn(model, EdgePcConfig::sn());
    const PointCloud cloud = sceneCloud(4096, 2);

    const PipelineResult rb = base.run(cloud);
    const PipelineResult rs = sn.run(cloud);
    EXPECT_LT(rs.sampleNeighborMs, rb.sampleNeighborMs);
    EXPECT_LT(rs.energyMj, rb.energyMj);
}

TEST(Pipeline, BatchAccumulatesTotals)
{
    PointNetPP model(PointNetPPConfig::liteSegmentation(256, 5), 7);
    InferencePipeline pipeline(model, EdgePcConfig::baseline());
    const std::vector<PointCloud> clouds = {sceneCloud(256, 3),
                                            sceneCloud(256, 4)};
    const PipelineResult one = pipeline.run(clouds[0]);
    const PipelineResult both = pipeline.runBatch(clouds);
    EXPECT_GT(both.endToEndMs, one.endToEndMs);
}

TEST(Pipeline, TensorCoreVariantSetsGemmMode)
{
    PointNetPP model(PointNetPPConfig::liteSegmentation(256, 5), 7);
    InferencePipeline snf(model, EdgePcConfig::snf());
    snf.run(sceneCloud(256, 5));
    EXPECT_EQ(nn::GemmEngine::globalEngine().mode(),
              nn::GemmMode::Auto);

    InferencePipeline base(model, EdgePcConfig::baseline());
    base.run(sceneCloud(256, 6));
    EXPECT_EQ(nn::GemmEngine::globalEngine().mode(),
              nn::GemmMode::Scalar);
}

TEST(Pipeline, ConfigSwappable)
{
    PointNetPP model(PointNetPPConfig::liteSegmentation(256, 5), 7);
    InferencePipeline pipeline(model, EdgePcConfig::baseline());
    EXPECT_EQ(pipeline.config().variant, PipelineVariant::Baseline);
    pipeline.setConfig(EdgePcConfig::sn());
    EXPECT_EQ(pipeline.config().variant, PipelineVariant::SN);
    EXPECT_TRUE(pipeline.config().approximate());
}

TEST(Pipeline, VariantNames)
{
    EXPECT_EQ(variantName(PipelineVariant::Baseline), "baseline");
    EXPECT_EQ(variantName(PipelineVariant::SN), "S+N");
    EXPECT_EQ(variantName(PipelineVariant::SNF), "S+N+F");
}

} // namespace
} // namespace edgepc
