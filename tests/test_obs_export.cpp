/**
 * @file
 * Golden-file tests for the observability exporters.
 *
 * The Chrome trace and stats JSON emitters are deterministic (sorted
 * keys, %.12g numbers, recordManual's explicit timestamps), so their
 * output is compared byte-for-byte against fixtures under
 * tests/fixtures/obs/. A third test exercises real TraceScope spans,
 * whose timestamps are nondeterministic, by masking every "ts"/"dur"
 * value before comparing the structural skeleton.
 *
 * Regenerate fixtures after an intentional format change with
 *   EDGEPC_REGEN_FIXTURES=1 ./edgepc_tests --gtest_filter='ObsExport*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgepc {
namespace obs {
namespace {

std::string
fixturePath(const std::string &name)
{
    return std::string(EDGEPC_OBS_FIXTURES) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/**
 * Compare @p produced against the named fixture; with
 * EDGEPC_REGEN_FIXTURES set, rewrite the fixture instead.
 */
void
expectMatchesFixture(const std::string &produced,
                     const std::string &name)
{
    const std::string path = fixturePath(name);
    if (std::getenv("EDGEPC_REGEN_FIXTURES") != nullptr) {
        std::ofstream os(path, std::ios::binary);
        ASSERT_TRUE(os) << "cannot regenerate " << path;
        os << produced;
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty()) << "missing fixture " << path;
    EXPECT_EQ(produced, expected) << "fixture " << name;
}

/**
 * Replace every "ts"/"dur" number (real timings) and "tid" (the
 * global tracer's thread ordinals depend on which tests ran first)
 * so live-recorded traces compare stably. "thread_name" metadata
 * events are dropped entirely: which lanes carry names depends on
 * whether the staged-pipeline tests ran first in this process.
 */
std::string
maskTimestamps(std::string json)
{
    static const std::regex name_re(
        "\\{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":[0-9]+,\"args\":\\{\"name\":\"[^\"]*\"\\}\\},?");
    json = std::regex_replace(json, name_re, "");
    static const std::regex ts_re("\"(ts|dur|tid)\":[0-9.eE+-]+");
    return std::regex_replace(json, ts_re, "\"$1\":0");
}

/** The fixed span set used by the byte-exact Chrome trace fixture. */
Tracer &
fixtureTracer()
{
    static Tracer tracer(64);
    tracer.clear();
    tracer.setEnabled(true);
    // Two threads; thread 0 has a nested stage under the pipeline
    // span, thread 1 a single gemm span. Times in ns.
    tracer.recordManual("pipeline", "pipeline", 1'000, 9'000'000, 0, 0);
    tracer.recordManual("sample", "stage", 2'000, 1'500'000, 0, 1);
    tracer.recordManual("neighbor", "stage", 1'600'000, 2'500'000, 0, 1);
    tracer.recordManual("gemm", "nn", 5'000, 750'500, 1, 0);
    return tracer;
}

TEST(ObsExport, ChromeTraceGolden)
{
    std::ostringstream os;
    writeChromeTrace(os, fixtureTracer());
    expectMatchesFixture(os.str(), "chrome_trace.json");
}

TEST(ObsExport, StatsGolden)
{
    MetricsRegistry registry;
    registry.counter("gemm.flops").add(123456789);
    registry.counter("neighbor_cache.hits").add(41);
    registry.gauge("threadpool.queue_depth").set(-3);
    const double bounds[] = {0.5, 5.0};
    Histogram &h = registry.histogram("pipeline.frame_ms", bounds);
    h.observe(0.25);
    h.observe(2.0);
    h.observe(100.0);

    std::ostringstream os;
    writeStatsJson(os, registry);
    expectMatchesFixture(os.str(), "stats.json");
}

TEST(ObsExport, RealSpansMaskedGolden)
{
#if !EDGEPC_TRACING
    GTEST_SKIP() << "live TraceScope spans compiled out (EDGEPC_TRACING=OFF)";
#endif
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    {
        TraceScope outer("frame", "pipeline");
        {
            TraceScope inner("sample", "stage");
        }
        {
            TraceScope inner2("group", "stage");
        }
    }
    tracer.setEnabled(false);

    std::ostringstream os;
    writeChromeTrace(os, tracer);
    tracer.clear();
    expectMatchesFixture(maskTimestamps(os.str()),
                         "chrome_trace_masked.json");
}

TEST(ObsExport, ChromeTraceReportsDropped)
{
    Tracer tracer(2);
    tracer.setEnabled(true);
    tracer.recordManual("a", "t", 0, 1, 0, 0);
    tracer.recordManual("b", "t", 10, 1, 0, 0);
    tracer.recordManual("c", "t", 20, 1, 0, 0);

    std::ostringstream os;
    writeChromeTrace(os, tracer);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"dropped\":1"), std::string::npos);
    EXPECT_EQ(out.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"c\""), std::string::npos);
}

TEST(ObsExport, FileWritersReportIoErrors)
{
    Tracer tracer(4);
    const Result<void> bad_trace = writeChromeTraceFile(
        "/nonexistent-dir/trace.json", tracer);
    ASSERT_FALSE(bad_trace.ok());
    EXPECT_EQ(bad_trace.code(), ErrorCode::IoError);

    MetricsRegistry registry;
    const Result<void> bad_stats = writeStatsJsonFile(
        "/nonexistent-dir/stats.json", registry);
    ASSERT_FALSE(bad_stats.ok());
    EXPECT_EQ(bad_stats.code(), ErrorCode::IoError);
}

} // namespace
} // namespace obs
} // namespace edgepc
